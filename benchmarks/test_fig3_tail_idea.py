"""Fig. 3 — the tail-scheduling key idea (19 tasks, 2 CPU slots, GPU 6×).

Paper claim: GPU-first leaves the fast GPU idle while the final CPU tasks
straggle; forcing the tail onto the GPU shortens the job.
"""

from repro.experiments import figures, report


def test_fig3(benchmark):
    result = benchmark.pedantic(figures.fig3, rounds=1, iterations=1)
    print("\n" + report.render_fig3(result))
    # The paper's schedule saves roughly half a CPU-task time.
    assert result.tail_makespan < result.gpu_first_makespan
    assert result.gpu_first_makespan / result.tail_makespan > 1.1
    # Final two tasks forced onto the GPU, exactly as in the figure.
    final = [slot for task, slot, _s, _e in result.tail_schedule if task >= 18]
    assert all(s == "gpu" for s in final)


def test_fig3_sensitivity_to_speedup(benchmark):
    """Ablation: the tail win grows with the CPU/GPU gap."""

    def sweep():
        return {s: figures.fig3(gpu_speedup=s) for s in (2.0, 6.0, 12.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gains = {
        s: r.gpu_first_makespan / r.tail_makespan for s, r in results.items()
    }
    print("\nFig. 3 sensitivity (speedup -> tail gain):",
          {s: f"{g:.2f}x" for s, g in gains.items()})
    assert gains[6.0] >= gains[2.0] * 0.95
