"""Fig. 7a–e — effect of each compiler/runtime optimization on the kernel
it targets, ablated one at a time.

Paper shapes: (a) texture memory ≈2× on KM/CL map kernels; (b) vectorized
read/write up to 2.7× on combine kernels; (c) up to 1.7× on map kernels;
(d) record stealing up to 1.36× on skewed-record map kernels; (e) KV
aggregation before sort up to 7.6× on the sort kernel.
"""

from collections import defaultdict

import pytest

from repro.experiments import figures, report


@pytest.fixture(scope="module")
def fig7_points():
    return figures.fig7()


def test_fig7_full_report(benchmark, fig7_points):
    points = benchmark.pedantic(lambda: fig7_points, rounds=1, iterations=1)
    print("\n" + report.render_fig7(points))
    assert len(points) >= 14


class TestDirections:
    def grouped(self, points):
        groups = defaultdict(list)
        for p in points:
            groups[p.optimization].append(p)
        return groups

    def test_7a_texture(self, fig7_points):
        pts = self.grouped(fig7_points)["use_texture"]
        assert {p.app for p in pts} == {"KM", "CL"}
        for p in pts:
            assert p.speedup > 1.1  # paper: ~2x

    def test_7b_vectorized_combine(self, fig7_points):
        pts = self.grouped(fig7_points)["vectorize_combine"]
        assert max(p.speedup for p in pts) > 1.5  # paper: up to 2.7x
        assert all(p.speedup >= 0.99 for p in pts)

    def test_7c_vectorized_map(self, fig7_points):
        pts = self.grouped(fig7_points)["vectorize_map"]
        assert max(p.speedup for p in pts) > 1.3  # paper: up to 1.7x
        assert all(p.speedup >= 0.99 for p in pts)

    def test_7d_record_stealing(self, fig7_points):
        pts = self.grouped(fig7_points)["record_stealing"]
        # Mechanism benchmark over increasing record-length skew.
        assert all(p.speedup > 1.2 for p in pts)  # paper: up to 1.36x
        by_label = {p.app: p.speedup for p in pts}
        assert by_label["heavy-skew"] >= by_label["mild-skew"] * 0.95

    def test_7e_kv_aggregation(self, fig7_points):
        pts = self.grouped(fig7_points)["kv_aggregation"]
        assert all(p.speedup > 3.0 for p in pts)  # paper: up to 7.6x
        assert max(p.speedup for p in pts) > 7.0
