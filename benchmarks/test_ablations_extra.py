"""Ablations beyond the paper (DESIGN.md §6):

* tail-scheduling sensitivity to speedup misestimation,
* the kvpairs clause's over-allocation vs sort-efficiency trade-off,
* threadblock/threads launch-tuning surface.
"""

import copy

import pytest

from repro.apps import get_app
from repro.config import CLUSTER1, LaunchConfig, OptimizationFlags
from repro.costmodel.io import IoModel
from repro.experiments.calibrate import single_task_times
from repro.gpu.device import GpuDevice
from repro.hadoop import ClusterSimulator, JobConf
from repro.runtime.gpu_task import GpuTaskRunner
from repro.scheduling import GpuFirstPolicy, TailPolicy


class TestTailSpeedupMisestimation:
    """Algorithm 2 uses the *measured* aveSpeedup; what if it is off?
    We inject a fixed bias into the duration model's reported GPU speed
    by shifting gpu_task_seconds, then compare against an oracle run."""

    def run_with(self, gpu_seconds):
        job = JobConf(name="x", num_map_tasks=3600, num_reduce_tasks=16,
                      cluster=CLUSTER1, cpu_task_seconds=60.0,
                      gpu_task_seconds=gpu_seconds)
        return ClusterSimulator(job, TailPolicy()).run().job_seconds

    def test_benchmark(self, benchmark):
        def sweep():
            return {s: self.run_with(60.0 / s) for s in (10, 20, 40)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\ntail job seconds by true speedup:",
              {s: f"{t:.0f}s" for s, t in results.items()})
        # Faster GPUs never lengthen the job under tail scheduling beyond
        # wave-quantization jitter (the curve can plateau once the
        # constant reduce phase dominates).
        assert results[40] <= results[20] * 1.02 <= results[10] * 1.05
        assert results[40] < results[10]


class TestKvpairsClauseSweep:
    """§3.2: the kvpairs clause shrinks the global KV store; smaller
    stores aggregate (and without aggregation, sort) more efficiently."""

    def sort_time(self, kvpairs_value):
        app = get_app("WC")
        source = app.map_source.replace("kvpairs(20)",
                                        f"kvpairs({kvpairs_value})")
        from repro.compiler import translate
        from repro.minic import parse

        opt = OptimizationFlags.all_on().but(kv_aggregation=False)
        tr = translate(parse(source), opt=opt)
        runner = GpuTaskRunner(
            tr, app.translate_combine(opt), GpuDevice(CLUSTER1.gpu),
            IoModel.for_cluster(CLUSTER1), num_reducers=8,
        )
        split = app.generate(300, seed=4).encode()
        return runner.run(split).breakdown.sort

    def test_benchmark(self, benchmark):
        def sweep():
            return {k: self.sort_time(k) for k in (20, 40, 80)}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nunaggregated sort seconds by kvpairs clause:",
              {k: f"{t * 1e3:.3f}ms" for k, t in results.items()})
        # Over-allocating the store (larger kvpairs) never speeds the
        # whitespace-ridden sort.
        assert results[80] >= results[20] * 0.99


class TestGlobalVsBlockStealing:
    """§4.1's rejected alternative: one global record counter. The paper
    argues its atomics are too expensive; we implement both and measure."""

    def test_benchmark(self, benchmark):
        import random

        from repro.compiler import translate
        from repro.gpu.executor import (
            run_map_kernel,
            run_map_kernel_global_stealing,
        )
        from repro.kvstore import GlobalKVStore, Partitioner
        from repro.minic import parse
        from repro.minic.interpreter import Interpreter

        SOURCE = """
int main()
{
    char tok[30], *line;
    size_t nbytes = 10000;
    double acc;
    int read, lp, offset, i, k;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(k) value(acc) \\
        kvpairs(2) blocks(2) threads(128)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        acc = 0.0;
        k = 0;
        while( (lp = getWord(line, offset, tok, read, 30)) != -1) {
            offset += lp;
            for(i = 0; i < 40; i++) {
                acc += sqrt(atof(tok) + i);
            }
            k++;
        }
        printf("%d\\t%f\\n", k, acc);
    }
    free(line);
    return 0;
}
"""
        rng = random.Random(17)
        records = [b"3.5 " * max(1, min(16, int(rng.paretovariate(1.2))))
                   for _ in range(1200)]
        tr = translate(parse(SOURCE))
        kernel = tr.map_kernel
        snapshot = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)

        def store():
            return GlobalKVStore(kernel.launch.total_threads,
                                 kernel.launch.total_threads * 40,
                                 kernel.key_length, kernel.value_length)

        def compare():
            device = GpuDevice(CLUSTER1.gpu)
            local = run_map_kernel(device, kernel, records, snapshot,
                                   store(), Partitioner(4)).cost.seconds
            glob = run_map_kernel_global_stealing(
                device, kernel, records, snapshot, store(),
                Partitioner(4)).cost.seconds
            return local, glob

        local, glob = benchmark.pedantic(compare, rounds=1, iterations=1)
        print(f"\nblock-local stealing {local * 1e3:.3f} ms vs "
              f"global counter {glob * 1e3:.3f} ms "
              f"({glob / local:.2f}x slower) — the paper's §4.1 choice wins")
        assert glob > local


class TestLaunchTuningSurface:
    """blocks/threads clauses expose a tuning surface (Table 1)."""

    def map_time(self, blocks, threads):
        app = get_app("CL")
        tr = app.translate_map()
        kernel = copy.copy(tr.map_kernel)
        kernel.launch = LaunchConfig(blocks=blocks, threads=threads)
        from repro.gpu.executor import run_map_kernel
        from repro.kvstore import GlobalKVStore, Partitioner
        from repro.minic.interpreter import Interpreter

        device = GpuDevice(CLUSTER1.gpu)
        store = GlobalKVStore(kernel.launch.total_threads,
                              kernel.launch.total_threads * 8,
                              kernel.key_length, kernel.value_length)
        snap = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)
        records = [l.encode() for l in app.generate(600, seed=6).splitlines()]
        from repro.kvstore import Partitioner as P

        return run_map_kernel(device, kernel, records, snap, store,
                              P(16)).cost.seconds

    def test_benchmark(self, benchmark):
        def sweep():
            return {
                (b, t): self.map_time(b, t)
                for b, t in ((15, 64), (30, 128), (60, 128), (120, 256))
            }

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        print("\nCL map kernel seconds by launch:",
              {k: f"{v * 1e6:.1f}us" for k, v in results.items()})
        # More blocks than SMs amortize; extremes are not optimal.
        assert min(results.values()) > 0
