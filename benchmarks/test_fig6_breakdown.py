"""Fig. 6 — execution-time breakdown of one GPU task per benchmark.

Paper shape: different stages bottleneck different benchmarks — BS is
dominated by the output write (~62%, map-only HDFS write); WC by the
sort (long string keys); KM and CL are map-heavy; HR and LR spend
substantial time in combine; partition aggregation is negligible
everywhere.
"""

from repro.experiments import figures, report


def test_fig6(benchmark):
    fractions = benchmark.pedantic(figures.fig6, rounds=1, iterations=1)
    print("\n" + report.render_fig6(fractions))

    # Aggregation negligible in all benchmarks (Fig. 6 note).
    for app, frac in fractions.items():
        assert frac["aggregate"] < 0.05, f"{app} aggregation not negligible"

    # BS: output write is the top contributor (paper: 62%).
    bs = fractions["BS"]
    assert bs["output_write"] == max(bs.values())
    assert bs["output_write"] > 0.3

    # WC: sorting dominates the kernel stages (long keys).
    wc = fractions["WC"]
    assert wc["sort"] > wc["map"] and wc["sort"] > wc["combine"]

    # KM / CL are map-heavy among kernel stages.
    for app in ("KM", "CL"):
        frac = fractions[app]
        assert frac["map"] > frac["sort"] and frac["map"] > frac["combine"]

    # HR and LR have a substantial combine share.
    for app in ("HR", "LR"):
        assert fractions[app]["combine"] > 0.03
