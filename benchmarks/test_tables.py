"""Tables 1–3: regenerate the paper's static tables from library state."""

from repro.experiments import report, tables


class TestTable1:
    """Table 1 — HeteroDoop directives and clauses."""

    def test_regenerate(self, benchmark):
        rows = benchmark.pedantic(tables.table1, rounds=1, iterations=1)
        print("\n" + report.render_table(rows, "Table 1 — HeteroDoop Directives"))
        assert len(rows) == 14
        optional = {r["clause"] for r in rows if r["optional"] == "Yes"}
        assert optional == {"sharedRO", "texture", "kvpairs", "blocks", "threads"}


class TestTable2:
    """Table 2 — benchmark descriptions."""

    def test_regenerate(self, benchmark):
        rows = benchmark.pedantic(tables.table2, rounds=1, iterations=1)
        print("\n" + report.render_table(rows, "Table 2 — Benchmarks"))
        assert len(rows) == 8
        # Paper-reported task counts reproduced verbatim.
        by_tag = {r["benchmark"].split("(")[1][:2]: r for r in rows}
        assert by_tag["GR"]["map_tasks_c1"] == 7632
        assert by_tag["HS"]["input_gb_c1"] == 1190
        assert by_tag["KM"]["map_tasks_c2"] == "NA"
        assert by_tag["BS"]["reduce_tasks_c1"] == 0


class TestTable3:
    """Table 3 — cluster setups."""

    def test_regenerate(self, benchmark):
        rows = benchmark.pedantic(tables.table3, rounds=1, iterations=1)
        print("\n" + report.render_table(rows, "Table 3 — Cluster Setups"))
        c1, c2 = rows
        assert c1["cpu_cores"] == 20 and c2["cpu_cores"] == 12
        assert c1["replication"] == 3 and c2["replication"] == 1
        assert c2["disk"] == "none"
