"""Benchmark harness configuration.

Every paper table and figure has one benchmark module here; running

    pytest benchmarks/ --benchmark-only -s

regenerates them all and prints the series next to the paper's reported
shapes. ``--task-scale`` shrinks the Fig. 4 cluster simulations (task
counts) for quick runs; the default reproduces Table 2's full task
counts.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--task-scale",
        action="store",
        default="1.0",
        help="Scale factor for Fig. 4 map-task counts (1.0 = Table 2 scale)",
    )


@pytest.fixture(scope="session")
def task_scale(request) -> float:
    return float(request.config.getoption("--task-scale"))
