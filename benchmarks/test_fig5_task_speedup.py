"""Fig. 5 — single GPU-task speedup over a CPU task on one core, with the
translated-baseline code vs the full optimizer.

Paper shape: ordered GR < HS < WC < HR < LR < KM < CL < BS (increasing
compute intensity); up to 47× for BS; optimizations contribute
substantially for GR, KM, CL, LR.
"""

from repro.experiments import figures, report

PAPER_ORDER = ["GR", "HS", "WC", "HR", "LR", "KM", "CL", "BS"]


def test_fig5(benchmark):
    points = benchmark.pedantic(figures.fig5, rounds=1, iterations=1)
    print("\n" + report.render_fig5(points))

    speedups = {p.app: p.optimized_speedup for p in points}
    # The paper's ordering by increasing speedup holds.
    ordered = [speedups[a] for a in PAPER_ORDER]
    assert ordered == sorted(ordered), f"ordering broken: {speedups}"
    # BS is the ceiling (paper: 'as high as 47x for BS').
    assert speedups["BS"] > 25
    # IO-intensive tasks still beat one CPU core (paper §7.4: 'even for
    # IO-intensive applications ... the GPU achieves speedups').
    assert all(s > 1.0 for s in speedups.values())
    # Optimizations never make a task slower.
    for p in points:
        assert p.optimized_speedup >= p.baseline_speedup * 0.99
