"""Fig. 4a — end-to-end speedup over CPU-only Hadoop on Cluster1 (one K40
per 20-core node), GPU-first vs tail scheduling, all eight benchmarks at
Table 2 task counts.

Paper shape: speedups ordered GR < HS < WC < HR < LR ≈ KM < CL < BS, up
to 2.78× (BS), geometric mean 1.6×; tail ≥ GPU-first, with the largest
tail win on BS and none on LR.
"""

from repro.experiments import figures, report


def test_fig4a(benchmark, task_scale):
    points = benchmark.pedantic(
        figures.fig4a, kwargs={"task_scale": task_scale}, rounds=1, iterations=1
    )
    print("\n" + report.render_fig4(points, "Fig. 4a — Cluster1, 1 GPU/node"))

    tail = {p.app: p.speedup for p in points if p.policy == "tail"}
    gf = {p.app: p.speedup for p in points if p.policy == "gpu-first"}

    # Every benchmark gains from the GPU (speedup >= ~1).
    assert all(s >= 0.97 for s in tail.values())
    # IO-intensive apps gain least; BS gains most (paper ordering).
    assert tail["GR"] == min(tail.values())
    assert tail["BS"] == max(tail.values())
    assert tail["BS"] > 1.5
    # Compute-intensive beat IO-intensive.
    assert min(tail["KM"], tail["CL"]) > max(tail["GR"], tail["HS"])
    # Tail scheduling never loses materially to GPU-first.
    for app in tail:
        assert tail[app] >= gf[app] * 0.97, f"tail regressed on {app}"
    # Geometric mean in the paper's band (paper: 1.6x).
    gm = figures.geometric_mean(tail.values())
    print(f"geometric mean (tail): {gm:.2f}x  [paper: 1.6x]")
    assert 1.15 <= gm <= 2.2
