"""Fig. 4b — multi-GPU scalability on Cluster2 (32 nodes, 4-core slots,
1–3 M2090s per node, in-memory storage). KM is absent: its working set
exceeds an M2090's 6 GB (paper: 'the memory requirement exceeds the
capacity of Cluster2').

Paper shape: speedups larger than Cluster1's (fewer CPU cores, no disk)
and scaling with the number of GPUs per node.
"""

from collections import defaultdict

from repro.experiments import figures, report


def test_fig4b(benchmark, task_scale):
    points = benchmark.pedantic(
        figures.fig4b, kwargs={"task_scale": task_scale}, rounds=1, iterations=1
    )
    print("\n" + report.render_fig4(points, "Fig. 4b — Cluster2, 1-3 GPUs/node"))

    # KM excluded (Table 2 NA + GPU memory floor).
    assert not any(p.app == "KM" for p in points)
    apps = {p.app for p in points}
    assert apps == {"GR", "HS", "WC", "HR", "LR", "CL", "BS"}

    by_app = defaultdict(dict)
    for p in points:
        if p.policy == "tail":
            by_app[p.app][p.gpus_per_node] = p.speedup

    # Execution time scales with GPUs per node (within wave-quantization
    # noise: 3 GPUs never slower than 1).
    for app, series in by_app.items():
        assert series[3] >= series[1] * 0.95, f"{app} failed to scale"
    # Cluster2 speedups exceed Cluster1's (paper §7.3's observation).
    assert max(s for series in by_app.values() for s in series.values()) > 4.0
    # The most compute-intensive app scales furthest.
    assert max(by_app["BS"].values()) == max(
        s for series in by_app.values() for s in series.values()
    )
