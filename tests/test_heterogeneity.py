"""Inter-node heterogeneity (the paper's §9 future work, implemented as
an extension): some nodes' CPUs are slower, their GPUs are not."""

import pytest

from repro.config import CLUSTER1
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.simulate import TaskDurationModel
from repro.hadoop.tasks import SlotKind
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


def hetero_model(slow_factor=3.0, slow_nodes=8, **kw):
    return TaskDurationModel(
        cpu_seconds=60.0,
        gpu_seconds=4.0,
        node_speed_factors={n: slow_factor for n in range(slow_nodes)},
        **kw,
    )


def job(num_maps=2400):
    return JobConf(name="het", num_map_tasks=num_maps, num_reduce_tasks=16,
                   cluster=CLUSTER1, cpu_task_seconds=60.0, gpu_task_seconds=4.0)


class TestDurationModel:
    def test_slow_nodes_slow_cpu_tasks(self):
        m = hetero_model()
        slow, _ = m.sample(SlotKind.CPU, data_local=True, node=0)
        fast, _ = m.sample(SlotKind.CPU, data_local=True, node=20)
        assert slow > 2.0 * fast

    def test_gpus_unaffected(self):
        m = hetero_model()
        on_slow, _ = m.sample(SlotKind.GPU, data_local=True, node=0)
        on_fast, _ = m.sample(SlotKind.GPU, data_local=True, node=20)
        assert on_slow == pytest.approx(on_fast, rel=0.15)

    def test_node_none_means_homogeneous(self):
        m = hetero_model()
        d, _ = m.sample(SlotKind.CPU, data_local=True, node=None)
        assert d == pytest.approx(60.0, rel=0.1)


class TestClusterWithSlowNodes:
    def test_heterogeneity_lengthens_cpu_only_jobs(self):
        # Half the cluster 3x slower: pull-based FIFO absorbs mild skew
        # (slow nodes simply request fewer tasks), so measure throughput
        # at many waves where lost capacity must show.
        homo = ClusterSimulator(job(9600), CpuOnlyPolicy()).run()
        het = ClusterSimulator(
            job(9600), CpuOnlyPolicy(),
            durations=hetero_model(slow_nodes=24),
        ).run()
        assert het.map_phase_seconds > homo.map_phase_seconds * 1.2

    def test_gpus_absorb_heterogeneity(self):
        """With GPUs available, the slow nodes' devices keep pulling
        weight, so the heterogeneity penalty shrinks."""
        cpu_only = ClusterSimulator(job(), CpuOnlyPolicy(),
                                    durations=hetero_model(seed=5)).run()
        hetero_gpu = ClusterSimulator(job(), GpuFirstPolicy(),
                                      durations=hetero_model(seed=5)).run()
        assert hetero_gpu.job_seconds < cpu_only.job_seconds

    def test_tail_still_safe_under_heterogeneity(self):
        gf = ClusterSimulator(job(), GpuFirstPolicy(),
                              durations=hetero_model(seed=5)).run()
        tail = ClusterSimulator(job(), TailPolicy(),
                                durations=hetero_model(seed=5)).run()
        assert tail.job_seconds <= gf.job_seconds * 1.05

    def test_per_node_speedup_estimates_diverge(self):
        """Slow nodes observe a larger GPU speedup — the signal a future
        inter-node-aware scheduler would exploit."""
        sim = ClusterSimulator(job(), GpuFirstPolicy(),
                               durations=hetero_model(seed=5))
        sim.run()
        slow = [t.stats.ave_speedup for t in sim.trackers[:8]
                if t.stats.gpu_tasks and t.stats.cpu_tasks]
        fast = [t.stats.ave_speedup for t in sim.trackers[8:]
                if t.stats.gpu_tasks and t.stats.cpu_tasks]
        assert slow and fast
        assert sum(slow) / len(slow) > 1.5 * sum(fast) / len(fast)
