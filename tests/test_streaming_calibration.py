"""Streaming-protocol module and calibration-band tests."""

import pytest

from repro.apps import get_app
from repro.costmodel.calibration import (
    FIG5_BANDS,
    FIG5_ORDER,
    measured_speedups,
    verify_calibration,
)
from repro.hadoop.streaming import (
    StreamingFilter,
    StreamingPipeline,
    format_kv,
    parse_kv,
)
from repro.kvstore import Partitioner


class TestKvSerialization:
    def test_round_trip(self):
        pairs = [("word", 3), (5, 2.5), ("x y", 1)]
        assert parse_kv(format_kv(pairs)) == pairs

    def test_empty(self):
        assert parse_kv("") == [] and format_kv([]) == ""


class TestStreamingFilter:
    def test_wordcount_map_as_filter(self):
        app = get_app("WC")
        f = StreamingFilter(app.map_program(), name="wc-map")
        out = f("the quick fox\nthe dog\n")
        assert parse_kv(out) == [("the", 1), ("quick", 1), ("fox", 1),
                                 ("the", 1), ("dog", 1)]
        assert f.invocations == 1
        assert f.total_counters.ops > 0

    def test_counters_accumulate_across_invocations(self):
        app = get_app("WC")
        f = StreamingFilter(app.map_program())
        f("a b\n")
        once = f.total_counters.ops
        f("a b\n")
        assert f.total_counters.ops == 2 * once

    def test_combine_filter_kv_interface(self):
        app = get_app("WC")
        f = StreamingFilter(app.combine_program())
        out = f.run_kv([("a", 1), ("a", 2), ("b", 1)])
        assert out == [("a", 3), ("b", 1)]


class TestStreamingPipeline:
    def test_full_map_side(self):
        app = get_app("WC")
        pipeline = StreamingPipeline.for_app(app)
        partitioner = Partitioner(4)
        parts = pipeline.run_split("a b a\nb c\n", partitioner.partition)
        merged = {}
        for kvs in parts.values():
            for k, v in kvs:
                merged[k] = merged.get(k, 0) + v
        assert merged == {"a": 2, "b": 2, "c": 1}

    def test_partitions_sorted(self):
        app = get_app("WC")
        pipeline = StreamingPipeline.for_app(app)
        parts = pipeline.run_split("zeta alpha mid\n", lambda k: 0)
        keys = [k for k, _v in parts[0]]
        assert keys == sorted(keys)

    def test_no_combiner_app(self):
        app = get_app("CL")
        pipeline = StreamingPipeline.for_app(app)
        assert pipeline.combiner is None
        text = app.generate(20, seed=2)
        parts = pipeline.run_split(text, lambda k: 0)
        assert sum(len(v) for v in parts.values()) == 20

    def test_matches_app_cpu_map(self):
        app = get_app("HR")
        text = app.generate(60, seed=5)
        pipeline = StreamingPipeline.for_app(app)
        parts = pipeline.run_split(text, Partitioner(5).partition)
        # Totals equal the reference regardless of partitioning/combining.
        totals = {}
        for kvs in parts.values():
            for k, v in kvs:
                totals[k] = totals.get(k, 0) + v
        assert totals == app.reference(text)


class TestCalibrationBands:
    def test_current_models_within_bands(self):
        problems = verify_calibration()
        assert problems == [], "\n".join(problems)

    def test_ordering_matches_paper(self):
        speedups = measured_speedups()
        ordered = [speedups[a] for a in FIG5_ORDER]
        assert ordered == sorted(ordered)

    def test_bands_cover_all_eight(self):
        from repro.scenarios import PAPER_APP_ORDER

        assert {b.app for b in FIG5_BANDS} == set(PAPER_APP_ORDER)
