"""Full GPU task pipeline tests (Fig. 1 / Fig. 6) + driver fault tolerance."""

import pytest

from repro.config import CLUSTER1, GB, OptimizationFlags, TESLA_M2090
from repro.apps import get_app
from repro.costmodel.io import IoModel
from repro.errors import GpuError, GpuOutOfMemory
from repro.gpu.device import GpuDevice
from repro.runtime.gpu_driver import GpuDriver
from repro.runtime.gpu_task import GpuTaskRunner
from repro.runtime.seqfile import SequenceFileReader


@pytest.fixture
def wc_runner(cluster1_io):
    app = get_app("WC")
    return GpuTaskRunner(
        app.translate_map(), app.translate_combine(),
        GpuDevice(CLUSTER1.gpu), cluster1_io, num_reducers=4,
    )


class TestPipeline:
    def test_breakdown_covers_all_stages(self, wc_runner):
        app = get_app("WC")
        result = wc_runner.run(app.generate(200, seed=1).encode())
        bd = result.breakdown
        assert bd.input_read > 0 and bd.map > 0 and bd.sort > 0
        assert bd.combine > 0 and bd.output_write > 0
        assert bd.total == pytest.approx(sum(bd.as_dict().values()))

    def test_device_memory_released_after_task(self, wc_runner):
        app = get_app("WC")
        wc_runner.run(app.generate(100, seed=1).encode())
        assert wc_runner.device.memory.used == 0

    def test_seqfile_output_parses(self, wc_runner):
        app = get_app("WC")
        result = wc_runner.run(app.generate(100, seed=1).encode())
        total = 0
        for part, image in result.seqfiles.items():
            pairs = SequenceFileReader(image).read_all()
            assert pairs == result.partition_output[part]
            total += len(pairs)
        assert total == result.output_pairs

    def test_combiner_shrinks_output(self, wc_runner):
        app = get_app("WC")
        result = wc_runner.run(app.generate(300, seed=1).encode())
        assert result.output_pairs < result.emitted_pairs

    def test_min_gpu_mem_enforced(self, cluster1_io):
        app = get_app("KM")  # declares 8 GB working-set floor
        runner = GpuTaskRunner(
            app.translate_map(), None, GpuDevice(TESLA_M2090), cluster1_io,
            num_reducers=16, min_gpu_mem=app.min_gpu_mem,
        )
        with pytest.raises(GpuOutOfMemory):
            runner.run(b"1.0 2.0\n")

    def test_aggregation_off_slows_sort(self, cluster1_io):
        app = get_app("WC")
        split = app.generate(400, seed=2).encode()
        on = GpuTaskRunner(app.translate_map(), app.translate_combine(),
                           GpuDevice(CLUSTER1.gpu), cluster1_io, 4)
        off_opt = OptimizationFlags.all_on().but(kv_aggregation=False)
        off = GpuTaskRunner(app.translate_map(off_opt),
                            app.translate_combine(off_opt),
                            GpuDevice(CLUSTER1.gpu), cluster1_io, 4)
        sort_on = on.run(split).breakdown.sort
        sort_off = off.run(split).breakdown.sort
        assert sort_off > sort_on  # Fig. 7e direction

    def test_map_translation_required(self, cluster1_io):
        app = get_app("WC")
        with pytest.raises(GpuError):
            GpuTaskRunner(app.translate_combine(), None,
                          GpuDevice(CLUSTER1.gpu), cluster1_io, 4)


class TestGpuDriver:
    def test_runs_on_free_device(self):
        driver = GpuDriver([GpuDevice(CLUSTER1.gpu, device_id=0),
                            GpuDevice(CLUSTER1.gpu, device_id=1)])
        completion = driver.run_task("t1", lambda dev: "ok",
                                     seconds_of=lambda r: 1.0)
        assert completion.succeeded and completion.result == "ok"

    def test_one_task_per_gpu(self):
        driver = GpuDriver([GpuDevice(CLUSTER1.gpu)])
        state = driver.threads[0]
        state.busy = True
        with pytest.raises(GpuError, match="busy"):
            driver.run_task("t", lambda dev: None)

    def test_failure_contained_and_device_revived(self):
        device = GpuDevice(CLUSTER1.gpu)
        device.memory.malloc(1 * GB, "leak")
        driver = GpuDriver([device])

        def crash(dev):
            raise GpuError("kernel fault")

        completion = driver.run_task("t-fail", crash)
        assert not completion.succeeded
        assert "kernel fault" in completion.error
        # §5.1: the failed GPU is revived so future tasks can be issued.
        assert device.memory.used == 0
        assert driver.threads[0].restarts == 1
        ok = driver.run_task("t-next", lambda dev: 42)
        assert ok.succeeded

    def test_completion_log_kept(self):
        driver = GpuDriver([GpuDevice(CLUSTER1.gpu)])
        driver.run_task("a", lambda dev: 1)
        driver.run_task("b", lambda dev: 2)
        assert [c.task_id for c in driver.completions] == ["a", "b"]

    def test_no_devices_rejected(self):
        with pytest.raises(GpuError):
            GpuDriver([])
