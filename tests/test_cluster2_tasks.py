"""Cluster2 single-task sanity: Fermi parts and weaker Xeons shift both
sides of the ratio; the compute-intensity ordering must survive."""

import pytest

from repro.config import CLUSTER1, CLUSTER2
from repro.experiments.calibrate import single_task_times


class TestCluster2Calibration:
    def test_m2090_kernel_slower_than_k40(self):
        # Whole-task times can FALL on Cluster2 (in-memory IO), so compare
        # the map *kernel* stage, where the Fermi part's weaker throughput
        # must show.
        for app in ("WC", "CL", "BS"):
            c1 = single_task_times(app, CLUSTER1)
            c2 = single_task_times(app, CLUSTER2)
            assert c2.gpu_breakdown.map > c1.gpu_breakdown.map

    def test_ordering_survives_on_cluster2(self):
        from repro.scenarios import PAPER_APP_ORDER

        order = PAPER_APP_ORDER
        speedups = []
        for app in order:
            if app == "KM":
                continue  # NA on Cluster2 (memory floor applies elsewhere)
            speedups.append(single_task_times(app, CLUSTER2).gpu_speedup)
        # Strictness relaxed: Cluster2's in-memory IO reshuffles the
        # IO-intensive apps, but compute-intensive still dominate.
        assert max(speedups) in speedups[-2:]          # CL or BS on top
        assert min(speedups[-2:]) > max(speedups[:3])  # CL/BS > GR/HS/WC

    def test_in_memory_io_lifts_io_apps(self):
        """Cluster2's RAM-backed storage makes IO-intensive tasks less
        IO-bound (paper §7.3's explanation for larger C2 speedups)."""
        c1 = single_task_times("GR", CLUSTER1)
        c2 = single_task_times("GR", CLUSTER2)
        share1 = c1.gpu_breakdown.input_read / c1.gpu_breakdown.total
        share2 = c2.gpu_breakdown.input_read / c2.gpu_breakdown.total
        assert share2 < share1

    def test_scaled_durations_positive(self):
        for app in ("HS", "LR", "BS"):
            cpu_s, gpu_s = single_task_times(app, CLUSTER2).scaled(60.0)
            assert cpu_s == 60.0 and 0 < gpu_s < 60.0
