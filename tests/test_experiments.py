"""Experiment harness tests: tables regenerate, figure engines produce the
paper's qualitative shapes at test scale."""

import pytest

from repro.config import CLUSTER1, OptimizationFlags
from repro.experiments import figures, report, tables
from repro.experiments.calibrate import single_task_times


class TestTables:
    def test_table1_matches_paper_catalogue(self):
        rows = tables.table1()
        names = [r["clause"] for r in rows]
        assert names[:2] == ["mapper", "combiner"]
        assert "kvpairs" in names and "texture" in names
        assert len(rows) == 14  # 2 directives + 12 clauses

    def test_table2_rows_and_na(self):
        rows = tables.table2()
        assert len(rows) == 8
        km = next(r for r in rows if "KM" in r["benchmark"])
        assert km["map_tasks_c2"] == "NA" and km["input_gb_c2"] == "NA"
        bs = next(r for r in rows if "BS" in r["benchmark"])
        assert bs["reduce_tasks_c1"] == 0  # map-only

    def test_table2_task_counts_match_paper(self):
        rows = {r["benchmark"].split("(")[1][:2]: r for r in tables.table2()}
        assert rows["GR"]["map_tasks_c1"] == 7632
        assert rows["WC"]["map_tasks_c1"] == 5760
        assert rows["BS"]["map_tasks_c2"] == 5120

    def test_table3_two_clusters(self):
        rows = tables.table3()
        assert [r["name"] for r in rows] == ["Cluster1", "Cluster2"]
        assert rows[0]["nodes"] == "48 (+1 master)"
        assert rows[1]["disk"] == "none"

    def test_render_table_smoke(self):
        text = report.render_table(tables.table3(), "Table 3")
        assert "Cluster1" in text and "Cluster2" in text


class TestFig5:
    def test_subset_shape(self):
        points = figures.fig5(apps=["GR", "BS"])
        by_app = {p.app: p for p in points}
        # BS is the most compute-intensive: far larger task speedup.
        assert by_app["BS"].optimized_speedup > 5 * by_app["GR"].optimized_speedup

    def test_optimizations_never_hurt(self):
        for p in figures.fig5(apps=["WC", "KM"]):
            assert p.optimized_speedup >= p.baseline_speedup

    def test_render(self):
        text = report.render_fig5(figures.fig5(apps=["WC"]))
        assert "WC" in text


class TestFig6:
    def test_fractions_sum_to_one(self):
        for app, frac in figures.fig6(apps=["WC", "BS"]).items():
            assert sum(frac.values()) == pytest.approx(1.0)

    def test_paper_shapes(self):
        frac = figures.fig6(apps=["WC", "BS", "KM"])
        # WC: sort is the heavyweight (long string keys).
        assert frac["WC"]["sort"] > 1.5 * frac["WC"]["map"]
        # BS: output write dominates (map-only HDFS write, §7.4).
        assert frac["BS"]["output_write"] == max(frac["BS"].values())
        # Aggregation is negligible everywhere (Fig. 6 note).
        for app in frac:
            assert frac[app]["aggregate"] < 0.05

    def test_trace_derived_breakdown_equals_pipeline_breakdown(self):
        # Fig. 6 reads its seconds from trace spans; they must match the
        # pipeline's reported GpuTaskBreakdown *exactly* — a drift means
        # the phase spans no longer mirror the charged stage times.
        from repro.experiments.calibrate import (
            gpu_breakdown_from_trace,
            single_task_times,
        )

        for app in ("WC", "BS", "KM"):
            reported = single_task_times(app).gpu_breakdown.as_dict()
            traced = gpu_breakdown_from_trace(app)
            assert traced == reported


class TestFig7:
    def test_texture_ablation_direction(self):
        points = figures.fig7(subfigure="7a")
        assert {p.app for p in points} == {"KM", "CL"}
        for p in points:
            assert p.speedup > 1.0

    def test_aggregation_ablation_large(self):
        points = figures.fig7(subfigure="7e")
        assert max(p.speedup for p in points) > 2.0

    def test_render(self):
        text = report.render_fig7(figures.fig7(subfigure="7a"))
        assert "use_texture" in text


class TestCalibration:
    def test_cached_and_deterministic(self):
        a = single_task_times("WC", CLUSTER1)
        b = single_task_times("WC", CLUSTER1)
        assert a is b  # lru cache

    def test_scaling_preserves_ratio(self):
        t = single_task_times("WC", CLUSTER1)
        cpu, gpu = t.scaled(target_cpu_seconds=60.0)
        assert cpu == 60.0
        assert cpu / gpu == pytest.approx(t.gpu_speedup)

    def test_fig5_ordering_io_below_compute(self):
        io_apps = [single_task_times(s, CLUSTER1).gpu_speedup
                   for s in ("GR", "HS")]
        compute = [single_task_times(s, CLUSTER1).gpu_speedup
                   for s in ("CL", "BS")]
        assert max(io_apps) < min(compute)


class TestFig4SmallScale:
    def test_one_point_runs(self):
        points = figures.fig4(CLUSTER1, gpus_options=[1], apps=["WC"],
                              task_scale=0.1)
        assert len(points) == 2  # gpu-first + tail
        for p in points:
            assert p.speedup > 0.5
        text = report.render_fig4(points, "subset")
        assert "WC" in text

    def test_km_skipped_on_cluster2(self):
        from repro.config import CLUSTER2

        points = figures.fig4(CLUSTER2, gpus_options=[1], apps=["KM"],
                              task_scale=0.1)
        assert points == []  # Table 2 NA + GPU memory floor

    def test_geometric_mean(self):
        assert figures.geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
