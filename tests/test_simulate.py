"""Cluster simulator integration tests (Fig. 4 machinery)."""

import pytest

from repro.config import CLUSTER1, CLUSTER2
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.shuffle import estimate_reduce_phase
from repro.costmodel.io import IoModel
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


def small_job(**kw):
    defaults = dict(
        name="t", num_map_tasks=400, num_reduce_tasks=4, cluster=CLUSTER1,
        cpu_task_seconds=60.0, gpu_task_seconds=10.0,
    )
    defaults.update(kw)
    return JobConf(**defaults)


class TestBasicRuns:
    def test_all_tasks_complete(self):
        result = ClusterSimulator(small_job(), CpuOnlyPolicy()).run()
        assert result.cpu_tasks == 400 and result.gpu_tasks == 0

    def test_gpu_first_uses_gpus(self):
        result = ClusterSimulator(small_job(), GpuFirstPolicy()).run()
        assert result.gpu_tasks > 0
        assert result.cpu_tasks + result.gpu_tasks == 400

    def test_heterogeneous_beats_cpu_only(self):
        job = small_job(num_map_tasks=4000)
        base = ClusterSimulator(job, CpuOnlyPolicy()).run()
        het = ClusterSimulator(job, GpuFirstPolicy()).run()
        assert het.job_seconds < base.job_seconds

    def test_determinism(self):
        job = small_job()
        a = ClusterSimulator(job, GpuFirstPolicy()).run()
        b = ClusterSimulator(job, GpuFirstPolicy()).run()
        assert a.job_seconds == b.job_seconds

    def test_seed_changes_outcome_slightly(self):
        a = ClusterSimulator(small_job(seed=1), CpuOnlyPolicy()).run()
        b = ClusterSimulator(small_job(seed=2), CpuOnlyPolicy()).run()
        assert a.job_seconds != b.job_seconds
        assert abs(a.job_seconds - b.job_seconds) / a.job_seconds < 0.25

    def test_data_locality_mostly_achieved(self):
        result = ClusterSimulator(small_job(num_map_tasks=2000),
                                  CpuOnlyPolicy()).run()
        assert result.data_local_fraction > 0.5

    def test_map_only_job_has_no_reduce_phase(self):
        result = ClusterSimulator(small_job(num_reduce_tasks=0),
                                  CpuOnlyPolicy()).run()
        assert result.reduce_phase_seconds == 0.0

    def test_timeline_covers_all_tasks(self):
        result = ClusterSimulator(small_job(), GpuFirstPolicy()).run()
        assert len(result.timeline) == 400


class TestTailVsGpuFirst:
    def test_tail_wins_at_high_speedup(self):
        # taskTail (1 x 40) exceeds the 20 CPU slots per node: the regime
        # where the final wave matters (BS-like, Fig. 4a).
        job = small_job(num_map_tasks=3600, gpu_task_seconds=1.5)
        gf = ClusterSimulator(job, GpuFirstPolicy()).run()
        tail = ClusterSimulator(job, TailPolicy()).run()
        assert tail.forced_gpu_tasks > 0
        assert tail.job_seconds <= gf.job_seconds * 1.02

    def test_tail_harmless_at_low_speedup(self):
        # LR-on-Cluster1 case: no tail imbalance arises, tail ≈ GPU-first.
        job = small_job(num_map_tasks=2000, gpu_task_seconds=45.0)
        gf = ClusterSimulator(job, GpuFirstPolicy()).run()
        tail = ClusterSimulator(job, TailPolicy()).run()
        assert tail.job_seconds <= gf.job_seconds * 1.05

    def test_multi_gpu_scales(self):
        base = None
        for gpus in (1, 2, 3):
            job = JobConf(name="t", num_map_tasks=3200, num_reduce_tasks=16,
                          cluster=CLUSTER2.with_gpus(gpus),
                          cpu_task_seconds=60.0, gpu_task_seconds=6.0)
            result = ClusterSimulator(job, TailPolicy()).run()
            if base is not None:
                assert result.map_phase_seconds <= base * 1.05
            base = result.map_phase_seconds


class TestFaultTolerance:
    def test_failed_tasks_rescheduled_and_job_completes(self):
        from repro.hadoop.simulate import TaskDurationModel

        job = small_job(num_map_tasks=300)
        durations = TaskDurationModel(
            cpu_seconds=60.0, gpu_seconds=10.0, failure_rate=0.05, seed=3
        )
        sim = ClusterSimulator(job, GpuFirstPolicy(), durations=durations)
        result = sim.run()
        assert result.failures > 0
        assert result.cpu_tasks + result.gpu_tasks == 300

    def test_failures_lengthen_job(self):
        from repro.hadoop.simulate import TaskDurationModel

        job = small_job(num_map_tasks=1000)
        clean = ClusterSimulator(job, CpuOnlyPolicy()).run()
        flaky = ClusterSimulator(
            job, CpuOnlyPolicy(),
            durations=TaskDurationModel(60.0, 10.0, failure_rate=0.10, seed=3),
        ).run()
        assert flaky.job_seconds > clean.job_seconds


class TestReducePhase:
    def test_scaled_by_output_volume(self):
        io = IoModel.for_cluster(CLUSTER1)
        small = estimate_reduce_phase(small_job(map_output_bytes=1e6), io)
        large = estimate_reduce_phase(small_job(map_output_bytes=1e8), io)
        assert large.total > small.total

    def test_map_only_is_free(self):
        io = IoModel.for_cluster(CLUSTER1)
        assert estimate_reduce_phase(small_job(num_reduce_tasks=0), io).total == 0.0

    def test_reduce_waves(self):
        io = IoModel.for_cluster(CLUSTER1)
        one_wave = estimate_reduce_phase(small_job(num_reduce_tasks=48), io)
        two_waves = estimate_reduce_phase(small_job(num_reduce_tasks=100), io)
        assert two_waves.total > one_wave.total
