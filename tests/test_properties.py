"""Property-based tests (hypothesis) on core data structures and
invariants: the partitioner, SequenceFile codec, KV store + aggregation,
interpreter arithmetic vs Python semantics, printf/scanf round trips, the
record locator, and input splitting."""

import math

from hypothesis import given, settings, strategies as st

from repro.config import TESLA_K40
from repro.kvstore import GlobalKVStore, Partitioner, aggregate
from repro.minic import parse
from repro.minic.interpreter import run_filter
from repro.minic.stdlib import InputStream, c_format
from repro.runtime.records import locate_records
from repro.runtime.seqfile import SequenceFileReader, SequenceFileWriter

keys = st.one_of(
    st.text(min_size=0, max_size=40),
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
values = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
)


class TestPartitionerProperties:
    @given(key=keys, parts=st.integers(min_value=1, max_value=64))
    def test_partition_in_range(self, key, parts):
        assert 0 <= Partitioner(parts).partition(key) < parts

    @given(key=keys)
    def test_deterministic(self, key):
        p = Partitioner(16)
        assert p.partition(key) == p.partition(key)


class TestSeqFileProperties:
    @given(pairs=st.lists(st.tuples(keys, values), max_size=60))
    @settings(max_examples=60)
    def test_round_trip(self, pairs):
        writer = SequenceFileWriter()
        writer.extend(pairs)
        back = SequenceFileReader(writer.finish()).read_all()
        assert len(back) == len(pairs)
        for (k1, v1), (k2, v2) in zip(pairs, back):
            assert k1 == k2 or (isinstance(k1, float) and
                                math.isclose(k1, k2, rel_tol=1e-6))
            assert v1 == v2 or (isinstance(v1, float) and
                                math.isclose(v1, v2, rel_tol=1e-6))


class TestKVStoreProperties:
    @given(
        emissions=st.lists(
            st.tuples(st.integers(0, 7), st.text(max_size=8),
                      st.integers(0, 3)),
            max_size=80,
        )
    )
    def test_aggregation_preserves_every_pair(self, emissions):
        store = GlobalKVStore(total_threads=8, capacity_pairs=8 * 100,
                              key_length=8, value_length=4)
        for tid, key, part in emissions:
            store.emit(tid, key, 1, part)
        result = aggregate(store, num_partitions=4)
        collected = sorted(
            (p.key, p.partition)
            for part in range(4)
            for p in result.partition_list(part)
        )
        expected = sorted((key, part) for _tid, key, part in emissions)
        assert collected == expected
        assert result.span_after == len(emissions)

    @given(st.lists(st.integers(0, 3), max_size=50))
    def test_whitespace_plus_emitted_equals_capacity(self, tids):
        store = GlobalKVStore(total_threads=4, capacity_pairs=4 * 60,
                              key_length=4, value_length=4)
        for tid in tids:
            store.emit(tid, tid, tid, 0)
        assert store.emitted_pairs + store.whitespace_slots == 240


class TestInterpreterArithmeticProperties:
    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
    @settings(max_examples=40)
    def test_c_division_matches_trunc(self, a, b):
        if b == 0:
            return
        src = f'int main() {{ printf("%d", {a} / ({b})); return 0; }}'
        out, _ = run_filter(parse(src), "")
        assert int(out) == int(a / b)  # trunc toward zero

    @given(a=st.integers(0, 10**6), b=st.integers(1, 10**4))
    @settings(max_examples=40)
    def test_mod_identity(self, a, b):
        src = (f'int main() {{ printf("%d", ({a} / {b}) * {b} + {a} % {b}); '
               "return 0; }")
        out, _ = run_filter(parse(src), "")
        assert int(out) == a

    @given(x=st.floats(min_value=-1e6, max_value=1e6,
                       allow_nan=False, allow_infinity=False))
    @settings(max_examples=40)
    def test_float_passthrough(self, x):
        src = f'int main() {{ printf("%.6f", {x!r}); return 0; }}'
        out, _ = run_filter(parse(src), "")
        assert math.isclose(float(out), x, rel_tol=1e-5, abs_tol=1e-5)


class TestScanfPrintfProperties:
    @given(vals=st.lists(st.integers(-10**6, 10**6), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_printf_scanf_int_round_trip(self, vals):
        text = " ".join(str(v) for v in vals)
        stream = InputStream(text)
        got = []
        while True:
            v = stream.read_int()
            if v is None:
                break
            got.append(v)
        assert got == vals

    @given(word=st.text(
        alphabet=st.characters(whitelist_categories=["Ll", "Lu", "Nd"]),
        min_size=1, max_size=12))
    @settings(max_examples=40)
    def test_format_then_tokenize(self, word):
        rendered = c_format("%s\t%d\n", [word, 7])
        stream = InputStream(rendered)
        assert stream.read_token() == word
        assert stream.read_int() == 7


class TestRecordLocatorProperties:
    @given(lines=st.lists(
        st.binary(min_size=1, max_size=30).filter(lambda b: b"\n" not in b),
        max_size=40,
    ))
    @settings(max_examples=60)
    def test_every_nonempty_line_is_a_record(self, lines):
        data = b"\n".join(lines) + (b"\n" if lines else b"")
        loc = locate_records(data, TESLA_K40)
        assert loc.records == [l for l in lines if l]

    @given(data=st.binary(max_size=300))
    @settings(max_examples=60)
    def test_records_reassemble_input_bytes(self, data):
        loc = locate_records(data, TESLA_K40)
        # Concatenating records + separators never invents bytes.
        assert sum(len(r) for r in loc.records) <= len(data)
        for rec, off in zip(loc.records, loc.offsets):
            assert data[off : off + len(rec)] == rec


class TestSplitProperties:
    @given(records=st.integers(1, 120), split_kb=st.integers(1, 32))
    @settings(max_examples=30, deadline=2000)
    def test_splits_reassemble_and_respect_boundaries(self, records, split_kb):
        from repro.apps import get_app
        from repro.hadoop.local import LocalJobRunner

        app = get_app("WC")
        text = app.generate(records, seed=3)
        runner = LocalJobRunner(app, use_gpu=False,
                                split_bytes=split_kb * 1024)
        splits = runner.make_splits(text)
        assert b"".join(splits) == text.encode()
        for split in splits[:-1]:
            assert split.endswith(b"\n")  # records never torn
