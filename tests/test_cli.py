"""CLI tests (``python -m repro ...``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_translate_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["translate"])


class TestCommands:
    def test_apps_lists_every_registry_app(self, capsys):
        from repro.scenarios import APP_ORDER

        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for tag in APP_ORDER:
            assert tag in out

    def test_translate_app(self, capsys):
        assert main(["translate", "--app", "WC"]) == 0
        out = capsys.readouterr().out
        assert "__global__ void gpu_mapper" in out
        assert "Algorithm 1" in out

    def test_translate_file(self, tmp_path, capsys):
        src = tmp_path / "map.c"
        src.write_text("""
int main() {
    char *line; size_t n; int read, k, v;
    n = 64; line = (char*) malloc(64);
    #pragma mapreduce mapper key(k) value(v)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        k = 1; v = 1; printf("%d\\t%d\\n", k, v);
    }
    return 0;
}
""")
        assert main(["translate", "--file", str(src)]) == 0
        assert "gpu_mapper" in capsys.readouterr().out

    def test_run_small_job(self, capsys):
        assert main(["run", "HS", "--records", "80", "--split-kb", "8"]) == 0
        out = capsys.readouterr().out
        assert "map tasks" in out and "final keys" in out

    def test_run_cpu_only(self, capsys):
        assert main(["run", "HS", "--records", "50", "--cpu-only"]) == 0
        assert "CPU (Hadoop Streaming)" in capsys.readouterr().out

    def test_experiment_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "kvpairs" in capsys.readouterr().out

    def test_experiment_fig3(self, capsys):
        assert main(["experiment", "fig3"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["experiment", "fig99"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_app_fails_cleanly(self, capsys):
        assert main(["run", "XX"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_local_writes_valid_json(self, tmp_path, capsys):
        import json

        from repro import obs

        out = tmp_path / "t.json"
        assert main(["trace", "HS", "--records", "80", "--split-kb", "8",
                     "-o", str(out)]) == 0
        trace = json.loads(out.read_text())
        assert obs.validate_trace(trace) == []
        assert "chrome://tracing" in capsys.readouterr().err

    def test_stats_prints_span_and_counter_totals(self, capsys):
        assert main(["stats", "HS", "--records", "60",
                     "--split-kb", "8"]) == 0
        out = capsys.readouterr().out
        assert "spans by category" in out
        assert "gpu-task" in out
        assert "gpu.kernel_launches" in out

    def test_stats_simulate_mode(self, capsys):
        assert main(["stats", "WC", "--mode", "simulate",
                     "--policy", "tail", "--task-scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "attempt" in out
        assert "sim.heartbeats" in out

    def test_stats_reports_reduce_breakdown(self, capsys):
        assert main(["stats", "WC", "--records", "120",
                     "--split-kb", "2", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "reduce phase:" in out
        assert "critical path" in out
        assert "reduce.tasks" in out

    def test_bench_reduce_path(self, capsys):
        assert main(["bench", "--path", "reduce", "--apps", "TS",
                     "--records", "400", "--repeat", "1"]) == 0
        out = capsys.readouterr().out
        assert "merge speedup" in out
        assert "rw=4" in out

    def test_bench_reduce_gate_fails_when_unmet(self, capsys):
        rc = main(["bench", "--path", "reduce", "--apps", "TS",
                   "--records", "400", "--repeat", "1",
                   "--min-merge-speedup", "1000"])
        assert rc == 1
        assert "--min-merge-speedup" in capsys.readouterr().err

    def test_bench_baseline_guard(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps({
            "results": [{"app": "WC", "speedup": 1000.0}]
        }))
        rc = main(["bench", "--apps", "WC", "--path", "cpu",
                   "--records", "120", "--repeat", "1",
                   "--baseline", str(baseline), "--tolerance", "0.05"])
        assert rc == 1
        assert "drifted" in capsys.readouterr().err
