"""Event loop, task state machine, JobTracker/TaskTracker protocol tests."""

import pytest

from repro.errors import HadoopError
from repro.hadoop.events import EventLoop
from repro.hadoop.heartbeat import Heartbeat
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.tasks import MapTask, NodeStats, SlotKind, TaskState
from repro.hadoop.tasktracker import TaskTracker
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


class TestEventLoop:
    def test_events_fire_in_time_order(self):
        loop, seen = EventLoop(), []
        loop.schedule(2.0, lambda: seen.append("b"))
        loop.schedule(1.0, lambda: seen.append("a"))
        loop.schedule(3.0, lambda: seen.append("c"))
        loop.run()
        assert seen == ["a", "b", "c"]

    def test_ties_break_by_insertion(self):
        loop, seen = EventLoop(), []
        loop.schedule(1.0, lambda: seen.append(1))
        loop.schedule(1.0, lambda: seen.append(2))
        loop.run()
        assert seen == [1, 2]

    def test_nested_scheduling(self):
        loop, seen = EventLoop(), []
        loop.schedule(1.0, lambda: loop.schedule(1.0, lambda: seen.append("x")))
        loop.run()
        assert seen == ["x"] and loop.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(HadoopError):
            EventLoop().schedule(-1, lambda: None)

    def test_event_budget_guards_livelock(self):
        loop = EventLoop()

        def rearm():
            loop.schedule(0.1, rearm)

        loop.schedule(0.0, rearm)
        with pytest.raises(HadoopError, match="budget"):
            loop.run(max_events=100)


class TestMapTaskLifecycle:
    def test_assign_complete(self):
        t = MapTask(task_id=0, split_index=0, preferred_nodes=(1, 2))
        t.assign(node=1, now=5.0)
        assert t.state is TaskState.RUNNING and t.data_local
        t.complete(now=8.0)
        assert t.state is TaskState.COMPLETED and t.duration == 3.0

    def test_non_local_assignment(self):
        t = MapTask(task_id=0, split_index=0, preferred_nodes=(1,))
        t.assign(node=5, now=0.0)
        assert not t.data_local

    def test_fail_and_retry(self):
        t = MapTask(task_id=0, split_index=0)
        t.assign(0, 0.0)
        t.fail(1.0)
        t.reset_for_retry()
        assert t.state is TaskState.PENDING and t.attempts == 1
        t.assign(1, 2.0)
        assert t.attempts == 2

    def test_double_assign_rejected(self):
        t = MapTask(task_id=0, split_index=0)
        t.assign(0, 0.0)
        with pytest.raises(HadoopError):
            t.assign(1, 0.0)

    def test_ave_speedup_requires_both_kinds(self):
        stats = NodeStats()
        assert stats.ave_speedup == 1.0
        stats.record(SlotKind.CPU, 60.0)
        assert stats.ave_speedup == 1.0  # still no GPU sample
        stats.record(SlotKind.GPU, 10.0)
        assert stats.ave_speedup == pytest.approx(6.0)


def make_jt(n_tasks=20, policy=None, slaves=4, gpus=1):
    tasks = [MapTask(task_id=i, split_index=i, preferred_nodes=(i % slaves,))
             for i in range(n_tasks)]
    return JobTracker(tasks=tasks, policy=policy or GpuFirstPolicy(),
                      num_slaves=slaves, gpus_per_node=gpus)


class TestJobTracker:
    def hb(self, node=0, cpu=2, gpu=1, speedup=1.0):
        return Heartbeat(node=node, free_cpu_slots=cpu, free_gpu_slots=gpu,
                         running_tasks=0, ave_gpu_speedup=speedup)

    def test_grants_up_to_free_slots(self):
        jt = make_jt()
        resp = jt.handle_heartbeat(self.hb(cpu=3, gpu=1))
        assert len(resp.task_ids) == 4

    def test_data_local_tasks_preferred(self):
        jt = make_jt(slaves=4)
        resp = jt.handle_heartbeat(self.hb(node=2, cpu=2, gpu=0))
        granted = [jt.get_task(t) for t in resp.task_ids]
        assert all(2 in t.preferred_nodes for t in granted)

    def test_no_duplicate_grants(self):
        jt = make_jt(n_tasks=6)
        seen = set()
        for node in range(4):
            resp = jt.handle_heartbeat(self.hb(node=node, cpu=2, gpu=0))
            assert seen.isdisjoint(resp.task_ids)
            seen.update(resp.task_ids)
        assert len(seen) == 6
        assert jt.pending_maps == 0

    def test_remaining_counts_running(self):
        jt = make_jt(n_tasks=10)
        jt.handle_heartbeat(self.hb(cpu=5, gpu=0))
        assert jt.pending_maps == 5
        assert jt.remaining_maps == 10  # granted ones still incomplete

    def test_max_speedup_remembered(self):
        jt = make_jt()
        jt.handle_heartbeat(self.hb(speedup=3.0))
        jt.handle_heartbeat(self.hb(speedup=7.5))
        jt.handle_heartbeat(self.hb(speedup=2.0))
        assert jt.max_speedup == 7.5

    def test_failed_task_rescheduled(self):
        jt = make_jt(n_tasks=2)
        resp = jt.handle_heartbeat(self.hb(cpu=2, gpu=0))
        task = jt.get_task(resp.task_ids[0])
        task.assign(0, 0.0)
        task.fail(1.0)
        jt.task_failed(task)
        assert jt.pending_maps >= 1
        resp2 = jt.handle_heartbeat(self.hb(node=1, cpu=2, gpu=0))
        assert task.task_id in resp2.task_ids

    def test_too_many_failures_aborts(self):
        jt = make_jt(n_tasks=1)
        task = jt.get_task(0)
        task.attempts = 4
        task.state = TaskState.FAILED
        with pytest.raises(HadoopError, match="aborted"):
            jt.task_failed(task)


class TestTaskTracker:
    def make_tt(self, policy=None, cpu_slots=2, gpus=1):
        return TaskTracker(node=0, cpu_slots=cpu_slots, num_gpus=gpus,
                           policy=policy or GpuFirstPolicy())

    def test_gpu_first_placement(self):
        tt = self.make_tt()
        t0 = MapTask(task_id=0, split_index=0)
        assert tt.place(t0) is SlotKind.GPU
        t1 = MapTask(task_id=1, split_index=1)
        assert tt.place(t1) is SlotKind.CPU  # GPU busy now

    def test_cpu_only_policy_hides_gpus(self):
        tt = self.make_tt(policy=CpuOnlyPolicy())
        assert tt.num_gpus == 0
        t = MapTask(task_id=0, split_index=0)
        assert tt.place(t) is SlotKind.CPU

    def test_slot_freed_on_completion(self):
        tt = self.make_tt()
        t = MapTask(task_id=0, split_index=0)
        tt.place(t)
        assert tt.busy_gpus == 1
        tt.task_done(t, 5.0)
        assert tt.busy_gpus == 0
        assert tt.stats.gpu_tasks == 1

    def test_forced_task_queues_when_gpu_busy(self):
        tt = self.make_tt(policy=TailPolicy())
        tt.stats.record(SlotKind.CPU, 60.0)
        tt.stats.record(SlotKind.GPU, 10.0)  # speedup 6
        tt.maps_remaining_per_node = 2.0      # within the tail
        first = MapTask(task_id=0, split_index=0)
        assert tt.place(first) is SlotKind.GPU
        second = MapTask(task_id=1, split_index=1)
        assert tt.place(second) is SlotKind.GPU
        assert tt.waiting_on_gpu == 1
        drained = tt.queued_gpu_task()
        assert drained is None  # device still busy
        tt.task_done(first, 10.0)
        assert tt.queued_gpu_task() is second

    def test_heartbeat_reports_net_gpu_capacity(self):
        tt = self.make_tt(policy=TailPolicy())
        tt.stats.record(SlotKind.CPU, 60.0)
        tt.stats.record(SlotKind.GPU, 10.0)
        tt.maps_remaining_per_node = 1.0
        tt.place(MapTask(task_id=0, split_index=0))
        tt.place(MapTask(task_id=1, split_index=1))  # queued
        hb = tt.make_heartbeat()
        assert hb.free_gpu_slots == 0
