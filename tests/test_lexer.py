"""Tokenizer tests."""

import pytest

from repro.errors import LexError
from repro.minic.lexer import Token, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "eof"]


def values(source):
    return [t.value for t in tokenize(source) if t.kind != "eof"]


class TestBasics:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == "eof"

    def test_identifier_and_keyword(self):
        toks = tokenize("int foo")
        assert toks[0].kind == "keyword" and toks[0].value == "int"
        assert toks[1].kind == "ident" and toks[1].value == "foo"

    def test_all_type_keywords_recognized(self):
        for kw in ["int", "char", "float", "double", "long", "void", "size_t"]:
            assert tokenize(kw)[0].kind == "keyword"

    def test_underscore_identifiers(self):
        assert tokenize("_foo_bar2")[0].value == "_foo_bar2"

    def test_line_numbers_advance(self):
        toks = tokenize("a\nb\nc")
        assert [t.line for t in toks[:3]] == [1, 2, 3]


class TestNumbers:
    def test_plain_int(self):
        tok = tokenize("42")[0]
        assert tok.kind == "int" and tok.value == "42"

    def test_hex_int(self):
        tok = tokenize("0xFF")[0]
        assert tok.kind == "int"

    def test_float_with_dot(self):
        assert tokenize("3.25")[0].kind == "float"

    def test_float_scientific(self):
        assert tokenize("1.0e30")[0].kind == "float"

    def test_float_f_suffix(self):
        assert tokenize("2.5f")[0].kind == "float"

    def test_int_long_suffix(self):
        assert tokenize("10L")[0].kind == "int"


class TestStringsAndChars:
    def test_string_literal(self):
        tok = tokenize('"hello world"')[0]
        assert tok.kind == "string" and tok.value == "hello world"

    def test_string_escapes(self):
        assert tokenize(r'"%s\t%d\n"')[0].value == "%s\t%d\n"

    def test_char_literal(self):
        tok = tokenize("'a'")[0]
        assert tok.kind == "char" and tok.value == "a"

    def test_escaped_char_literal(self):
        assert tokenize(r"'\0'")[0].value == "\0"
        assert tokenize(r"'\n'")[0].value == "\n"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"oops')


class TestOperators:
    def test_multichar_operators_win(self):
        assert values("a != b") == ["a", "!=", "b"]
        assert values("x += 1") == ["x", "+=", "1"]
        assert values("a && b || c") == ["a", "&&", "b", "||", "c"]

    def test_increment_vs_plus(self):
        assert values("i++ + ++j") == ["i", "++", "+", "++", "j"]

    def test_arrow_and_shift(self):
        assert "->" in values("p->x") and "<<" in values("a << 2")


class TestCommentsAndPreprocessor:
    def test_line_comment_stripped(self):
        assert values("a // comment\nb") == ["a", "b"]

    def test_block_comment_stripped(self):
        assert values("a /* x\ny */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never closed")

    def test_pragma_becomes_token(self):
        toks = tokenize("#pragma mapreduce mapper key(k) value(v)\nint x;")
        assert toks[0].kind == "pragma"
        assert "mapreduce" in toks[0].value

    def test_pragma_line_continuation_folded(self):
        src = "#pragma mapreduce mapper key(k) \\\n    value(v)\n"
        tok = tokenize(src)[0]
        assert tok.kind == "pragma"
        assert "key(k)" in tok.value and "value(v)" in tok.value

    def test_include_skipped(self):
        assert values("#include <stdio.h>\nint x;") == ["int", "x", ";"]

    def test_unknown_preprocessor_raises(self):
        with pytest.raises(LexError):
            tokenize("#error nope")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("int @x;")
