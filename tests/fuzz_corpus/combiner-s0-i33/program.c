int main()
{
    char word[16];
    char prevWord[16];
    int count;
    int val;
    int read;
    prevWord[0] = '\0';
    count = 0;
    #pragma mapreduce combiner key(prevWord) value(count) keyin(word) valuein(val) keylength(16) vallength(4) firstprivate(prevWord, count)
    {
        while ((read = scanf("%s %d", word, &val)) == 2) {
            if (strcmp(word, prevWord) == 0) {
                count += val;
            }
            else {
                if (prevWord[0] != '\0')
                    printf("%s\t%d\n", prevWord, count);
                strcpy(prevWord, word);
                count = val;
            }
        }
        if (prevWord[0] != '\0')
            printf("%s\t%d\n", prevWord, count);
    }
    return 0;
}
