int main()
{
    char word[24];
    char *line;
    size_t nbytes = 4096;
    int read;
    int linePtr;
    int offset;
    int one;
    line = (char*) malloc(nbytes*sizeof(char));
    one = 1;
    #pragma mapreduce mapper key(word) value(one) keylength(24) kvpairs(20)
    while ((read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        while ((linePtr = getWord(line, offset, word, read, 24)) != -1) {
            printf("%s\t%d\n", word, one);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
