int main()
{
    char word[30];
    char *line;
    size_t nbytes = 10000;
    int read;
    int linePtr;
    int offset;
    int val;
    int spin;
    double acc;
    int rr;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(val) keylength(30) kvpairs(20)
    while ((read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        while ((linePtr = getWord(line, offset, word, read, 30)) != -1) {
            val = strlen(word);
            spin = (abs(val) % 3);
            while (spin > 0) {
                val = (val + 1);
                spin = (spin - 1);
            }
            acc = 0.0;
            for (rr = 0; rr < 4; rr++) {
                acc = (acc + (rr * (0.25 * val)));
            }
            val = (val + (((int) acc) % 97));
            printf("%s\t%d\n", word, val);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
