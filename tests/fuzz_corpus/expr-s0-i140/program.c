int main()
{
    double d0;
    int v0;
    d0 = 1e200;
    d0 = (d0 * d0);
    v0 = (int) d0;
    printf("v0=%d\n", v0);
    return 0;
}
