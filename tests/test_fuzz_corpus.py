"""Fuzz corpus replay + minimized regressions for fuzzer-found bugs.

Every directory under ``tests/fuzz_corpus/`` is a minimized program that
once exposed a backend divergence (see each entry's ``meta.json`` for
the post-mortem). Replaying them through the full differential oracle on
every tier-1 run guarantees a fixed divergence can never silently
return. The targeted tests below pin each underlying fix directly, so a
regression fails with a precise message rather than a generic
divergence report.
"""

from __future__ import annotations

import pytest

from repro.apps.base import Application
from repro.config import CLUSTER1
from repro.errors import CRuntimeError
from repro.fuzz import load_corpus, run_case
from repro.gpu.device import GpuDevice
from repro.gpu.executor import run_combine_kernel
from repro.hadoop.local import LocalJobRunner
from repro.kvstore import KVPair
from repro.kvstore.coerce import coerce_pair, parse_kv_line
from repro.minic import parse
from repro.minic.interpreter import Interpreter, run_filter

CORPUS = load_corpus()
assert CORPUS, "tests/fuzz_corpus/ is empty — corpus entries are required"


def _entry(name: str):
    """Pin a regression to its exact corpus entry (not 'first of kind',
    which would silently repoint when new entries are added)."""
    return next(c for c in CORPUS if c.name == name)


@pytest.mark.parametrize("case", CORPUS, ids=[c.name for c in CORPUS])
def test_corpus_entry_conforms(case):
    """A persisted divergence must stay fixed: the full oracle is green."""
    divergence = run_case(case)
    assert divergence is None, divergence.report()


class TestGpuStreamingCoercion:
    """GPU task output must cross the textual shuffle wire exactly like
    CPU filter stdout does (fuzz case mapper-s0-i6)."""

    MAP_SOURCE = _entry("mapper-s0-i6").source
    INPUT = "42 alpha 42 007\nalpha 42 0 -3\n"

    def _app(self):
        return Application(
            name="fuzz-regression-wc",
            short="FZ",
            nature="IO",
            map_source=self.MAP_SOURCE,
            reduce_py=lambda key, values: [(key, sum(values))],
        )

    def test_gpu_job_matches_cpu_job(self):
        app = self._app()
        cpu = LocalJobRunner(app, use_gpu=False, split_bytes=512).run(self.INPUT)
        gpu = LocalJobRunner(app, use_gpu=True, split_bytes=512).run(self.INPUT)
        assert gpu.output == cpu.output

    def test_canonical_numeric_words_type_as_ints_on_both_paths(self):
        app = self._app()
        gpu = LocalJobRunner(app, use_gpu=True, split_bytes=512).run(self.INPUT)
        # "42"/"0"/"-3" are canonical integer text -> typed keys; "007"
        # is not canonical and must keep its text identity.
        assert gpu.output[42] == 3
        assert gpu.output[0] == 1
        assert gpu.output[-3] == 1
        assert gpu.output["007"] == 1
        assert "42" not in gpu.output

    def test_coerce_pair_round_trips_the_wire(self):
        assert coerce_pair("42", "1") == (42, 1)
        assert coerce_pair(42, 1) == (42, 1)
        assert coerce_pair("007", 1) == ("007", 1)
        assert coerce_pair("1.0", 2.5) == ("1.0", 2.5)
        assert coerce_pair(-3, "x") == (-3, "x")


class TestGetKVTextMarshalling:
    """getKV must deliver int keys to a char-array keyin as text, the way
    scanf %s reads the wire (fuzz case combiner-s0-i33)."""

    COMBINE_SOURCE = _entry("combiner-s0-i33").source

    def _run_kernel(self, pairs):
        from repro.compiler.translator import translate

        tr = translate(parse(self.COMBINE_SOURCE))
        kernel = tr.combine_kernel
        snapshot = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)
        return run_combine_kernel(GpuDevice(CLUSTER1.gpu), kernel, pairs,
                                  snapshot)

    def test_int_key_into_char_keyin_reads_as_text(self):
        launch = self._run_kernel([KVPair(42, 50, 0), KVPair(42, 48, 0),
                                   KVPair(-3, 12, 0), KVPair(-3, 14, 0)])
        totals = {}
        for k, v in launch.output:
            totals[k] = totals.get(k, 0) + v
        # Keys surface as the wire text ("42", "-3"), never chr(42).
        assert totals == {"42": 98, "-3": 26}

    def test_text_key_into_int_keyin_parses_numerically(self):
        source = """
int main()
{
    int prevKey, count, key, val, read, have;
    prevKey = 0; count = 0; have = 0;
    #pragma mapreduce combiner key(prevKey) value(count) \\
        keyin(key) valuein(val) firstprivate(prevKey, count, have)
    {
        while( (read = scanf("%d %d", &key, &val)) == 2 ) {
            if(have && key == prevKey) {
                count += val;
            } else {
                if(have)
                    printf("%d\\t%d\\n", prevKey, count);
                prevKey = key;
                count = val;
                have = 1;
            }
        }
        if(have)
            printf("%d\\t%d\\n", prevKey, count);
    }
    return 0;
}
"""
        from repro.compiler.translator import translate

        tr = translate(parse(source))
        kernel = tr.combine_kernel
        snapshot = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)
        launch = run_combine_kernel(GpuDevice(CLUSTER1.gpu), kernel,
                                    [KVPair("7", 1, 0), KVPair("7", 2, 0)],
                                    snapshot)
        assert sum(v for _k, v in launch.output) == 3


class TestNonFiniteCast:
    """(int) of inf/nan must trap as a CRuntimeError, identically in
    both backends (fuzz case expr-s0-i140)."""

    SOURCE = _entry("expr-s0-i140").source

    def test_both_backends_raise_identical_cruntimeerror(self):
        messages = {}
        for backend in ("tree", "compiled"):
            with pytest.raises(CRuntimeError) as exc_info:
                run_filter(parse(self.SOURCE), "", backend=backend)
            messages[backend] = str(exc_info.value)
        assert messages["tree"] == messages["compiled"]
        assert "non-finite" in messages["tree"]

    def test_nan_cast_also_traps(self):
        # inf - inf makes a NaN without tripping a math-domain error first.
        source = """
int main()
{
    double d;
    d = 1e200;
    d = (d * d);
    d = (d - d);
    printf("%d\\n", (int) d);
    return 0;
}
"""
        for backend in ("tree", "compiled"):
            with pytest.raises(CRuntimeError, match="non-finite"):
                run_filter(parse(source), "", backend=backend)


class TestCampaignDeterminism:
    def test_same_seed_same_digest(self, tmp_path):
        from repro.fuzz import run_campaign

        a = run_campaign(seed=7, count=10, shrink=False,
                         corpus_dir=tmp_path / "a")
        b = run_campaign(seed=7, count=10, shrink=False,
                         corpus_dir=tmp_path / "b")
        assert a.executed == b.executed == 10
        assert a.digest == b.digest
        assert a.ok and b.ok

    def test_different_seeds_differ(self, tmp_path):
        from repro.fuzz import run_campaign

        a = run_campaign(seed=7, count=5, shrink=False,
                         corpus_dir=tmp_path / "a")
        b = run_campaign(seed=8, count=5, shrink=False,
                         corpus_dir=tmp_path / "b")
        assert a.digest != b.digest

    def test_cli_fuzz_exit_zero_on_conformance(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["fuzz", "--seed", "3", "--count", "5", "--quiet",
                   "--corpus-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "OK" in out


class TestParseKvLineContract:
    """The coercion rules moved to kvstore.coerce; the public import
    path through hadoop.local must keep working with identical typing."""

    def test_reexport(self):
        from repro.hadoop import local
        from repro.kvstore import coerce

        assert local.parse_kv_line is coerce.parse_kv_line

    def test_typing_unchanged(self):
        assert parse_kv_line("7\t1") == (7, 1)
        assert parse_kv_line("007\t1") == ("007", 1)
        assert parse_kv_line("w\t2.5") == ("w", 2.5)
