"""Static-analysis tests: use/def sets, firstprivate detection."""

from repro.minic import parse
from repro.minic import cast as A
from repro.minic.semantics import (
    analyze_region,
    auto_firstprivate,
    collect_decl_names,
    collect_idents,
    declared_types,
    expr_value_reads,
)
from repro.minic import ctypes as T


def region_of(source: str) -> tuple[A.FunctionDef, A.Stmt]:
    prog = parse(source)
    func = prog.main
    region = next(s for s in func.body.walk()
                  if isinstance(s, A.Stmt) and s.pragma is not None)
    return func, region


class TestUseDefSets:
    def test_collect_idents(self):
        prog = parse("int main() { int a, b; a = b + 1; return a; }")
        assert {"a", "b"} <= collect_idents(prog.main.body)

    def test_collect_decl_names(self):
        prog = parse("int main() { int a; { char b[4]; } return 0; }")
        assert collect_decl_names(prog.main.body) == {"a", "b"}

    def test_declared_types_includes_params(self):
        prog = parse("int f(char *s, int n) { return n; }\nint main() { return 0; }")
        types = declared_types(prog.function("f"))
        assert types["s"] == T.Pointer(T.CHAR)
        assert types["n"] == T.INT

    def test_strong_vs_weak_writes(self):
        prog = parse(
            "int helper(char *p) { return 0; }\n"
            "int main() { int x; char buf[4]; x = 1; helper(buf); return 0; }"
        )
        info = analyze_region(prog.main.body)
        assert "x" in info.written_strong
        assert "buf" in info.written_weak
        assert "buf" not in info.written_strong

    def test_scanf_args_are_strong_writes(self):
        prog = parse('int main() { int v; char w[8]; scanf("%s %d", w, &v); return 0; }')
        info = analyze_region(prog.main.body)
        assert {"v", "w"} <= info.written_strong

    def test_getword_out_param(self):
        prog = parse(
            "int main() { char line[8]; char w[8]; int lp; "
            "lp = getWord(line, 0, w, 8, 8); return 0; }"
        )
        info = analyze_region(prog.main.body)
        assert "w" in info.written_strong
        # line is only read by getWord
        assert "line" not in info.written_strong


class TestExprValueReads:
    def parse_expr(self, text: str) -> A.Expr:
        prog = parse(f"int main() {{ {text}; return 0; }}")
        return prog.main.body.stmts[0].expr

    def test_plain_assignment_target_not_read(self):
        assert "x" not in expr_value_reads(self.parse_expr("x = y + 1"))

    def test_compound_assignment_target_read(self):
        assert "x" in expr_value_reads(self.parse_expr("x += y"))

    def test_address_of_not_a_read(self):
        reads = expr_value_reads(self.parse_expr("scanf(\"%d\", &v)"))
        assert "v" not in reads

    def test_index_target_base_read(self):
        reads = expr_value_reads(self.parse_expr("a[i] = 0"))
        assert {"a", "i"} <= reads


class TestAutoFirstprivate:
    def test_paper_mapper_has_no_firstprivate(self, wc_map_source):
        # In Listing 1 every region variable is written before read.
        func, region = region_of(wc_map_source)
        info = analyze_region(region)
        candidates = info.free_vars & info.written
        fp = auto_firstprivate(region, candidates)
        assert "one" not in fp
        assert "offset" not in fp
        assert "linePtr" not in fp

    def test_read_before_write_detected(self):
        src = """
int main() {
    int acc; acc = 5;
    int x;
    #pragma mapreduce mapper key(x) value(acc)
    while ( (x = scanf("%d", &x)) != -1 ) {
        acc = acc + x;
        printf("%d\\t%d\\n", x, acc);
    }
    return 0;
}
"""
        func, region = region_of(src)
        fp = auto_firstprivate(region, {"acc"})
        assert "acc" in fp

    def test_dominating_write_retires(self):
        src = """
int main() {
    int t; t = 0;
    int x;
    #pragma mapreduce mapper key(x) value(t)
    while ( (x = scanf("%d", &x)) != -1 ) {
        t = 1;
        printf("%d\\t%d\\n", x, t);
    }
    return 0;
}
"""
        func, region = region_of(src)
        assert auto_firstprivate(region, {"t"}) == set()

    def test_conditional_write_does_not_retire(self):
        src = """
int main() {
    int t; t = 0;
    int x;
    #pragma mapreduce mapper key(x) value(t)
    while ( (x = scanf("%d", &x)) != -1 ) {
        if (x > 0)
            t = 1;
        printf("%d\\t%d\\n", x, t);
    }
    return 0;
}
"""
        func, region = region_of(src)
        # t read (by printf) after a non-dominating write: firstprivate.
        assert auto_firstprivate(region, {"t"}) == {"t"}
