"""Speculative execution tests (Hadoop's straggler mitigation; Table 3
lists it — the paper ran with it Off, we implement the mechanism)."""

import pytest

from repro.config import CLUSTER1
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.simulate import TaskDurationModel
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy


def straggler_model(seed=5):
    """A handful of 4x-slower nodes create genuine stragglers."""
    return TaskDurationModel(
        cpu_seconds=60.0,
        gpu_seconds=10.0,
        node_speed_factors={n: 4.0 for n in range(4)},
        seed=seed,
    )


def job(num_maps=1200):
    return JobConf(name="spec", num_map_tasks=num_maps, num_reduce_tasks=4,
                   cluster=CLUSTER1, cpu_task_seconds=60.0,
                   gpu_task_seconds=10.0)


class TestSpeculation:
    def test_off_by_default_per_table3(self):
        sim = ClusterSimulator(job(200), CpuOnlyPolicy())
        assert not sim.speculative  # Table 3: Speculative Execution Off
        sim.run()
        assert sim.speculative_attempts == 0

    def test_speculation_launches_backups_for_stragglers(self):
        sim = ClusterSimulator(job(), CpuOnlyPolicy(),
                               durations=straggler_model(),
                               speculative=True)
        result = sim.run()
        assert sim.speculative_attempts > 0
        assert result.cpu_tasks + result.gpu_tasks == 1200

    def test_speculation_shortens_straggler_jobs(self):
        base = ClusterSimulator(job(), CpuOnlyPolicy(),
                                durations=straggler_model(),
                                speculative=False).run()
        spec_sim = ClusterSimulator(job(), CpuOnlyPolicy(),
                                    durations=straggler_model(),
                                    speculative=True)
        spec = spec_sim.run()
        assert spec.map_phase_seconds < base.map_phase_seconds

    def test_wasted_work_accounted(self):
        sim = ClusterSimulator(job(), CpuOnlyPolicy(),
                               durations=straggler_model(),
                               speculative=True)
        sim.run()
        if sim.speculative_attempts:
            # Losing attempts (either side) show up as wasted seconds.
            assert sim.wasted_speculation_seconds > 0

    def test_no_stragglers_no_speculation_effect(self):
        """On a homogeneous cluster nothing crosses the threshold."""
        plain = ClusterSimulator(job(400), CpuOnlyPolicy(),
                                 speculative=True)
        result = plain.run()
        assert result.cpu_tasks == 400
        assert plain.speculative_attempts <= 2  # jitter-only stragglers

    def test_all_tasks_complete_exactly_once(self):
        sim = ClusterSimulator(job(600), GpuFirstPolicy(),
                               durations=straggler_model(seed=9),
                               speculative=True)
        result = sim.run()
        assert result.cpu_tasks + result.gpu_tasks == 600
        assert len(result.timeline) == 600
