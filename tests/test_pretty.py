"""Printer tests: output re-parses to the same program (round-trip)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz.gen import KINDS, generate_source
from repro.minic import parse, pprint_program
from repro.minic.astcmp import ast_diff
from repro.minic.interpreter import run_filter


ROUND_TRIP_SOURCES = [
    "int main() { int a; a = 1 + 2 * 3; return a; }",
    "int main() { char s[8]; strcpy(s, \"hi\"); return strlen(s); }",
    "int main() { int i, s; s = 0; for (i = 0; i < 4; i++) s += i; return s; }",
    "int main() { int x; x = 5 > 3 ? 1 : 0; if (x) x = -x; else x = 2; return x; }",
    "int main() { double d; d = (double) 3; return (int) d; }",
    "int sq(int x) { return x * x; }\nint main() { return sq(4); }",
    "int main() { int a[3]; a[0] = 1; a[1] = a[0] << 2; return a[1] % 3; }",
    "int main() { int i; i = 0; while (1) { i++; if (i > 3) break; } return i; }",
    # '-' of a negated operand must not print as the '--' token.
    "int main() { int x; x = 2; x = - -~x; return - -x; }",
]


@pytest.mark.parametrize("source", ROUND_TRIP_SOURCES)
def test_round_trip_preserves_behaviour(source):
    """Printing then re-parsing must not change program semantics."""
    original = parse(source)
    printed = pprint_program(original)
    reparsed = parse(printed)
    out1, _ = run_filter(original, "")
    out2, _ = run_filter(reparsed, "")
    assert out1 == out2


def test_round_trip_is_stable():
    """print(parse(print(p))) == print(p) — idempotent after one pass."""
    prog = parse(ROUND_TRIP_SOURCES[2])
    once = pprint_program(prog)
    twice = pprint_program(parse(once))
    assert once == twice


def test_pragma_preserved_in_output(wc_map_source):
    printed = pprint_program(parse(wc_map_source))
    assert "#pragma mapreduce mapper" in printed


class TestRoundTripProperty:
    """parse(pprint(parse(s))) is the same AST for fuzzer-made programs.

    Reuses the conformance fuzzer's grammar-directed generator, so the
    property covers the full construct mix the fuzzer exercises
    (directive-annotated mappers and combiners included), not just the
    hand-picked sources above. Equality ignores only line numbers and
    the retained source text (repro.minic.astcmp)."""

    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           kind=st.sampled_from(KINDS))
    def test_parse_pretty_parse_is_identity(self, seed, kind):
        source = generate_source(seed, kind)
        original = parse(source)
        printed = pprint_program(original)
        reparsed = parse(printed)
        assert ast_diff(original, reparsed) is None

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           kind=st.sampled_from(KINDS))
    def test_pretty_is_idempotent(self, seed, kind):
        once = pprint_program(parse(generate_source(seed, kind)))
        assert pprint_program(parse(once)) == once

    def test_astcmp_catches_structural_change(self):
        a = parse("int main() { return 1 + 2; }")
        b = parse("int main() { return 1 + 3; }")
        diff = ast_diff(a, b)
        assert diff is not None and "value" in diff

    def test_astcmp_ignores_line_numbers(self):
        a = parse("int main() { return 1; }")
        b = parse("\n\nint main() {\nreturn 1;\n}")
        assert ast_diff(a, b) is None


def test_string_escapes_in_output():
    prog = parse(r'int main() { printf("%s\t%d\n", "x", 1); return 0; }')
    printed = pprint_program(prog)
    assert r"\t" in printed and r"\n" in printed
    out, _ = run_filter(parse(printed), "")
    assert out == "x\t1\n"
