"""Global KV store, partitioner, and aggregation tests (paper §4.3, §5.3)."""

import pytest

from repro.errors import GpuError, KVStoreOverflow
from repro.kvstore import GlobalKVStore, Partitioner, aggregate, fnv1a
from repro.kvstore.aggregation import scattered_partitions


def make_store(threads=4, capacity=40):
    return GlobalKVStore(
        total_threads=threads, capacity_pairs=capacity,
        key_length=30, value_length=4,
    )


class TestGlobalKVStore:
    def test_emit_lands_in_thread_portion(self):
        store = make_store()
        store.emit(0, "a", 1, 0)
        store.emit(3, "b", 2, 1)
        assert store.per_thread_counts() == [1, 0, 0, 1]
        assert store.emitted_pairs == 2

    def test_stores_per_thread_division(self):
        store = make_store(threads=4, capacity=40)
        assert store.stores_per_thread == 10

    def test_portion_overflow_raises(self):
        store = make_store(threads=4, capacity=8)  # 2 slots per thread
        store.emit(0, "a", 1, 0)
        store.emit(0, "b", 1, 0)
        with pytest.raises(KVStoreOverflow):
            store.emit(0, "c", 1, 0)

    def test_remaining_capacity_bounds_stealing(self):
        store = make_store(threads=2, capacity=8)
        assert store.remaining_capacity(0) == 4
        store.emit(0, "x", 1, 0)
        assert store.remaining_capacity(0) == 3

    def test_whitespace_accounting(self):
        store = make_store(threads=4, capacity=40)
        store.emit(0, "a", 1, 0)
        assert store.whitespace_slots == 39
        assert store.occupancy == pytest.approx(1 / 40)

    def test_bad_thread_id_raises(self):
        with pytest.raises(GpuError):
            make_store().emit(99, "x", 1, 0)

    def test_capacity_below_thread_count_rejected(self):
        with pytest.raises(GpuError):
            GlobalKVStore(total_threads=8, capacity_pairs=4,
                          key_length=4, value_length=4)

    def test_iter_pairs_in_slot_order(self):
        store = make_store()
        store.emit(1, "b", 2, 0)
        store.emit(0, "a", 1, 0)
        order = [pair.key for _tid, pair in store.iter_pairs()]
        assert order == ["a", "b"]  # thread 0's portion precedes thread 1's

    def test_allocated_bytes(self):
        store = make_store(threads=4, capacity=40)
        assert store.allocated_bytes() == 40 * (30 + 4 + 4)


class TestPartitioner:
    def test_deterministic_across_instances(self):
        p1, p2 = Partitioner(16), Partitioner(16)
        for key in ["alpha", "beta", 42, 3.5]:
            assert p1.partition(key) == p2.partition(key)

    def test_range(self):
        p = Partitioner(5)
        for key in range(100):
            assert 0 <= p.partition(key) < 5

    def test_single_partition_short_circuit(self):
        p = Partitioner(1)
        assert all(p.partition(k) == 0 for k in ["a", 1, 2.5])

    def test_fnv1a_known_value(self):
        # FNV-1a of empty input is the offset basis.
        assert fnv1a(b"") == 0xCBF29CE484222325

    def test_spread_over_partitions(self):
        p = Partitioner(8)
        buckets = {p.partition(f"key{i}") for i in range(200)}
        assert len(buckets) == 8  # all partitions hit

    def test_zero_partitions_rejected(self):
        with pytest.raises(Exception):
            Partitioner(0)


class TestAggregation:
    def fill(self, store):
        store.emit(0, "a", 1, 0)
        store.emit(0, "b", 1, 1)
        store.emit(2, "c", 1, 0)
        store.emit(3, "d", 1, 1)

    def test_partitions_complete_and_disjoint(self):
        store = make_store()
        self.fill(store)
        result = aggregate(store, num_partitions=2)
        keys0 = [p.key for p in result.partition_list(0)]
        keys1 = [p.key for p in result.partition_list(1)]
        assert sorted(keys0 + keys1) == ["a", "b", "c", "d"]
        assert set(keys0).isdisjoint(keys1)

    def test_span_collapses_to_emitted(self):
        store = make_store(threads=4, capacity=40)
        self.fill(store)
        result = aggregate(store, num_partitions=2)
        assert result.span_before == 40
        assert result.span_after == 4

    def test_scan_over_thread_counts(self):
        store = make_store(threads=4)
        self.fill(store)
        result = aggregate(store, num_partitions=2)
        assert result.scan_elements == 4
        assert result.pairs_moved == 4

    def test_scattered_keeps_full_span(self):
        store = make_store(threads=4, capacity=40)
        self.fill(store)
        result = scattered_partitions(store, num_partitions=2)
        assert result.span_after == 40  # whitespace not removed
        assert result.pairs_moved == 0

    def test_empty_store(self):
        result = aggregate(make_store(), num_partitions=3)
        assert result.span_after == 0
        assert all(result.partition_list(p) == [] for p in range(3))
