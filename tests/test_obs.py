"""Unit tests for the tracing + metrics substrate (repro.obs)."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.errors import ReproError


# -- metrics ----------------------------------------------------------------


def test_metrics_counters_and_gauges():
    m = obs.MetricsRegistry()
    m.inc("a")
    m.inc("a", 2.5)
    m.gauge("g", 4.0)
    m.gauge("g", 7.0)
    assert m.count("a") == 3.5
    assert m.count("missing") == 0.0
    assert m.gauge_value("g") == 7.0
    snap = m.snapshot()
    assert snap == {"counters": {"a": 3.5}, "gauges": {"g": 7.0}}


def test_metrics_counters_reject_negative_increments():
    m = obs.MetricsRegistry()
    with pytest.raises(ReproError):
        m.inc("a", -1.0)


def test_metrics_merge():
    a = obs.MetricsRegistry()
    b = obs.MetricsRegistry()
    a.inc("x", 2)
    b.inc("x", 3)
    b.gauge("g", 1.5)
    a.merge(b)
    assert a.count("x") == 5
    assert a.gauge_value("g") == 1.5


# -- recorder ---------------------------------------------------------------


def test_null_recorder_is_disabled_and_inert():
    rec = obs.NULL_RECORDER
    assert rec.enabled is False
    assert rec.begin("a", "c", "p", "t") is None
    assert rec.complete("a", "c", "p", "t", 1.0) is None
    with rec.span("a", "c", "p", "t"):
        pass


def test_active_recorder_swaps_and_restores():
    assert obs.active() is obs.NULL_RECORDER
    rec = obs.TraceRecorder()
    with obs.use_recorder(rec) as handle:
        assert handle is rec
        assert obs.active() is rec
    assert obs.active() is obs.NULL_RECORDER


def test_cursor_mode_lays_spans_sequentially():
    rec = obs.TraceRecorder()
    rec.complete("a", "phase", "p", "t", 1.5)
    rec.complete("b", "phase", "p", "t", 0.5)
    spans = rec.spans()
    assert (spans[0].ts, spans[0].end) == (0.0, 1.5)
    assert (spans[1].ts, spans[1].end) == (1.5, 2.0)
    assert rec.cursor("p", "t") == 2.0


def test_begin_end_nests_children_inside_parent():
    rec = obs.TraceRecorder()
    parent = rec.begin("parent", "job", "p", "t")
    rec.complete("child1", "phase", "p", "t", 1.0)
    rec.complete("child2", "phase", "p", "t", 2.0)
    rec.end(parent)
    assert parent.ts == 0.0
    assert parent.dur == 3.0  # covers both children
    assert not rec.open_spans()


def test_end_rejects_out_of_order_close():
    rec = obs.TraceRecorder()
    outer = rec.begin("outer", "c", "p", "t")
    rec.begin("inner", "c", "p", "t")
    with pytest.raises(ReproError, match="out of order"):
        rec.end(outer)


def test_end_rejects_double_close_and_backwards_time():
    rec = obs.TraceRecorder()
    span = rec.begin("s", "c", "p", "t", ts=5.0)
    rec.end(span, ts=6.0)
    with pytest.raises(ReproError, match="not open"):
        rec.end(span)
    other = rec.begin("o", "c", "p", "t", ts=7.0)
    with pytest.raises(ReproError, match="before it starts"):
        rec.end(other, ts=3.0)


def test_complete_rejects_negative_duration():
    rec = obs.TraceRecorder()
    with pytest.raises(ReproError, match="negative duration"):
        rec.complete("s", "c", "p", "t", -0.5)


def test_span_context_manager_closes_on_exception():
    rec = obs.TraceRecorder()
    with pytest.raises(ValueError):
        with rec.span("s", "c", "p", "t"):
            raise ValueError("boom")
    assert not rec.open_spans()
    assert rec.spans()[0].dur is not None


def test_wall_clock_is_opt_in():
    silent = obs.TraceRecorder()
    with silent.span("s", "c", "p", "t"):
        pass
    assert silent.spans()[0].wall_dur is None

    timed = obs.TraceRecorder(record_wall=True)
    with timed.span("s", "c", "p", "t"):
        pass
    assert timed.spans()[0].wall_dur >= 0.0


# -- export -----------------------------------------------------------------


def _small_recorder() -> obs.TraceRecorder:
    rec = obs.TraceRecorder()
    job = rec.begin("job", "job", "proc", "lane")
    rec.complete("work", "phase", "proc", "lane", 1.0)
    rec.end(job)
    rec.instant("tick", "sched", "proc", "lane", ts=0.5)
    rec.counter("progress", "proc", {"done": 1.0}, ts=1.0)
    rec.inc("things", 3)
    rec.gauge("level", 0.25)
    return rec


def test_export_chrome_is_schema_valid():
    trace = obs.export_chrome(_small_recorder())
    assert obs.validate_trace(trace) == []
    obs.check_trace(trace)  # must not raise


def test_export_rejects_open_spans():
    rec = obs.TraceRecorder()
    rec.begin("still-open", "c", "p", "t")
    with pytest.raises(ReproError, match="open spans"):
        obs.export_chrome(rec)


def test_export_uses_integer_ids_and_metadata_names():
    trace = obs.export_chrome(_small_recorder())
    events = trace["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["name"] for m in meta} == {"process_name", "thread_name"}
    assert all(isinstance(e["pid"], int) for e in events)
    spans = [e for e in events if e["ph"] == "X"]
    # microseconds: the 1.0 s phase is 1e6 us
    assert any(e["dur"] == 1_000_000 for e in spans)


def test_export_embeds_metrics_snapshot():
    trace = obs.export_chrome(_small_recorder())
    assert trace["otherData"]["metrics"] == {
        "counters": {"things": 3.0}, "gauges": {"level": 0.25}
    }


def test_dumps_is_canonical_bytes():
    trace = obs.export_chrome(_small_recorder())
    text = obs.dumps(trace)
    assert text.endswith("\n")
    assert text == obs.dumps(json.loads(text))  # round-trip stable
    assert ": " not in text.split('"generator"')[0]  # compact separators


def test_wall_durations_never_enter_canonical_export():
    rec = obs.TraceRecorder(record_wall=True)
    with rec.span("s", "c", "p", "t"):
        pass
    plain = obs.export_chrome(rec)
    assert all("wall_ms" not in e.get("args", {})
               for e in plain["traceEvents"])
    with_wall = obs.export_chrome(rec, include_wall=True)
    spans = [e for e in with_wall["traceEvents"] if e["ph"] == "X"]
    assert all("wall_ms" in e["args"] for e in spans)


# -- validator --------------------------------------------------------------


def test_validate_trace_flags_malformed_events():
    assert obs.validate_trace([]) != []
    assert obs.validate_trace({"traceEvents": "nope"}) != []
    bad_ph = {"traceEvents": [
        {"name": "x", "ph": "Z", "pid": 1, "tid": 1, "ts": 0}
    ]}
    assert any("bad ph" in p for p in obs.validate_trace(bad_ph))
    unnamed_pid = {"traceEvents": [
        {"name": "x", "cat": "c", "ph": "X", "pid": 9, "tid": 1,
         "ts": 0, "dur": 1}
    ]}
    problems = obs.validate_trace(unnamed_pid)
    assert any("no process_name" in p for p in problems)
    with pytest.raises(obs.TraceSchemaError):
        obs.check_trace(bad_ph)


def test_validate_trace_checks_counter_args():
    trace = {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
         "args": {"name": "p"}},
        {"name": "c", "ph": "C", "pid": 1, "tid": 0, "ts": 0.0,
         "args": {"v": "not-a-number"}},
    ]}
    assert any("numbers" in p for p in obs.validate_trace(trace))
