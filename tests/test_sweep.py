"""Sweep-runner tests: canonical reports, determinism, and performance.

Tier-1 covers the mini-shape smoke slice — byte-identical reports
across runs, canonical JSON round-trips, the CLI leg — plus a small-N
performance guard. The 1000-node × 3-policy budget test runs in the
nightly ``-m slow`` tier with the acceptance wall-clock bound.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import cli
from repro.scenarios import (
    DEFAULT_POLICIES,
    all_scenarios,
    build_simulator,
    get_scenario,
    report_bytes,
    run_sweep,
)

MINI = [s for s in all_scenarios() if s.shape == "mini"]
MEGA = [s for s in all_scenarios() if s.shape.startswith("mega1k")]


class TestReportShape:
    def test_rows_cover_slate_plus_scenario_policy(self):
        report = run_sweep(MINI, scale="small")
        by_scenario: dict[str, set[str]] = {}
        for row in report["results"]:
            by_scenario.setdefault(row["scenario"], set()).add(row["policy"])
        for scenario in MINI:
            assert by_scenario[scenario.id] >= \
                set(DEFAULT_POLICIES) | {scenario.policy}

    def test_rows_sorted_and_speedups_present(self):
        report = run_sweep(MINI, scale="small")
        keys = [(r["scenario"], r["policy"]) for r in report["results"]]
        assert keys == sorted(keys)
        for row in report["results"]:
            assert row["job_seconds"] > 0
            assert "speedup_vs_cpu_only" in row
            if row["policy"] == "cpu-only":
                assert row["speedup_vs_cpu_only"] == pytest.approx(1.0)
                assert row["gpu_tasks"] == 0

    def test_verify_section_records_digests(self):
        scenario = get_scenario("wc-mini-tail")
        report = run_sweep([scenario], policies=("cpu-only",), verify=True)
        entry = report["verification"]["wc-mini-tail"]
        assert entry["paths_agree"] is True
        assert len(entry["datagen_sha256"]) == 64
        assert len(entry["output_sha256"]) == 64
        assert entry["output_keys"] > 0

    def test_unknown_scale_and_empty_selection_raise(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            run_sweep(MINI, scale="huge")
        with pytest.raises(ConfigError):
            run_sweep([], scale="small")


class TestDeterminism:
    def test_report_bytes_identical_across_runs(self):
        first = report_bytes(run_sweep(MINI, scale="small"))
        second = report_bytes(run_sweep(MINI, scale="small"))
        assert first == second

    def test_canonical_json_round_trips(self):
        report = run_sweep(MINI, scale="small")
        blob = report_bytes(report)
        assert blob.endswith(b"\n")
        assert json.loads(blob) == report
        # Canonicalization already rounded floats: re-serializing the
        # parsed payload reproduces the exact bytes.
        assert (json.dumps(json.loads(blob), indent=2, sort_keys=True)
                + "\n").encode() == blob


class TestCli:
    def test_sweep_list(self, capsys):
        assert cli.main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        for scenario in all_scenarios():
            assert scenario.id in out

    def test_sweep_json_is_canonical(self, capsys):
        assert cli.main(["sweep", "--scenarios", "wc-mini-tail",
                         "--json"]) == 0
        out = capsys.readouterr().out
        parsed = json.loads(out)
        assert parsed["results"]

    def test_sweep_writes_report_file(self, tmp_path, capsys):
        out_path = tmp_path / "sweep.json"
        assert cli.main(["sweep", "--shapes", "mini",
                         "-o", str(out_path)]) == 0
        capsys.readouterr()
        report = json.loads(out_path.read_bytes())
        assert {row["shape"] for row in report["results"]} == {"mini"}

    def test_empty_filter_errors(self, capsys):
        # main() catches ReproError and reports it as a nonzero exit.
        assert cli.main(["sweep", "--apps", "WC", "--shapes", "c2"]) != 0
        assert "selected no scenarios" in capsys.readouterr().err


class TestPerformance:
    def test_mini_smoke_sweep_is_fast(self):
        # Small-N guard for the event-loop fast paths: the tier-1 smoke
        # slice must stay interactive (~0.2s on a dev laptop; the bound
        # leaves ~25x headroom for CI jitter).
        start = time.perf_counter()
        run_sweep(MINI, scale="small")
        assert time.perf_counter() - start < 5.0

    def test_single_mega_node_run_stays_subsecond_scaled(self):
        # One 1000-node simulation at small scale (16k map tasks) — the
        # per-policy unit of the nightly budget test. ~1s nominal.
        scenario = get_scenario("ts-mega1k-tail")
        start = time.perf_counter()
        build_simulator(scenario, "tail", "small").run()
        assert time.perf_counter() - start < 15.0

    @pytest.mark.slow
    def test_thousand_node_three_policy_sweep_within_budget(self):
        # Acceptance bound: every mega1k scenario × the default slate
        # (plus each scenario's own policy) at small scale in <60s.
        start = time.perf_counter()
        report = run_sweep(MEGA, scale="small")
        elapsed = time.perf_counter() - start
        assert len({r["policy"] for r in report["results"]}) >= 3
        assert elapsed < 60.0, f"mega sweep took {elapsed:.1f}s"
