"""Shared fixtures: paper listings, devices, small workloads."""

from __future__ import annotations

import pytest

from repro.config import CLUSTER1, CLUSTER2
from repro.costmodel.io import IoModel
from repro.gpu.device import GpuDevice

# The paper's Listing 1 (Wordcount map) verbatim in our dialect.
WORDCOUNT_MAP = r'''
int main()
{
    char word[30], *line;
    size_t nbytes = 10000;
    int read, linePtr, offset, one;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(one) keylength(30) kvpairs(20)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        linePtr = 0;
        offset = 0;
        one = 1;
        while( (linePtr = getWord(line, offset, word, read, 30)) != -1) {
            printf("%s\t%d\n", word, one);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
'''

# The paper's Listing 2 (Wordcount combine).
WORDCOUNT_COMBINE = r'''
int main()
{
    char word[30], prevWord[30]; prevWord[0] = '\0';
    int count, val, read; count = 0;
    #pragma mapreduce combiner key(prevWord) value(count) \
        keyin(word) valuein(val) keylength(30) vallength(4) \
        firstprivate(prevWord, count)
    {
        while( (read = scanf("%s %d", word, &val)) == 2 ) {
            if(strcmp(word, prevWord) == 0 ) {
                count += val;
            } else {
                if(prevWord[0] != '\0')
                    printf("%s\t%d\n", prevWord, count);
                strcpy(prevWord, word);
                count = val;
            }
        }
        if(prevWord[0] != '\0')
            printf("%s\t%d\n", prevWord, count);
    }
    return 0;
}
'''


@pytest.fixture
def wc_map_source() -> str:
    return WORDCOUNT_MAP


@pytest.fixture
def wc_combine_source() -> str:
    return WORDCOUNT_COMBINE


@pytest.fixture
def k40_device() -> GpuDevice:
    return GpuDevice(CLUSTER1.gpu)


@pytest.fixture
def m2090_device() -> GpuDevice:
    return GpuDevice(CLUSTER2.gpu)


@pytest.fixture
def cluster1_io() -> IoModel:
    return IoModel.for_cluster(CLUSTER1)


# -- scenario registry ------------------------------------------------------
#
# App enumeration for tests comes from the registry, never a literal
# list: `registry_app` parametrizes over every covered app tag, and
# `small_input` regenerates an app's canonical seeded input.

from repro.scenarios import APP_ORDER, records_for  # noqa: E402


@pytest.fixture(params=APP_ORDER)
def registry_app(request) -> str:
    return request.param


@pytest.fixture
def small_input():
    from repro.apps import get_app

    def make(short: str, seed: int = 7) -> str:
        return get_app(short).generate(records_for(short, "small"), seed=seed)

    return make
