"""Parallel map-task execution: pool mechanics and serial equivalence.

The contract under test is the one ``repro.parallel`` documents: a job
run with ``workers=N`` is *observably identical* to the serial run —
same output dict, same per-task simulated seconds (in task order), same
counters — with only wall-clock and the reported ``workers``/critical
path differing. The differential sweep below checks that for every
Table 2 app on both execution paths at 2 and 4 workers.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.apps import all_apps, get_app
from repro.config import CLUSTER1
from repro.errors import ConfigError, HadoopError
from repro.fuzz.runner import run_campaign
from repro.gpu.device import GpuDevice
from repro.hadoop.local import LocalJobRunner
from repro.obs.export import WORKER_PID_MARKER
from repro.parallel import (
    ProcessPool,
    SerialPool,
    in_worker,
    list_schedule_makespan,
    resolve_reduce_workers,
    resolve_workers,
    task_pool,
)
from repro.parallel.pool import REDUCE_WORKERS_ENV, WORKERS_ENV
from repro.runtime.gpu_task import GpuTaskRunner
from repro.scenarios import records_for

from .span_invariants import assert_standard_invariants

APP_TAGS = [app.short for app in all_apps()]


# -- worker-count resolution ------------------------------------------------


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "7")
        assert resolve_workers(3) == 3

    def test_env_applies_when_unspecified(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_zero_means_cpu_count(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers(0) == (os.cpu_count() or 1)
        monkeypatch.setenv(WORKERS_ENV, "0")
        assert resolve_workers() == (os.cpu_count() or 1)

    def test_task_count_caps_fanout(self):
        assert resolve_workers(8, tasks=3) == 3
        assert resolve_workers(8, tasks=1) == 1
        assert resolve_workers(2, tasks=0) == 1  # degenerate: no tasks

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            resolve_workers(-1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ConfigError):
            resolve_workers()
        monkeypatch.setenv(WORKERS_ENV, "-2")
        with pytest.raises(ConfigError):
            resolve_workers()


class TestResolveReduceWorkers:
    def test_follows_the_job_setting_by_default(self, monkeypatch):
        monkeypatch.delenv(REDUCE_WORKERS_ENV, raising=False)
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_reduce_workers() == 1
        assert resolve_reduce_workers(3) == 3

    def test_env_overrides_the_job_setting(self, monkeypatch):
        monkeypatch.setenv(REDUCE_WORKERS_ENV, "2")
        assert resolve_reduce_workers(8) == 2
        monkeypatch.setenv(REDUCE_WORKERS_ENV, "0")
        assert resolve_reduce_workers(8) == (os.cpu_count() or 1)

    def test_task_count_caps_fanout(self, monkeypatch):
        monkeypatch.delenv(REDUCE_WORKERS_ENV, raising=False)
        assert resolve_reduce_workers(8, tasks=3) == 3
        monkeypatch.setenv(REDUCE_WORKERS_ENV, "8")
        assert resolve_reduce_workers(1, tasks=3) == 3
        assert resolve_reduce_workers(1, tasks=1) == 1

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(REDUCE_WORKERS_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_reduce_workers(2)
        monkeypatch.setenv(REDUCE_WORKERS_ENV, "-1")
        with pytest.raises(ConfigError):
            resolve_reduce_workers(2)


class TestListScheduleMakespan:
    def test_serial_is_bitwise_sum(self):
        # The job span's end uses the critical path; at one worker it
        # must reproduce the historical sum() fold *bit for bit* or the
        # golden traces would shift.
        durations = [0.1, 0.2, 0.30000000000000004, 1e-9, 7.25]
        assert list_schedule_makespan(durations, 1) == sum(durations)
        assert list_schedule_makespan(durations, 0) == sum(durations)

    def test_greedy_two_workers(self):
        # w0 takes 3; w1 takes 1,1,1 → both finish at 3.
        assert list_schedule_makespan([3.0, 1.0, 1.0, 1.0], 2) == 3.0

    def test_more_workers_than_tasks(self):
        assert list_schedule_makespan([2.0, 5.0, 1.0], 8) == 5.0

    def test_empty(self):
        assert list_schedule_makespan([], 4) == 0.0

    def test_monotone_in_workers(self):
        durations = [0.3, 0.1, 0.8, 0.2, 0.5, 0.4]
        spans = [list_schedule_makespan(durations, w) for w in (1, 2, 3, 6)]
        assert spans == sorted(spans, reverse=True)
        assert spans[-1] == max(durations)


# -- pools ------------------------------------------------------------------


def _square(x):
    return x * x


def _probe(_x):
    """What a pool task observes about its own process."""
    return (os.getpid(), in_worker(), resolve_workers(8),
            os.environ.get(WORKERS_ENV))


def _boom(x):
    raise ValueError(f"task {x} failed")


class TestPools:
    def test_task_pool_picks_implementation(self):
        assert isinstance(task_pool(1), SerialPool)
        pool = task_pool(2)
        try:
            assert isinstance(pool, ProcessPool)
        finally:
            pool.terminate()

    def test_process_pool_rejects_single_worker(self):
        with pytest.raises(ConfigError):
            ProcessPool(1)

    def test_serial_pool_runs_in_process(self):
        with SerialPool() as pool:
            assert pool.map_tasks(_square, [1, 2, 3]) == [1, 4, 9]
            assert list(pool.imap_tasks(_square, [4])) == [16]
            pid, worker, fanout, env = pool.map_tasks(_probe, [0])[0]
        assert pid == os.getpid()
        assert not worker

    def test_results_arrive_in_submission_order(self):
        with ProcessPool(2) as pool:
            assert pool.map_tasks(_square, range(20)) == [
                i * i for i in range(20)
            ]
            assert list(pool.imap_tasks(_square, range(7))) == [
                i * i for i in range(7)
            ]

    def test_workers_are_leaves(self):
        with ProcessPool(2) as pool:
            probes = pool.map_tasks(_probe, range(8))
        pids = {pid for pid, _w, _f, _e in probes}
        assert os.getpid() not in pids
        for _pid, worker, fanout, env in probes:
            assert worker  # in_worker() is True inside the pool
            assert fanout == 1  # resolve_workers(8) refuses to nest
            assert env == "1"  # env-reading code sees serial too

    def test_task_exception_propagates(self):
        # whichever task's error surfaces first, the type and message
        # shape cross the process boundary intact
        with pytest.raises(ValueError, match=r"task \d failed"):
            with ProcessPool(2) as pool:
                pool.map_tasks(_boom, [1, 2])


# -- serial/parallel job equivalence ----------------------------------------


def _run_job(app, use_gpu: bool, workers: int):
    # Registry "small" sizes (generation is the cheap part; these keep
    # each job small while still yielding several splits).
    text = app.generate(records_for(app.short, "small"), seed=7)
    # ~6 splits regardless of the app's record size, so every app
    # genuinely fans out
    split_bytes = max(256, len(text.encode()) // 6)
    runner = LocalJobRunner(app, use_gpu=use_gpu, split_bytes=split_bytes,
                            workers=workers)
    return runner.run(text)


@pytest.mark.parametrize("short", APP_TAGS)
@pytest.mark.parametrize("use_gpu", [False, True], ids=["cpu", "gpu"])
def test_parallel_job_identical_to_serial(short, use_gpu):
    app = get_app(short)
    serial = _run_job(app, use_gpu, workers=1)
    assert serial.map_tasks >= 2, "need fan-out to exercise the pool"
    assert serial.workers == serial.reduce_workers == 1
    partitions = len(serial.reduce_task_timings)
    for workers in (2, 4):
        par = _run_job(app, use_gpu, workers=workers)
        assert par.workers == min(workers, serial.map_tasks)
        # The reduce phase follows the job's worker setting, capped by
        # its own task count (the partition count).
        expected_rw = min(workers, max(partitions, 1)) if partitions \
            else 1
        assert par.reduce_workers == expected_rw
        # byte-identical output: same pairs in the same insertion order
        assert list(par.output.items()) == list(serial.output.items())
        assert par.map_tasks == serial.map_tasks
        assert par.map_output_pairs == serial.map_output_pairs
        assert par.shuffle_bytes == serial.shuffle_bytes
        # simulated per-task seconds are equal as exact floats, in order
        assert par.task_seconds() == serial.task_seconds()
        assert par.total_map_seconds == serial.total_map_seconds
        # ... and so are the pooled reduce tasks' simulated seconds
        assert par.reduce_task_timings == serial.reduce_task_timings
        assert par.total_reduce_seconds == serial.total_reduce_seconds
        assert par.reduce_critical_path(1) == serial.total_reduce_seconds


@pytest.mark.parametrize("use_gpu", [False, True], ids=["cpu", "gpu"])
def test_parallel_counters_match_serial(use_gpu):
    app = get_app("WC")
    results, snapshots = [], []
    for workers in (1, 2):
        with obs.use_recorder(obs.TraceRecorder()) as rec:
            results.append(_run_job(app, use_gpu, workers=workers))
        snapshots.append(rec.metrics.snapshot())
    serial, par = snapshots
    # The parallel run additionally reports its (deterministic) pool
    # dispatch counters and the pooled reduce phase's reduce.* tallies;
    # everything the serial run counts must match exactly, and the
    # serial run must have neither pool nor reduce counters at all.
    core = {k: v for k, v in par["counters"].items()
            if not k.startswith(("pool.", "reduce."))}
    assert core == serial["counters"]
    assert not any(k.startswith(("pool.", "reduce."))
                   for k in serial["counters"])
    # One pool job for the map phase, one for the reduce phase.
    assert par["counters"]["pool.jobs"] == 2.0
    assert par["counters"]["pool.tasks"] >= par["counters"]["pool.batches"]
    # The reduce.* tallies are deterministic job facts, not scheduling
    # artifacts: one task per partition, run counts from the merge.
    par_result = results[1]
    assert par["counters"]["reduce.tasks"] == len(
        par_result.reduce_task_timings
    )
    assert par["counters"]["reduce.merge_runs"] == sum(
        t.merge_runs for t in par_result.reduce_task_timings
    )
    assert par["counters"]["reduce.pairs"] == sum(
        t.input_pairs for t in par_result.reduce_task_timings
    )
    assert set(par["gauges"]) == set(serial["gauges"])


@pytest.mark.parametrize("start_method", ["fork", "spawn"])
def test_start_method_results_identical(start_method, monkeypatch):
    """The spawn fallback must produce byte-identical job results.

    ``fork`` workers inherit warm caches; ``spawn`` workers rebuild
    everything from the job spec — if the two ever disagree, the spec
    is missing ambient state (an engine default, a backend selection)
    that fork was smuggling through.
    """
    from repro.parallel import shutdown_pool
    from repro.parallel.daemon import START_ENV

    app = get_app("WC")
    baseline = _run_job(app, use_gpu=False, workers=1)
    monkeypatch.setenv(START_ENV, start_method)
    shutdown_pool()
    try:
        par = _run_job(app, use_gpu=False, workers=2)
    finally:
        shutdown_pool()
    assert par.output == baseline.output
    assert par.map_output_pairs == baseline.map_output_pairs
    assert par.shuffle_bytes == baseline.shuffle_bytes
    assert par.task_seconds() == baseline.task_seconds()


def test_env_workers_reaches_the_job_runner(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV, "2")
    app = get_app("WC")
    text = app.generate(150, seed=7)
    result = LocalJobRunner(app, split_bytes=2 * 1024).run(text)
    assert result.workers == 2


def test_single_split_job_stays_serial():
    app = get_app("WC")
    text = app.generate(40, seed=7)
    result = LocalJobRunner(app, workers=4).run(text)  # default 32 KiB split
    assert result.map_tasks == 1
    assert result.workers == 1


def test_env_reduce_workers_reaches_the_job_runner(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(REDUCE_WORKERS_ENV, raising=False)
    app = get_app("WC")
    text = app.generate(150, seed=7)
    baseline = LocalJobRunner(app, split_bytes=2 * 1024).run(text)
    monkeypatch.setenv(REDUCE_WORKERS_ENV, "2")
    result = LocalJobRunner(app, split_bytes=2 * 1024).run(text)
    # map phase stays serial; only the reduce phase pools
    assert result.workers == 1
    assert result.reduce_workers == 2
    assert list(result.output.items()) == list(baseline.output.items())
    assert result.reduce_task_timings == baseline.reduce_task_timings


# -- construction-time validation -------------------------------------------


class TestRunnerConfigValidation:
    def test_split_bytes_must_be_positive(self):
        app = get_app("WC")
        with pytest.raises(ConfigError, match="split_bytes"):
            LocalJobRunner(app, split_bytes=0)
        with pytest.raises(ConfigError, match="split_bytes"):
            LocalJobRunner(app, split_bytes=-4096)

    def test_negative_reducers_rejected(self):
        app = get_app("WC")
        with pytest.raises(ConfigError, match="num_reducers"):
            LocalJobRunner(app, num_reducers=-1)

    def test_zero_reducers_means_map_only(self):
        # 0 is a legal Hadoop setting (map-only job), not an error
        runner = LocalJobRunner(get_app("WC"), num_reducers=0)
        assert runner.num_reducers == 0


# -- duplicate-key diagnosis -------------------------------------------------


def _constant_key_reduce(key, values):
    # module-level so the app still pickles into pooled reduce workers
    return [("dup", sum(values))]


def _dup_key_app():
    """WC with its reducer swapped for one that emits a constant key
    from every partition — the second partition to fold must trip the
    driver's duplicate-key check."""
    from dataclasses import replace

    return replace(get_app("WC"), name="DupRed", reduce_source=None,
                   reduce_py=_constant_key_reduce)


@pytest.mark.parametrize("workers", [1, 2], ids=["serial", "pooled"])
def test_duplicate_key_error_names_app_and_partition(workers):
    app = _dup_key_app()
    text = app.generate(120, seed=7)
    runner = LocalJobRunner(app, split_bytes=1024, workers=workers)
    with pytest.raises(
        HadoopError,
        match=r"DupRed reducer emitted duplicate key 'dup' in partition \d+",
    ):
        runner.run(text)


# -- critical path vs total work --------------------------------------------


def test_critical_path_and_total_work_semantics():
    app = get_app("WC")
    serial = _run_job(app, use_gpu=False, workers=1)
    par = _run_job(app, use_gpu=False, workers=4)
    # total_map_seconds is summed *work*: invariant under fan-out, and
    # bitwise-equal to the 1-worker critical path.
    assert par.total_map_seconds == serial.total_map_seconds
    assert serial.map_critical_path_seconds == serial.total_map_seconds
    # at 4 workers the makespan shrinks but never below the longest task
    assert par.map_critical_path_seconds < par.total_map_seconds
    assert par.map_critical_path_seconds >= max(par.task_seconds())
    assert par.map_critical_path_seconds == list_schedule_makespan(
        par.task_seconds(), 4
    )
    assert par.critical_path_seconds(1) == par.total_map_seconds


# -- trace splicing ---------------------------------------------------------


def test_parallel_trace_merges_worker_tracks():
    app = get_app("WC")
    text = app.generate(400, seed=7)
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        result = LocalJobRunner(app, use_gpu=True, split_bytes=1024,
                                workers=3).run(text)
    assert result.workers == 3
    assert result.map_tasks >= 8
    assert_standard_invariants(rec)

    worker_tracks = {s.pid for s in rec.spans() if WORKER_PID_MARKER in s.pid}
    # distinct per-worker tracks for the map phase and the reduce phase
    os_pids = {t.rsplit(WORKER_PID_MARKER, 1)[1] for t in worker_tracks}
    assert 2 <= len(os_pids) <= 3
    task_spans = rec.spans("gpu-task")
    assert len(task_spans) == result.map_tasks
    assert {s.pid for s in task_spans} <= worker_tracks

    trace = obs.export_chrome(rec)
    assert obs.validate_trace(trace) == []
    sort_meta = [e for e in trace["traceEvents"]
                 if e.get("name") == "process_sort_index"]
    assert len(sort_meta) == len(worker_tracks)


def test_parallel_trace_has_reduce_task_spans():
    app = get_app("WC")
    text = app.generate(400, seed=7)
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        result = LocalJobRunner(app, use_gpu=False, split_bytes=1024,
                                workers=3).run(text)
    assert result.reduce_workers == 3
    assert_standard_invariants(rec)

    task_spans = rec.spans("reduce-task")
    assert len(task_spans) == len(result.reduce_task_timings)
    # every reduce task ran on a spliced @w<pid> worker track
    pids = {s.pid for s in task_spans}
    assert all(p.startswith("reduce" + WORKER_PID_MARKER) for p in pids)
    assert 2 <= len(pids) <= 3
    # span args carry the task's deterministic facts
    by_part = {t.partition: t for t in result.reduce_task_timings}
    for span in task_spans:
        timing = by_part[int(span.name.split("#")[1].split()[0])]
        assert span.args["merge_runs"] == timing.merge_runs
        assert span.args["input_pairs"] == timing.input_pairs
    assert rec.metrics.count("reduce.tasks") == len(task_spans)
    trace = obs.export_chrome(rec)
    assert obs.validate_trace(trace) == []


def test_serial_trace_has_no_worker_tracks():
    app = get_app("WC")
    text = app.generate(200, seed=7)
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        LocalJobRunner(app, use_gpu=True, split_bytes=2 * 1024,
                       workers=1).run(text)
    assert all(WORKER_PID_MARKER not in s.pid for s in rec.spans())
    assert not rec.spans("reduce-task")
    trace = obs.export_chrome(rec)
    assert not any(e.get("name") == "process_sort_index"
                   for e in trace["traceEvents"])


# -- standalone GPU runner fan-out ------------------------------------------


def _wc_gpu_runner(cluster1_io):
    app = get_app("WC")
    return GpuTaskRunner(app.translate_map(), app.translate_combine(),
                         GpuDevice(CLUSTER1.gpu), cluster1_io,
                         num_reducers=4)


def test_run_many_matches_serial_runs(cluster1_io):
    app = get_app("WC")
    data = app.generate(240, seed=3).encode()
    splits = [data[i:i + 2048] for i in range(0, len(data), 2048)]
    assert len(splits) >= 3
    serial_runner = _wc_gpu_runner(cluster1_io)
    serial = [serial_runner.run(s) for s in splits]
    par = _wc_gpu_runner(cluster1_io).run_many(splits, workers=2)
    assert len(par) == len(serial)
    for a, b in zip(par, serial):
        assert a.seconds == b.seconds
        assert a.emitted_pairs == b.emitted_pairs
        assert a.output_pairs == b.output_pairs
        assert a.partition_output == b.partition_output


def test_run_many_serial_path_is_default(cluster1_io, monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    app = get_app("WC")
    data = app.generate(80, seed=3).encode()
    splits = [data[i:i + 2048] for i in range(0, len(data), 2048)]
    runner = _wc_gpu_runner(cluster1_io)
    results = runner.run_many(splits)
    assert [r.seconds for r in results] == [
        r.seconds for r in _wc_gpu_runner(cluster1_io).run_many(
            splits, workers=1)
    ]


# -- fuzz campaign driver ---------------------------------------------------


def test_fuzz_digest_is_worker_count_invariant(tmp_path):
    serial = run_campaign(seed=3, count=6, shrink=False,
                          corpus_dir=tmp_path / "serial", workers=1)
    par = run_campaign(seed=3, count=6, shrink=False,
                       corpus_dir=tmp_path / "par", workers=2)
    assert serial.executed == par.executed == 6
    assert par.digest == serial.digest
    assert par.kind_counts == serial.kind_counts
