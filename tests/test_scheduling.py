"""Scheduling policy tests (paper §6, Fig. 3, Algorithm 2)."""

import pytest

from repro.experiments.figures import fig3
from repro.scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy


class TestFig3ToyScenario:
    def test_tail_beats_gpu_first(self):
        result = fig3()
        assert result.tail_makespan < result.gpu_first_makespan

    def test_paper_magnitudes(self):
        # 19 tasks, 2 CPU slots, 6x GPU: GPU-first ends with a full CPU
        # task straggling; tail saves roughly half a CPU-task time.
        result = fig3()
        assert result.gpu_first_makespan == pytest.approx(3.0, abs=0.01)
        assert result.tail_makespan <= 2.7

    def test_tail_forces_final_tasks_to_gpu(self):
        result = fig3()
        final = [slot for task, slot, _s, _e in result.tail_schedule
                 if task >= 18]
        assert all(s == "gpu" for s in final)

    def test_all_tasks_scheduled_exactly_once(self):
        result = fig3()
        for schedule in (result.gpu_first_schedule, result.tail_schedule):
            assert sorted(task for task, *_ in schedule) == list(range(1, 20))

    def test_degenerate_no_gpu_speedup(self):
        result = fig3(gpu_speedup=1.0)
        # With no speedup, forcing can't help (nor hurt by much).
        assert result.tail_makespan <= result.gpu_first_makespan + 1.0


class TestJobTrackerGrants:
    def test_gpu_first_fills_all_slots(self):
        g = GpuFirstPolicy()
        assert g.tasks_to_grant(free_cpu_slots=3, free_gpu_slots=1,
                                remaining=100, num_gpus_per_node=1,
                                max_speedup=5.0, num_slaves=4) == 4

    def test_grant_bounded_by_remaining(self):
        g = GpuFirstPolicy()
        assert g.tasks_to_grant(5, 1, remaining=2, num_gpus_per_node=1,
                                max_speedup=5.0, num_slaves=4) == 2

    def test_tail_caps_in_job_tail(self):
        t = TailPolicy()
        # jobTail = 1 * 5 * 4 = 20 >= remaining 10: capped regime.
        grant = t.tasks_to_grant(free_cpu_slots=5, free_gpu_slots=1,
                                 remaining=10, num_gpus_per_node=1,
                                 max_speedup=5.0, num_slaves=4)
        full = GpuFirstPolicy().tasks_to_grant(5, 1, 10, 1, 5.0, 4)
        assert grant <= full

    def test_tail_defaults_outside_job_tail(self):
        t = TailPolicy()
        assert t.tasks_to_grant(3, 1, remaining=1000, num_gpus_per_node=1,
                                max_speedup=5.0, num_slaves=4) == 4


class TestPlacementDecisions:
    def test_gpu_first_prefers_free_gpu(self):
        d = GpuFirstPolicy().place(gpu_free=True, cpu_free=True, num_gpus=1,
                                   ave_speedup=5.0,
                                   maps_remaining_per_node=100)
        assert d.use_gpu and not d.forced

    def test_gpu_first_falls_back_to_cpu(self):
        d = GpuFirstPolicy().place(gpu_free=False, cpu_free=True, num_gpus=1,
                                   ave_speedup=5.0,
                                   maps_remaining_per_node=100)
        assert not d.use_gpu

    def test_tail_forces_within_task_tail(self):
        d = TailPolicy().place(gpu_free=False, cpu_free=True, num_gpus=1,
                               ave_speedup=6.0, maps_remaining_per_node=2.0)
        assert d.use_gpu and d.forced

    def test_tail_gpu_first_outside_task_tail(self):
        d = TailPolicy().place(gpu_free=False, cpu_free=True, num_gpus=1,
                               ave_speedup=6.0, maps_remaining_per_node=50.0)
        assert not d.use_gpu and not d.forced

    def test_cpu_only_never_uses_gpu(self):
        d = CpuOnlyPolicy().place(gpu_free=True, cpu_free=True, num_gpus=1,
                                  ave_speedup=10.0, maps_remaining_per_node=1)
        assert not d.use_gpu

    def test_force_margin_below_one(self):
        # The margin trades ideal-case gain for never losing (see tail.py).
        assert 0.0 < TailPolicy.FORCE_MARGIN <= 1.0
