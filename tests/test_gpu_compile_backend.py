"""Differential tests: compiled GPU lane engine vs the tree-walker.

The compiled lane engine replays kernel bodies as closure calls but
must stay *indistinguishable* from the tree-walking reference at every
observable boundary: final job output, simulated per-task seconds,
map-launch ``ExecCounters``, and the full per-warp ``KernelCost`` fold.
The tree reference itself runs under both mini-C backends (bodies
interpreted vs compiled), so three configurations triangulate every
app. Charging flows through the pluggable :class:`ChargeHook` in both
engines — one formula source, so agreement here proves the hook wiring,
not formula duplication.
"""

from __future__ import annotations

import pytest

from repro.apps import all_apps, get_app
from repro.config import CLUSTER1
from repro.fuzz import load_corpus, run_case
from repro.gpu import (
    DEFAULT_CHARGE_HOOK,
    GPU_ENGINES,
    SpaceChargeHook,
    default_gpu_engine,
    set_default_gpu_engine,
    use_gpu_engine,
)
from repro.gpu.device import GpuDevice
from repro.gpu.executor import (
    run_combine_kernel,
    run_map_kernel,
    run_map_kernel_global_stealing,
)
from repro.hadoop.local import LocalJobRunner, parse_kv_line
from repro.kvstore import GlobalKVStore, KVPair, Partitioner
from repro.minic.interpreter import Interpreter, use_backend

APP_TAGS = [app.short for app in all_apps()]
COMBINER_TAGS = [app.short for app in all_apps() if app.has_combiner]


# -- engine selection API ---------------------------------------------------


class TestEngineSelection:
    def test_compiled_is_the_default(self):
        assert default_gpu_engine() == "compiled"
        assert GPU_ENGINES == ("compiled", "tree", "vector")

    def test_set_default_returns_previous(self):
        prev = set_default_gpu_engine("tree")
        try:
            assert prev == "compiled"
            assert default_gpu_engine() == "tree"
        finally:
            set_default_gpu_engine(prev)
        assert default_gpu_engine() == "compiled"

    def test_context_manager_restores(self):
        with use_gpu_engine("tree"):
            assert default_gpu_engine() == "tree"
            with use_gpu_engine("compiled"):
                assert default_gpu_engine() == "compiled"
            assert default_gpu_engine() == "tree"
        assert default_gpu_engine() == "compiled"

    @pytest.mark.parametrize("bad", ["interp", "TREE", ""])
    def test_unknown_engine_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown GPU engine"):
            set_default_gpu_engine(bad)
        with pytest.raises(ValueError, match="unknown GPU engine"):
            with use_gpu_engine(bad):
                pass  # pragma: no cover

    def test_default_charge_hook_is_calibrated_profile(self):
        assert isinstance(DEFAULT_CHARGE_HOOK, SpaceChargeHook)
        assert DEFAULT_CHARGE_HOOK.profile_key == "space-v1"


# -- all eight apps, full GPU jobs ------------------------------------------


def _gpu_job(app, text, engine, backend):
    runner = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024)
    with use_gpu_engine(engine), use_backend(backend):
        return runner.run(text)


def _assert_launches_identical(tag, ref, other):
    assert other.output == ref.output
    assert ([r.seconds for r in other.gpu_task_results]
            == [r.seconds for r in ref.gpu_task_results]), tag
    for i, (a, b) in enumerate(zip(ref.gpu_task_results,
                                   other.gpu_task_results)):
        assert b.map_launch.counters == a.map_launch.counters, (tag, i)
        assert b.map_launch.cost == a.map_launch.cost, (tag, i)
        assert b.partition_output == a.partition_output, (tag, i)
        assert b.output_bytes == a.output_bytes, (tag, i)


class TestAllAppsEngineParity:
    """Every app: tree/tree vs tree/compiled vs compiled lane engine."""

    @pytest.mark.parametrize("tag", APP_TAGS)
    def test_three_configurations_agree(self, tag):
        app = get_app(tag)
        text = app.generate(90, seed=11)
        tree_tree = _gpu_job(app, text, "tree", "tree")
        tree_comp = _gpu_job(app, text, "tree", "compiled")
        compiled = _gpu_job(app, text, "compiled", "compiled")
        _assert_launches_identical(tag, tree_tree, tree_comp)
        _assert_launches_identical(tag, tree_tree, compiled)

    @pytest.mark.parametrize("tag", ["WC", "KM"])
    def test_runner_engine_kwarg_overrides_default(self, tag):
        app = get_app(tag)
        text = app.generate(60, seed=3)
        by_kwarg = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024,
                                  gpu_engine="tree").run(text)
        by_default = _gpu_job(app, text, "tree", "compiled")
        _assert_launches_identical(tag, by_default, by_kwarg)


# -- standalone combine kernels ---------------------------------------------


def _combine_inputs(app, n=70, seed=9):
    out, _ = app.cpu_map(app.generate(n, seed=seed))
    pairs = [KVPair(*parse_kv_line(ln), 0)
             for ln in sorted(out.splitlines()) if ln]
    tr = app.translate_combine()
    kernel = tr.combine_kernel
    snapshot = Interpreter(tr.program, stdin="").run_until_region(
        kernel.original_region)
    return kernel, pairs, snapshot


class TestCombineKernelEngines:
    @pytest.mark.parametrize("tag", COMBINER_TAGS)
    def test_combine_launch_identical(self, tag):
        kernel, pairs, snapshot = _combine_inputs(get_app(tag))
        assert pairs, f"{tag}: map produced no pairs"
        device = GpuDevice(CLUSTER1.gpu)
        tree = run_combine_kernel(device, kernel, pairs, snapshot,
                                  engine="tree")
        comp = run_combine_kernel(device, kernel, pairs, snapshot,
                                  engine="compiled")
        assert comp.output == tree.output
        assert comp.counters == tree.counters
        assert comp.cost == tree.cost

    def test_empty_partition_identical(self):
        kernel, _pairs, snapshot = _combine_inputs(get_app("WC"))
        device = GpuDevice(CLUSTER1.gpu)
        tree = run_combine_kernel(device, kernel, [], snapshot, engine="tree")
        comp = run_combine_kernel(device, kernel, [], snapshot,
                                  engine="compiled")
        assert comp.output == tree.output == []
        assert comp.cost == tree.cost


# -- map kernels, both record-distribution variants -------------------------


def _map_inputs(app, n=90, seed=11):
    tr = app.translate_map()
    kernel = tr.map_kernel
    snapshot = Interpreter(tr.program, stdin="").run_until_region(
        kernel.original_region)
    records = [ln.encode("utf-8") + b"\n"
               for ln in app.generate(n, seed=seed).splitlines()]
    return kernel, records, snapshot


def _fresh_store(kernel):
    return GlobalKVStore(kernel.launch.total_threads,
                         kernel.launch.total_threads * 64,
                         kernel.key_length, kernel.value_length)


def _store_pairs(store):
    return sorted((t, p.key, p.value, p.partition)
                  for t, p in store.iter_pairs())


class TestMapKernelEngines:
    @pytest.mark.parametrize("variant", ["stealing", "global"])
    def test_map_launch_identical(self, variant):
        kernel, records, snapshot = _map_inputs(get_app("WC"))
        device = GpuDevice(CLUSTER1.gpu)
        run = (run_map_kernel if variant == "stealing"
               else run_map_kernel_global_stealing)
        stores = {e: _fresh_store(kernel) for e in GPU_ENGINES}
        launches = {
            e: run(device, kernel, records, snapshot, stores[e],
                   Partitioner(4), engine=e)
            for e in GPU_ENGINES
        }
        tree = launches["tree"]
        for e in GPU_ENGINES:
            if e == "tree":
                continue
            other = launches[e]
            assert other.records_processed == tree.records_processed \
                == len(records), e
            assert other.counters == tree.counters, e
            assert other.cost == tree.cost, e
            assert _store_pairs(stores[e]) == _store_pairs(stores["tree"]), e


# -- fuzz corpus through the four-engine oracle -----------------------------


CORPUS = load_corpus()


class TestCorpusUnderBothDefaults:
    """run_case pins each engine explicitly, so corpus conformance must
    not depend on the ambient default engine."""

    @pytest.mark.parametrize("case", CORPUS, ids=[c.name for c in CORPUS])
    def test_corpus_conforms_with_tree_default(self, case):
        with use_gpu_engine("tree"):
            divergence = run_case(case)
        assert divergence is None, divergence.report()


# -- GPU bench harness ------------------------------------------------------


class TestGpuBenchHarness:
    def test_bench_gpu_app_report(self):
        from repro.bench import bench_gpu_app, check_min_speedup

        row = bench_gpu_app("WC", records=40, repeat=1)
        assert row["app"] == "WC"
        assert row["records"] == 40
        assert row["output_keys"] > 0
        assert row["simulated_map_seconds"] > 0
        assert row["speedup"] is not None
        report = {"results": [row]}
        assert check_min_speedup(report, 0.0) == []
        assert check_min_speedup(report, 1e9) == ["WC"]

    def test_bench_cli_gpu_path(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench_gpu.json"
        rc = main(["bench", "--path", "gpu", "--apps", "WC", "--records",
                   "40", "--repeat", "1", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "WC" in capsys.readouterr().out

    def test_bench_cli_out_requires_single_path(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["bench", "--path", "all", "--apps", "WC", "--records",
                   "40", "--repeat", "1",
                   "--out", str(tmp_path / "nope.json")])
        assert rc == 1
        assert "single --path" in capsys.readouterr().err
