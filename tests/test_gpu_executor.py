"""Kernel executor tests: record stealing, emit paths, combine semantics,
divergence/vectorization effects on the clock (paper §4.1–4.2)."""

import pytest

from repro.compiler import translate
from repro.config import CLUSTER1, LaunchConfig, OptimizationFlags
from repro.gpu.device import GpuDevice
from repro.gpu.executor import (
    _assign_records_static,
    _assign_records_stealing,
    run_combine_kernel,
    run_map_kernel,
)
from repro.kvstore import GlobalKVStore, KVPair, Partitioner
from repro.minic import parse
from repro.minic.interpreter import Interpreter


def make_map_setup(source, records, opt=None, reducers=4, capacity=4096):
    tr = translate(parse(source), opt=opt)
    kernel = tr.map_kernel
    device = GpuDevice(CLUSTER1.gpu)
    per_thread = 2 * (kernel.kvpairs_per_record or 4)
    store = GlobalKVStore(
        total_threads=kernel.launch.total_threads,
        capacity_pairs=max(capacity, kernel.launch.total_threads * per_thread),
        key_length=kernel.key_length,
        value_length=kernel.value_length,
    )
    snapshot = Interpreter(tr.program, stdin="").run_until_region(
        kernel.original_region)
    return device, kernel, store, Partitioner(reducers), snapshot


class TestRecordAssignment:
    def test_static_round_robin(self):
        lanes = _assign_records_static([b"a", b"b", b"c", b"d", b"e"], 2)
        assert lanes[0] == [b"a", b"c", b"e"]
        assert lanes[1] == [b"b", b"d"]

    def test_stealing_balances_bytes(self):
        # One huge record plus many small ones: the thread that grabbed
        # the huge record must not steal anything else.
        records = [b"x" * 1000] + [b"y" * 10] * 10
        lanes, steals = _assign_records_stealing(records, 2, 1000, None)
        assert steals == len(records)
        big_lane = next(l for l in lanes if b"x" * 1000 in l)
        small_lane = next(l for l in lanes if b"x" * 1000 not in l)
        assert len(big_lane) == 1
        assert len(small_lane) == 10

    def test_static_leaves_imbalance(self):
        records = [b"x" * 1000 if i % 2 == 0 else b"y" * 10 for i in range(10)]
        lanes = _assign_records_static(records, 2)
        loads = [sum(len(r) for r in lane) for lane in lanes]
        assert max(loads) > 10 * min(loads)  # all big records on thread 0

    def test_stealing_respects_capacity(self):
        from repro.errors import KVStoreOverflow

        with pytest.raises(KVStoreOverflow):
            _assign_records_stealing([b"r"] * 100, 2, 10, 10)  # 1 record each


class TestMapKernel(object):
    def test_wordcount_emits_all_words(self, wc_map_source):
        dev, kernel, store, part, snap = make_map_setup(
            wc_map_source, None)
        records = [b"the quick fox", b"the dog"]
        result = run_map_kernel(dev, kernel, records, snap, store, part)
        assert store.emitted_pairs == 5
        assert result.records_processed == 2
        keys = sorted(p.key for _t, p in store.iter_pairs())
        assert keys == ["dog", "fox", "quick", "the", "the"]

    def test_cost_positive_and_scales(self, wc_map_source):
        dev, kernel, store, part, snap = make_map_setup(wc_map_source, None)
        few = run_map_kernel(dev, kernel, [b"a b c"] * 5, snap, store, part)
        dev2, kernel2, store2, part2, snap2 = make_map_setup(wc_map_source, None)
        many = run_map_kernel(dev2, kernel2, [b"a b c"] * 500, snap2,
                              store2, part2)
        assert many.cost.seconds > few.cost.seconds > 0

    # Small launch geometry (threads process several records each — the
    # real per-split regime) and per-token compute, like kmeans: the
    # paper's record-stealing scenario (§4.1).
    SMALL_LAUNCH_MAP = """
int main()
{
    char tok[30], *line;
    size_t nbytes = 10000;
    double acc;
    int read, lp, offset, i, k;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(k) value(acc) \\
        kvpairs(2) blocks(2) threads(128)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        acc = 0.0;
        k = 0;
        while( (lp = getWord(line, offset, tok, read, 30)) != -1) {
            offset += lp;
            for(i = 0; i < 60; i++) {
                acc += sqrt(atof(tok) + i);
            }
            k++;
        }
        printf("%d\\t%f\\n", k, acc);
    }
    free(line);
    return 0;
}
"""

    def test_stealing_faster_on_skewed_records(self):
        # Pareto-skewed record lengths in random order (the kmeans-like
        # workload of §4.1).
        import random

        rng = random.Random(5)
        skewed = [b"7.5 " * max(1, min(18, int(rng.paretovariate(1.1))))
                  for _ in range(1600)]
        on = OptimizationFlags.all_on()
        off = on.but(record_stealing=False)
        d1, k1, s1, p1, sn1 = make_map_setup(self.SMALL_LAUNCH_MAP, None,
                                             opt=on, capacity=100_000)
        t_on = run_map_kernel(d1, k1, skewed, sn1, s1, p1).cost.seconds
        d2, k2, s2, p2, sn2 = make_map_setup(self.SMALL_LAUNCH_MAP, None,
                                             opt=off, capacity=100_000)
        t_off = run_map_kernel(d2, k2, skewed, sn2, s2, p2).cost.seconds
        assert t_on < t_off  # Fig. 7d direction

    def test_steal_counts_charged(self, wc_map_source):
        dev, kernel, store, part, snap = make_map_setup(wc_map_source, None)
        result = run_map_kernel(dev, kernel, [b"a b"] * 10, snap, store, part)
        assert result.steals == 10

    def test_requires_mapper_kernel(self, wc_combine_source):
        tr = translate(parse(wc_combine_source))
        from repro.errors import GpuError

        with pytest.raises(GpuError):
            run_map_kernel(GpuDevice(CLUSTER1.gpu), tr.combine_kernel,
                           [], {}, None, None)


class TestCombineKernel:
    def run_combine(self, source, pairs, opt=None):
        tr = translate(parse(source), opt=opt)
        kernel = tr.combine_kernel
        snapshot = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)
        device = GpuDevice(CLUSTER1.gpu)
        return run_combine_kernel(device, kernel, pairs, snapshot)

    def test_sums_adjacent_keys(self, wc_combine_source):
        pairs = [KVPair("a", 1, 0), KVPair("a", 1, 0), KVPair("b", 1, 0)]
        result = self.run_combine(wc_combine_source, pairs)
        assert dict(result.output) in ({"a": 2, "b": 1},)

    def test_chunk_boundary_partial_aggregates_allowed(self, wc_combine_source):
        # §4.2: warps emit partial sums at chunk edges; totals must match
        # after re-aggregation but the pair count may exceed the serial
        # combiner's.
        pairs = [KVPair("k", 1, 0) for _ in range(5000)]
        result = self.run_combine(wc_combine_source, pairs)
        total = sum(v for _k, v in result.output)
        assert total == 5000
        assert len(result.output) >= 1
        assert result.chunks > 1  # parallelism actually happened

    def test_empty_partition(self, wc_combine_source):
        result = self.run_combine(wc_combine_source, [])
        assert result.output == [] and result.cost.seconds == 0.0

    def test_vectorized_combine_faster(self, wc_combine_source):
        pairs = [KVPair(f"key{i % 50}", 1, 0) for i in range(2000)]
        pairs.sort(key=lambda p: p.key)
        fast = self.run_combine(wc_combine_source, pairs)
        slow = self.run_combine(
            wc_combine_source, pairs,
            opt=OptimizationFlags.all_on().but(vectorize_combine=False),
        )
        assert fast.cost.seconds < slow.cost.seconds  # Fig. 7b direction
        assert dict(fast.output) == dict(slow.output)
