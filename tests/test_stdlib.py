"""Modelled C library tests."""

import pytest

from repro.errors import CRuntimeError
from repro.minic import parse
from repro.minic.interpreter import run_filter
from repro.minic.stdlib import InputStream, c_format


def run_main(body: str, stdin: str = "") -> str:
    out, _ = run_filter(parse("int main() {\n" + body + "\nreturn 0;\n}"), stdin)
    return out


class TestPrintf:
    def test_basic_conversions(self):
        assert c_format("%d|%s|%c", [5, "hi", 65]) == "5|hi|A"

    def test_float_precision(self):
        assert c_format("%.3f", [3.14159]) == "3.142"

    def test_width_padding(self):
        assert c_format("%5d", [42]) == "   42"

    def test_percent_literal(self):
        assert c_format("100%%", []) == "100%"

    def test_too_few_args_raises(self):
        with pytest.raises(CRuntimeError, match="too few"):
            c_format("%d %d", [1])

    def test_long_modifier(self):
        assert c_format("%ld", [2**40]) == str(2**40)

    def test_scientific(self):
        assert c_format("%e", [1500.0]).startswith("1.5")


class TestInputStream:
    def test_interleaved_line_and_token_reads(self):
        s = InputStream("header line\n42 3.5\n")
        assert s.read_line() == "header line\n"
        assert s.read_int() == 42
        assert s.read_float() == 3.5
        assert s.read_line() == "\n"
        assert s.read_line() is None

    def test_read_token_skips_newlines(self):
        s = InputStream("\n\n  tok1\ttok2")
        assert s.read_token() == "tok1"
        assert s.read_token() == "tok2"
        assert s.read_token() is None

    def test_negative_numbers(self):
        s = InputStream("-5 -2.5e1")
        assert s.read_int() == -5
        assert s.read_float() == -25.0


class TestStringFunctions:
    def test_strcmp_ordering(self):
        assert run_main('printf("%d %d %d", strcmp("a","a"), '
                        'strcmp("a","b") < 0, strcmp("b","a") > 0);') == "0 1 1"

    def test_strcpy_and_strlen(self):
        assert run_main('char b[16]; strcpy(b, "hello"); '
                        'printf("%d %s", strlen(b), b);') == "5 hello"

    def test_strcpy_overflow_raises(self):
        with pytest.raises(CRuntimeError, match="overflows"):
            run_main('char b[3]; strcpy(b, "too long");')

    def test_strncmp(self):
        assert run_main('printf("%d", strncmp("abcX","abcY",3));') == "0"

    def test_strcat(self):
        assert run_main('char b[16]; strcpy(b, "ab"); strcat(b, "cd"); '
                        'printf("%s", b);') == "abcd"

    def test_strstr_found_and_not(self):
        assert run_main('char h[32]; strcpy(h, "mapreduce rocks"); '
                        'printf("%d", strstr(h, "duce") != NULL);') == "1"
        assert run_main('char h[32]; strcpy(h, "mapreduce"); '
                        'printf("%d", strstr(h, "gpu") == NULL);') == "1"

    def test_strstr_returns_pointer_into_haystack(self):
        assert run_main('char h[16]; char *p; strcpy(h, "xxabc"); '
                        'p = strstr(h, "abc"); printf("%c", *p);') == "a"


class TestConversions:
    def test_atoi(self):
        assert run_main('printf("%d", atoi("  -42xyz"));') == "-42"

    def test_atoi_garbage_is_zero(self):
        assert run_main('printf("%d", atoi("xyz"));') == "0"

    def test_atof(self):
        assert run_main('printf("%.2f", atof("2.5e1"));') == "25.00"


class TestMath:
    def test_sqrt_exp_log(self):
        assert run_main('printf("%.1f %.1f %.1f", sqrt(16.0), exp(0.0), '
                        'log(1.0));') == "4.0 1.0 0.0"

    def test_pow_fabs(self):
        assert run_main('printf("%.0f %.1f", pow(2.0, 10.0), fabs(-2.5));') == \
            "1024 2.5"

    def test_erf_bounds(self):
        out = run_main('printf("%.4f %.4f", erf(0.0), erf(10.0));')
        assert out == "0.0000 1.0000"

    def test_trig(self):
        assert run_main('printf("%.1f %.1f", sin(0.0), cos(0.0));') == "0.0 1.0"

    def test_fmin_fmax(self):
        assert run_main('printf("%.0f %.0f", fmin(2.0,3.0), fmax(2.0,3.0));') == "2 3"


class TestGetWord:
    def test_tokenizes_line(self):
        out = run_main(
            "char line[32]; char w[8]; int off, lp; "
            'strcpy(line, "a bb  ccc"); off = 0; '
            'while ((lp = getWord(line, off, w, 32, 8)) != -1) '
            '{ printf("[%s]", w); off += lp; }'
        )
        assert out == "[a][bb][ccc]"

    def test_truncates_to_max_length(self):
        out = run_main(
            "char line[32]; char w[4]; int lp; "
            'strcpy(line, "abcdefgh"); '
            'lp = getWord(line, 0, w, 32, 4); printf("%s", w);'
        )
        assert out == "abc"

    def test_empty_line_returns_minus_one(self):
        out = run_main(
            "char line[8]; char w[8]; line[0] = '\\0'; "
            'printf("%d", getWord(line, 0, w, 8, 8));'
        )
        assert out == "-1"
