"""Scenario-registry integrity and conformance.

The registry is the single source of truth for app/workload/shape
enumeration, so these tests check it from three sides: structural
integrity (unique ids, every reference resolvable), datagen determinism
(each app's canonical input digests identically across calls and
distinctly across apps), and functional conformance (the registry
extensions run through the full four-engine fuzz oracle; the paper's
eight get the same treatment from ``test_apps`` and the fuzz corpus).

A grep tripwire keeps the enumeration honest: no source or test file
may reintroduce a hard-coded paper-app list outside the registry.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.fuzz.oracle import run_scenario
from repro.scenarios import (
    APP_ORDER,
    EXTENDED_APP_ORDER,
    PAPER_APP_ORDER,
    SCALES,
    SCENARIOS,
    SHAPES,
    WORKLOADS,
    all_scenarios,
    datagen_digest,
    generate_input,
    get_scenario,
    get_shape,
    get_workload,
    records_for,
    scenario_apps,
    validate_registry,
)
from repro.scheduling import POLICIES

REPO = Path(__file__).resolve().parents[1]


class TestRegistryIntegrity:
    def test_validate_registry_passes(self):
        validate_registry()

    def test_scenario_ids_unique_and_well_formed(self):
        ids = [s.id for s in SCENARIOS]
        assert len(ids) == len(set(ids))
        for scenario_id in ids:
            assert re.fullmatch(r"[a-z0-9][a-z0-9-]*", scenario_id)

    def test_every_reference_resolves(self):
        from repro.apps import get_app

        for scenario in SCENARIOS:
            assert get_app(scenario.app).short == scenario.app
            assert get_shape(scenario.shape).id == scenario.shape
            assert scenario.policy in POLICIES
            assert scenario.app in WORKLOADS

    def test_every_app_has_a_workload_and_vice_versa(self):
        from repro.apps import all_apps

        assert set(WORKLOADS) == {a.short for a in all_apps()}
        assert set(WORKLOADS) == set(APP_ORDER)

    def test_app_order_partitions(self):
        assert APP_ORDER == PAPER_APP_ORDER + EXTENDED_APP_ORDER
        assert not set(PAPER_APP_ORDER) & set(EXTENDED_APP_ORDER)

    def test_scenarios_cover_every_app(self):
        assert scenario_apps() == APP_ORDER

    def test_workload_scales_monotonic(self):
        for workload in WORKLOADS.values():
            assert 0 < workload.small <= workload.medium <= workload.large
            assert workload.calibration > 0

    def test_unknown_lookups_raise_config_error(self):
        with pytest.raises(ConfigError):
            get_scenario("no-such-scenario")
        with pytest.raises(ConfigError):
            get_shape("no-such-shape")
        with pytest.raises(ConfigError):
            get_workload("ZZ")
        with pytest.raises(ConfigError):
            get_workload("WC").records("giant")

    def test_shapes_materialize(self):
        for shape in SHAPES.values():
            cluster = shape.cluster()
            assert cluster.num_slaves >= 1
            assert shape.total_cpu_slots == \
                cluster.num_slaves * cluster.max_map_slots_per_node
            factors = shape.speed_factors()
            if factors is not None:
                assert all(0 <= node < cluster.num_slaves for node in factors)
                assert all(f > 0 for f in factors.values())

    def test_map_tasks_positive_and_scale_monotonic(self):
        for scenario in all_scenarios():
            small, medium, large = (scenario.map_tasks(s) for s in SCALES)
            assert 0 < small <= medium <= large


class TestDatagenDeterminism:
    def test_digests_stable_across_calls(self, registry_app):
        assert datagen_digest(registry_app, "small") == \
            datagen_digest(registry_app, "small")

    def test_digests_distinct_across_datasets(self):
        digests = {app: datagen_digest(app, "small") for app in APP_ORDER}
        # HS and HR are two queries over the same ratings dataset (same
        # generator, records, and seed), so their inputs coincide by
        # design; every other app draws a distinct dataset.
        assert digests["HS"] == digests["HR"]
        rest = {app: h for app, h in digests.items() if app != "HR"}
        assert len(set(rest.values())) == len(rest)

    def test_seed_changes_input(self, registry_app):
        assert datagen_digest(registry_app, "small", seed=7) != \
            datagen_digest(registry_app, "small", seed=8)

    def test_input_has_declared_record_count(self, registry_app):
        text = generate_input(registry_app, "small")
        assert len(text.strip().splitlines()) == \
            records_for(registry_app, "small")


@pytest.mark.parametrize("short", EXTENDED_APP_ORDER)
def test_new_apps_pass_four_engine_oracle(short):
    # The paper's eight run through the same oracle in the nightly
    # registry-conformance leg (`repro fuzz --registry`); tier-1 pins
    # the four registry extensions, whose coverage is newest.
    divergence = run_scenario(short, scale="small")
    assert divergence is None, divergence.report()


@pytest.mark.slow
def test_full_registry_conformance():
    # Nightly: every covered app (paper eight + extensions) through the
    # oracle — the same leg `repro fuzz --registry` runs in CI.
    from repro.fuzz.runner import registry_conformance

    divergences = registry_conformance(scale="small")
    assert divergences == [], [d.report() for d in divergences]


def test_no_hardcoded_app_lists_outside_registry():
    """Grep tripwire: a *full* paper-app enumeration (all eight tags as
    quoted strings within one literal-sized window) lives in the
    registry and nowhere else. Curated subsets — e.g. which apps an
    ablation applies to — are fine; duplicating the whole roster is the
    drift this guards against."""
    tag_pattern = {
        tag: re.compile(rf"""["']{tag}["']""") for tag in PAPER_APP_ORDER
    }
    window = 400  # chars: generous for an 8-entry list or dict literal
    allowed = {
        # The enumeration itself.
        "src/repro/scenarios/registry.py",
        # Per-app *data* keyed by tag, not an enumeration: the Fig. 5
        # calibration bands and the Table 2 combiner truth table.
        "src/repro/costmodel/calibration.py",
        "tests/test_apps.py",
    }
    offenders = []
    for root in (REPO / "src", REPO / "tests"):
        for path in sorted(root.rglob("*.py")):
            rel = str(path.relative_to(REPO))
            if rel in allowed:
                continue
            text = path.read_text(encoding="utf-8")
            positions = [[m.start() for m in p.finditer(text)]
                         for p in tag_pattern.values()]
            if not all(positions):
                continue
            # All eight tags appear; flag if some window holds them all.
            for start in positions[0]:
                if all(any(start <= q < start + window for q in quoted)
                       for quoted in positions):
                    offenders.append(rel)
                    break
    assert offenders == [], (
        "hard-coded full app lists (use repro.scenarios instead): "
        f"{offenders}")
