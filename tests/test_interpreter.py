"""Interpreter tests: C semantics, memory safety, control flow, IO."""

import pytest

from repro.errors import CRuntimeError
from repro.minic import parse
from repro.minic.interpreter import Interpreter, run_filter


def run(source: str, stdin: str = "") -> str:
    out, _counters = run_filter(parse(source), stdin)
    return out


def run_main(body: str, stdin: str = "") -> str:
    return run("int main() {\n" + body + "\nreturn 0;\n}", stdin)


class TestArithmetic:
    def test_integer_division_truncates_toward_zero(self):
        assert run_main('printf("%d %d", 7/2, -7/2);') == "3 -3"

    def test_modulo_sign_follows_dividend(self):
        assert run_main('printf("%d %d", 7%3, -7%3);') == "1 -1"

    def test_division_by_zero_raises(self):
        with pytest.raises(CRuntimeError, match="division by zero"):
            run_main("int x; x = 1/0;")

    def test_float_arithmetic(self):
        assert run_main('printf("%.2f", 1.0/4.0);') == "0.25"

    def test_mixed_int_float_promotes(self):
        assert run_main('printf("%.1f", 3/2.0);') == "1.5"

    def test_bitwise_and_shifts(self):
        assert run_main('printf("%d %d %d", 6&3, 6|1, 1<<4);') == "2 7 16"

    def test_comparison_yields_int(self):
        assert run_main('printf("%d %d", 3 < 5, 5 < 3);') == "1 0"

    def test_logical_short_circuit(self):
        # Division by zero on the right must not be evaluated.
        assert run_main('printf("%d", 0 && 1/0);') == "0"
        assert run_main('printf("%d", 1 || 1/0);') == "1"

    def test_ternary(self):
        assert run_main('printf("%d", 5 > 3 ? 10 : 20);') == "10"

    def test_unary_not_and_neg(self):
        assert run_main('printf("%d %d", !0, -5);') == "1 -5"


class TestVariablesAndScope:
    def test_assignment_and_compound(self):
        assert run_main('int x; x = 4; x += 3; x *= 2; printf("%d", x);') == "14"

    def test_pre_and_post_increment(self):
        assert run_main('int i, a, b; i = 5; a = i++; b = ++i; '
                        'printf("%d %d %d", a, b, i);') == "5 7 7"

    def test_block_scope_shadows(self):
        out = run_main('int x; x = 1; { int x; x = 99; } printf("%d", x);')
        assert out == "1"

    def test_char_cast_truncates(self):
        assert run_main('printf("%d", (char) 300);') == "44"

    def test_float_to_int_cast(self):
        assert run_main('printf("%d", (int) 3.9);') == "3"

    def test_undeclared_identifier_raises(self):
        with pytest.raises(CRuntimeError, match="undeclared"):
            run_main('printf("%d", nope);')


class TestArraysAndPointers:
    def test_array_write_read(self):
        assert run_main('int a[4]; a[0]=1; a[3]=9; printf("%d %d", a[0], a[3]);') == "1 9"

    def test_out_of_bounds_read_raises(self):
        with pytest.raises(CRuntimeError, match="out-of-bounds"):
            run_main("int a[4]; int x; x = a[4];")

    def test_out_of_bounds_write_raises(self):
        with pytest.raises(CRuntimeError, match="out-of-bounds"):
            run_main("int a[2]; a[-1] = 0;")

    def test_pointer_arithmetic(self):
        assert run_main(
            'char s[8]; strcpy(s, "abc"); char *p; p = s; p = p + 1; '
            'printf("%c", *p);'
        ) == "b"

    def test_pointer_difference(self):
        assert run_main(
            "char s[8]; char *p, *q; p = s; q = p + 3; "
            'printf("%d", q - p);'
        ) == "3"

    def test_null_deref_raises(self):
        with pytest.raises(CRuntimeError, match="null"):
            run_main("char *p; p = NULL; printf(\"%c\", *p);")

    def test_malloc_and_free(self):
        assert run_main(
            "char *p; p = (char*) malloc(4); p[0] = 65; "
            'printf("%c", p[0]); free(p);'
        ) == "A"

    def test_double_free_raises(self):
        with pytest.raises(CRuntimeError, match="double free"):
            run_main("char *p; p = (char*) malloc(4); free(p); free(p);")

    def test_use_after_free_raises(self):
        with pytest.raises(CRuntimeError, match="use-after-free"):
            run_main("char *p; p = (char*) malloc(4); free(p); p[0] = 1;")

    def test_two_dim_array_flattened(self):
        out = run_main(
            "int g[2][3]; int i; "
            "for(i = 0; i < 6; i++) g[i/3][i%3] = i; "
            'printf("%d %d", g[0][2], g[1][0]);'
        )
        # Row-major: g[0][2] is element 2... flattened as single buffer.
        assert out.split()[0] == "2"


class TestControlFlow:
    def test_while_loop(self):
        assert run_main('int i, s; i = 0; s = 0; '
                        'while (i < 5) { s += i; i++; } printf("%d", s);') == "10"

    def test_for_loop(self):
        assert run_main('int s; s = 0; for (int i = 1; i <= 4; i++) s += i; '
                        'printf("%d", s);') == "10"

    def test_break(self):
        assert run_main('int i; for (i = 0; i < 100; i++) if (i == 3) break; '
                        'printf("%d", i);') == "3"

    def test_continue(self):
        assert run_main('int i, s; s = 0; for (i = 0; i < 5; i++) '
                        '{ if (i % 2) continue; s += i; } printf("%d", s);') == "6"

    def test_runaway_loop_guarded(self):
        prog = parse("int main() { while (1) {} return 0; }")
        interp = Interpreter(prog, max_steps=10_000)
        with pytest.raises(CRuntimeError, match="exceeded"):
            interp.run()


class TestFunctions:
    def test_user_function_call(self):
        assert run(
            "int sq(int x) { return x * x; }\n"
            'int main() { printf("%d", sq(7)); return 0; }'
        ) == "49"

    def test_recursion(self):
        assert run(
            "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }\n"
            'int main() { printf("%d", fib(10)); return 0; }'
        ) == "55"

    def test_array_passed_by_reference(self):
        assert run(
            "int bump(int *a) { a[0] = a[0] + 1; return 0; }\n"
            'int main() { int v[1]; v[0] = 41; bump(v); printf("%d", v[0]); return 0; }'
        ) == "42"

    def test_wrong_arity_raises(self):
        with pytest.raises(CRuntimeError, match="expects"):
            run("int f(int a) { return a; }\nint main() { return f(); }")

    def test_undefined_function_raises(self):
        with pytest.raises(CRuntimeError, match="undefined function"):
            run_main("mystery();")

    def test_exit_status_from_main(self):
        prog = parse("int main() { return 3; }")
        assert Interpreter(prog).run() == 3


class TestIO:
    def test_getline_reads_lines(self):
        out = run_main(
            "char *line; size_t n; int r; n = 100; "
            "line = (char*) malloc(100); "
            'while ((r = getline(&line, &n, stdin)) != -1) printf("<%d>", r); '
            "free(line);",
            stdin="ab\ncdef\n",
        )
        assert out == "<3><5>"

    def test_scanf_string_and_int(self):
        out = run_main(
            "char w[16]; int v; "
            'while (scanf("%s %d", w, &v) == 2) printf("%s=%d;", w, v);',
            stdin="a 1\nb 2\n",
        )
        assert out == "a=1;b=2;"

    def test_scanf_returns_minus_one_at_eof(self):
        out = run_main('int v; printf("%d", scanf("%d", &v));', stdin="")
        assert out == "-1"

    def test_region_snapshot_captures_values(self, wc_map_source):
        prog = parse(wc_map_source)
        region = next(s for s in prog.main.body.stmts if s.pragma is not None)
        snapshot = Interpreter(prog, stdin="").run_until_region(region)
        assert "word" in snapshot and "nbytes" in snapshot
        assert snapshot["nbytes"] == 10000


class TestCounters:
    def test_counters_accumulate(self):
        _out, counters = run_filter(
            parse('int main() { int i, s; s = 0; for (i = 0; i < 10; i++) s += i; '
                  "return s; }"), "")
        assert counters.ops > 10
        assert counters.branches >= 10

    def test_fp_ops_counted_for_float_math(self):
        _out, c_int = run_filter(
            parse("int main() { int x; x = 1 + 2; return 0; }"), "")
        _out, c_flt = run_filter(
            parse("int main() { double x; x = 1.5 + 2.5; return 0; }"), "")
        assert c_flt.fp_ops > c_int.fp_ops
