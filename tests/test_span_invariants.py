"""Span invariants over traced runs of every benchmark app.

For each Table 2 app we trace a small GPU-path local job and assert the
structural invariants (everything closed, clean nesting) plus the
timing contract: per-task ``phase`` spans tile the task span, and the
task spans' durations are exactly the simulated seconds the pipeline
reported. The CPU path and the cluster simulator get the same checks.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.apps import all_apps, get_app
from repro.config import CLUSTER1
from repro.hadoop import ClusterSimulator, JobConf
from repro.hadoop.local import LocalJobRunner
from repro.scenarios import records_for
from repro.scheduling import TailPolicy

from repro.gpu import use_gpu_engine

from .span_invariants import (
    assert_phase_spans_identical,
    assert_phase_sums,
    assert_standard_invariants,
    phase_children,
)

APP_TAGS = [app.short for app in all_apps()]


def _traced_local_run(short: str, use_gpu: bool, gpu_engine: str | None = None):
    # Registry "small" counts: enough for a few map tasks each.
    app = get_app(short)
    text = app.generate(records_for(short, "small"), seed=7)
    runner = LocalJobRunner(app, use_gpu=use_gpu, split_bytes=4 * 1024,
                            gpu_engine=gpu_engine)
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        result = runner.run(text)
    return rec, result


@pytest.mark.parametrize("short", APP_TAGS)
def test_gpu_job_span_invariants(short):
    rec, result = _traced_local_run(short, use_gpu=True)
    assert_standard_invariants(rec)
    assert_phase_sums(
        rec, "gpu-task",
        expected_seconds=[r.seconds for r in result.gpu_task_results],
    )
    assert obs.validate_trace(obs.export_chrome(rec)) == []


# BS/KM vectorize, WC takes the whole-kernel fallback — the invariants
# and the phase parity must hold on both sides of the eligibility fence.
@pytest.mark.parametrize("short", ["WC", "BS", "KM"])
def test_vector_engine_span_invariants_and_phase_parity(short):
    rec_v, result_v = _traced_local_run(short, use_gpu=True,
                                        gpu_engine="vector")
    assert_standard_invariants(rec_v)
    assert_phase_sums(
        rec_v, "gpu-task",
        expected_seconds=[r.seconds for r in result_v.gpu_task_results],
    )
    assert obs.validate_trace(obs.export_chrome(rec_v)) == []
    rec_c, _result_c = _traced_local_run(short, use_gpu=True,
                                         gpu_engine="compiled")
    assert_phase_spans_identical(rec_c, rec_v)


def test_gpu_task_spans_break_down_by_fig6_categories():
    rec, _result = _traced_local_run("WC", use_gpu=True)
    task = rec.spans("gpu-task")[0]
    names = [c.name for c in phase_children(rec, task)]
    assert names == ["input_read", "record_count", "map", "aggregate",
                     "sort", "combine", "output_write"]


def test_cpu_job_span_invariants():
    rec, result = _traced_local_run("WC", use_gpu=False)
    assert_standard_invariants(rec)
    assert_phase_sums(
        rec, "cpu-task",
        expected_seconds=[t.total for t in result.cpu_task_timings],
    )


def test_job_span_covers_map_critical_path():
    # The job span's extent is the map phase's *makespan* at this run's
    # worker count — which collapses to the summed task seconds when
    # serial, so the serial golden traces are unaffected. A pooled
    # reduce phase extends the span by its own critical path.
    rec, result = _traced_local_run("WC", use_gpu=True)
    (job_span,) = rec.spans("job")
    expected = result.map_critical_path_seconds
    if result.reduce_workers > 1:
        expected += result.reduce_critical_path_seconds
    assert job_span.dur == pytest.approx(expected)
    if result.workers == 1 and result.reduce_workers == 1:
        assert job_span.dur == pytest.approx(result.total_map_seconds)
    assert job_span.args["map_tasks"] == result.map_tasks


def test_simulator_attempt_spans_match_job_result():
    job = JobConf(
        name="WC", num_map_tasks=60, num_reduce_tasks=4, cluster=CLUSTER1,
        cpu_task_seconds=60.0, gpu_task_seconds=10.0,
    )
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        result = ClusterSimulator(job, TailPolicy()).run()
    assert_standard_invariants(rec)
    attempts = rec.spans("attempt")
    counters = rec.metrics.snapshot()["counters"]
    assert len(attempts) == counters["sim.attempts"]
    completed = [s for s in attempts if s.args.get("outcome") == "completed"]
    assert len(completed) == result.cpu_tasks + result.gpu_tasks
    (job_span,) = rec.spans("job")
    assert job_span.end == pytest.approx(result.job_seconds)
    # every attempt lies inside the job's wall-clock extent
    assert all(s.end <= job_span.end + 1e-9 for s in attempts)
    # reduce phases tile the gap between map end and job end
    reduce_spans = rec.spans("reduce-phase")
    assert sum(s.dur for s in reduce_spans) == pytest.approx(
        result.reduce_phase_seconds
    )
    assert obs.validate_trace(obs.export_chrome(rec)) == []


def test_simulator_attempt_lanes_never_overlap_per_slot():
    # High task count over few nodes exercises lane reuse heavily;
    # assert_standard_invariants would fail on any slot-lane collision.
    job = JobConf(
        name="WC", num_map_tasks=120, num_reduce_tasks=4, cluster=CLUSTER1,
        cpu_task_seconds=30.0, gpu_task_seconds=4.0,
    )
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        ClusterSimulator(job, TailPolicy()).run()
    assert_standard_invariants(rec)
    # lanes are per-slot: a node's cpu lanes stay within its slot count
    cpu_lanes = {
        (s.pid, s.tid) for s in rec.spans("attempt") if "cpu" in s.tid
    }
    per_node: dict[str, int] = {}
    for pid, _tid in cpu_lanes:
        per_node[pid] = per_node.get(pid, 0) + 1
    assert max(per_node.values()) <= CLUSTER1.max_map_slots_per_node
