"""Parser tests: declarations, expressions, statements, pragmas."""

import pytest

from repro.errors import ParseError
from repro.minic import cast as A
from repro.minic import ctypes as T
from repro.minic.parser import parse


def parse_main_body(body: str) -> A.Block:
    prog = parse("int main() {\n" + body + "\n}")
    return prog.main.body


def first_stmt(body: str) -> A.Stmt:
    return parse_main_body(body).stmts[0]


class TestDeclarations:
    def test_scalar_declaration(self):
        stmt = first_stmt("int a;")
        assert isinstance(stmt, A.DeclStmt)
        assert stmt.decls[0].name == "a"
        assert stmt.decls[0].ctype == T.INT

    def test_multiple_declarators(self):
        stmt = first_stmt("int a, b, c;")
        assert [d.name for d in stmt.decls] == ["a", "b", "c"]

    def test_pointer_declarator(self):
        stmt = first_stmt("char *p;")
        assert stmt.decls[0].ctype == T.Pointer(T.CHAR)

    def test_mixed_pointer_and_array(self):
        stmt = first_stmt("char word[30], *line;")
        assert stmt.decls[0].ctype == T.Array(T.CHAR, 30)
        assert stmt.decls[1].ctype == T.Pointer(T.CHAR)

    def test_two_dimensional_array(self):
        stmt = first_stmt("int grid[4][8];")
        assert stmt.decls[0].ctype == T.Array(T.Array(T.INT, 8), 4)

    def test_initializer(self):
        stmt = first_stmt("int a = 5;")
        assert isinstance(stmt.decls[0].init, A.IntLit)
        assert stmt.decls[0].init.value == 5

    def test_double_and_size_t(self):
        assert first_stmt("double d;").decls[0].ctype == T.DOUBLE
        assert first_stmt("size_t n;").decls[0].ctype == T.SIZE_T

    def test_unsigned_int(self):
        assert first_stmt("unsigned int u;").decls[0].ctype == T.UNSIGNED


class TestExpressions:
    def expr(self, text: str) -> A.Expr:
        stmt = first_stmt(text + ";")
        assert isinstance(stmt, A.ExprStmt)
        return stmt.expr

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert isinstance(e, A.BinOp) and e.op == "+"
        assert isinstance(e.right, A.BinOp) and e.right.op == "*"

    def test_comparison_below_logic(self):
        e = self.expr("a < b && c > d")
        assert e.op == "&&"
        assert e.left.op == "<" and e.right.op == ">"

    def test_assignment_right_associative(self):
        e = self.expr("a = b = 1")
        assert isinstance(e, A.Assign)
        assert isinstance(e.value, A.Assign)

    def test_compound_assignment(self):
        assert self.expr("x += 2").op == "+="

    def test_ternary(self):
        e = self.expr("a ? b : c")
        assert isinstance(e, A.Conditional)

    def test_cast_of_malloc(self):
        e = self.expr("(char*) malloc(10)")
        assert isinstance(e, A.Cast)
        assert e.to_type == T.Pointer(T.CHAR)
        assert isinstance(e.operand, A.Call)

    def test_sizeof_type(self):
        e = self.expr("sizeof(double)")
        assert isinstance(e, A.SizeofType) and e.of_type == T.DOUBLE

    def test_address_of_and_deref(self):
        e = self.expr("*(&x)")
        assert isinstance(e, A.UnaryOp) and e.op == "*"
        assert isinstance(e.operand, A.UnaryOp) and e.operand.op == "&"

    def test_call_with_args(self):
        e = self.expr("getWord(line, offset, word, read, 30)")
        assert isinstance(e, A.Call) and len(e.args) == 5

    def test_nested_index(self):
        e = self.expr("grid[i][j]")
        assert isinstance(e, A.Index) and isinstance(e.base, A.Index)

    def test_postfix_increment(self):
        e = self.expr("i++")
        assert isinstance(e, A.PostfixOp) and e.op == "++"

    def test_unary_minus_and_not(self):
        assert self.expr("-x").op == "-"
        assert self.expr("!x").op == "!"

    def test_parenthesized_grouping(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*" and e.left.op == "+"


class TestStatements:
    def test_while_loop(self):
        stmt = first_stmt("while (x) { x = x - 1; }")
        assert isinstance(stmt, A.While)
        assert isinstance(stmt.body, A.Block)

    def test_for_loop_with_decl(self):
        stmt = first_stmt("for (int i = 0; i < 8; i++) { s += i; }")
        assert isinstance(stmt, A.For)
        assert isinstance(stmt.init, A.DeclStmt)

    def test_for_loop_empty_clauses(self):
        stmt = first_stmt("for (;;) break;")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_if_else_chain(self):
        stmt = first_stmt("if (a) x = 1; else if (b) x = 2; else x = 3;")
        assert isinstance(stmt, A.If)
        assert isinstance(stmt.otherwise, A.If)

    def test_return_value(self):
        stmt = first_stmt("return 0;")
        assert isinstance(stmt, A.Return) and stmt.value.value == 0

    def test_break_continue(self):
        block = parse_main_body("while (1) { break; continue; }")
        inner = block.stmts[0].body
        assert isinstance(inner.stmts[0], A.Break)
        assert isinstance(inner.stmts[1], A.Continue)

    def test_empty_statement(self):
        stmt = first_stmt(";")
        assert isinstance(stmt, A.ExprStmt) and stmt.expr is None


class TestPragmasAndFunctions:
    def test_pragma_attaches_to_next_statement(self, wc_map_source):
        prog = parse(wc_map_source)
        annotated = [s for s in prog.main.body.stmts if s.pragma is not None]
        assert len(annotated) == 1
        assert isinstance(annotated[0], A.While)
        assert "mapper" in annotated[0].pragma.text

    def test_pragma_attaches_to_block(self, wc_combine_source):
        prog = parse(wc_combine_source)
        annotated = [s for s in prog.main.body.stmts if s.pragma is not None]
        assert len(annotated) == 1
        assert isinstance(annotated[0], A.Block)

    def test_function_with_params(self):
        prog = parse("int add(int a, int b) { return a + b; }\nint main() { return add(1, 2); }")
        add = prog.function("add")
        assert [p.name for p in add.params] == ["a", "b"]

    def test_void_param_list(self):
        prog = parse("int main(void) { return 0; }")
        assert prog.main.params == []

    def test_pointer_param(self):
        prog = parse("int f(char *s) { return 0; }\nint main() { return 0; }")
        assert prog.function("f").params[0].ctype == T.Pointer(T.CHAR)

    def test_missing_function_raises_keyerror(self):
        prog = parse("int main() { return 0; }")
        with pytest.raises(KeyError):
            prog.function("nope")


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "int main() { int ; }",
        "int main() { if a x; }",
        "int main() { return 0 }",
        "int main() {",
        "int main() { x = ; }",
        "int main() { sizeof(x); }",
    ])
    def test_syntax_errors_raise(self, bad):
        with pytest.raises(ParseError):
            parse(bad)
