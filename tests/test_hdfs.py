"""HDFS tests: block splitting, replication, locality."""

import pytest

from repro.errors import HdfsError
from repro.hdfs import Hdfs


@pytest.fixture
def fs():
    return Hdfs(num_nodes=8, block_size=100, replication=3, seed=1)


class TestPut:
    def test_splits_into_blocks(self, fs):
        f = fs.put("f", b"x" * 250)
        assert [b.size for b in f.blocks] == [100, 100, 50]

    def test_read_round_trips(self, fs):
        data = bytes(range(256)) * 3
        fs.put("f", data)
        assert fs.read("f") == data

    def test_replication_factor_respected(self, fs):
        f = fs.put("f", b"x" * 100)
        for block in f.blocks:
            assert len(block.replicas) == 3
            assert len(set(block.replicas)) == 3  # distinct nodes

    def test_replication_clamped_to_cluster(self):
        fs = Hdfs(num_nodes=2, block_size=10, replication=5)
        f = fs.put("f", b"x")
        assert len(f.blocks[0].replicas) == 2

    def test_duplicate_name_rejected(self, fs):
        fs.put("f", b"x")
        with pytest.raises(HdfsError, match="exists"):
            fs.put("f", b"y")

    def test_empty_file_has_one_block(self, fs):
        f = fs.put("f", b"")
        assert len(f.blocks) == 1 and f.blocks[0].size == 0


class TestVirtualFiles:
    def test_metadata_only(self, fs):
        f = fs.put_virtual("big", num_blocks=100)
        assert len(f.blocks) == 100
        assert all(b.data is None for b in f.blocks)

    def test_reading_virtual_raises(self, fs):
        fs.put_virtual("big", num_blocks=2)
        with pytest.raises(HdfsError, match="virtual"):
            fs.read("big")

    def test_custom_block_bytes(self, fs):
        f = fs.put_virtual("big", num_blocks=3, block_bytes=42)
        assert all(b.size == 42 for b in f.blocks)


class TestNamenode:
    def test_locations(self, fs):
        f = fs.put("f", b"x" * 250)
        assert fs.locations("f", 0) == f.blocks[0].replicas

    def test_locations_bad_index(self, fs):
        fs.put("f", b"x")
        with pytest.raises(HdfsError):
            fs.locations("f", 99)

    def test_missing_file(self, fs):
        with pytest.raises(HdfsError, match="no such file"):
            fs.get_file("ghost")

    def test_delete(self, fs):
        fs.put("f", b"x")
        fs.delete("f")
        assert not fs.exists("f")

    def test_ls_sorted(self, fs):
        fs.put("b", b"x")
        fs.put("a", b"x")
        assert fs.ls() == ["a", "b"]

    def test_blocks_on_node(self, fs):
        fs.put("f", b"x" * 500)
        total = sum(len(fs.blocks_on(n)) for n in range(8))
        assert total == 5 * 3  # 5 blocks x replication 3

    def test_locality_check(self, fs):
        f = fs.put("f", b"x" * 100)
        block = f.blocks[0]
        assert block.is_local_to(block.replicas[0])
        non_replica = next(n for n in range(8) if n not in block.replicas)
        assert not block.is_local_to(non_replica)

    def test_placement_deterministic_by_seed(self):
        a = Hdfs(4, 10, 2, seed=7).put("f", b"x" * 30)
        b = Hdfs(4, 10, 2, seed=7).put("f", b"x" * 30)
        assert [x.replicas for x in a.blocks] == [y.replicas for y in b.blocks]
