"""Differential tests: vectorized warp engine vs the per-lane engines.

The vector engine batches every active lane of a launch through numpy
ops, one region at a time, but must stay *indistinguishable* from the
compiled per-lane engine (and the tree reference) at every observable
boundary: job output, simulated per-task seconds, launch counters, and
the full per-warp cost fold. These tests pin

* full-job parity for every registry app across tree/compiled/vector,
* which apps (and which synthetic loop shapes) actually vectorize,
* the predicated-branch property: an If inside a region, masked by an
  arbitrary data-dependent lane pattern, equals per-lane execution,
* the engine-selection seam (an unknown ``REPRO_GPU_ENGINE`` must fail
  loudly at first use), and
* the ``gpu.vector.*`` observability counters.
"""

from __future__ import annotations

import pytest

pytest.importorskip("numpy")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import all_apps, get_app
from repro.compiler.translator import translate
from repro.config import CLUSTER1
from repro.gpu import use_gpu_engine
from repro.gpu.charging import DEFAULT_CHARGE_HOOK
from repro.gpu.device import GpuDevice
from repro.gpu.executor import run_map_kernel
from repro.gpu.vector import VectorLaneRunner, region_eligible
from repro.hadoop.local import LocalJobRunner
from repro.kvstore import GlobalKVStore, Partitioner
from repro.minic import parse
from repro.minic.interpreter import Interpreter, use_backend
from repro.obs import trace as obs

APP_TAGS = [app.short for app in all_apps()]

#: Apps whose kernels contain at least one vectorizable region. The
#: rest either have no loops at all (whole-kernel fallback) or only
#: ineligible ones (LR: non-literal init + printf inside; PR: variable
#: bound).
VECTOR_APPS = {"BS", "KM", "CL"}


# -- helpers ----------------------------------------------------------------


def _gpu_job(app, text, engine, backend="compiled"):
    runner = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024)
    with use_gpu_engine(engine), use_backend(backend):
        return runner.run(text)


def _assert_launches_identical(tag, ref, other):
    assert other.output == ref.output, tag
    assert ([r.seconds for r in other.gpu_task_results]
            == [r.seconds for r in ref.gpu_task_results]), tag
    for i, (a, b) in enumerate(zip(ref.gpu_task_results,
                                   other.gpu_task_results)):
        assert b.map_launch.counters == a.map_launch.counters, (tag, i)
        assert b.map_launch.cost == a.map_launch.cost, (tag, i)
        assert b.partition_output == a.partition_output, (tag, i)
        assert b.output_bytes == a.output_bytes, (tag, i)


def _map_setup(source_or_app):
    """(kernel, snapshot) for a mapper app or raw mapper source."""
    if isinstance(source_or_app, str):
        tr = translate(parse(source_or_app))
    else:
        tr = source_or_app.translate_map()
    kernel = tr.map_kernel
    snapshot = Interpreter(tr.program, stdin="").run_until_region(
        kernel.original_region)
    return kernel, snapshot


def _vector_runner(source_or_app):
    kernel, snapshot = _map_setup(source_or_app)
    return VectorLaneRunner(GpuDevice(CLUSTER1.gpu), kernel, snapshot,
                            DEFAULT_CHARGE_HOOK)


def _first_for(body_src):
    """Parse a main() wrapping ``body_src`` and return its first For."""
    program = parse("int main()\n{\n" + body_src + "\n    return 0;\n}\n")
    fors = []

    def walk(node):
        if node.__class__.__name__ == "For":
            fors.append(node)
        for value in getattr(node, "__dict__", {}).values():
            if isinstance(value, list):
                for item in value:
                    if hasattr(item, "__dict__"):
                        walk(item)
            elif hasattr(value, "__dict__"):
                walk(value)

    walk(program.main)
    assert fors, "body_src contains no for loop"
    return fors[0]


# -- full-job parity across the three lane engines --------------------------


class TestAllAppsVectorParity:
    """Every registry app, full GPU job: tree vs compiled vs vector must
    be byte-identical in output, counters, cost, and simulated seconds
    — whether the vector engine vectorizes or falls back per-lane."""

    @pytest.mark.parametrize("tag", APP_TAGS)
    def test_three_engines_agree(self, tag):
        app = get_app(tag)
        text = app.generate(90, seed=11)
        tree = _gpu_job(app, text, "tree")
        compiled = _gpu_job(app, text, "compiled")
        vector = _gpu_job(app, text, "vector")
        _assert_launches_identical(tag, tree, compiled)
        _assert_launches_identical(tag, tree, vector)

    def test_runner_kwarg_selects_vector(self):
        app = get_app("BS")
        text = app.generate(60, seed=3)
        by_kwarg = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024,
                                  gpu_engine="vector").run(text)
        by_default = _gpu_job(app, text, "compiled")
        _assert_launches_identical("BS", by_default, by_kwarg)


# -- region detection -------------------------------------------------------


class TestRegionDetection:
    @pytest.mark.parametrize("tag", APP_TAGS)
    def test_registry_apps_vectorize_as_expected(self, tag):
        runner = _vector_runner(get_app(tag))
        if tag in VECTOR_APPS:
            assert runner._warp is not None, f"{tag} should vectorize"
            assert runner._warp.regions > 0
        else:
            assert runner._warp is None, \
                f"{tag} should take the whole-kernel fallback"

    ACCEPT = {
        "plain": "for (int i = 0; i < 8; i++) { int t; t = i; }",
        "float_acc": "for (int i = 0; i < 8; i++) "
                     "{ double x; x = (i * 0.5); }",
        "nested": "for (int i = 0; i < 4; i++) "
                  "{ for (int j = 0; j < 4; j++) { int t; t = (i + j); } }",
        "step2": "for (int i = 0; i < 8; i += 2) { int t; t = i; }",
        "le_bound": "for (int i = 0; i <= 7; i++) { int t; t = i; }",
        "predicated_if": "for (int i = 0; i < 8; i++) { double x; x = 0.0; "
                         "if (i > 3) { x = 1.5; } else { x = (x - 0.25); } }",
        # Modulo by a literal on the (uniform) counter is fine; only
        # varying-lane modulo is rejected.
        "counter_mod": "for (int i = 0; i < 8; i++) { int t; t = (i % 3); }",
    }
    REJECT = {
        "var_bound": "int n;\n    n = 8;\n"
                     "    for (int i = 0; i < n; i++) { int t; t = i; }",
        "counter_mutation": "for (int i = 0; i < 8; i++) { i = (i + 2); }",
        "break_inside": "for (int i = 0; i < 8; i++) "
                        "{ int t; t = i; if (t > 2) break; }",
        "printf_inside": "for (int i = 0; i < 8; i++) "
                         "{ printf(\"%d\\n\", i); }",
        "while_inside": "for (int i = 0; i < 8; i++) "
                        "{ int t; t = i; while (t > 0) { t = (t - 1); } }",
        "trips_over_cap": "for (int i = 0; i < 100000; i++) "
                          "{ int t; t = i; }",
        "downward": "for (int i = 8; i > 0; i--) { int t; t = i; }",
    }

    @pytest.mark.parametrize("shape", sorted(ACCEPT))
    def test_eligible_shapes(self, shape):
        assert region_eligible(None, {}, _first_for(self.ACCEPT[shape]))

    @pytest.mark.parametrize("shape", sorted(REJECT))
    def test_ineligible_shapes(self, shape):
        assert not region_eligible(None, {}, _first_for(self.REJECT[shape]))


# -- predicated branches == per-lane execution (property) -------------------


#: A mapper whose region contains an If predicated on the lane's data:
#: each input integer flips the mask differently on every trip.
PREDICATED_SOURCE = """\
int main()
{
    char word[16];
    char *line;
    size_t nbytes = 10000;
    int read;
    int linePtr;
    int offset;
    int val;
    double acc;
    int rr;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(word) value(val) keylength(16) kvpairs(20)
    while ((read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        while ((linePtr = getWord(line, offset, word, read, 16)) != -1) {
            val = atoi(word);
            acc = 0.0;
            for (rr = 0; rr < 6; rr++) {
                if ((0.5 * val) > (1.0 * rr)) {
                    acc = (acc + 1.5);
                }
                else {
                    acc = (acc - 0.25);
                }
            }
            val = (val + (((int) acc) % 7));
            printf("%s\\t%d\\n", word, val);
            offset += linePtr;
        }
    }
    free(line);
    return 0;
}
"""


def _store_pairs(store):
    return sorted((t, p.key, p.value, p.partition)
                  for t, p in store.iter_pairs())


class TestPredicatedBranchProperty:
    KERNEL, SNAPSHOT = _map_setup(PREDICATED_SOURCE)

    def _launch(self, records, engine):
        kernel = self.KERNEL
        store = GlobalKVStore(kernel.launch.total_threads,
                              kernel.launch.total_threads * 64,
                              kernel.key_length, kernel.value_length)
        launch = run_map_kernel(GpuDevice(CLUSTER1.gpu), kernel, records,
                                self.SNAPSHOT, store, Partitioner(4),
                                engine=engine)
        return launch, store

    def test_kernel_actually_vectorizes(self):
        runner = _vector_runner(PREDICATED_SOURCE)
        assert runner._warp is not None
        assert runner._warp.regions == 1

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-40, 40), min_size=1, max_size=24))
    def test_arbitrary_lane_masks_match_per_lane(self, values):
        records = [f"{v}".encode("utf-8") + b"\n" for v in values]
        compiled, store_c = self._launch(records, "compiled")
        vector, store_v = self._launch(records, "vector")
        assert vector.counters == compiled.counters
        assert vector.cost == compiled.cost
        assert _store_pairs(store_v) == _store_pairs(store_c)


# -- engine-selection seam --------------------------------------------------


class TestEnvEngineValidation:
    """``REPRO_GPU_ENGINE`` is read at import; the value is validated on
    every default read so a bad setting fails at first launch with the
    full list of valid engines, never by silently running another
    engine."""

    def test_unknown_env_engine_raises_listing_valid(self, monkeypatch):
        from repro.gpu import engine

        monkeypatch.setattr(engine, "_default_engine", "warp9")
        with pytest.raises(ValueError) as exc_info:
            engine.default_gpu_engine()
        message = str(exc_info.value)
        assert "warp9" in message
        for name in ("compiled", "tree", "vector"):
            assert name in message

    def test_vector_env_engine_accepted(self, monkeypatch):
        from repro.gpu import engine

        monkeypatch.setattr(engine, "_default_engine", "vector")
        assert engine.default_gpu_engine() == "vector"


# -- observability counters -------------------------------------------------


class TestVectorMetrics:
    def _run(self, source_or_app, n=40):
        app = source_or_app
        kernel, snapshot = _map_setup(app)
        records = [ln.encode("utf-8") + b"\n"
                   for ln in app.generate(n, seed=5).splitlines()]
        store = GlobalKVStore(kernel.launch.total_threads,
                              kernel.launch.total_threads * 64,
                              kernel.key_length, kernel.value_length)
        with obs.use_recorder(obs.TraceRecorder()) as rec:
            run_map_kernel(GpuDevice(CLUSTER1.gpu), kernel, records,
                           snapshot, store, Partitioner(4), engine="vector")
        return rec.metrics

    def test_vectorized_app_counts_regions(self):
        metrics = self._run(get_app("BS"))
        assert metrics.count("gpu.vector.regions") > 0

    def test_fallback_app_counts_fallbacks(self):
        metrics = self._run(get_app("WC"))
        assert metrics.count("gpu.vector.regions") == 0
        assert metrics.count("gpu.vector.fallbacks") > 0
