"""Record locator and SequenceFile format tests (paper §5.2)."""

import pytest

from repro.config import TESLA_K40
from repro.runtime.records import locate_records
from repro.runtime.seqfile import (
    SeqFileError,
    SequenceFileReader,
    SequenceFileWriter,
)


class TestRecordLocator:
    def test_splits_on_newlines(self):
        loc = locate_records(b"one\ntwo\nthree\n", TESLA_K40)
        assert loc.records == [b"one", b"two", b"three"]
        assert loc.offsets == [0, 4, 8]

    def test_trailing_unterminated_record_kept(self):
        loc = locate_records(b"a\nb", TESLA_K40)
        assert loc.records == [b"a", b"b"]

    def test_empty_lines_skipped(self):
        loc = locate_records(b"a\n\n\nb\n", TESLA_K40)
        assert loc.records == [b"a", b"b"]

    def test_empty_input(self):
        loc = locate_records(b"", TESLA_K40)
        assert loc.count == 0 and loc.cycles == 0.0 or loc.cycles >= 0.0

    def test_skew_metric(self):
        loc = locate_records(b"x\n" + b"y" * 100 + b"\n", TESLA_K40)
        assert loc.skew > 1.5

    def test_cost_grows_with_size(self):
        small = locate_records(b"a\n" * 100, TESLA_K40)
        large = locate_records(b"a\n" * 10_000, TESLA_K40)
        assert large.cycles > small.cycles


class TestSequenceFile:
    def test_round_trip_mixed_types(self):
        writer = SequenceFileWriter()
        pairs = [("word", 3), (42, 1.5), (b"raw", b"bytes"), ("f", -2.25)]
        writer.extend(pairs)
        image = writer.finish()
        assert SequenceFileReader(image).read_all() == pairs

    def test_empty_file_round_trips(self):
        image = SequenceFileWriter().finish()
        assert SequenceFileReader(image).read_all() == []

    def test_sync_markers_inserted(self):
        writer = SequenceFileWriter()
        for i in range(4001):
            writer.append(i, i)
        image = writer.finish()
        assert SequenceFileReader(image).read_all()[:3] == [(0, 0), (1, 1), (2, 2)]

    def test_checksum_detects_corruption(self):
        writer = SequenceFileWriter()
        writer.append("k", 1)
        image = bytearray(writer.finish())
        image[len(image) // 2] ^= 0xFF
        with pytest.raises(SeqFileError, match="checksum"):
            SequenceFileReader(bytes(image))

    def test_bad_magic_rejected(self):
        with pytest.raises(SeqFileError, match="magic"):
            SequenceFileReader(b"NOTASEQFILE" + b"\0" * 16)

    def test_truncated_file_rejected(self):
        writer = SequenceFileWriter()
        writer.append("k", 1)
        image = writer.finish()
        with pytest.raises(SeqFileError):
            SequenceFileReader(image[: len(image) - 3]).read_all()

    def test_unicode_keys(self):
        writer = SequenceFileWriter()
        writer.append("héllo wörld", 1)
        image = writer.finish()
        assert SequenceFileReader(image).read_all() == [("héllo wörld", 1)]

    def test_count_tracks_appends(self):
        writer = SequenceFileWriter()
        for i in range(7):
            writer.append(i, i)
        assert writer.count == 7
