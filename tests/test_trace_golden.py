"""Golden trace-replay tests.

The canonical trace — Wordcount on Cluster1 under tail scheduling at
``--task-scale 0.02`` — is committed at
``tests/golden/wc_cluster1_tail.trace.json``. Re-running the exact CLI
invocation must reproduce it **byte for byte**: every simulated
timestamp, every scheduling decision, every counter, and the canonical
JSON layout. Any diff means either nondeterminism crept into the
simulator/tracer or a deliberate behaviour change (regenerate with
``python -m repro trace WC --mode simulate --policy tail \\
--task-scale 0.02 -o tests/golden/wc_cluster1_tail.trace.json``).

The schema sweep then validates traces from every Table 2 app on both
execution paths against the Chrome trace-event rules.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import cli, obs
from repro.apps import all_apps, get_app
from repro.gpu import use_gpu_engine
from repro.hadoop.local import LocalJobRunner
from repro.scenarios import records_for

GOLDEN = Path(__file__).resolve().parent / "golden" / "wc_cluster1_tail.trace.json"
GOLDEN_ARGS = ["trace", "WC", "--mode", "simulate", "--policy", "tail",
               "--task-scale", "0.02", "--cluster", "1"]

APP_TAGS = [app.short for app in all_apps()]


def _cli_trace_bytes(tmp_path: Path, name: str, extra_args: list[str]) -> bytes:
    out = tmp_path / name
    rc = cli.main([*extra_args, "-o", str(out)])
    assert rc == 0
    return out.read_bytes()


def test_golden_trace_reproduces_byte_for_byte(tmp_path):
    got = _cli_trace_bytes(tmp_path, "replay.json", GOLDEN_ARGS)
    want = GOLDEN.read_bytes()
    if got != want:  # a real diff: fail with a useful summary
        got_trace = json.loads(got)
        want_trace = json.loads(want)
        assert len(got_trace["traceEvents"]) == len(want_trace["traceEvents"]), (
            "event count diverged"
        )
        for i, (g, w) in enumerate(
            zip(got_trace["traceEvents"], want_trace["traceEvents"])
        ):
            assert g == w, f"first divergent event at traceEvents[{i}]"
        pytest.fail("traces differ outside traceEvents (metrics/otherData?)")


def test_golden_trace_replays_identically_twice(tmp_path):
    first = _cli_trace_bytes(tmp_path, "one.json", GOLDEN_ARGS)
    second = _cli_trace_bytes(tmp_path, "two.json", GOLDEN_ARGS)
    assert first == second


def test_golden_trace_byte_identical_under_explicit_compiled_engine(tmp_path):
    """Pinning the default: with ``REPRO_GPU_ENGINE=compiled`` (here via
    the equivalent context manager) the canonical trace reproduces byte
    for byte — adding the vector engine must not perturb it."""
    with use_gpu_engine("compiled"):
        got = _cli_trace_bytes(tmp_path, "compiled.json", GOLDEN_ARGS)
    assert got == GOLDEN.read_bytes()


def test_local_wc_trace_under_vector_differs_only_in_vector_metrics():
    """A local GPU job traced under the vector engine emits exactly the
    compiled engine's trace events; the only deltas live in the
    ``gpu.vector.*`` metric counters.

    Pooled *reduce* tracks (present when REPRO_WORKERS sets an ambient
    worker count) are excluded from the event comparison: which worker
    a reduce batch lands on is pool scheduling, not engine arithmetic,
    so those tracks legitimately differ between two runs. The reduce
    phase's simulated content has its own byte-identity checks in
    tests/test_parallel.py."""
    app = get_app("WC")
    text = app.generate(records_for("WC", "small"), seed=7)

    def traced(engine):
        with use_gpu_engine(engine), \
                obs.use_recorder(obs.TraceRecorder()) as rec:
            LocalJobRunner(app, use_gpu=True, split_bytes=4 * 1024).run(text)
        return obs.export_chrome(rec)

    def without_reduce_tracks(trace):
        events = trace["traceEvents"]
        reduce_pids = {
            e["pid"] for e in events
            if e.get("name") == "process_name"
            and e["args"]["name"].startswith("reduce")
        }
        return [e for e in events if e["pid"] not in reduce_pids]

    compiled = traced("compiled")
    vector = traced("vector")
    assert without_reduce_tracks(vector) == without_reduce_tracks(compiled)
    vector_counters = dict(vector["otherData"]["metrics"]["counters"])
    extras = {k: vector_counters.pop(k)
              for k in list(vector_counters) if k.startswith("gpu.vector.")}
    assert extras, "vector run recorded no gpu.vector.* counters"
    assert vector_counters == compiled["otherData"]["metrics"]["counters"]


def test_golden_trace_is_schema_valid():
    trace = json.loads(GOLDEN.read_text())
    assert obs.validate_trace(trace) == []
    meta = trace["otherData"]
    assert meta["clock"] == "simulated-seconds"
    counters = meta["metrics"]["counters"]
    assert counters["sim.attempts"] >= counters["sim.tasks.gpu"]


@pytest.mark.parametrize("short", APP_TAGS)
def test_every_app_emits_a_schema_valid_trace(short):
    app = get_app(short)
    text = app.generate(records_for(short, "small"), seed=7)
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        LocalJobRunner(app, use_gpu=True, split_bytes=4 * 1024).run(text)
    trace = obs.export_chrome(rec)
    assert obs.validate_trace(trace) == []
    # canonical serialization round-trips
    assert obs.dumps(trace) == obs.dumps(json.loads(obs.dumps(trace)))


def test_trace_cli_stdout_matches_file_output(tmp_path, capsys):
    # Pinned serial: two pooled runs assign reduce batches to workers
    # by greedy dispatch, so their traces are not byte-stable run to
    # run — and this test is about the stdout/file plumbing, which a
    # serial trace pins exactly even under ambient REPRO_WORKERS.
    args = ["trace", "WC", "--records", "120", "--workers", "1"]
    rc = cli.main(args)
    assert rc == 0
    stdout = capsys.readouterr().out
    via_file = _cli_trace_bytes(tmp_path, "f.json", args)
    assert stdout.encode() == via_file
