"""Device model tests: memory limits (no virtual memory!), transfers."""

import pytest

from repro.config import GB, MB, TESLA_K40, TESLA_M2090, GpuSpec
from repro.errors import GpuError, GpuOutOfMemory
from repro.gpu.device import DeviceMemory, GpuDevice


class TestDeviceMemory:
    def test_alloc_and_free(self):
        mem = DeviceMemory(1024)
        a = mem.malloc(512, "a")
        assert mem.used == 512 and mem.free == 512
        mem.free_(a)
        assert mem.used == 0

    def test_exhaustion_raises_oom(self):
        mem = DeviceMemory(1024)
        mem.malloc(1000)
        with pytest.raises(GpuOutOfMemory) as exc:
            mem.malloc(100)
        assert exc.value.requested == 100 and exc.value.free == 24

    def test_no_overcommit_ever(self):
        # GPUs have no virtual memory: exact accounting, no swapping.
        mem = DeviceMemory(10 * MB)
        allocs = [mem.malloc(3 * MB) for _ in range(3)]
        with pytest.raises(GpuOutOfMemory):
            mem.malloc(2 * MB)
        mem.free_(allocs[0])
        mem.malloc(2 * MB)  # now it fits

    def test_double_free_raises(self):
        mem = DeviceMemory(64)
        a = mem.malloc(8)
        mem.free_(a)
        with pytest.raises(GpuError, match="double"):
            mem.free_(a)

    def test_negative_alloc_raises(self):
        with pytest.raises(GpuError):
            DeviceMemory(64).malloc(-1)


class TestGpuDevice:
    def test_k40_capacity(self):
        dev = GpuDevice(TESLA_K40)
        assert dev.memory.capacity == 12 * GB

    def test_m2090_smaller_than_k40(self):
        assert TESLA_M2090.global_mem < TESLA_K40.global_mem

    def test_transfer_time_monotonic_in_bytes(self):
        dev = GpuDevice(TESLA_K40)
        assert dev.transfer_time(MB) < dev.transfer_time(256 * MB)

    def test_transfer_includes_latency(self):
        dev = GpuDevice(TESLA_K40)
        assert dev.transfer_time(0) == pytest.approx(TESLA_K40.pcie_latency_s)

    def test_reset_revives_device(self):
        dev = GpuDevice(TESLA_K40)
        dev.memory.malloc(GB)
        dev.busy_until = 42.0
        dev.reset()
        assert dev.memory.used == 0 and dev.busy_until == 0.0

    def test_invalid_spec_rejected(self):
        with pytest.raises(Exception):
            GpuSpec(warp_size=0)
