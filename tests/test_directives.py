"""Directive parsing tests (paper §3, Table 1)."""

import pytest

from repro.directives import (
    CLAUSES,
    DirectiveKind,
    find_directives,
    parse_directive,
)
from repro.errors import DirectiveError
from repro.minic import parse


class TestBasicParsing:
    def test_mapper_with_key_value(self):
        d = parse_directive("#pragma mapreduce mapper key(word) value(one)")
        assert d.kind is DirectiveKind.MAPPER
        assert d.key == "word" and d.value == "one"

    def test_combiner_requires_keyin_valuein(self):
        d = parse_directive(
            "#pragma mapreduce combiner key(prevWord) value(count) "
            "keyin(word) valuein(val)"
        )
        assert d.kind is DirectiveKind.COMBINER
        assert d.keyin == "word" and d.valuein == "val"

    def test_integer_clauses(self):
        d = parse_directive(
            "#pragma mapreduce mapper key(k) value(v) keylength(30) "
            "vallength(4) kvpairs(20) blocks(60) threads(128)"
        )
        assert d.keylength == 30 and d.vallength == 4
        assert d.kvpairs == 20 and d.blocks == 60 and d.threads == 128

    def test_integer_clause_accepts_variable_name(self):
        d = parse_directive("#pragma mapreduce mapper key(k) value(v) kvpairs(n)")
        assert d.kvpairs == "n"

    def test_variable_list_clauses(self):
        d = parse_directive(
            "#pragma mapreduce mapper key(k) value(v) "
            "firstprivate(a, b, c) sharedRO(x) texture(t1, t2)"
        )
        assert d.firstprivate == ["a", "b", "c"]
        assert d.shared_ro == ["x"]
        assert d.texture == ["t1", "t2"]

    def test_paper_listing1_directive(self):
        d = parse_directive("#pragma mapreduce mapper key(word) value(one)")
        assert d.is_mapper and not d.is_combiner


class TestValidation:
    def test_missing_key_raises(self):
        with pytest.raises(DirectiveError, match="requires key"):
            parse_directive("#pragma mapreduce mapper value(v)")

    def test_missing_value_raises(self):
        with pytest.raises(DirectiveError, match="requires value"):
            parse_directive("#pragma mapreduce mapper key(k)")

    def test_combiner_missing_keyin_raises(self):
        with pytest.raises(DirectiveError, match="keyin"):
            parse_directive("#pragma mapreduce combiner key(k) value(v)")

    def test_kvpairs_on_combiner_rejected(self):
        with pytest.raises(DirectiveError, match="kvpairs"):
            parse_directive(
                "#pragma mapreduce combiner key(k) value(v) keyin(a) "
                "valuein(b) kvpairs(5)"
            )

    def test_keyin_on_mapper_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("#pragma mapreduce mapper key(k) value(v) keyin(a)")

    def test_unknown_directive_kind(self):
        with pytest.raises(DirectiveError, match="unknown directive"):
            parse_directive("#pragma mapreduce reducer key(k) value(v)")

    def test_unknown_clause(self):
        with pytest.raises(DirectiveError, match="unknown clause"):
            parse_directive("#pragma mapreduce mapper key(k) value(v) frobnicate(x)")

    def test_duplicate_clause(self):
        with pytest.raises(DirectiveError, match="duplicate"):
            parse_directive("#pragma mapreduce mapper key(k) key(j) value(v)")

    def test_nonpositive_integer_rejected(self):
        with pytest.raises(DirectiveError, match="positive"):
            parse_directive("#pragma mapreduce mapper key(k) value(v) kvpairs(0)")

    def test_sharedro_firstprivate_overlap_rejected(self):
        with pytest.raises(DirectiveError, match="both"):
            parse_directive(
                "#pragma mapreduce mapper key(k) value(v) "
                "sharedRO(x) firstprivate(x)"
            )

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DirectiveError):
            parse_directive("#pragma mapreduce mapper key(k) value(v) @@@")

    def test_not_mapreduce_pragma(self):
        with pytest.raises(DirectiveError, match="not a mapreduce"):
            parse_directive("#pragma omp parallel for")


class TestTable1Catalogue:
    def test_all_paper_clauses_present(self):
        expected = {
            "key", "value", "keyin", "valuein", "keylength", "vallength",
            "firstprivate", "sharedRO", "texture", "kvpairs", "blocks",
            "threads",
        }
        assert set(CLAUSES) == expected

    def test_optional_flags_match_table1(self):
        optional = {name for name, spec in CLAUSES.items() if spec.optional}
        assert optional == {"sharedRO", "texture", "kvpairs", "blocks", "threads"}


class TestFindDirectives:
    def test_finds_in_program(self, wc_map_source):
        found = find_directives(parse(wc_map_source))
        assert len(found) == 1
        directive, region, func = found[0]
        assert directive.is_mapper and func.name == "main"

    def test_ignores_non_mapreduce_pragmas(self):
        src = "int main() {\n#pragma once\nint x;\nreturn 0;\n}"
        assert find_directives(parse(src)) == []
