"""Timing model tests: divergence, latency hiding, grid placement."""

import pytest

from repro.config import TESLA_K40
from repro.gpu.timing import MAX_MLP, KernelCost, TimingModel, WarpCost


@pytest.fixture
def model():
    return TimingModel(TESLA_K40)


class TestDivergence:
    def test_uniform_lanes_cost_peak(self, model):
        assert model.divergent_issue([100.0] * 32) == 100.0

    def test_divergence_adds_cost(self, model):
        uniform = model.divergent_issue([100.0] * 32)
        skewed = model.divergent_issue([100.0] + [10.0] * 31)
        # Peak equal, but the skewed warp re-issues some extra work…
        assert skewed > 100.0
        # …while staying below full serialization.
        assert skewed < 100.0 + 31 * 10.0

    def test_empty_warp(self, model):
        assert model.divergent_issue([]) == 0.0

    def test_single_lane(self, model):
        assert model.divergent_issue([42.0]) == 42.0


class TestWarpAndBlockCycles:
    def test_issue_and_memory_separated(self, model):
        issue, mem = model.warp_cycles(WarpCost(instructions=100, global_txn=10))
        assert issue == 100 * TESLA_K40.issue_cycles
        assert mem == 10 * TESLA_K40.global_mem_cycles

    def test_texture_hits_cheaper_than_global(self, model):
        _, tex = model.warp_cycles(WarpCost(texture_accesses=100))
        _, glob = model.warp_cycles(WarpCost(global_txn=100))
        assert tex < glob

    def test_shared_atomics_cheaper_than_global_atomics(self, model):
        # The reason record stealing uses a *shared* counter (§4.1).
        _, shared = model.warp_cycles(WarpCost(shared_atomics=100))
        _, glob = model.warp_cycles(WarpCost(global_atomics=100))
        assert shared < glob / 5

    def test_memory_latency_hidden_by_warps(self, model):
        one_warp = model.block_cycles([WarpCost(global_txn=100)])
        many = model.block_cycles([WarpCost(global_txn=100 / 8)] * 8)
        # Same total transactions, but 8 warps overlap them.
        assert many < one_warp

    def test_mlp_capped(self, model):
        costs = [WarpCost(global_txn=10)] * 32
        block = model.block_cycles(costs)
        total_mem = 32 * 10 * TESLA_K40.global_mem_cycles
        assert block >= total_mem / MAX_MLP


class TestGrid:
    def test_blocks_spread_over_sms(self, model):
        # num_sms equal blocks run fully parallel.
        per_block = 1000.0
        cycles = model.grid_cycles([per_block] * TESLA_K40.num_sms)
        assert cycles == per_block

    def test_excess_blocks_serialize(self, model):
        per_block = 1000.0
        two_rounds = model.grid_cycles([per_block] * (2 * TESLA_K40.num_sms))
        assert two_rounds == 2 * per_block

    def test_empty_grid(self, model):
        assert model.grid_cycles([]) == 0.0

    def test_seconds_conversion(self, model):
        cycles = model.grid_cycles([1000.0])
        assert model.grid_seconds([1000.0]) == cycles * TESLA_K40.cycle_time_s
