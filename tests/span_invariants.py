"""Reusable invariant checks over a filled TraceRecorder.

The trace tests import these; they codify what every recorded run must
satisfy regardless of workload:

* every opened span was closed;
* on any one track, spans either nest or are disjoint — no partial
  overlap (the Chrome renderer assumes this, and the recorder's
  cursor/stack discipline is supposed to guarantee it);
* a span with children covers them (parent interval ⊇ child intervals);
* per GPU/CPU task, the ``phase`` children tile the task span: their
  durations sum to the task's duration (which is the pipeline's
  reported simulated seconds for that task).
"""

from __future__ import annotations

from collections import defaultdict

from repro.obs import SpanEvent, TraceRecorder

#: Float slack for sums accumulated in a different order than the
#: original addition (cursor advancement vs straight summation).
REL_TOL = 1e-9


def _close(a: float, b: float) -> bool:
    return abs(a - b) <= REL_TOL * max(abs(a), abs(b), 1e-12)


def spans_by_track(rec: TraceRecorder) -> dict[tuple[str, str], list[SpanEvent]]:
    tracks: dict[tuple[str, str], list[SpanEvent]] = defaultdict(list)
    for span in rec.spans():
        tracks[(span.pid, span.tid)].append(span)
    return tracks


def assert_all_closed(rec: TraceRecorder) -> None:
    still_open = rec.open_spans()
    assert not still_open, (
        f"{len(still_open)} span(s) never closed: "
        + ", ".join(s.name for s in still_open)
    )


def assert_no_partial_overlap(rec: TraceRecorder) -> None:
    """On each track, any two spans nest or are disjoint."""
    eps = REL_TOL
    for track, spans in spans_by_track(rec).items():
        ordered = sorted(spans, key=lambda s: (s.ts, -(s.dur or 0.0)))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if b.ts >= a.end - eps:
                    break  # sorted: every later span starts after a ends
                # b starts inside a: it must end inside a too.
                assert b.end <= a.end + eps * max(a.end, 1.0), (
                    f"track {track}: span {b.name!r} [{b.ts}, {b.end}] "
                    f"partially overlaps {a.name!r} [{a.ts}, {a.end}]"
                )


def phase_children(rec: TraceRecorder, parent: SpanEvent) -> list[SpanEvent]:
    """The ``phase`` spans lying inside a task span on its track."""
    eps = REL_TOL * max(parent.end, 1.0)
    return [
        s for s in rec.spans("phase")
        if (s.pid, s.tid) == (parent.pid, parent.tid)
        and s.ts >= parent.ts - eps and s.end <= parent.end + eps
    ]


def assert_phase_sums(rec: TraceRecorder, task_cat: str,
                      expected_seconds: list[float] | None = None) -> None:
    """Each task span's phase children sum to its duration; optionally
    the durations must match a reported per-task seconds list."""
    tasks = rec.spans(task_cat)
    assert tasks, f"no {task_cat!r} spans recorded"
    for task in tasks:
        children = phase_children(rec, task)
        assert children, f"task span {task.name!r} has no phase children"
        total = sum(c.dur or 0.0 for c in children)
        assert _close(total, task.dur or 0.0), (
            f"{task.name!r}: phase sum {total} != span duration {task.dur}"
        )
    if expected_seconds is not None:
        durations = [t.dur or 0.0 for t in tasks]
        assert len(durations) == len(expected_seconds), (
            f"{len(durations)} {task_cat} spans vs "
            f"{len(expected_seconds)} reported tasks"
        )
        for got, want in zip(durations, expected_seconds):
            assert _close(got, want), (
                f"{task_cat} span duration {got} != reported {want}"
            )


def assert_standard_invariants(rec: TraceRecorder) -> None:
    assert_all_closed(rec)
    assert_no_partial_overlap(rec)


def assert_phase_spans_identical(ref: TraceRecorder,
                                 other: TraceRecorder) -> None:
    """Two traced runs laid down *exactly* the same phase spans.

    This is the GPU lane-engine contract: an alternative engine (vector,
    tree) may execute a kernel any way it likes, but the Fig. 6 phase
    spans it records — name, track, start, duration — must be
    byte-identical to the reference engine's, with no tolerance: the
    simulated clock is deterministic arithmetic, not measurement.

    Pooled *reduce* tracks are excluded: which worker a reduce batch
    lands on is pool scheduling, not engine arithmetic, so under
    REPRO_WORKERS the ``reduce@w<pid>`` track names and splice offsets
    legitimately differ between two runs. The reduce phase's simulated
    content has its own byte-identity check (``reduce_task_timings``
    equality in tests/test_parallel.py)."""
    def key(rec):
        return [(s.pid, s.tid, s.name, s.ts, s.dur)
                for s in rec.spans("phase")
                if not s.pid.startswith("reduce")]

    ref_spans, other_spans = key(ref), key(other)
    assert other_spans == ref_spans, (
        "phase spans diverged: "
        + next((f"{a} != {b}" for a, b in zip(ref_spans, other_spans)
                if a != b), "span count differs")
    )
