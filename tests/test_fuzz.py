"""Unit tests for the conformance fuzzer itself (repro.fuzz).

The corpus replay tests (test_fuzz_corpus.py) prove old divergences stay
fixed; these tests prove the *machinery* — generator determinism and
well-formedness, oracle conformance over a fresh slice, the shrinker's
reduction loop, and campaign digests/persistence.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz.gen import (
    KIND_SCHEDULE,
    KINDS,
    FuzzCase,
    generate_case,
    generate_source,
)
from repro.fuzz.oracle import Divergence, run_case
from repro.fuzz.runner import load_corpus, persist_divergence, run_campaign
from repro.fuzz import shrink as shrink_mod
from repro.fuzz.shrink import shrink_case
from repro.minic import parse


class TestGenerator:
    def test_deterministic_for_fixed_seed(self):
        for index in range(12):
            a = generate_case(9, index)
            b = generate_case(9, index)
            assert (a.source, a.input_text, a.combine_source) == \
                (b.source, b.input_text, b.combine_source)

    def test_schedule_covers_all_kinds(self):
        assert set(KIND_SCHEDULE) == set(KINDS)

    @pytest.mark.parametrize("kind", KINDS)
    def test_sources_parse(self, kind):
        for seed in range(6):
            program = parse(generate_source(seed, kind))
            assert program.main is not None

    def test_mapper_assigns_int_key_before_use(self):
        # Regression: reading last iteration's kv is a cross-record
        # dependence; CPU and GPU would legitimately disagree on it.
        seen_int_key = 0
        for seed in range(40):
            source = generate_source(seed, "mapper")
            if "int kv;" not in source:
                continue
            seen_int_key += 1
            body = source[source.index("getWord"):]
            assert body.index("kv = (abs(atoi(word))") < body.index("val =")
        assert seen_int_key > 0

    def test_case_names_unique_within_campaign(self):
        names = [generate_case(0, i).name for i in range(20)]
        assert len(set(names)) == len(names)


class TestOracleSlice:
    """A fresh slice of the case stream conforms (fast tier-1 witness;
    the 300-case sweep runs in the nightly CI job)."""

    @pytest.mark.parametrize("index", range(10))
    def test_case_conforms(self, index):
        divergence = run_case(generate_case(0, index))
        assert divergence is None, divergence.report()


class TestShrinker:
    def _fake_oracle(self, marker: str):
        def fake(case: FuzzCase):
            if marker in case.source and case.input_text.count("\n") >= 1:
                return Divergence(case, "fake-check", "synthetic")
            return None
        return fake

    def test_deletes_irrelevant_statements_and_lines(self, monkeypatch):
        monkeypatch.setattr(shrink_mod, "run_case",
                            self._fake_oracle('printf("keep'))
        case = FuzzCase(
            kind="expr", seed=0, index=0,
            source=(
                "int main() {\n"
                "int a; int b;\n"
                "a = 1; b = 2;\n"
                "a = (a + b); b = (b * 3);\n"
                'printf("keep %d\\n", a);\n'
                'printf("drop %d\\n", b);\n'
                "return 0;\n}\n"
            ),
            input_text="one\ntwo\nthree\nfour\n",
        )
        small = shrink_case(case, "fake-check")
        assert 'printf("keep' in small.source
        assert 'printf("drop' not in small.source
        assert small.input_text.count("\n") <= 2
        assert len(small.source) < len(case.source)

    def test_rejects_mutants_with_other_checks(self, monkeypatch):
        def fake(case: FuzzCase):
            if "b = 2" not in case.source:
                return Divergence(case, "other-check", "different bug")
            return Divergence(case, "fake-check", "synthetic")
        monkeypatch.setattr(shrink_mod, "run_case", fake)
        case = FuzzCase(
            kind="expr", seed=0, index=0,
            source="int main() {\nint b;\nb = 2;\nreturn 0;\n}\n",
            input_text="",
        )
        small = shrink_case(case, "fake-check")
        assert "b = 2" in small.source

    def test_attempt_budget_is_respected(self, monkeypatch):
        calls = []

        def fake(case: FuzzCase):
            calls.append(1)
            return Divergence(case, "fake-check", "synthetic")
        monkeypatch.setattr(shrink_mod, "run_case", fake)
        case = FuzzCase(
            kind="expr", seed=0, index=0,
            source="int main() {\nint a;\na = 1;\nreturn 0;\n}\n",
            input_text="x\n" * 40,
        )
        shrink_case(case, "fake-check", max_attempts=25)
        assert len(calls) <= 26  # budget + the normalization probe


class TestCampaign:
    def test_digest_reproducible(self):
        a = run_campaign(seed=4, count=8, shrink=False)
        b = run_campaign(seed=4, count=8, shrink=False)
        assert a.ok and b.ok
        assert a.digest == b.digest
        assert a.executed == 8

    def test_time_budget_stops_early(self):
        result = run_campaign(seed=4, count=10_000, time_budget=0.0)
        assert result.executed < 10_000

    def test_persist_and_load_round_trip(self, tmp_path):
        case = FuzzCase(
            kind="mapper", seed=1, index=2,
            source="int main() { return 0; }\n",
            input_text="a b\n",
            gpu=True,
            combine_source="int main() { return 1; }\n",
        )
        div = Divergence(case, "some-check", "details here")
        entry = persist_divergence(tmp_path, case, div)
        assert json.loads((entry / "meta.json").read_text())["check"] == \
            "some-check"
        loaded = load_corpus(tmp_path)
        assert len(loaded) == 1
        got = loaded[0]
        assert (got.kind, got.seed, got.index, got.gpu) == ("mapper", 1, 2, True)
        assert got.source == case.source
        assert got.input_text == case.input_text
        assert got.combine_source == case.combine_source
        assert got.label == "some-check"
