"""Differential tests: closure-compiled backend vs the tree-walker.

The compiled backend is only correct if it is *indistinguishable* from
the tree-walker at every observable boundary: streaming-filter stdout,
ExecCounters totals, error messages, and the simulated GPU cost model
(which interprets kernel regions). Every benchmark app runs through
both backends here and must agree bit for bit.
"""

from __future__ import annotations

import pytest

from repro.apps import all_apps, get_app
from repro.errors import ConfigError, CRuntimeError
from repro.hadoop.local import LocalJobRunner, parse_kv_line
from repro.minic import parse
from repro.minic.cache import compiled_program
from repro.minic.interpreter import run_filter, use_backend

APP_TAGS = [app.short for app in all_apps()]
COMBINER_TAGS = [app.short for app in all_apps() if app.has_combiner]
NO_COMBINER_TAGS = [app.short for app in all_apps() if not app.has_combiner]


def _both_backends(program, text):
    out_tree, cnt_tree = run_filter(program, text, backend="tree")
    out_comp, cnt_comp = run_filter(program, text, backend="compiled")
    return (out_tree, cnt_tree), (out_comp, cnt_comp)


class TestMapFilters:
    """Every app's map program, identical stdout and counters."""

    @pytest.mark.parametrize("tag", APP_TAGS)
    def test_map_output_and_counters_match(self, tag):
        app = get_app(tag)
        text = app.generate(80, seed=11)
        (out_t, cnt_t), (out_c, cnt_c) = _both_backends(
            app.map_program(), text)
        assert out_c == out_t
        assert cnt_c == cnt_t


class TestCombineAndReduceFilters:
    """Combiner/reduce programs consume sorted KV text identically.

    Parametrized over the apps that actually carry a combiner (Table 2),
    so combiner-less apps are asserted as such instead of skipped."""

    @pytest.mark.parametrize("tag", COMBINER_TAGS)
    def test_combine_matches(self, tag):
        app = get_app(tag)
        text = app.generate(80, seed=11)
        map_out, _ = run_filter(app.map_program(), text, backend="tree")
        kv = "\n".join(sorted(map_out.splitlines()))
        if kv:
            kv += "\n"
        (out_t, cnt_t), (out_c, cnt_c) = _both_backends(
            app.combine_program(), kv)
        assert out_c == out_t
        assert cnt_c == cnt_t

    @pytest.mark.parametrize("tag", NO_COMBINER_TAGS)
    def test_no_combiner_apps_have_none(self, tag):
        app = get_app(tag)
        assert app.combine_program() is None
        assert app.translate_combine() is None
        with pytest.raises(ConfigError, match="no combiner"):
            app.cpu_combine("k\t1\n")


class TestErrorParity:
    """Runtime errors carry the same message through both backends."""

    @pytest.mark.parametrize("body, match", [
        ("int x; x = 1 / 0;", "division by zero"),
        ('printf("%d %d\\n", 1);', "too few arguments"),
        ("int a[4]; int x; x = a[9];", "out-of-bounds"),
    ])
    def test_same_error(self, body, match):
        program = parse("int main() {\n" + body + "\nreturn 0;\n}")
        errors = []
        for backend in ("tree", "compiled"):
            with pytest.raises(CRuntimeError, match=match) as exc_info:
                run_filter(program, "", backend=backend)
            errors.append(str(exc_info.value))
        assert errors[0] == errors[1]


class TestGpuPathUnaffected:
    """The GPU cost simulation must not depend on the CPU backend."""

    @pytest.mark.parametrize("tag", ["WC", "KM"])
    def test_gpu_job_identical_under_both_backends(self, tag):
        app = get_app(tag)
        text = app.generate(120, seed=5)
        results = {}
        for backend in ("tree", "compiled"):
            runner = LocalJobRunner(app, use_gpu=True,
                                    split_bytes=16 * 1024)
            with use_backend(backend):
                results[backend] = runner.run(text)
        tree, comp = results["tree"], results["compiled"]
        assert comp.output == tree.output
        assert comp.map_tasks == tree.map_tasks
        tree_secs = [r.seconds for r in tree.gpu_task_results]
        comp_secs = [r.seconds for r in comp.gpu_task_results]
        assert comp_secs == tree_secs

    def test_cpu_gpu_agree_compiled(self):
        app = get_app("WC")
        text = app.generate(120, seed=5)
        with use_backend("compiled"):
            cpu = LocalJobRunner(app, use_gpu=False).run(text)
            gpu = LocalJobRunner(app, use_gpu=True).run(text)
        assert gpu.output == cpu.output


class TestKeyCoercion:
    """Streaming keys keep their text identity (satellite fix).

    ``"007"`` and ``"1.0"`` are different words than ``"7"`` and
    ``"1"`` — only canonical decimal renderings may come back as ints,
    matching the GPU path which never coerces ``%s`` keys."""

    def test_canonical_int_keys_stay_int(self):
        assert parse_kv_line("7\t1") == (7, 1)
        assert parse_kv_line("-3\t1") == (-3, 1)
        assert parse_kv_line("0\t1") == (0, 1)

    def test_noncanonical_numeric_keys_stay_text(self):
        assert parse_kv_line("007\t1") == ("007", 1)
        assert parse_kv_line("1.0\t1") == ("1.0", 1)
        assert parse_kv_line("+5\t1") == ("+5", 1)
        assert parse_kv_line(" 5\t1") == (" 5", 1)

    def test_word_keys_stay_text(self):
        assert parse_kv_line("word\t2") == ("word", 2)

    def test_values_still_fully_coerced(self):
        assert parse_kv_line("k\t2.5") == ("k", 2.5)
        assert parse_kv_line("k\t007") == ("k", 7)


class TestCompileCache:
    """One Program compiles once; repeat runs reuse the closure tree."""

    def test_compiled_program_is_memoized(self):
        program = get_app("WC").map_program()
        assert compiled_program(program) is compiled_program(program)

    def test_translation_is_memoized(self):
        from repro.compiler import translate_cached

        program = get_app("WC").map_program()
        assert translate_cached(program) is translate_cached(program)


class TestBenchHarness:
    """`python -m repro bench` smoke: report shape and backend parity."""

    def test_bench_app_report(self):
        from repro.bench import bench_app, check_min_speedup

        row = bench_app("WC", records=40, repeat=1)
        assert row["app"] == "WC"
        assert row["records"] == 40
        assert row["output_keys"] > 0
        assert row["speedup"] is not None
        report = {"results": [row]}
        assert check_min_speedup(report, 0.0) == []
        assert check_min_speedup(report, 1e9) == ["WC"]

    def test_bench_cli_writes_report(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "bench.json"
        rc = main(["bench", "--apps", "WC", "--records", "40",
                   "--repeat", "1", "--out", str(out)])
        assert rc == 0
        assert out.exists()
        assert "WC" in capsys.readouterr().out
