"""Cost model and configuration tests."""

import pytest

from repro.config import (
    CLUSTER1,
    CLUSTER2,
    GB,
    LaunchConfig,
    OptimizationFlags,
)
from repro.costmodel.cpu import CpuTaskModel
from repro.costmodel.io import IoModel
from repro.errors import ConfigError
from repro.minic.interpreter import ExecCounters


class TestClusterConfigs:
    def test_table3_cluster1(self):
        assert CLUSTER1.num_slaves == 48
        assert CLUSTER1.cpu.cores == 20
        assert CLUSTER1.gpus_per_node == 1
        assert CLUSTER1.hdfs_replication == 3
        assert CLUSTER1.max_map_slots_per_node == 20
        assert CLUSTER1.gpu.name == "Tesla K40"

    def test_table3_cluster2(self):
        assert CLUSTER2.num_slaves == 32
        assert CLUSTER2.cpu.cores == 12
        assert CLUSTER2.gpus_per_node == 3
        assert CLUSTER2.hdfs_replication == 1
        assert not CLUSTER2.has_disk  # in-memory system
        assert CLUSTER2.max_map_slots_per_node == 4

    def test_with_gpus_copy(self):
        two = CLUSTER2.with_gpus(2)
        assert two.gpus_per_node == 2
        assert CLUSTER2.gpus_per_node == 3  # original untouched

    def test_cpu_only_variant(self):
        assert CLUSTER1.cpu_only().gpus_per_node == 0

    def test_totals(self):
        assert CLUSTER1.total_map_slots == 48 * 20
        assert CLUSTER2.total_gpus == 96

    def test_invalid_configs_rejected(self):
        import dataclasses

        with pytest.raises(ConfigError):
            dataclasses.replace(CLUSTER1, num_slaves=0)
        with pytest.raises(ConfigError):
            dataclasses.replace(CLUSTER1, hdfs_replication=0)


class TestLaunchConfig:
    def test_defaults_sane(self):
        launch = LaunchConfig()
        assert launch.threads % 32 == 0

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(ConfigError):
            LaunchConfig(blocks=10, threads=100)

    def test_total_threads(self):
        assert LaunchConfig(blocks=4, threads=64).total_threads == 256


class TestOptimizationFlags:
    def test_baseline_all_off(self):
        base = OptimizationFlags.baseline()
        assert not any([base.use_texture, base.vectorize_map,
                        base.vectorize_combine, base.record_stealing,
                        base.kv_aggregation])

    def test_but_toggles_single_flag(self):
        flags = OptimizationFlags.all_on().but(use_texture=False)
        assert not flags.use_texture and flags.vectorize_map

    def test_but_unknown_flag_rejected(self):
        with pytest.raises(ConfigError):
            OptimizationFlags.all_on().but(warp_drive=True)

    def test_but_does_not_mutate_original(self):
        flags = OptimizationFlags.all_on()
        flags.but(use_texture=False)
        assert flags.use_texture


class TestIoModel:
    def test_local_read_faster_than_remote(self, cluster1_io):
        n = 64 * 1024 * 1024
        assert cluster1_io.hdfs_read_s(n, local=True) < \
            cluster1_io.hdfs_read_s(n, local=False)

    def test_replication_costs_more(self, cluster1_io):
        n = 10 * 1024 * 1024
        assert cluster1_io.hdfs_write_s(n, replication=3) > \
            cluster1_io.hdfs_write_s(n, replication=1)

    def test_cluster2_memory_disk_much_faster(self):
        io1 = IoModel.for_cluster(CLUSTER1)
        io2 = IoModel.for_cluster(CLUSTER2)
        n = 64 * 1024 * 1024
        assert io2.local_write_s(n) < io1.local_write_s(n) / 5

    def test_negative_size_rejected(self, cluster1_io):
        with pytest.raises(ConfigError):
            cluster1_io.hdfs_read_s(-1)


class TestCpuTaskModel:
    def model(self):
        return CpuTaskModel(CLUSTER1.cpu, IoModel.for_cluster(CLUSTER1))

    def test_compute_scales_with_work(self):
        m = self.model()
        light = ExecCounters(ops=1000)
        heavy = ExecCounters(ops=1_000_000)
        assert m.compute_s(heavy) > 100 * m.compute_s(light)

    def test_fp_ops_cost_extra(self):
        m = self.model()
        assert m.compute_s(ExecCounters(ops=100, fp_ops=100)) > \
            m.compute_s(ExecCounters(ops=100))

    def test_sort_superlinear(self):
        m = self.model()
        assert m.sort_s(20_000, 30) > 2.1 * m.sort_s(10_000, 30)

    def test_long_keys_sort_slower(self):
        m = self.model()
        assert m.sort_s(10_000, 64) > m.sort_s(10_000, 4)

    def test_task_timing_composition(self):
        m = self.model()
        timing = m.task_timing(
            split_bytes=1 << 20,
            map_counters=ExecCounters(ops=100_000),
            map_kv_pairs=5_000,
            key_length=30,
            combine_counters=ExecCounters(ops=20_000),
            output_bytes=1 << 18,
            map_only=False,
            replication=3,
        )
        assert timing.total == pytest.approx(
            timing.input_read + timing.map + timing.sort
            + timing.combine + timing.output_write
        )
        assert timing.combine > 0

    def test_map_only_writes_to_hdfs(self):
        m = self.model()
        kwargs = dict(
            split_bytes=1 << 20, map_counters=ExecCounters(ops=1000),
            map_kv_pairs=10, key_length=4, combine_counters=None,
            output_bytes=1 << 20, replication=3,
        )
        hdfs = m.task_timing(map_only=True, **kwargs)
        local = m.task_timing(map_only=False, **kwargs)
        assert hdfs.output_write > local.output_write
