"""GPU sort (indirection merge sort) and scan cost-model tests."""

import pytest

from repro.config import TESLA_K40
from repro.gpu.scan import reindex_cycles, scan_cycles
from repro.gpu.sort import sort_partition
from repro.kvstore import KVPair


def pairs_of(keys):
    return [KVPair(k, 1, 0) for k in keys]


class TestSortFunctional:
    def test_sorts_string_keys(self):
        result = sort_partition(pairs_of(["b", "a", "c"]), span=3,
                                key_length=30, spec=TESLA_K40)
        assert [p.key for p in result.pairs] == ["a", "b", "c"]

    def test_sorts_int_keys(self):
        result = sort_partition(pairs_of([5, 1, 3]), span=3,
                                key_length=4, spec=TESLA_K40)
        assert [p.key for p in result.pairs] == [1, 3, 5]

    def test_stable_for_equal_keys(self):
        pairs = [KVPair("k", i, 0) for i in range(5)]
        result = sort_partition(pairs, span=5, key_length=4, spec=TESLA_K40)
        assert [p.value for p in result.pairs] == [0, 1, 2, 3, 4]

    def test_mixed_numeric_keys(self):
        result = sort_partition(pairs_of([2.5, 1, 3]), span=3,
                                key_length=8, spec=TESLA_K40)
        assert [p.key for p in result.pairs] == [1, 2.5, 3]

    def test_empty_partition(self):
        result = sort_partition([], span=0, key_length=4, spec=TESLA_K40)
        assert result.pairs == []


class TestSortCost:
    def test_cost_superlinear_in_span(self):
        small = sort_partition(pairs_of(range(10)), span=100,
                               key_length=4, spec=TESLA_K40)
        large = sort_partition(pairs_of(range(10)), span=10_000,
                               key_length=4, spec=TESLA_K40)
        assert large.cycles > 50 * small.cycles

    def test_whitespace_span_costs_more_than_dense(self):
        # Fig. 7e's mechanism: same pairs, bigger traversal without
        # aggregation.
        dense = sort_partition(pairs_of(range(100)), span=100,
                               key_length=4, spec=TESLA_K40)
        sparse = sort_partition(pairs_of(range(100)), span=1000,
                                key_length=4, spec=TESLA_K40)
        assert sparse.cycles > 5 * dense.cycles

    def test_long_keys_cost_more(self):
        short = sort_partition(pairs_of(["k"] * 100), span=100,
                               key_length=4, spec=TESLA_K40)
        long = sort_partition(pairs_of(["k"] * 100), span=100,
                              key_length=256, spec=TESLA_K40)
        assert long.cycles > short.cycles


class TestScan:
    def test_zero_elements_free(self):
        assert scan_cycles(0, TESLA_K40) == 0.0

    def test_scan_roughly_linear(self):
        c1 = scan_cycles(10_000, TESLA_K40)
        c2 = scan_cycles(20_000, TESLA_K40)
        assert 1.5 < c2 / c1 < 3.0

    def test_reindex_linear_in_pairs(self):
        c1 = reindex_cycles(1000, TESLA_K40)
        c2 = reindex_cycles(2000, TESLA_K40)
        assert c2 == pytest.approx(2 * c1)

    def test_scan_cheap_relative_to_sort(self):
        # Fig. 6: 'partition aggregation times are negligible'.
        n = 100_000
        agg = scan_cycles(7680, TESLA_K40) + reindex_cycles(n, TESLA_K40)
        sort = sort_partition(pairs_of(range(1000)), span=n,
                              key_length=30, spec=TESLA_K40).cycles
        assert agg < sort / 10
