"""Property-based tests for the scheduling policies (hypothesis).

The JobTracker + policy pair is driven directly with arbitrary
heartbeat orderings — interleaved grants, completions, and idle beats
from whichever node hypothesis picks — and three invariants must hold
for every policy in the registry:

* **no double assignment** — a task is granted to at most one tracker
  at a time (every granted id is PENDING at grant, and with no failures
  each task is granted exactly once over the whole run);
* **work conservation** — a heartbeat advertising at least one free
  slot while maps are pending is never sent away empty (the locality
  policy's remote cap and the tail policy's grant cap both floor at
  one);
* **no lost tasks** — after any prefix of arbitrary heartbeats, a
  bounded round-robin drain completes every task.

Grants are also bounded by the advertised free slots, so no ordering
can oversubscribe a tracker.
"""

from __future__ import annotations

from collections import Counter, deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hadoop.heartbeat import Heartbeat
from repro.hadoop.jobtracker import JobTracker
from repro.hadoop.tasks import MapTask, TaskState
from repro.scheduling import POLICIES

POLICY_NAMES = sorted(POLICIES)

MAX_SLAVES = 6
MAX_SLOTS = 4          # free CPU slots a heartbeat may advertise
MAX_GPUS = 2


@st.composite
def schedules(draw):
    """A cluster, a task pool with replica placements, and a heartbeat
    script: (node, free_cpu, free_gpu, completions-before-beat)."""
    num_slaves = draw(st.integers(min_value=1, max_value=MAX_SLAVES))
    gpus = draw(st.integers(min_value=0, max_value=MAX_GPUS))
    nodes = st.integers(min_value=0, max_value=num_slaves - 1)
    prefs = st.lists(nodes, min_size=0, max_size=3).map(tuple)
    task_prefs = draw(st.lists(prefs, min_size=1, max_size=30))
    beats = st.tuples(nodes,
                      st.integers(min_value=0, max_value=MAX_SLOTS),
                      st.integers(min_value=0, max_value=gpus),
                      st.integers(min_value=0, max_value=3))
    script = draw(st.lists(beats, min_size=1, max_size=40))
    speedup = draw(st.floats(min_value=1.0, max_value=30.0))
    return num_slaves, gpus, task_prefs, script, speedup


def _grant(jt: JobTracker, running: deque, granted: Counter,
           node: int, free_cpu: int, free_gpu: int,
           speedup: float, now: float) -> None:
    pending_before = jt.pending_maps
    hb = Heartbeat(node=node, free_cpu_slots=free_cpu,
                   free_gpu_slots=free_gpu, running_tasks=len(running),
                   ave_gpu_speedup=speedup)
    response = jt.handle_heartbeat(hb)
    # Slot bound: a grant never exceeds the advertised free slots.
    assert len(response.task_ids) <= free_cpu + free_gpu
    # Work conservation: free slots + pending work => at least one task.
    if pending_before > 0 and free_cpu + free_gpu > 0:
        assert response.task_ids, (
            f"{jt.policy.name}: empty grant with {pending_before} pending "
            f"and {free_cpu}+{free_gpu} free slots")
    for task_id in response.task_ids:
        task = jt.get_task(task_id)
        # No double assignment: granted ids are PENDING, exactly once.
        assert task.state is TaskState.PENDING
        assert granted[task_id] == 0
        granted[task_id] += 1
        task.assign(node, now)
        running.append(task)


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
@given(schedule=schedules())
@settings(max_examples=60, deadline=None)
def test_policy_invariants_under_arbitrary_heartbeats(policy_name, schedule):
    num_slaves, gpus, task_prefs, script, speedup = schedule
    tasks = [MapTask(task_id=i, split_index=i, preferred_nodes=p)
             for i, p in enumerate(task_prefs)]
    jt = JobTracker(tasks=tasks, policy=POLICIES[policy_name](),
                    num_slaves=num_slaves, gpus_per_node=gpus)
    running: deque[MapTask] = deque()
    granted: Counter[int] = Counter()
    now = 0.0

    for node, free_cpu, free_gpu, completions in script:
        for _ in range(min(completions, len(running))):
            task = running.popleft()
            now += 1.0
            task.complete(now)
            jt.note_completed(task)
        now += 1.0
        _grant(jt, running, granted, node, free_cpu, free_gpu, speedup, now)

    # No lost tasks: a bounded round-robin drain finishes the job from
    # any intermediate state the script left behind.
    for _ in range(len(tasks) + 1):
        if jt.all_maps_done and not running:
            break
        while running:
            task = running.popleft()
            now += 1.0
            task.complete(now)
            jt.note_completed(task)
        for node in range(num_slaves):
            now += 1.0
            _grant(jt, running, granted, node, MAX_SLOTS, gpus, speedup, now)
    assert jt.all_maps_done and not running
    assert all(t.state is TaskState.COMPLETED for t in tasks)
    assert granted == Counter({t.task_id: 1 for t in tasks})
    assert jt.pending_maps == 0


@pytest.mark.parametrize("policy_name", POLICY_NAMES)
def test_policy_registry_entry_is_well_formed(policy_name):
    policy = POLICIES[policy_name]()
    assert policy.name == policy_name
    assert isinstance(policy.uses_gpus, bool)
    # remote_cap is total or None for every policy.
    cap = policy.remote_cap(pending=100, num_slaves=10)
    assert cap is None or cap >= 1
