"""Record stealing vs global work stealing — the design choice of §4.1.

'A global work-stealing approach would incur high overheads, due to
excessive atomic accesses by the GPU threads. HeteroDoop overcomes this
issue by using a novel record-stealing approach that partitions the
records statically across threadblocks but dynamically within
threadblocks.' We implement both and show the paper's choice wins.
"""

import random

import pytest

from repro.compiler import translate
from repro.config import CLUSTER1, OptimizationFlags
from repro.gpu.device import GpuDevice
from repro.gpu.executor import run_map_kernel, run_map_kernel_global_stealing
from repro.kvstore import GlobalKVStore, Partitioner
from repro.minic import parse
from repro.minic.interpreter import Interpreter

# Kmeans-shaped compute-per-record map, small grid (see Fig. 7d notes).
SOURCE = """
int main()
{
    char tok[30], *line;
    size_t nbytes = 10000;
    double acc;
    int read, lp, offset, i, k;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(k) value(acc) \\
        kvpairs(2) blocks(2) threads(128)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        acc = 0.0;
        k = 0;
        while( (lp = getWord(line, offset, tok, read, 30)) != -1) {
            offset += lp;
            for(i = 0; i < 40; i++) {
                acc += sqrt(atof(tok) + i);
            }
            k++;
        }
        printf("%d\\t%f\\n", k, acc);
    }
    free(line);
    return 0;
}
"""


@pytest.fixture(scope="module")
def setup():
    rng = random.Random(17)
    records = [b"3.5 " * max(1, min(16, int(rng.paretovariate(1.2))))
               for _ in range(1200)]
    tr = translate(parse(SOURCE), opt=OptimizationFlags.all_on())
    kernel = tr.map_kernel
    snapshot = Interpreter(tr.program, stdin="").run_until_region(
        kernel.original_region)
    return records, kernel, snapshot


def fresh_store(kernel):
    return GlobalKVStore(kernel.launch.total_threads,
                         kernel.launch.total_threads * 40,
                         kernel.key_length, kernel.value_length)


def test_block_local_stealing_beats_global(setup):
    records, kernel, snapshot = setup
    device = GpuDevice(CLUSTER1.gpu)
    local = run_map_kernel(device, kernel, records, snapshot,
                           fresh_store(kernel), Partitioner(4))
    glob = run_map_kernel_global_stealing(
        device, kernel, records, snapshot, fresh_store(kernel), Partitioner(4))
    # Same functional work…
    assert glob.records_processed == local.records_processed == len(records)
    # …but the single global counter's serialized atomics cost more.
    assert glob.cost.seconds > local.cost.seconds


def test_global_variant_charges_global_atomics(setup):
    records, kernel, snapshot = setup
    device = GpuDevice(CLUSTER1.gpu)
    glob = run_map_kernel_global_stealing(
        device, kernel, records, snapshot, fresh_store(kernel), Partitioner(4))
    assert glob.cost.totals.global_atomics > 0
    assert glob.cost.totals.shared_atomics == 0
    local = run_map_kernel(device, kernel, records, snapshot,
                           fresh_store(kernel), Partitioner(4))
    assert local.cost.totals.shared_atomics > 0
    assert local.cost.totals.global_atomics == 0


def test_functional_outputs_identical(setup):
    records, kernel, snapshot = setup
    device = GpuDevice(CLUSTER1.gpu)
    s1, s2 = fresh_store(kernel), fresh_store(kernel)
    run_map_kernel(device, kernel, records, snapshot, s1, Partitioner(4))
    run_map_kernel_global_stealing(device, kernel, records, snapshot,
                                   s2, Partitioner(4))
    pairs = lambda s: sorted((p.key, round(p.value, 6), p.partition)  # noqa: E731
                             for _t, p in s.iter_pairs())
    assert pairs(s1) == pairs(s2)
