"""End-to-end application tests: for every Table 2 benchmark, the CPU
path, the GPU path, and the pure-Python reference must agree after the
reduce phase — the single most important correctness property of the
reproduction (one source, two processors, same answer)."""

import math

import pytest

from repro.apps import all_apps, get_app
from repro.config import CLUSTER1
from repro.hadoop.local import LocalJobRunner
from repro.scenarios import APP_ORDER, EXTENDED_APP_ORDER, PAPER_APP_ORDER
from repro.scenarios import records_for as _registry_records

APP_TAGS = list(APP_ORDER)


def records_for(short: str) -> int:
    # Registry "small" counts: sized per app (compute apps run fewer
    # records through their heavier interpret loops).
    return _registry_records(short, "small")


def assert_outputs_match(result: dict, reference: dict, tag: str) -> None:
    assert set(map(str, result.keys())) == set(map(str, reference.keys())), \
        f"{tag}: key sets differ"
    by_str = {str(k): v for k, v in result.items()}
    for key, expected in reference.items():
        got = by_str[str(key)]
        assert math.isclose(float(got), float(expected),
                            rel_tol=1e-4, abs_tol=1e-3), \
            f"{tag}: value mismatch at {key}: {got} != {expected}"


class TestRegistry:
    def test_every_scenario_app_registered(self):
        # The paper's eight plus the registry's four extensions.
        assert sorted(a.short for a in all_apps()) == sorted(APP_TAGS)
        assert len(APP_TAGS) == len(PAPER_APP_ORDER) + len(EXTENDED_APP_ORDER)

    def test_table2_combiner_column(self):
        has_combiner = {a.short: a.has_combiner for a in all_apps()}
        table2 = {
            "GR": True, "HS": True, "WC": True, "HR": True,
            "LR": True, "KM": False, "CL": False, "BS": False,
        }
        assert {k: has_combiner[k] for k in table2} == table2
        # Extensions: II's distinct-count is not sum-associative, so it
        # runs combiner-less; the other three combine.
        assert {k: has_combiner[k] for k in EXTENDED_APP_ORDER} == {
            "II": False, "RJ": True, "TS": True, "PR": True,
        }

    def test_map_only_is_blackscholes_only(self):
        assert [a.short for a in all_apps() if a.map_only] == ["BS"]

    def test_km_na_on_cluster2(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="NA"):
            get_app("KM").figures_for("Cluster2")

    def test_natures_match_table2(self):
        natures = {a.short: a.nature for a in all_apps()}
        assert natures["GR"] == "IO" and natures["WC"] == "IO"
        assert natures["BS"] == "Compute" and natures["KM"] == "Compute"


@pytest.mark.parametrize("short", APP_TAGS)
class TestCpuPath:
    def test_cpu_job_matches_reference(self, short):
        app = get_app(short)
        text = app.generate(records_for(short), seed=11)
        runner = LocalJobRunner(app, use_gpu=False, split_bytes=16 * 1024)
        result = runner.run(text)
        assert_outputs_match(result.output, app.reference(text), short)


@pytest.mark.parametrize("short", APP_TAGS)
class TestGpuPath:
    def test_gpu_job_matches_reference(self, short):
        app = get_app(short)
        text = app.generate(records_for(short), seed=12)
        runner = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024)
        result = runner.run(text)
        assert_outputs_match(result.output, app.reference(text), short)
        assert result.gpu_task_results, "no GPU tasks ran"

    def test_gpu_unoptimized_still_correct(self, short):
        # Optimizations change the clock, never the answer.
        from repro.config import OptimizationFlags

        app = get_app(short)
        text = app.generate(records_for(short) // 2 + 10, seed=13)
        runner = LocalJobRunner(app, use_gpu=True, split_bytes=16 * 1024,
                                opt=OptimizationFlags.baseline())
        result = runner.run(text)
        assert_outputs_match(result.output, app.reference(text), short)


class TestCombinerRelaxation:
    def test_partial_aggregates_do_not_change_final_result(self):
        # §4.2: GPU combiner may emit partial sums; reduce repairs them.
        app = get_app("WC")
        text = app.generate(400, seed=14)
        gpu = LocalJobRunner(app, use_gpu=True, split_bytes=8 * 1024).run(text)
        cpu = LocalJobRunner(app, use_gpu=False, split_bytes=8 * 1024).run(text)
        assert gpu.output == cpu.output

    def test_gpu_combiner_may_emit_more_pairs(self):
        app = get_app("WC")
        text = app.generate(600, seed=15)
        gpu = LocalJobRunner(app, use_gpu=True, split_bytes=64 * 1024).run(text)
        cpu = LocalJobRunner(app, use_gpu=False, split_bytes=64 * 1024).run(text)
        # Communication volume may grow slightly, never shrink below CPU's.
        assert gpu.shuffle_bytes >= cpu.shuffle_bytes


class TestDataGenerators:
    def test_seeded_and_deterministic(self):
        for app in all_apps():
            assert app.generate(50, seed=9) == app.generate(50, seed=9)
            assert app.generate(50, seed=9) != app.generate(50, seed=10)

    def test_record_counts(self):
        for app in all_apps():
            text = app.generate(37, seed=1)
            assert len(text.strip().splitlines()) == 37

    def test_ratings_skewed(self):
        from repro.apps import datagen

        text = datagen.movie_ratings(300, seed=2)
        lengths = [len(line.split()) for line in text.splitlines()]
        assert max(lengths) > 4 * (sum(lengths) / len(lengths))
