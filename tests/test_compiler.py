"""Translator tests: Algorithm 1 classification, IO rewrites, KV layout,
vectorization decisions, host plans (paper §4)."""

import pytest

from repro.compiler import VarClass, translate
from repro.compiler.host_codegen import HostStep
from repro.config import OptimizationFlags
from repro.directives import DirectiveKind
from repro.errors import CompilerError
from repro.minic import cast as A
from repro.minic import parse


class TestMapKernelGeneration:
    def test_listing1_translates(self, wc_map_source):
        result = translate(parse(wc_map_source))
        k = result.map_kernel
        assert k is not None and k.kind is DirectiveKind.MAPPER
        assert result.combine_kernel is None

    def test_io_calls_rewritten(self, wc_map_source):
        k = translate(parse(wc_map_source)).map_kernel
        calls = {n.func for n in k.body.walk() if isinstance(n, A.Call)}
        assert "getRecord" in calls and "emitKV" in calls
        assert "getline" not in calls and "printf" not in calls

    def test_variables_renamed_with_gpu_prefix(self, wc_map_source):
        k = translate(parse(wc_map_source)).map_kernel
        idents = {n.name for n in k.body.walk() if isinstance(n, A.Ident)}
        assert "gpu_word" in idents and "gpu_one" in idents
        assert "word" not in idents

    def test_all_listing1_variables_private(self, wc_map_source):
        # Paper Listing 3: every wordcount map variable is thread-private.
        k = translate(parse(wc_map_source)).map_kernel
        assert all(v.klass is VarClass.PRIVATE for v in k.variables.values())

    def test_key_value_layout(self, wc_map_source):
        k = translate(parse(wc_map_source)).map_kernel
        assert k.key_length == 30 and k.key_is_array
        assert k.value_length == 4 and not k.value_is_array

    def test_kvpairs_clause_captured(self, wc_map_source):
        k = translate(parse(wc_map_source)).map_kernel
        assert k.kvpairs_per_record == 20

    def test_mapper_without_getline_rejected(self):
        src = """
int main() {
    int k, v;
    #pragma mapreduce mapper key(k) value(v)
    while (scanf("%d", &k) != -1) { v = 1; printf("%d\\t%d\\n", k, v); }
    return 0;
}
"""
        with pytest.raises(CompilerError, match="record input"):
            translate(parse(src))

    def test_no_directives_rejected(self):
        with pytest.raises(CompilerError, match="no mapreduce"):
            translate(parse("int main() { return 0; }"))

    def test_cuda_source_rendering(self, wc_map_source):
        result = translate(parse(wc_map_source))
        assert "__global__ void gpu_mapper" in result.cuda_source
        assert "recordIndex" in result.cuda_source  # shared-memory counter


class TestCombineKernelGeneration:
    def test_listing2_translates(self, wc_combine_source):
        result = translate(parse(wc_combine_source))
        k = result.combine_kernel
        assert k is not None and k.kind is DirectiveKind.COMBINER

    def test_kv_io_rewritten(self, wc_combine_source):
        k = translate(parse(wc_combine_source)).combine_kernel
        calls = {n.func for n in k.body.walk() if isinstance(n, A.Call)}
        assert "getKV" in calls and "storeKV" in calls
        assert "scanf" not in calls and "printf" not in calls

    def test_private_arrays_moved_to_shared_memory(self, wc_combine_source):
        # Paper §4.2: gpu_prevWord / gpu_word live in per-warp shared memory.
        k = translate(parse(wc_combine_source)).combine_kernel
        assert k.variables["prevWord"].klass is VarClass.SHARED_ARRAY
        assert k.variables["word"].klass is VarClass.SHARED_ARRAY

    def test_firstprivate_scalar(self, wc_combine_source):
        k = translate(parse(wc_combine_source)).combine_kernel
        assert k.variables["count"].klass is VarClass.FIRSTPRIVATE_SCALAR

    def test_shared_mem_accounting(self, wc_combine_source):
        k = translate(parse(wc_combine_source)).combine_kernel
        warps = k.launch.threads // 32
        # two 30-byte char arrays per warp
        assert k.shared_mem_bytes == 2 * 30 * warps

    def test_combiner_without_scanf_rejected(self):
        src = """
int main() {
    int k, v, pk, pv;
    pk = 0; pv = 0;
    #pragma mapreduce combiner key(pk) value(pv) keyin(k) valuein(v) \\
        firstprivate(pk, pv)
    {
        printf("%d\\t%d\\n", pk, pv);
    }
    return 0;
}
"""
        with pytest.raises(CompilerError, match="KV input"):
            translate(parse(src))


class TestVariableClassification:
    SRC_TEXTURE = """
int main() {
    char tok[8], *line;
    size_t n; n = 64;
    double cent[16];
    int read, c, k;
    double v;
    line = (char*) malloc(64);
    for (c = 0; c < 16; c++) cent[c] = c;
    #pragma mapreduce mapper key(k) value(v) texture(cent)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        k = 0; v = cent[0];
        printf("%d\\t%f\\n", k, v);
    }
    return 0;
}
"""

    def test_texture_clause_honoured(self):
        k = translate(parse(self.SRC_TEXTURE)).map_kernel
        assert k.variables["cent"].klass is VarClass.TEXTURE_ARRAY

    def test_texture_falls_back_to_global_when_disabled(self):
        opt = OptimizationFlags.all_on().but(use_texture=False)
        k = translate(parse(self.SRC_TEXTURE), opt=opt).map_kernel
        assert k.variables["cent"].klass is VarClass.GLOBAL_RO_ARRAY

    def test_sharedro_written_is_error(self):
        src = """
int main() {
    char buf[8], *line;
    size_t n; n = 64;
    int read, k, v;
    line = (char*) malloc(64);
    #pragma mapreduce mapper key(k) value(v) sharedRO(buf)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        buf[0] = 1; k = 0; v = 0;
        printf("%d\\t%d\\n", k, v);
    }
    return 0;
}
"""
        with pytest.raises(CompilerError, match="written inside"):
            translate(parse(src))

    def test_directive_names_undeclared_variable(self):
        src = """
int main() {
    char *line; size_t n; int read, k, v;
    n = 64; line = (char*) malloc(64);
    #pragma mapreduce mapper key(k) value(v) sharedRO(ghost)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        k = 0; v = 0; printf("%d\\t%d\\n", k, v);
    }
    return 0;
}
"""
        with pytest.raises(CompilerError, match="ghost"):
            translate(parse(src))


class TestVectorization:
    def test_array_key_gets_char4(self, wc_map_source):
        k = translate(parse(wc_map_source)).map_kernel
        assert k.vector_width == 4

    def test_scalar_kv_stays_scalar(self):
        src = """
int main() {
    char *line; size_t n; int read, k, v;
    n = 64; line = (char*) malloc(64);
    #pragma mapreduce mapper key(k) value(v)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        k = 1; v = 1; printf("%d\\t%d\\n", k, v);
    }
    return 0;
}
"""
        k = translate(parse(src)).map_kernel
        assert k.vector_width == 1

    def test_vectorization_disabled_by_flag(self, wc_map_source):
        opt = OptimizationFlags.all_on().but(vectorize_map=False)
        k = translate(parse(wc_map_source), opt=opt).map_kernel
        assert k.vector_width == 1


class TestHostPlan:
    def test_plan_with_combiner(self, wc_map_source):
        result = translate(parse(wc_map_source))
        steps = result.host_plan.steps
        assert steps[0] is HostStep.COPY_INPUT
        assert steps[-1] is HostStep.FREE
        assert HostStep.SORT in steps

    def test_map_only_plan(self, wc_map_source):
        result = translate(parse(wc_map_source), map_only=True)
        assert result.host_plan.map_only

    def test_launch_clauses_override_geometry(self):
        src = """
int main() {
    char *line; size_t n; int read, k, v;
    n = 64; line = (char*) malloc(64);
    #pragma mapreduce mapper key(k) value(v) blocks(30) threads(64)
    while ( (read = getline(&line, &n, stdin)) != -1 ) {
        k = 1; v = 1; printf("%d\\t%d\\n", k, v);
    }
    return 0;
}
"""
        k = translate(parse(src)).map_kernel
        assert k.launch.blocks == 30 and k.launch.threads == 64
