"""Daemon pool mechanics: batching, reuse, crashes, reaping, arenas.

``tests/test_parallel.py`` proves the *jobs* that ride the pool are
byte-identical to serial; this module tests the pool machinery itself —
the properties that make a persistent pool safe to leave running:
batches reassemble in submission order, workers survive across jobs
with their caches, a crashed worker is respawned and its batches
replayed, an idle worker reaps itself cleanly, and the input arena
actually moves bytes without pickling them per task.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.errors import ConfigError, ReproError
from repro.parallel.arena import (
    INLINE_MIN_BYTES,
    SHM_ENV,
    SplitArena,
    attach_view,
)
from repro.parallel.daemon import (
    BATCH_ENV,
    IDLE_ENV,
    START_ENV,
    DaemonPool,
    WorkerCrashError,
    get_pool,
    pool_metrics,
    resolve_batch_size,
    resolve_start_method,
    shutdown_pool,
)


# -- module-level task functions (pool tasks must pickle) --------------------


def _square(x):
    return x * x


def _pid_of(_x):
    return os.getpid()


def _boom(x):
    raise ValueError(f"task {x} failed")


def _bad_init():
    raise RuntimeError("init exploded")


def _slow_square(x):
    time.sleep(0.02)
    return x * x


def _die_once(marker: str):
    """Crash the worker process the first time only (marker file)."""
    if not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("crashed")
        os._exit(13)
    return "survived"


def _die_always(_x):
    os._exit(13)


_SETUP: dict[str, int] = {}


def _count_setup(value: int = 1) -> None:
    _SETUP["calls"] = _SETUP.get("calls", 0) + value


def _read_setup(_x) -> int:
    return _SETUP.get("calls", 0)


@pytest.fixture
def pool():
    """A private two-worker-capable pool, torn down hard."""
    p = DaemonPool(idle_timeout=0)
    yield p
    p.shutdown()


# -- batch sizing -------------------------------------------------------------


class TestResolveBatchSize:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "7")
        assert resolve_batch_size(100, 4, batch_size=3) == 3

    def test_env_beats_adaptive(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "5")
        assert resolve_batch_size(1000, 4) == 5

    def test_adaptive_targets_batches_per_worker(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        # 64 tasks / (4 workers * 4 waves) = 4 per batch
        assert resolve_batch_size(64, 4) == 4
        # small jobs keep per-task dispatch
        assert resolve_batch_size(6, 4) == 1
        assert resolve_batch_size(1, 1) == 1

    def test_adaptive_is_capped(self, monkeypatch):
        monkeypatch.delenv(BATCH_ENV, raising=False)
        assert resolve_batch_size(1_000_000, 2) == 64

    def test_zero_env_means_adaptive(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "0")
        assert resolve_batch_size(64, 4) == 4

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(BATCH_ENV, "many")
        with pytest.raises(ConfigError):
            resolve_batch_size(10, 2)
        monkeypatch.setenv(BATCH_ENV, "-3")
        with pytest.raises(ConfigError):
            resolve_batch_size(10, 2)


def test_resolve_start_method_env(monkeypatch):
    monkeypatch.setenv(START_ENV, "spawn")
    assert resolve_start_method() == "spawn"
    monkeypatch.setenv(START_ENV, "carrier-pigeon")
    with pytest.raises(ConfigError):
        resolve_start_method()
    monkeypatch.delenv(START_ENV)
    assert resolve_start_method() in ("fork", "spawn")


# -- dispatch and ordering ----------------------------------------------------


def test_run_job_ordered_and_batched(pool):
    results = pool.run_job(2, _square, list(range(50)), batch_size=4)
    assert results == [i * i for i in range(50)]


def test_run_job_empty_payloads(pool):
    assert pool.run_job(2, _square, []) == []


def test_imap_streams_in_submission_order(pool):
    it = pool.imap_job(2, _slow_square, list(range(12)), batch_size=1)
    assert list(it) == [i * i for i in range(12)]


def test_workers_survive_across_jobs(pool):
    first = set(pool.run_job(2, _pid_of, list(range(8)), batch_size=1))
    second = set(pool.run_job(2, _pid_of, list(range(8)), batch_size=1))
    assert first == second  # same processes served both jobs
    assert os.getpid() not in first


def test_setup_runs_once_per_worker_per_job(pool):
    counts = pool.run_job(1, _read_setup, [0, 1, 2],
                          init_fn=_count_setup, batch_size=1)
    assert counts == [1, 1, 1]
    counts = pool.run_job(1, _read_setup, [0, 1],
                          init_fn=_count_setup, batch_size=1)
    assert counts == [2, 2]  # same worker, fresh setup, kept state


def test_abandoned_job_does_not_poison_the_next(pool):
    it = pool.imap_job(2, _slow_square, list(range(20)), batch_size=2)
    assert next(it) == 0
    it.close()  # abandon 19 tasks mid-flight
    assert pool.run_job(2, _square, [5, 6]) == [25, 36]


def test_task_error_propagates_with_type(pool):
    with pytest.raises(ValueError, match="task 3 failed"):
        pool.run_job(2, _boom, [3])


def test_init_error_propagates(pool):
    with pytest.raises(RuntimeError, match="init exploded"):
        pool.run_job(2, _square, [1, 2, 3, 4], init_fn=_bad_init,
                     batch_size=1)


# -- crash handling -----------------------------------------------------------


def test_crashed_worker_respawns_and_batch_replays(pool, tmp_path):
    marker = str(tmp_path / "crashed-once")
    results = pool.run_job(1, _die_once, [marker], batch_size=1)
    assert results == ["survived"]
    assert pool_metrics().snapshot()["counters"]["pool.respawned"] >= 1
    # the pool is still usable afterwards
    assert pool.run_job(1, _square, [9]) == [81]


def test_batch_that_kills_twice_raises(pool):
    with pytest.raises(WorkerCrashError, match="crashed worker slot"):
        pool.run_job(1, _die_always, [0], batch_size=1)
    # the slot was respawned; the pool still works
    assert pool.run_job(1, _square, [3]) == [9]


def test_idle_worker_reaps_itself():
    pool = DaemonPool(idle_timeout=0.2)
    try:
        assert pool.run_job(1, _square, [2]) == [4]
        worker = pool._workers[0]
        worker.proc.join(5.0)
        assert not worker.alive
        assert worker.proc.exitcode == 0  # clean self-reap, not a crash
        # the next job lazily respawns the slot
        assert pool.run_job(1, _square, [3]) == [9]
        assert pool._workers[0].proc.pid != worker.proc.pid
    finally:
        pool.shutdown()


def test_status_and_shutdown(pool):
    pool.run_job(2, _square, [1, 2, 3, 4], batch_size=1)
    status = pool.status()
    assert status.slots == 2
    assert len(status.alive) == 2
    assert status.counters["pool.jobs"] >= 1
    assert pool.shutdown() == 2
    assert pool.status().alive == []


def test_broadcast_reaches_every_worker(pool):
    pids = pool.broadcast(_count_setup, (5,), workers=2)
    assert len(pids) == len(set(pids)) == 2
    counts = pool.run_job(2, _read_setup, [0, 1], batch_size=1)
    assert counts == [5, 5]


# -- the process-global pool ---------------------------------------------------


def test_get_pool_recreates_on_env_change(monkeypatch):
    shutdown_pool()
    monkeypatch.setenv(IDLE_ENV, "123")
    first = get_pool()
    assert first.idle_timeout == 123.0
    assert get_pool() is first
    monkeypatch.setenv(IDLE_ENV, "456")
    second = get_pool()
    assert second is not first
    assert second.idle_timeout == 456.0
    shutdown_pool()


# -- arenas --------------------------------------------------------------------


def test_small_inputs_ship_inline():
    arena = SplitArena(b"tiny")
    assert arena.backend == "inline"
    assert arena.token == ("inline", b"tiny")
    assert bytes(attach_view(arena.token)) == b"tiny"
    arena.close()


def test_shm_arena_roundtrip(monkeypatch):
    monkeypatch.delenv(SHM_ENV, raising=False)
    data = bytes(range(256)) * 300  # > INLINE_MIN_BYTES
    assert len(data) > INLINE_MIN_BYTES
    with SplitArena(data) as arena:
        assert arena.backend in ("shm", "spill")  # auto probes shm first
        view = attach_view(arena.token)
        assert bytes(view[0:256]) == bytes(range(256))
        assert bytes(view[len(data) - 4:len(data)]) == data[-4:]


def test_spill_arena_roundtrip(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "0")
    data = b"x" * (INLINE_MIN_BYTES + 1)
    arena = SplitArena(data)
    assert arena.backend == "spill"
    path = arena.token[1]
    assert os.path.exists(path)
    view = attach_view(arena.token)
    assert len(view) == len(data)
    arena.close()
    assert not os.path.exists(path)  # unlinked with the arena


def test_min_bytes_override_forces_segment(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "0")
    arena = SplitArena(b"not so big", min_bytes=4)
    try:
        assert arena.backend == "spill"
        assert bytes(attach_view(arena.token)) == b"not so big"
    finally:
        arena.close()


def test_attach_evicts_previous_token(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "0")
    a = SplitArena(b"a" * 100, min_bytes=4)
    b = SplitArena(b"b" * 100, min_bytes=4)
    try:
        view_a = attach_view(a.token)
        assert bytes(view_a[:1]) == b"a"
        assert attach_view(a.token) is view_a  # cached, not re-mapped
        view_b = attach_view(b.token)
        assert bytes(view_b[:1]) == b"b"
        with pytest.raises(ValueError):
            view_a[:1]  # evicted: the old view was released
    finally:
        a.close()
        b.close()


def test_garbage_shm_env_rejected(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "maybe")
    with pytest.raises(ConfigError):
        SplitArena(b"x" * (INLINE_MIN_BYTES + 1))


# -- pool CLI ------------------------------------------------------------------


def test_pool_cli_roundtrip(capsys):
    from repro.cli import main

    assert main(["pool", "warm", "--apps", "WC", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "warmed 2 worker(s) for WC" in out
    assert "alive" in out
    assert main(["pool", "status"]) == 0
    assert main(["pool", "shutdown"]) == 0
    out = capsys.readouterr().out
    assert "stopped 2 worker(s)" in out


def test_pool_cli_warm_rejects_unknown_app():
    from repro.cli import main

    assert main(["pool", "warm", "--apps", "NOPE"]) == 1
