"""Property-based tests for the discrete-event loop (hypothesis).

The simulator's determinism rests entirely on EventLoop's contract:
time-ordered dispatch with FIFO tie-breaking, monotonically advancing
``now``, a non-reentrant ``run``, an ``until`` early-stop checked after
each event, and a hard event budget against livelock.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HadoopError
from repro.hadoop.events import EventLoop

#: Non-negative delays on a coarse grid: many exact ties, no float dust.
delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False,
              allow_infinity=False).map(lambda d: round(d, 2)),
    min_size=0, max_size=50,
)


@given(delays)
def test_dispatch_order_is_time_sorted_with_fifo_ties(ds):
    loop = EventLoop()
    fired: list[int] = []
    for i, d in enumerate(ds):
        loop.schedule(d, lambda i=i: fired.append(i))
    loop.run()
    assert len(fired) == len(ds)
    # stable sort by scheduled time == time order with FIFO tie-breaking
    assert fired == sorted(range(len(ds)), key=lambda i: ds[i])


@given(delays)
def test_now_is_monotonic_and_matches_scheduled_times(ds):
    loop = EventLoop()
    seen: list[float] = []
    for d in ds:
        loop.schedule(d, lambda: seen.append(loop.now))
    loop.run()
    assert seen == sorted(seen)
    assert seen == sorted(ds)


@given(delays, delays)
def test_events_scheduled_during_run_dispatch_in_order(first, second):
    """Handlers scheduling follow-ups (heartbeat style) keep the order."""
    loop = EventLoop()
    seen: list[float] = []

    def chain(extra):
        seen.append(loop.now)
        for d in extra:
            loop.schedule(d, lambda: seen.append(loop.now))

    for d in first:
        loop.schedule(d, lambda: chain(second))
    loop.run()
    assert seen == sorted(seen)
    assert len(seen) == len(first) * (1 + len(second))


@given(delays.filter(lambda ds: len(ds) >= 1),
       st.integers(min_value=1, max_value=50))
def test_until_stops_after_the_predicate_turns_true(ds, stop_after):
    stop_after = min(stop_after, len(ds))
    loop = EventLoop()
    fired: list[int] = []
    for i, d in enumerate(ds):
        loop.schedule(d, lambda i=i: fired.append(i))
    loop.run(until=lambda: len(fired) >= stop_after)
    # checked after each event: exactly stop_after events ran
    assert len(fired) == stop_after
    assert loop.pending == len(ds) - stop_after


@settings(max_examples=25)
@given(st.integers(min_value=1, max_value=30))
def test_event_budget_exhaustion_raises(budget):
    loop = EventLoop()

    def respawn():
        loop.schedule(1.0, respawn)  # livelock on purpose

    loop.schedule(0.0, respawn)
    with pytest.raises(HadoopError, match="event budget exhausted"):
        loop.run(max_events=budget)
    # the loop remains usable (the running flag was released)
    loop2_events: list[float] = []
    loop.schedule(0.5, lambda: loop2_events.append(loop.now))
    with pytest.raises(HadoopError):
        loop.run(max_events=budget)  # respawn chain still queued


def test_run_is_not_reentrant():
    loop = EventLoop()
    errors: list[Exception] = []

    def nested():
        try:
            loop.run()
        except HadoopError as exc:
            errors.append(exc)

    loop.schedule(0.0, nested)
    loop.run()
    assert len(errors) == 1
    assert "not reentrant" in str(errors[0])
    # and the flag is cleared afterwards
    loop.schedule(0.0, lambda: None)
    loop.run()


@given(st.floats(max_value=-1e-9, min_value=-1e6))
def test_negative_delay_rejected(delay):
    loop = EventLoop()
    with pytest.raises(HadoopError):
        loop.schedule(delay, lambda: None)


def test_schedule_at_rejects_the_past():
    loop = EventLoop()
    loop.schedule(5.0, lambda: None)
    loop.run()
    assert loop.now == 5.0
    with pytest.raises(HadoopError):
        loop.schedule_at(4.0, lambda: None)
