"""CI smoke tests: every script in examples/ must run cleanly.

Each example is executed in a subprocess exactly the way the README
tells a user to run it (``PYTHONPATH=src python examples/<name>.py``);
exit status 0 and a non-empty stdout are the contract.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO / "examples").glob("*.py"))


def test_examples_exist():
    assert EXAMPLES, "examples/ directory is empty"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, env=env, cwd=str(REPO),
        timeout=300,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"--- stdout ---\n{proc.stdout[-2000:]}\n"
        f"--- stderr ---\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} printed nothing"
