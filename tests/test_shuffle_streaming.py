"""Direct unit coverage for ``hadoop.shuffle`` and ``hadoop.streaming``.

Both modules were previously exercised only through whole-job runs;
these tests pin their contracts in isolation: the shared streaming sort
order (one definition now serves the map-side sort, the reduce merge,
and calibration replays), the analytic reduce-phase model, and the
filter/pipeline wrappers around mini-C programs.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import get_app
from repro.config import CLUSTER1
from repro.costmodel.io import IoModel
from repro.errors import HadoopError
from repro.hadoop.job import JobConf
from repro.hadoop.shuffle import (
    decorate_kv_run,
    estimate_reduce_phase,
    merge_sorted_runs,
    reduce_task_timing,
    sort_kv_run,
    streaming_sort_key,
)
from repro.hadoop.streaming import (
    StreamingFilter,
    StreamingPipeline,
    format_kv,
    parse_kv,
)


# -- streaming sort order ---------------------------------------------------


class TestStreamingSortKey:
    def test_numbers_sort_before_text(self):
        assert streaming_sort_key(99) < streaming_sort_key("0")
        assert streaming_sort_key(2.5) < streaming_sort_key("apple")

    def test_numbers_compare_numerically(self):
        assert streaming_sort_key(9) < streaming_sort_key(10)
        assert streaming_sort_key(9.5) < streaming_sort_key(10)

    def test_int_and_float_share_one_ordering(self):
        assert streaming_sort_key(3) == streaming_sort_key(3.0)

    def test_text_compares_lexicographically(self):
        # string digits are *text*: "10" < "9" byte-wise, as in Hadoop
        # Streaming's default byte comparator
        assert streaming_sort_key("10") < streaming_sort_key("9")
        assert streaming_sort_key("bar") < streaming_sort_key("foo")


class _Opaque:
    """A payload value that refuses ordering — the sort must never
    reach it."""

    def __lt__(self, other):  # pragma: no cover - the point is no call
        raise TypeError("payload compared")

    __gt__ = __le__ = __ge__ = __lt__


class TestSortKvRun:
    def test_orders_by_streaming_key(self):
        run = [("b", 1), (3, 2), ("a", 3), (1.5, 4)]
        assert sort_kv_run(run) == [(1.5, 4), (3, 2), ("a", 3), ("b", 1)]

    def test_stable_for_equal_keys(self):
        run = [("k", i) for i in range(10)] + [("a", -1)]
        out = sort_kv_run(run)
        assert out[0] == ("a", -1)
        assert out[1:] == [("k", i) for i in range(10)]

    def test_never_compares_payloads(self):
        # ties on the key must be broken by arrival order, not by
        # falling through to the record payload
        run = [("same", _Opaque()), ("same", _Opaque())]
        assert sort_kv_run(run) == run

    def test_accepts_wider_tuples_and_iterables(self):
        triples = iter([("b", 2, "b\t2\n"), ("a", 1, "a\t1\n")])
        assert sort_kv_run(triples) == [("a", 1, "a\t1\n"), ("b", 2, "b\t2\n")]

    def test_empty(self):
        assert sort_kv_run([]) == []


# -- decorated runs and the merge shuffle ------------------------------------


class TestDecorateAndMerge:
    def test_decorate_sorts_and_carries_the_entry(self):
        run = [("b", 2, "b\t2\n"), (3, 1, "3\t1\n"), ("a", 9, "a\t9\n")]
        decorated = decorate_kv_run(run)
        assert [e[1] for e in decorated] == sort_kv_run(run)
        assert [e[0] for e in decorated] == [
            streaming_sort_key(e[1][0]) for e in decorated
        ]

    def test_decorate_is_stable(self):
        run = [("k", i, f"k\t{i}\n") for i in range(8)]
        assert [e[1] for e in decorate_kv_run(run)] == run

    def test_merge_of_single_run_is_identity(self):
        run = decorate_kv_run([("b", 1, "b\t1\n"), ("a", 2, "a\t2\n")])
        assert merge_sorted_runs([run]) == [e[1] for e in run]

    def test_merge_empty(self):
        assert merge_sorted_runs([]) == []
        assert merge_sorted_runs([[], []]) == []

    def test_merge_never_compares_payloads(self):
        runs = [decorate_kv_run([("same", _Opaque(), "x")]),
                decorate_kv_run([("same", _Opaque(), "y")])]
        merged = merge_sorted_runs(runs)
        assert [t[2] for t in merged] == ["x", "y"]

    def test_merge_ties_keep_run_order(self):
        # equal keys interleave in run order, exactly as a stable sort
        # of the concatenation would place them
        runs = [decorate_kv_run([("k", 0, "a"), ("k", 1, "b")]),
                decorate_kv_run([("k", 2, "c")])]
        assert [t[2] for t in merge_sorted_runs(runs)] == ["a", "b", "c"]


# Duplicate-heavy key pool mixing the numeric and text domains (numbers
# sort before text; string digits are text) — the adversarial shape for
# a merge that must match a full stable re-sort byte for byte.
_KEYS = st.sampled_from(
    ["a", "b", "10", "9", "", "k"] + [0, 1, -1, 9, 10, 2.5, 9.5, 3, 3.0]
)
_TRIPLES = st.builds(
    lambda k, i: (k, i, f"{k}\t{i}\n"),
    _KEYS, st.integers(min_value=0, max_value=99),
)


class TestMergeEqualsSortProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(st.lists(_TRIPLES, max_size=12), max_size=6))
    def test_merge_of_sorted_runs_equals_sort_of_concat(self, runs):
        # the identity the reduce phase relies on: stable-merging
        # per-run stably-sorted runs == stably sorting the concatenation
        concat = [t for run in runs for t in run]
        merged = merge_sorted_runs([decorate_kv_run(run) for run in runs])
        assert merged == sort_kv_run(concat)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(_TRIPLES, max_size=30), st.integers(1, 7))
    def test_any_chunking_merges_identically(self, triples, nruns):
        # however the map side happened to chunk the pairs into tasks,
        # the reduce-side merge sees through the chunking
        chunk = max(1, -(-len(triples) // nruns))
        runs = [triples[i:i + chunk] for i in range(0, len(triples), chunk)]
        merged = merge_sorted_runs([decorate_kv_run(run) for run in runs])
        assert merged == sort_kv_run(triples)


class TestReduceTaskTiming:
    def test_components_and_total(self):
        io = IoModel.for_cluster(CLUSTER1)
        t = reduce_task_timing(partition=3, merge_runs=6, input_pairs=100,
                               input_bytes=1400, output_pairs=40,
                               output_bytes=600, io=io,
                               replication=CLUSTER1.hdfs_replication)
        assert t.partition == 3 and t.merge_runs == 6
        assert t.merge > 0 and t.reduce > 0 and t.output_write > 0
        assert t.total == t.merge + t.reduce + t.output_write

    def test_deeper_merges_cost_more(self):
        io = IoModel.for_cluster(CLUSTER1)
        kw = dict(partition=0, input_pairs=100, input_bytes=1400,
                  output_pairs=40, output_bytes=600, io=io, replication=3)
        shallow = reduce_task_timing(merge_runs=2, **kw)
        deep = reduce_task_timing(merge_runs=64, **kw)
        assert deep.merge > shallow.merge
        assert deep.reduce == shallow.reduce

    def test_deterministic(self):
        io = IoModel.for_cluster(CLUSTER1)
        kw = dict(partition=1, merge_runs=4, input_pairs=7,
                  input_bytes=90, output_pairs=7, output_bytes=90,
                  io=io, replication=3)
        assert reduce_task_timing(**kw) == reduce_task_timing(**kw)


# -- reduce-phase model -----------------------------------------------------


def _job(**overrides) -> JobConf:
    conf = dict(name="t", num_map_tasks=8, num_reduce_tasks=4,
                cluster=CLUSTER1)
    conf.update(overrides)
    return JobConf(**conf)


class TestEstimateReducePhase:
    def test_map_only_job_costs_nothing(self):
        est = estimate_reduce_phase(_job(num_reduce_tasks=0),
                                    IoModel.for_cluster(CLUSTER1))
        assert est.total == 0.0

    def test_total_sums_components(self):
        est = estimate_reduce_phase(_job(), IoModel.for_cluster(CLUSTER1))
        assert est.total == pytest.approx(
            est.shuffle_seconds + est.merge_seconds
            + est.reduce_seconds + est.write_seconds
        )
        assert est.shuffle_seconds > 0 and est.write_seconds > 0

    def test_extra_reduce_waves_scale_the_phase(self):
        io = IoModel.for_cluster(CLUSTER1)
        slots = CLUSTER1.num_slaves * CLUSTER1.max_reduce_slots_per_node
        one_wave = estimate_reduce_phase(_job(num_reduce_tasks=slots), io)
        two_waves = estimate_reduce_phase(
            _job(num_reduce_tasks=slots + 1), io
        )
        assert two_waves.reduce_seconds == pytest.approx(
            2 * _job().reduce_compute_seconds
        )
        assert two_waves.total > one_wave.total

    def test_more_maps_deepen_the_merge(self):
        io = IoModel.for_cluster(CLUSTER1)
        # same total map output, split across more runs → deeper merge
        shallow = estimate_reduce_phase(
            _job(num_map_tasks=4, map_output_bytes=16 * 1024 * 1024), io
        )
        deep = estimate_reduce_phase(
            _job(num_map_tasks=64, map_output_bytes=1024 * 1024), io
        )
        assert deep.merge_seconds > shallow.merge_seconds


# -- streaming wire format --------------------------------------------------


class TestKvWire:
    def test_round_trip(self):
        pairs = [("word", 3), (7, 1.5), ("k", "v")]
        assert parse_kv(format_kv(pairs)) == [("word", 3), (7, 1.5),
                                              ("k", "v")]

    def test_empty_text(self):
        assert parse_kv("") == []
        assert format_kv([]) == ""

    def test_malformed_line_rejected(self):
        with pytest.raises(HadoopError):
            parse_kv("no-tab-here\n")


# -- filters and the map-task pipeline --------------------------------------


class TestStreamingFilter:
    def test_accumulates_counters_across_invocations(self):
        app = get_app("WC")
        f = StreamingFilter(app.map_program(), name="wc-map")
        out1 = f("hello world\n")
        out2 = f("hello again\n")
        assert f.invocations == 2
        assert parse_kv(out1) == [("hello", 1), ("world", 1)]
        assert parse_kv(out2) == [("hello", 1), ("again", 1)]
        once = StreamingFilter(app.map_program())
        once("hello world\n")
        assert f.total_counters.ops > once.total_counters.ops

    def test_run_kv_feeds_pairs_through(self):
        app = get_app("WC")
        combiner = StreamingFilter(app.combine_program(), name="wc-combine")
        out = combiner.run_kv([("a", 1), ("a", 1), ("b", 1)])
        assert out == [("a", 2), ("b", 1)]


class TestStreamingPipeline:
    def test_for_app_wires_both_filters(self):
        pipeline = StreamingPipeline.for_app(get_app("WC"))
        assert pipeline.mapper.name == "WC-map"
        assert pipeline.combiner is not None
        assert pipeline.combine_counters is not None

    def test_run_split_partitions_sorts_and_combines(self):
        pipeline = StreamingPipeline.for_app(get_app("WC"))
        out = pipeline.run_split(
            "b a b\nc a b\n", partition_of=lambda key: len(key) % 2
        )
        merged = {k: v for part in out.values() for k, v in part}
        assert merged == {"a": 2, "b": 3, "c": 1}
        for part, pairs in out.items():
            keys = [k for k, _v in pairs]
            assert keys == sorted(keys, key=streaming_sort_key)
            assert all(len(k) % 2 == part for k in keys)
        assert pipeline.map_counters.ops > 0

    def test_run_split_without_combiner_keeps_duplicates(self):
        pipeline = StreamingPipeline.for_app(get_app("WC"))
        pipeline.combiner = None
        out = pipeline.run_split("a a\n", partition_of=lambda key: 0)
        assert out == {0: [("a", 1), ("a", 1)]}
        assert pipeline.combine_counters is None
