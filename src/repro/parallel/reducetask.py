"""Reduce tasks as pool work items: job spec, arena shipping, envelopes.

The map phase's pool plumbing (:mod:`repro.parallel.maptask`) took maps
off the driver's critical path; this module does the same for the tail
the paper's Table 2 blames for dampened speedups — the shuffle-merge
and reduce pass that still ran serially in the driver. The mechanics
mirror the map side:

* down, once per job: a frozen :class:`ReduceJobSpec` (the app plus
  plain configuration — a warm daemon worker rebuilds the runner from
  cache hits) and a :class:`~repro.parallel.arena.SplitArena` token.
  The arena blob is the pickled per-partition runs laid end to end, so
  each partition's data is published once and never re-pickled per
  dispatch retry.
* down, per batch: ``(partition, start, stop)`` triples naming each
  task's slice of the blob.
* up, per batch: :class:`ReduceTaskEnvelope` results — the reduced
  pairs, the deterministic :class:`~repro.hadoop.shuffle.
  ReduceTaskTiming`, and (when the parent traces) the worker recorder's
  events and metrics.

The parent consumes envelopes **in partition order** and folds the
reduced pairs into the output dict itself (reduce tasks are pure), so
the output insertion order, the duplicate-key check, the counters, and
every simulated float are byte-identical to the serial reduce loop.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ..apps.base import Application
from ..config import ClusterConfig, OptimizationFlags
from ..errors import ReproError
from ..obs import trace as obs
from .arena import SplitArena, attach_view
from .daemon import get_pool

if TYPE_CHECKING:  # runtime import would be circular (local.py uses us)
    from ..hadoop.local import LocalJobRunner
    from ..hadoop.shuffle import ReduceTaskTiming

__all__ = [
    "ReduceJobSpec",
    "ReduceTaskEnvelope",
    "run_reduce_tasks",
]


@dataclass(frozen=True)
class ReduceJobSpec:
    """Everything a worker needs to rebuild one job's reduce side."""

    app: Application
    cluster: ClusterConfig
    opt: OptimizationFlags
    num_reducers: int
    split_bytes: int
    minic_backend: str
    trace: bool


@dataclass
class ReduceTaskEnvelope:
    """One reduce task's result, shipped worker → parent."""

    partition: int
    worker_pid: int
    reduced: list
    timing: "ReduceTaskTiming"
    events: list | None = None
    metrics: Any | None = None


# Worker-global state, rebuilt by the job setup once per worker per job
# (module-level because pool task functions must be importable
# top-level callables).
_reduce_state: dict[str, Any] = {}


def _init_reduce_worker(spec: ReduceJobSpec, arena_token: tuple) -> None:
    from ..hadoop.local import LocalJobRunner
    from ..minic.cache import warm_program
    from ..minic.interpreter import set_default_backend

    set_default_backend(spec.minic_backend)
    reduce_prog = spec.app.reduce_program()
    if reduce_prog is not None:
        warm_program(reduce_prog)
    # CPU path: reduce tasks never launch kernels and never map, so the
    # rebuilt runner skips every GPU-side cache.
    runner = LocalJobRunner(
        spec.app,
        cluster=spec.cluster,
        use_gpu=False,
        opt=spec.opt,
        num_reducers=spec.num_reducers,
        split_bytes=spec.split_bytes,
        workers=1,
    )
    _reduce_state["spec"] = spec
    _reduce_state["runner"] = runner
    _reduce_state["view"] = attach_view(arena_token)


def _record_reduce_task_trace(rec: obs.TraceRecorder, app: Application,
                              timing: "ReduceTaskTiming") -> None:
    """One reduce-task span tiled by its phase children, mirroring the
    map side's cpu-task/gpu-task span shape (the parent splices these
    onto ``reduce@w<pid>`` tracks)."""
    pid, tid = "reduce", "tasks"
    task = rec.begin(
        f"reduce-task#{timing.partition} {app.name}", "reduce-task",
        pid, tid,
        args={
            "merge_runs": timing.merge_runs,
            "input_pairs": timing.input_pairs,
            "output_pairs": timing.output_pairs,
            "output_bytes": timing.output_bytes,
        },
    )
    phases = {
        "merge": timing.merge,
        "reduce": timing.reduce,
        "output_write": timing.output_write,
    }
    for phase, seconds in phases.items():
        rec.complete(phase, "phase", pid, tid, seconds)
    rec.end(task)
    rec.inc("reduce.tasks")
    rec.inc("reduce.merge_runs", timing.merge_runs)
    rec.inc("reduce.pairs", timing.input_pairs)


def _run_reduce_task(payload: tuple[int, int, int]) -> ReduceTaskEnvelope:
    partition, start, stop = payload
    spec: ReduceJobSpec = _reduce_state["spec"]
    runner: "LocalJobRunner" = _reduce_state["runner"]
    runs = pickle.loads(bytes(_reduce_state["view"][start:stop]))
    rec = obs.TraceRecorder() if spec.trace else None
    previous = obs.install(rec) if rec is not None else None
    try:
        reduced, timing = runner.reduce_partition(partition, runs)
        if rec is not None:
            _record_reduce_task_trace(rec, spec.app, timing)
    finally:
        if rec is not None:
            obs.install(previous)
    envelope = ReduceTaskEnvelope(
        partition=partition, worker_pid=os.getpid(),
        reduced=reduced, timing=timing,
    )
    if rec is not None:
        if rec.open_spans():
            raise ReproError("reduce task left spans open in worker recorder")
        envelope.events = rec.events
        envelope.metrics = rec.metrics
    return envelope


def run_reduce_tasks(runner: "LocalJobRunner", parts: list[int],
                     shuffle: dict[int, list[list]],
                     workers: int) -> list[ReduceTaskEnvelope]:
    """Fan a job's reduce partitions across the daemon pool; envelopes
    come back in partition order.

    Each partition's sorted runs are pickled once into a contiguous
    blob published through a :class:`~repro.parallel.arena.SplitArena`
    — workers slice and unpickle exactly the objects the driver held
    (decorated triples with their map-side renderings), so no value
    crosses the boundary through a lossy re-parse."""
    from ..minic.interpreter import default_backend

    spec = ReduceJobSpec(
        app=runner.app,
        cluster=runner.cluster,
        opt=runner.opt,
        num_reducers=runner.num_reducers,
        split_bytes=runner.split_bytes,
        minic_backend=default_backend(),
        trace=bool(obs.active().enabled),
    )
    blob = bytearray()
    payloads: list[tuple[int, int, int]] = []
    for part in parts:
        data = pickle.dumps(shuffle[part], protocol=pickle.HIGHEST_PROTOCOL)
        payloads.append((part, len(blob), len(blob) + len(data)))
        blob += data
    with SplitArena(bytes(blob)) as arena:
        return get_pool().run_job(
            workers, _run_reduce_task, payloads,
            init_fn=_init_reduce_worker, init_args=(spec, arena.token),
        )
