"""Multi-core map-task execution (paper §5's one-slot-per-core model).

HeteroDoop's TaskTrackers run one map task per CPU core concurrently
(plus the reserved GPU slot); this package gives the functional runner
the same property. The persistent daemon pool
(:mod:`repro.parallel.daemon`) forks workers once per process lifetime
and fans map tasks, reduce tasks, GPU splits, and fuzz cases across
them in batched envelopes, with input bytes published through a
write-once arena (:mod:`repro.parallel.arena`) instead of per-task
pickles. The job-level plumbing (:mod:`repro.parallel.maptask` for the
map phase, :mod:`repro.parallel.reducetask` for the shuffle-merge/
reduce tail) keeps the parallel run **byte-identical** to the serial
one — same output, same counters, same simulated seconds — by
rebuilding caches per worker and merging results in task/partition
order. :mod:`repro.parallel.pool` retains the
one-shot SerialPool/ProcessPool primitives and the shared worker-count
resolution.
"""

from .daemon import (
    DaemonPool,
    PoolStatus,
    WorkerCrashError,
    get_pool,
    pool_metrics,
    resolve_batch_size,
    shutdown_pool,
)
from .pool import (
    ProcessPool,
    SerialPool,
    in_worker,
    list_schedule_makespan,
    resolve_reduce_workers,
    resolve_workers,
    task_pool,
)

__all__ = [
    "DaemonPool",
    "PoolStatus",
    "ProcessPool",
    "SerialPool",
    "WorkerCrashError",
    "get_pool",
    "in_worker",
    "list_schedule_makespan",
    "pool_metrics",
    "resolve_batch_size",
    "resolve_reduce_workers",
    "resolve_workers",
    "shutdown_pool",
    "task_pool",
]
