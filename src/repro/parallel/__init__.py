"""Multi-core map-task execution (paper §5's one-slot-per-core model).

HeteroDoop's TaskTrackers run one map task per CPU core concurrently
(plus the reserved GPU slot); this package gives the functional runner
the same property: a TaskPool (:mod:`repro.parallel.pool`) fans map
tasks, GPU splits, and fuzz cases across worker processes, and the
job-level plumbing (:mod:`repro.parallel.maptask`) keeps the parallel
run **byte-identical** to the serial one — same output, same counters,
same simulated seconds — by rebuilding caches per worker and merging
results in task-index order.
"""

from .pool import (
    ProcessPool,
    SerialPool,
    in_worker,
    list_schedule_makespan,
    resolve_workers,
    task_pool,
)

__all__ = [
    "ProcessPool",
    "SerialPool",
    "in_worker",
    "list_schedule_makespan",
    "resolve_workers",
    "task_pool",
]
