"""Persistent daemon worker pool: fork once, reuse across jobs.

PR 5's pool was correct but lost on wall clock: every job paid fork,
cache warmup, and one pickle round-trip *per task* (``chunksize=1``).
This module keeps a process-lifetime pool instead, so those costs are
paid once and amortized over every subsequent job:

* **Workers outlive jobs.** The first parallel phase forks the workers
  (lazily, sized by what the caller resolved via
  :func:`~repro.parallel.pool.resolve_workers`); later jobs reuse them
  with their mini-C program/translation/kernel caches already hot. The
  pool grows on demand and never shrinks except by idle reaping or an
  explicit :func:`shutdown_pool`.
* **Batched task envelopes.** Tasks cross the process boundary in
  batches (:func:`resolve_batch_size`: adaptive from the task/worker
  ratio, ``REPRO_POOL_BATCH`` overrides), so a 64-task map phase costs
  a handful of IPC round-trips instead of 64. Dispatch stays greedy —
  each worker holds at most :data:`DISPATCH_WINDOW` batches and gets
  the next one when it reports a result — and the parent reassembles
  batches by index, so results still stream back in submission order
  and the deterministic merge contract is untouched.
* **Crash detection + respawn.** A worker that dies mid-job (OOM
  killer, segfault, idle self-reap racing a dispatch) is detected by
  liveness polling; the pool respawns the slot, replays the job setup,
  and requeues the dead worker's in-flight batches. A batch that kills
  its worker twice is reported as a :class:`WorkerCrashError` instead
  of looping.
* **Idle reaping.** Workers self-reap after ``REPRO_POOL_IDLE`` seconds
  without work (worker-side ``Queue.get`` timeout, exit code 0), so a
  long-lived process that stops running jobs drops its helper
  processes; the next job respawns lazily.

Job results are matched by job id, so a consumer that stops early (the
fuzz driver's time budget) simply abandons the rest: stale results are
drained and discarded at the next job's start, and workers stay warm.

Lifecycle accounting lives in a pool-owned
:class:`~repro.obs.metrics.MetricsRegistry` (``pool.spawned``,
``pool.respawned``, ``pool.reaped`` …) surfaced by ``repro pool
status``; per-job dispatch counters (``pool.jobs``, ``pool.batches``,
``pool.tasks``) additionally land on the active trace recorder — they
are deterministic per job, so traced parallel runs stay reproducible.
"""

from __future__ import annotations

import os
import queue
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import ConfigError, ReproError
from ..obs import trace as obs
from ..obs.metrics import MetricsRegistry

__all__ = [
    "BATCH_ENV",
    "DaemonPool",
    "IDLE_ENV",
    "PoolStatus",
    "START_ENV",
    "WorkerCrashError",
    "get_pool",
    "pool_metrics",
    "resolve_batch_size",
    "shutdown_pool",
]

#: Environment knob: seconds a worker waits for work before self-reaping
#: (``0`` disables reaping).
IDLE_ENV = "REPRO_POOL_IDLE"

#: Environment knob: fixed batch size (tasks per IPC round-trip);
#: unset/``0`` means adaptive sizing from the task/worker ratio.
BATCH_ENV = "REPRO_POOL_BATCH"

#: Environment knob: pool start method (``fork``/``spawn``); default
#: prefers ``fork`` where the platform offers it.
START_ENV = "REPRO_POOL_START"

#: Default idle timeout (seconds) before a worker self-reaps.
DEFAULT_IDLE_TIMEOUT = 300.0

#: Batches a worker may hold queued at once. 2 hides the dispatch
#: round-trip (the worker starts its second batch while the parent
#: processes the first result) without hoarding work a freed-up
#: neighbour could steal.
DISPATCH_WINDOW = 2

#: Adaptive sizing aims for this many batches per worker — enough
#: slack for greedy rebalancing when task costs are uneven.
_BATCHES_PER_WORKER = 4

#: Upper bound on adaptive batch size.
_MAX_BATCH = 64


class WorkerCrashError(ReproError):
    """A worker died executing a batch and its retry died too."""


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(f"{name}={raw!r} is not a number") from None
    if value < 0:
        raise ConfigError(f"{name} must be >= 0, got {raw}")
    return value


def resolve_batch_size(tasks: int, workers: int,
                       batch_size: int | None = None) -> int:
    """Tasks per envelope: explicit, then ``REPRO_POOL_BATCH``, then
    adaptive — ``ceil(tasks / (workers * 4))`` capped at 64, so small
    jobs keep per-task dispatch (maximum overlap) and large jobs
    amortize the IPC round-trip."""
    if batch_size is None:
        raw = os.environ.get(BATCH_ENV, "").strip()
        if raw:
            try:
                batch_size = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{BATCH_ENV}={raw!r} is not an integer") from None
            if batch_size < 0:
                raise ConfigError(f"{BATCH_ENV} must be >= 0, got {raw}")
    if batch_size:
        return batch_size
    return max(1, min(_MAX_BATCH,
                      -(-tasks // (max(workers, 1) * _BATCHES_PER_WORKER))))


def resolve_start_method() -> str:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    raw = os.environ.get(START_ENV, "").strip()
    if raw:
        if raw not in methods:
            raise ConfigError(
                f"{START_ENV}={raw!r} is not a start method on this "
                f"platform (have: {', '.join(methods)})")
        return raw
    return "fork" if "fork" in methods else "spawn"


# -- worker side -------------------------------------------------------------


def _safe_payload(exc: BaseException) -> tuple[BaseException | None, str]:
    """An exception as a picklable (instance, traceback) pair.

    The instance crosses the boundary when it pickles cleanly (so the
    parent re-raises the original type); otherwise only the formatted
    traceback does and the parent wraps it.
    """
    tb = traceback.format_exc()
    import pickle

    try:
        pickle.loads(pickle.dumps(exc))
        return exc, tb
    except Exception:
        return None, tb


def _worker_main(slot: int, inbox: Any, outbox: Any,
                 idle_timeout: float) -> None:  # pragma: no cover - subprocess
    """The daemon worker loop (runs in the child process).

    One job's state is held at a time: a ``setup`` message replaces it,
    ``batch`` messages execute against it, and an idle ``get`` timeout
    exits the loop cleanly (exit code 0 = reaped, anything else is a
    crash as far as the parent's accounting goes).
    """
    from .pool import _mark_leaf_worker

    _mark_leaf_worker()
    job_id: int | None = None
    job_ok = False
    while True:
        try:
            msg = inbox.get(timeout=idle_timeout if idle_timeout > 0
                            else None)
        except queue.Empty:
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "setup":
            _kind, job_id, init_fn, init_args, ack = msg
            try:
                if init_fn is not None:
                    init_fn(*init_args)
                job_ok = True
                if ack:
                    outbox.put(("ready", slot, job_id, -1, None))
            except BaseException as exc:
                job_ok = False
                outbox.put(("error", slot, job_id, -1, _safe_payload(exc)))
        elif kind == "batch":
            _kind, batch_job, index, task_fn, payloads = msg
            if batch_job != job_id or not job_ok:
                outbox.put(("error", slot, batch_job, index,
                            (None, "worker has no setup for this job")))
                continue
            try:
                results = [task_fn(p) for p in payloads]
            except BaseException as exc:
                outbox.put(("error", slot, batch_job, index,
                            _safe_payload(exc)))
            else:
                outbox.put(("done", slot, batch_job, index, results))
    from .arena import _evict

    _evict()  # release any arena attachment before a clean exit


# -- parent side -------------------------------------------------------------


@dataclass
class _Worker:
    slot: int
    proc: Any
    inbox: Any
    #: Job id of the last setup message sent (a respawned worker needs
    #: the current job's setup replayed before any batch).
    setup_job: int | None = None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()


@dataclass
class PoolStatus:
    """One snapshot of the daemon pool, for ``repro pool status``."""

    start_method: str
    idle_timeout: float
    alive: list[int] = field(default_factory=list)  # worker pids
    slots: int = 0
    counters: dict[str, float] = field(default_factory=dict)


#: Pool-lifetime accounting (spawns, respawns, reaps, jobs, batches,
#: tasks) — owned by the pool, not the trace recorder, because spawn
#: timing depends on process history and must not perturb deterministic
#: traces.
_METRICS = MetricsRegistry()


def pool_metrics() -> MetricsRegistry:
    return _METRICS


class DaemonPool:
    """A process-lifetime worker pool with batched, ordered dispatch."""

    def __init__(self, start_method: str | None = None,
                 idle_timeout: float | None = None):
        import multiprocessing

        self.start_method = start_method or resolve_start_method()
        self.idle_timeout = (_env_float(IDLE_ENV, DEFAULT_IDLE_TIMEOUT)
                             if idle_timeout is None else idle_timeout)
        self._ctx = multiprocessing.get_context(self.start_method)
        self._outbox = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._job_seq = 0

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, slot: int) -> _Worker:
        inbox = self._ctx.Queue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(slot, inbox, self._outbox, self.idle_timeout),
            daemon=True,
            name=f"repro-pool-{slot}",
        )
        proc.start()
        _METRICS.inc("pool.spawned")
        return _Worker(slot=slot, proc=proc, inbox=inbox)

    def ensure(self, workers: int) -> list[_Worker]:
        """The first ``workers`` slots, spawning or reviving as needed."""
        if workers < 1:
            raise ConfigError(f"pool needs >= 1 worker, got {workers}")
        while len(self._workers) < workers:
            self._workers.append(self._spawn(len(self._workers)))
        for i in range(workers):
            w = self._workers[i]
            if not w.alive:
                _METRICS.inc("pool.reaped" if w.proc.exitcode == 0
                             else "pool.crashed")
                self._workers[i] = self._spawn(i)
        _METRICS.gauge("pool.workers", sum(
            1 for w in self._workers if w.alive))
        return self._workers[:workers]

    def _respawn_mid_job(self, dead: _Worker, job_id: int,
                         init_fn: Any, init_args: tuple) -> _Worker:
        _METRICS.inc("pool.respawned")
        fresh = self._spawn(dead.slot)
        self._workers[dead.slot] = fresh
        fresh.inbox.put(("setup", job_id, init_fn, init_args, False))
        fresh.setup_job = job_id
        return fresh

    def shutdown(self, timeout: float = 5.0) -> int:
        """Stop every worker; returns how many were alive."""
        stopped = 0
        for w in self._workers:
            if w.alive:
                stopped += 1
                try:
                    w.inbox.put(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for w in self._workers:
            w.proc.join(timeout)
            if w.proc.is_alive():  # pragma: no cover - stuck worker
                w.proc.terminate()
                w.proc.join(timeout)
        self._workers.clear()
        _METRICS.inc("pool.shutdowns")
        _METRICS.gauge("pool.workers", 0)
        return stopped

    def status(self) -> PoolStatus:
        return PoolStatus(
            start_method=self.start_method,
            idle_timeout=self.idle_timeout,
            alive=[w.proc.pid for w in self._workers if w.alive],
            slots=len(self._workers),
            counters=dict(_METRICS.snapshot()["counters"]),
        )

    # -- job execution -------------------------------------------------------

    def broadcast(self, fn: Callable[..., None], args: tuple = (),
                  workers: int = 1, timeout: float = 60.0) -> list[int]:
        """Run ``fn(*args)`` once in each of ``workers`` workers (cache
        warming); returns the pids that acknowledged."""
        active = self.ensure(workers)
        self._drain_stale()
        self._job_seq += 1
        job_id = self._job_seq
        for w in active:
            w.inbox.put(("setup", job_id, fn, args, True))
            w.setup_job = job_id
        acked: list[int] = []
        pending = {w.slot for w in active}
        while pending:
            try:
                kind, slot, jid, _index, payload = self._outbox.get(
                    timeout=timeout)
            except queue.Empty:
                raise ReproError(
                    f"pool warm timed out waiting for workers {pending}")
            if jid != job_id:
                continue
            if kind == "error":
                self._raise_worker_error(payload)
            pending.discard(slot)
            acked.append(self._workers[slot].proc.pid)
        return acked

    def run_job(self, workers: int, task_fn: Callable[[Any], Any],
                payloads: list[Any], init_fn: Callable[..., None] | None = None,
                init_args: tuple = (), batch_size: int | None = None) -> list[Any]:
        """Run every payload; results in submission order."""
        return list(self.imap_job(workers, task_fn, payloads,
                                  init_fn=init_fn, init_args=init_args,
                                  batch_size=batch_size))

    def imap_job(self, workers: int, task_fn: Callable[[Any], Any],
                 payloads: list[Any],
                 init_fn: Callable[..., None] | None = None,
                 init_args: tuple = (),
                 batch_size: int | None = None) -> Iterator[Any]:
        """Stream results back in submission order.

        Greedy batched dispatch: batches go to whichever worker frees
        up, bounded by :data:`DISPATCH_WINDOW`; the parent buffers
        out-of-order batches so the yield order is exactly the payload
        order. Abandoning the iterator abandons the job — whatever is
        still in flight finishes in the background and is discarded as
        stale by the next job.
        """
        payloads = list(payloads)
        if not payloads:
            return
        size = resolve_batch_size(len(payloads), workers, batch_size)
        batches = [payloads[i:i + size]
                   for i in range(0, len(payloads), size)]
        active = self.ensure(min(workers, len(batches)))
        self._drain_stale()
        self._job_seq += 1
        job_id = self._job_seq

        rec = obs.active()
        if rec.enabled:
            rec.inc("pool.jobs")
            rec.inc("pool.batches", len(batches))
            rec.inc("pool.tasks", len(payloads))
        _METRICS.inc("pool.jobs")
        _METRICS.inc("pool.batches", len(batches))
        _METRICS.inc("pool.tasks", len(payloads))

        for w in active:
            w.inbox.put(("setup", job_id, init_fn, init_args, False))
            w.setup_job = job_id

        todo = list(range(len(batches)))
        todo.reverse()  # pop() from the front of the batch order
        inflight: dict[int, list[int]] = {w.slot: [] for w in active}
        retried: set[int] = set()
        buffered: dict[int, list[Any]] = {}
        completed: set[int] = set()
        next_index = 0
        done = 0

        def feed(worker: _Worker) -> None:
            load = inflight[worker.slot]
            while todo and len(load) < DISPATCH_WINDOW:
                index = todo.pop()
                worker.inbox.put(("batch", job_id, index, task_fn,
                                  batches[index]))
                load.append(index)

        for w in active:
            feed(w)
        while done < len(batches):
            try:
                kind, slot, jid, index, payload = self._outbox.get(
                    timeout=0.25)
            except queue.Empty:
                active = self._revive_dead(active, job_id, init_fn,
                                           init_args, inflight, todo,
                                           retried, feed)
                continue
            if jid != job_id:
                continue  # stale result from an abandoned job
            if kind == "error":
                self._raise_worker_error(payload)
            worker = self._workers[slot]
            if index in inflight[worker.slot]:
                inflight[worker.slot].remove(index)
            feed(worker)
            if index in completed:
                continue  # duplicate: batch was requeued, then the
                # original worker's result surfaced anyway
            completed.add(index)
            buffered[index] = payload
            done += 1
            while next_index in buffered:
                for result in buffered.pop(next_index):
                    yield result
                next_index += 1

    # -- internals -----------------------------------------------------------

    def _drain_stale(self) -> None:
        """Discard results of abandoned jobs so their memory is freed
        before new dispatch starts."""
        while True:
            try:
                self._outbox.get_nowait()
            except queue.Empty:
                return

    def _raise_worker_error(self, payload: tuple) -> None:
        exc, tb = payload
        if exc is not None:
            raise exc
        raise ReproError(f"pool worker task failed:\n{tb}")

    def _revive_dead(self, active: list[_Worker], job_id: int,
                     init_fn: Any, init_args: tuple,
                     inflight: dict[int, list[int]], todo: list[int],
                     retried: set[int],
                     feed: Callable[["_Worker"], None]) -> list[_Worker]:
        """Replace dead workers, requeue their in-flight batches, and
        feed the fresh processes."""
        revived = list(active)
        fresh_workers: list[_Worker] = []
        for i, w in enumerate(active):
            if w.alive:
                continue
            lost = list(inflight[w.slot])
            for index in lost:
                if index in retried:
                    raise WorkerCrashError(
                        f"batch {index} crashed worker slot {w.slot} "
                        f"twice (exit code {w.proc.exitcode})")
                retried.add(index)
            inflight[w.slot] = []
            fresh = self._respawn_mid_job(w, job_id, init_fn, init_args)
            revived[i] = fresh
            fresh_workers.append(fresh)
            # Requeue ahead of the undispatched tail: these batches are
            # earliest in submission order and gate the ordered yield.
            for index in lost:
                todo.append(index)
            todo.sort(reverse=True)
        for fresh in fresh_workers:
            feed(fresh)
        return revived


# -- process-global pool -----------------------------------------------------

_pool: DaemonPool | None = None


def get_pool() -> DaemonPool:
    """The process's daemon pool, created (or recreated) to match the
    current ``REPRO_POOL_START``/``REPRO_POOL_IDLE`` configuration."""
    global _pool
    method = resolve_start_method()
    idle = _env_float(IDLE_ENV, DEFAULT_IDLE_TIMEOUT)
    if _pool is not None and (_pool.start_method != method
                              or _pool.idle_timeout != idle):
        _pool.shutdown()
        _pool = None
    if _pool is None:
        _pool = DaemonPool(start_method=method, idle_timeout=idle)
    return _pool


def shutdown_pool() -> int:
    """Stop the global pool's workers (it respawns lazily on next use);
    returns how many workers were stopped."""
    global _pool
    if _pool is None:
        return 0
    stopped = _pool.shutdown()
    _pool = None
    return stopped
