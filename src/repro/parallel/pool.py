"""Worker pools: serial and process-backed task execution.

The parallel layer fans independent tasks (map tasks, GPU splits, fuzz
cases) across ``workers`` OS processes and merges results back in task
order, so a parallel run is observably identical to the serial one.
Three rules keep that equivalence honest:

* **Deterministic merge** — pools return results in submission order
  (``map_tasks``) or yield them in submission order (``imap_tasks``),
  never in completion order. A caller that folds results left-to-right
  reproduces the serial fold bit for bit, including float accumulation
  order.
* **Leaf workers** — a worker process never creates its own pool.
  :func:`resolve_workers` answers 1 inside a worker regardless of the
  ``REPRO_WORKERS`` environment or explicit ``workers=`` arguments, so
  nested parallelism (a fuzz worker running a parallel job) degrades to
  the serial path instead of fork-bombing the host.
* **Explicit warmup** — every pool takes an ``initializer`` that runs
  once per worker before any task. Call sites use it to rebuild the
  mini-C program/translation/kernel caches (closures don't pickle;
  sources and IR do, and recompile on first touch). Under the ``fork``
  start method the warmup is nearly free — workers inherit the parent's
  caches copy-on-write — but it is what makes a cold ``spawn`` worker
  correct too.

Workers default to the ``fork`` start method (this reproduction targets
Linux), which also inherits ambient engine selections (the mini-C
backend and GPU lane engine defaults active at pool creation). Call
sites still pass resolved engine names through their job specs so a
``spawn`` fallback behaves identically.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
from typing import Any, Callable, Iterable, Iterator

from ..errors import ConfigError

__all__ = [
    "ProcessPool",
    "SerialPool",
    "in_worker",
    "list_schedule_makespan",
    "resolve_reduce_workers",
    "resolve_workers",
    "task_pool",
]

#: Environment knob: default worker count for every parallel-capable
#: entry point (``0`` means one worker per CPU core).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob: worker count for the reduce phase specifically.
#: Unset, the reduce phase reuses the job's map-phase worker setting
#: (explicit ``workers=`` or ``REPRO_WORKERS``); set, it overrides both
#: for reduce tasks only (``0`` = one worker per CPU core).
REDUCE_WORKERS_ENV = "REPRO_REDUCE_WORKERS"

#: True in pool worker processes (set by the bootstrap); guards against
#: nested pools.
_in_worker = False


def in_worker() -> bool:
    """Is this process a pool worker? (Workers never nest pools.)"""
    return _in_worker


def resolve_workers(workers: int | None = None,
                    tasks: int | None = None) -> int:
    """The effective worker count for one parallel phase.

    Precedence: explicit ``workers`` argument, then the
    ``REPRO_WORKERS`` environment variable, then 1 (serial). A value of
    0 (either source) means ``os.cpu_count()``. ``tasks`` caps the
    answer at the number of available tasks — a single-split job stays
    serial no matter what was requested. Inside a pool worker the answer
    is always 1.
    """
    if _in_worker:
        return 1
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ConfigError(
                    f"{WORKERS_ENV}={raw!r} is not an integer"
                ) from None
        else:
            workers = 1
    if workers < 0:
        raise ConfigError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    if tasks is not None:
        workers = min(workers, max(tasks, 1))
    return max(workers, 1)


def resolve_reduce_workers(job_workers: int | None = None,
                           tasks: int | None = None) -> int:
    """The effective worker count for a job's reduce phase.

    ``REPRO_REDUCE_WORKERS`` wins when set (same 0-means-cpu-count
    convention as :func:`resolve_workers`); otherwise the reduce phase
    follows the job's map-phase setting — explicit ``workers=`` or
    ``REPRO_WORKERS`` — so ``workers=4`` parallelizes the whole job,
    not just its maps. ``tasks`` (the partition count) caps the answer,
    and pool workers stay leaves.
    """
    if _in_worker:
        return 1
    raw = os.environ.get(REDUCE_WORKERS_ENV, "").strip()
    if raw:
        try:
            explicit = int(raw)
        except ValueError:
            raise ConfigError(
                f"{REDUCE_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
        return resolve_workers(explicit, tasks=tasks)
    return resolve_workers(job_workers, tasks=tasks)


def list_schedule_makespan(durations: Iterable[float], workers: int) -> float:
    """Makespan of the deterministic in-order list schedule.

    Task ``i`` is assigned to the worker that frees up earliest (ties
    broken by lowest worker index) — the classic greedy schedule, and
    exactly how a pool with ``chunksize=1`` drains an ordered queue when
    task costs are uniform enough. This is the *wall-clock-equivalent*
    simulated duration of a parallel map phase; with ``workers <= 1``
    the accumulation order degenerates to ``sum()``'s left-to-right
    fold, bit for bit.
    """
    if workers <= 1:
        total = 0.0
        for d in durations:
            total += d
        return total
    free = [(0.0, i) for i in range(workers)]  # sorted ⇒ already a heap
    busiest = 0.0
    for d in durations:
        t, i = heapq.heappop(free)
        t += d
        if t > busiest:
            busiest = t
        heapq.heappush(free, (t, i))
    return busiest


class SerialPool:
    """In-process pool: runs the initializer and every task directly.

    The degenerate TaskPool implementation behind ``workers=1`` call
    sites that still want the pool API (e.g.
    :meth:`repro.runtime.gpu_task.GpuTaskRunner.run_many`). Task
    functions and envelopes behave exactly as they would in a worker,
    minus the process boundary.
    """

    workers = 1

    def __init__(self, initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()):
        if initializer is not None:
            initializer(*initargs)

    def map_tasks(self, fn: Callable[[Any], Any],
                  payloads: Iterable[Any]) -> list[Any]:
        return [fn(p) for p in payloads]

    def imap_tasks(self, fn: Callable[[Any], Any],
                   payloads: Iterable[Any]) -> Iterator[Any]:
        return (fn(p) for p in payloads)

    def close(self) -> None:
        return None

    def terminate(self) -> None:
        return None

    def __enter__(self) -> "SerialPool":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()


def _mark_leaf_worker() -> None:
    """Per-worker setup shared by every pool implementation."""
    global _in_worker
    _in_worker = True
    # Belt and braces for code that reads the env directly: a worker is
    # a leaf and must never fan out again.
    os.environ[WORKERS_ENV] = "1"
    # A forked worker inherits the parent's *active* TraceRecorder;
    # recording into it from another process would interleave garbage.
    # Workers trace into their own per-task recorders (see maptask).
    from ..obs import trace as obs

    obs.install(obs.NULL_RECORDER)


def _bootstrap_worker(initializer: Callable[..., None] | None,
                      initargs: tuple) -> None:
    """Per-worker setup, before any warmup or task runs."""
    _mark_leaf_worker()
    if initializer is not None:
        initializer(*initargs)


class ProcessPool:
    """``multiprocessing``-backed pool with ordered result delivery.

    ``chunksize=1`` keeps scheduling greedy (any free worker takes the
    next task — the load-balancing the paper gets from per-slot task
    assignment, §5); result order is still submission order, which is
    what makes the parent's merge deterministic.
    """

    def __init__(self, workers: int,
                 initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()):
        if workers < 2:
            raise ConfigError(f"ProcessPool needs >= 2 workers, got {workers}")
        from .daemon import resolve_start_method

        method = resolve_start_method()
        ctx = multiprocessing.get_context(method)
        self.workers = workers
        self.start_method = method
        self._pool = ctx.Pool(
            processes=workers,
            initializer=_bootstrap_worker,
            initargs=(initializer, initargs),
        )

    def map_tasks(self, fn: Callable[[Any], Any],
                  payloads: Iterable[Any]) -> list[Any]:
        return self._pool.map(fn, payloads, chunksize=1)

    def imap_tasks(self, fn: Callable[[Any], Any],
                   payloads: Iterable[Any]) -> Iterator[Any]:
        return self._pool.imap(fn, payloads, chunksize=1)

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def terminate(self) -> None:
        self._pool.terminate()
        self._pool.join()

    def __enter__(self) -> "ProcessPool":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.close()
        else:
            self.terminate()


def task_pool(workers: int,
              initializer: Callable[..., None] | None = None,
              initargs: tuple = ()) -> SerialPool | ProcessPool:
    """The TaskPool for ``workers`` — serial below 2, process-backed
    otherwise."""
    if workers <= 1:
        return SerialPool(initializer=initializer, initargs=initargs)
    return ProcessPool(workers, initializer=initializer, initargs=initargs)
