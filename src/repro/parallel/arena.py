"""Zero-copy input shipping: write-once byte arenas shared with workers.

Per-task pickling of input splits was the marshalling cost the Xeon Phi
MapReduce work identifies as the first thing a fast runtime eliminates:
the parent serialized every split's bytes into a pipe and each worker
deserialized its own private copy. An arena inverts that: the parent
publishes the job's input bytes **once**, tasks cross the process
boundary as ``(index, start, stop)`` range triples, and each worker
attaches to the arena a single time per job and slices views out of it.

Three backends, picked per job:

* ``inline`` — inputs under :data:`INLINE_MIN_BYTES` ship inside the
  token itself; a shared segment would cost more than it saves.
* ``shm`` — ``multiprocessing.shared_memory``: the parent creates a
  named segment, workers attach by name. Attached workers unregister
  the segment from their resource tracker (the parent owns the
  lifecycle; double-unlink warnings are the tracker misunderstanding
  exactly this ownership split).
* ``spill`` — an unlinked-on-close temp file the workers ``mmap``.
  Page-cache backed, so reads are as shared as ``shm`` on Linux; this
  is the fallback where ``/dev/shm`` is unavailable and the forced
  choice under ``REPRO_POOL_SHM=0``.

The parent closes (and unlinks) the arena when the job's results are
in; workers evict their attachment when the next job's token differs.
Tokens are plain picklable tuples so they ride inside job-setup
messages under both ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import mmap
import os
import tempfile
from typing import Any

from ..errors import ConfigError

__all__ = [
    "INLINE_MIN_BYTES",
    "SHM_ENV",
    "SplitArena",
    "arena_backend",
    "attach_view",
]

#: Environment knob: ``1`` forces ``shared_memory``, ``0`` forces the
#: mmap spill file, unset probes shm and falls back to spill.
SHM_ENV = "REPRO_POOL_SHM"

#: Inputs smaller than this ship inline in the token — segment setup
#: would dominate for the seed-size test inputs.
INLINE_MIN_BYTES = 64 * 1024


def arena_backend() -> str:
    """The configured shared-segment backend (``shm`` or ``spill``)."""
    raw = os.environ.get(SHM_ENV, "").strip()
    if raw == "":
        return "auto"
    if raw in ("1", "shm"):
        return "shm"
    if raw in ("0", "spill"):
        return "spill"
    raise ConfigError(f"{SHM_ENV}={raw!r} is not 0/1")


def _create_shm(data: bytes):
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=len(data))
    seg.buf[: len(data)] = data
    return seg


class SplitArena:
    """Parent-side handle on one job's published input bytes.

    ``token`` is what workers receive; :func:`attach_view` resolves it
    to a ``memoryview`` in the worker process. ``close()`` releases the
    backing segment/file — call it once every task result is home.
    """

    def __init__(self, data: bytes, min_bytes: int | None = None):
        limit = INLINE_MIN_BYTES if min_bytes is None else min_bytes
        backend = arena_backend()
        self._seg: Any = None
        self._path: str | None = None
        self.nbytes = len(data)
        if len(data) < max(limit, 1):
            self.backend = "inline"
            self.token: tuple = ("inline", data)
            return
        if backend in ("auto", "shm"):
            try:
                self._seg = _create_shm(data)
                self.backend = "shm"
                self.token = ("shm", self._seg.name, len(data))
                return
            except (OSError, ImportError):
                if backend == "shm":
                    raise
        fd, path = tempfile.mkstemp(prefix="repro-arena-")
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        self._path = path
        self.backend = "spill"
        self.token = ("spill", path, len(data))

    def close(self) -> None:
        """Release the backing store (unlink is safe while workers still
        hold attachments — Linux keeps the pages until the last map or
        fd goes away)."""
        if self._seg is not None:
            self._seg.close()
            try:
                self._seg.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._seg = None
        if self._path is not None:
            try:
                os.unlink(self._path)
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._path = None

    def __enter__(self) -> "SplitArena":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# -- worker side -------------------------------------------------------------

#: One cached attachment per process: jobs run one at a time through the
#: pool, so the previous job's segment is evicted when the token changes.
_attached: dict[str, Any] = {}


def _evict() -> None:
    # Views must release their buffer exports before the backing mmap
    # or segment can close (BufferError otherwise).
    view = _attached.pop("view", None)
    if view is not None:
        view.release()
    seg = _attached.pop("seg", None)
    if seg is not None:
        seg.close()
    mapped = _attached.pop("mmap", None)
    if mapped is not None:
        mapped.close()
    _attached.pop("token", None)


def attach_view(token: tuple) -> memoryview:
    """Resolve an arena token to this process's view of the bytes.

    The first call per token attaches (opens the shm segment or maps the
    spill file); repeats are a dict hit. Works in the parent too — the
    serial path and unit tests use the same resolution.
    """
    if _attached.get("token") == token:
        return _attached["view"]
    _evict()
    kind = token[0]
    if kind == "inline":
        view = memoryview(token[1])
    elif kind == "shm":
        name, size = token[1], token[2]
        # Map the segment's /dev/shm file directly: same pages, but no
        # SharedMemory object and therefore no resource-tracker
        # registration — attaching is a read, not an ownership claim.
        path = f"/dev/shm/{name.lstrip('/')}"
        try:
            with open(path, "rb") as fh:
                mapped = mmap.mmap(fh.fileno(), size,
                                   access=mmap.ACCESS_READ)
            _attached["mmap"] = mapped
            view = memoryview(mapped)
        except OSError:  # pragma: no cover - non-Linux shm layout
            from multiprocessing import shared_memory

            seg = shared_memory.SharedMemory(name=name)
            _untrack_shm(name)
            _attached["seg"] = seg
            view = memoryview(seg.buf)[:size]
    elif kind == "spill":
        path, size = token[1], token[2]
        with open(path, "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), size, access=mmap.ACCESS_READ)
        _attached["mmap"] = mapped
        view = memoryview(mapped)
    else:  # pragma: no cover - defensive
        raise ConfigError(f"unknown arena token kind {kind!r}")
    _attached["token"] = token
    _attached["view"] = view
    return view


def _untrack_shm(name: str) -> None:
    """Tell this process's resource tracker the segment isn't ours.

    Attaching registers the segment for cleanup-on-exit, but the parent
    owns unlinking; without this, every worker exit would try to unlink
    an already-released segment and log a spurious leak warning.
    """
    try:  # pragma: no cover - depends on tracker internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name.lstrip('/')}", "shared_memory")
    except Exception:
        pass
