"""Map tasks as pool work items: job specs, warmup, and envelopes.

A worker cannot be handed a live :class:`~repro.hadoop.local.
LocalJobRunner` or :class:`~repro.runtime.gpu_task.GpuTaskRunner` —
their hot state (compiled mini-C closures, kernel bodies, host
snapshots) is closure-based and does not pickle. What crosses the
process boundary instead:

* down, once per job: a frozen *job spec* carrying only sources and
  plain-dataclass configuration, plus the input arena's token
  (:mod:`repro.parallel.arena` — the split bytes are published once and
  never pickled per task). The per-worker job setup rebuilds the runner
  from the spec and **warms** the program/translation/kernel caches.
  With the persistent daemon pool the warmup is paid once per worker
  *process lifetime* per program, not once per job — a warm worker's
  setup is a string of cache hits.
* down, per batch: ``(task_index, start, stop)`` range triples, several
  per IPC round-trip (:func:`~repro.parallel.daemon.resolve_batch_size`).
* up, per batch: compact :class:`MapTaskEnvelope` results — partitioned
  triples or the :class:`GpuTaskResult`, the timing dataclass, and
  (when the parent traces) the worker recorder's events and metrics.

The parent consumes envelopes **in task-index order** (the daemon pool
reassembles batches by index) and folds them exactly as the serial loop
would have, which is what makes ``workers=N`` byte-identical to serial.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, TYPE_CHECKING

from ..apps.base import Application
from ..config import ClusterConfig, GpuSpec, OptimizationFlags
from ..costmodel.cpu import CpuTaskTiming
from ..costmodel.io import IoModel
from ..errors import ReproError
from ..obs import trace as obs
from .arena import SplitArena, attach_view
from .daemon import get_pool
from .pool import resolve_workers

if TYPE_CHECKING:  # runtime import would be circular (local.py uses us)
    from ..hadoop.local import LocalJobRunner
    from ..runtime.gpu_task import GpuTaskResult, GpuTaskRunner

__all__ = [
    "GpuJobSpec",
    "MapJobSpec",
    "MapTaskEnvelope",
    "run_gpu_tasks",
    "run_map_tasks",
    "warm_worker_caches",
]


@dataclass(frozen=True)
class MapJobSpec:
    """Everything a worker needs to rebuild one job's map-side runner."""

    app: Application
    cluster: ClusterConfig
    use_gpu: bool
    opt: OptimizationFlags
    num_reducers: int
    split_bytes: int
    gpu_engine: str          # resolved name — ambient defaults don't ship
    minic_backend: str
    trace: bool


@dataclass
class MapTaskEnvelope:
    """One map task's result, shipped worker → parent.

    ``parts`` carries the partition → decorated-run mapping on *both*
    paths: streaming-sorted ``(sort_key, (key, value, line))`` entries,
    rendered and decorated in the worker so the driver's fold never
    re-encodes a pair. The GPU path additionally ships its
    :class:`GpuTaskResult` for the timing/Fig. 6 bookkeeping.
    """

    index: int
    worker_pid: int
    map_pairs: int
    parts: dict[int, list] | None = None
    cpu_timing: CpuTaskTiming | None = None
    gpu_result: "GpuTaskResult | None" = None
    events: list | None = None
    metrics: Any | None = None


@dataclass(frozen=True)
class GpuJobSpec:
    """Rebuild recipe for a standalone :class:`GpuTaskRunner`.

    Ships program *sources* plus the exact translation key (opt flags,
    map_only) so the worker's ``translate_cached`` resolves to the same
    artifact the parent holds — a cache hit in a warm daemon worker, a
    fresh but identical build in a cold one.
    """

    map_source: str
    combine_source: str | None
    opt: OptimizationFlags
    map_only: bool
    gpu: GpuSpec
    io: IoModel
    num_reducers: int
    replication: int
    min_gpu_mem: int
    engine: str
    trace: bool


# Worker-global runner state, rebuilt by the job setup once per worker
# per job. Module-level (not closure-captured) because pool task
# functions must be importable top-level callables.
_map_state: dict[str, Any] = {}
_gpu_state: dict[str, Any] = {}


def _warm_app(app: Application, opt: OptimizationFlags,
              use_gpu: bool) -> None:
    """Populate this process's mini-C caches for one application."""
    from ..minic.cache import warm_program

    warm_program(app.map_program())
    combine = app.combine_program()
    if combine is not None:
        warm_program(combine)
    reduce_prog = app.reduce_program()
    if reduce_prog is not None:
        # Workers never reduce, but warming is cheap and keeps the
        # worker's cache state a superset of what any task touches.
        warm_program(reduce_prog)
    if use_gpu:
        app.translate_map(opt)
        app.translate_combine(opt)


def warm_worker_caches(tags: tuple[str, ...]) -> None:
    """``repro pool warm``'s broadcast target: prime the mini-C and
    translation caches for the named apps in this worker."""
    from ..apps import get_app
    from ..config import OptimizationFlags

    opt = OptimizationFlags.all_on()
    for tag in tags:
        _warm_app(get_app(tag), opt, use_gpu=True)


def _init_map_worker(spec: MapJobSpec, arena_token: tuple) -> None:
    from ..gpu.device import GpuDevice
    from ..hadoop.local import LocalJobRunner
    from ..minic.interpreter import set_default_backend

    set_default_backend(spec.minic_backend)
    _warm_app(spec.app, spec.opt, spec.use_gpu)
    runner = LocalJobRunner(
        spec.app,
        cluster=spec.cluster,
        use_gpu=spec.use_gpu,
        opt=spec.opt,
        num_reducers=spec.num_reducers,
        split_bytes=spec.split_bytes,
        gpu_engine=spec.gpu_engine,
        workers=1,
    )
    gpu_runner = None
    if spec.use_gpu:
        gpu_runner = runner._make_gpu_runner(GpuDevice(spec.cluster.gpu))
        gpu_runner.map_snapshot()
        if gpu_runner.combine_tr is not None:
            gpu_runner.combine_snapshot()
    _map_state["spec"] = spec
    _map_state["runner"] = runner
    _map_state["gpu_runner"] = gpu_runner
    _map_state["view"] = attach_view(arena_token)


def _run_map_task(payload: tuple[int, int, int]) -> MapTaskEnvelope:
    from ..hadoop.local import LocalJobResult

    index, start, stop = payload
    spec: MapJobSpec = _map_state["spec"]
    runner: "LocalJobRunner" = _map_state["runner"]
    split = bytes(_map_state["view"][start:stop])
    rec = obs.TraceRecorder() if spec.trace else None
    previous = obs.install(rec) if rec is not None else None
    try:
        scratch = LocalJobResult()
        if spec.use_gpu:
            gpu_runner: "GpuTaskRunner" = _map_state["gpu_runner"]
            task = gpu_runner.run(split, task_index=index)
            envelope = MapTaskEnvelope(
                index=index, worker_pid=os.getpid(),
                map_pairs=task.emitted_pairs, gpu_result=task,
                parts=task.rendered_runs(),
            )
        else:
            parts = runner._run_cpu_map_task(split, scratch,
                                             task_index=index)
            envelope = MapTaskEnvelope(
                index=index, worker_pid=os.getpid(),
                map_pairs=scratch.map_output_pairs, parts=parts,
                cpu_timing=scratch.cpu_task_timings[0],
            )
    finally:
        if rec is not None:
            obs.install(previous)
    if rec is not None:
        if rec.open_spans():
            raise ReproError("map task left spans open in worker recorder")
        envelope.events = rec.events
        envelope.metrics = rec.metrics
    return envelope


def run_map_tasks(runner: "LocalJobRunner", data: bytes,
                  ranges: list[tuple[int, int]],
                  workers: int) -> list[MapTaskEnvelope]:
    """Fan a job's split ranges across the daemon pool; envelopes come
    back in task-index order. ``data`` is published once through a
    :class:`~repro.parallel.arena.SplitArena`; only range triples and
    result envelopes are pickled."""
    from ..gpu.engine import default_gpu_engine
    from ..minic.interpreter import default_backend

    spec = MapJobSpec(
        app=runner.app,
        cluster=runner.cluster,
        use_gpu=runner.use_gpu,
        opt=runner.opt,
        num_reducers=runner.num_reducers,
        split_bytes=runner.split_bytes,
        gpu_engine=runner.gpu_engine or default_gpu_engine(),
        minic_backend=default_backend(),
        trace=bool(obs.active().enabled),
    )
    payloads = [(i, start, stop) for i, (start, stop) in enumerate(ranges)]
    with SplitArena(data) as arena:
        return get_pool().run_job(
            workers, _run_map_task, payloads,
            init_fn=_init_map_worker, init_args=(spec, arena.token),
        )


# -- standalone GpuTaskRunner fan-out ---------------------------------------


def _init_gpu_worker(spec: GpuJobSpec, arena_token: tuple) -> None:
    from ..compiler import translate_cached
    from ..gpu.device import GpuDevice
    from ..minic.cache import warm_program
    from ..runtime.gpu_task import GpuTaskRunner
    from ..apps.base import _parse_cached

    map_program = _parse_cached(spec.map_source)
    warm_program(map_program)
    map_tr = translate_cached(map_program, opt=spec.opt,
                              map_only=spec.map_only)
    combine_tr = None
    if spec.combine_source is not None:
        combine_program = _parse_cached(spec.combine_source)
        warm_program(combine_program)
        combine_tr = translate_cached(combine_program, opt=spec.opt)
    runner = GpuTaskRunner(
        map_tr, combine_tr, GpuDevice(spec.gpu), spec.io,
        num_reducers=spec.num_reducers, replication=spec.replication,
        min_gpu_mem=spec.min_gpu_mem, engine=spec.engine,
    )
    runner.map_snapshot()
    if combine_tr is not None:
        runner.combine_snapshot()
    _gpu_state["spec"] = spec
    _gpu_state["runner"] = runner
    _gpu_state["view"] = attach_view(arena_token)


def _run_gpu_split(payload: tuple[int, int, int, bool]) -> "GpuTaskResult":
    index, start, stop, data_local = payload
    spec: GpuJobSpec = _gpu_state["spec"]
    runner: "GpuTaskRunner" = _gpu_state["runner"]
    split = bytes(_gpu_state["view"][start:stop])
    rec = obs.TraceRecorder() if spec.trace else None
    previous = obs.install(rec) if rec is not None else None
    try:
        return runner.run(split, data_local=data_local, task_index=index)
    finally:
        if rec is not None:
            obs.install(previous)


def run_gpu_tasks(runner: "GpuTaskRunner", splits: list[bytes],
                  workers: int | None = None,
                  data_local: bool = True) -> "list[GpuTaskResult]":
    """:meth:`GpuTaskRunner.run_many`'s engine — serial loop at one
    worker, daemon-pool fan-out above that, results in split order
    either way.

    Parallel runs drop per-task trace spans (the standalone runner has
    no parent merge point; :class:`~repro.hadoop.local.LocalJobRunner`'s
    parallel path is the one that splices worker traces).
    """
    nworkers = resolve_workers(workers, tasks=len(splits))
    if nworkers <= 1:
        return [runner.run(split, data_local=data_local)
                for split in splits]
    kernel = runner.map_tr.map_kernel
    assert kernel is not None
    from ..gpu.engine import default_gpu_engine

    spec = GpuJobSpec(
        map_source=runner.map_tr.program.source,
        combine_source=(runner.combine_tr.program.source
                        if runner.combine_tr is not None else None),
        opt=kernel.opt,
        map_only=runner.map_only,
        gpu=runner.device.spec,
        io=runner.io,
        num_reducers=runner.num_reducers,
        replication=runner.replication,
        min_gpu_mem=runner.min_gpu_mem,
        engine=runner.engine or default_gpu_engine(),
        trace=False,
    )
    payloads = []
    offset = 0
    for i, split in enumerate(splits):
        payloads.append((i, offset, offset + len(split), data_local))
        offset += len(split)
    with SplitArena(b"".join(splits)) as arena:
        return get_pool().run_job(
            nworkers, _run_gpu_split, payloads,
            init_fn=_init_gpu_worker, init_args=(spec, arena.token),
        )
