"""Plain-text rendering of experiment results (the harness's output)."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from .figures import AblationPoint, Fig3Result, Fig5Point, JobPoint, geometric_mean


def render_table(rows: Sequence[Mapping[str, object]], title: str = "") -> str:
    """Fixed-width table from a list of homogeneous dicts."""
    if not rows:
        return f"{title}\n(empty)"
    headers = list(rows[0].keys())
    widths = {
        h: max(len(str(h)), *(len(str(r.get(h, ""))) for r in rows))
        for h in headers
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(widths[h]) for h in headers))
    lines.append("  ".join("-" * widths[h] for h in headers))
    for r in rows:
        lines.append("  ".join(str(r.get(h, "")).ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def render_fig3(result: Fig3Result) -> str:
    lines = [
        "Fig. 3 — tail scheduling key idea (19 tasks, 2 CPU slots, GPU 6x)",
        f"  GPU-first makespan: {result.gpu_first_makespan:.3f} CPU-task units",
        f"  Tail-sched makespan: {result.tail_makespan:.3f} CPU-task units",
        f"  Improvement: {result.gpu_first_makespan / result.tail_makespan:.2f}x",
    ]
    return "\n".join(lines)


def render_fig4(points: list[JobPoint], title: str) -> str:
    rows = [
        {
            "app": p.app,
            "gpus": p.gpus_per_node,
            "policy": p.policy,
            "speedup": f"{p.speedup:.2f}x",
            "gpu_task_share": f"{p.gpu_task_fraction:.0%}",
            "forced": p.forced_tasks,
        }
        for p in points
    ]
    text = render_table(rows, title)
    tail_speedups = [p.speedup for p in points if p.policy == "tail"]
    if tail_speedups:
        text += f"\n  geometric mean (tail): {geometric_mean(tail_speedups):.2f}x"
    return text


def render_fig5(points: list[Fig5Point]) -> str:
    rows = [
        {
            "app": p.app,
            "baseline": f"{p.baseline_speedup:.1f}x",
            "optimized": f"{p.optimized_speedup:.1f}x",
            "opt_gain": f"{p.optimization_gain:.2f}x",
        }
        for p in points
    ]
    return render_table(rows, "Fig. 5 — single GPU-task speedup over one CPU core")


def render_fig6(fractions: Mapping[str, Mapping[str, float]]) -> str:
    rows = []
    for app, frac in fractions.items():
        rows.append({"app": app, **{k: f"{v:.0%}" for k, v in frac.items()}})
    return render_table(rows, "Fig. 6 — GPU task execution-time breakdown")


def render_fig7(points: list[AblationPoint]) -> str:
    rows = [
        {
            "optimization": p.optimization,
            "app": p.app,
            "stage": p.affected_stage,
            "speedup": f"{p.speedup:.2f}x",
        }
        for p in points
    ]
    return render_table(rows, "Fig. 7 — effect of individual optimizations")
