"""Regeneration of the paper's Tables 1–3 from the library's own state —
the catalogue, benchmark registry, and cluster configs are the single
source of truth, so the tables can never drift from the code."""

from __future__ import annotations

from dataclasses import dataclass

from ..apps import all_apps
from ..config import CLUSTER1, CLUSTER2, ClusterConfig
from ..directives.clauses import CLAUSES, ArgKind, DirectiveKind
from ..scenarios.registry import PAPER_APP_ORDER


def table1() -> list[dict[str, str]]:
    """Table 1: the directive/clause catalogue."""
    rows = [
        {
            "clause": "mapper",
            "arguments": "",
            "description": "Specifies that the attached region performs map operation",
            "optional": "No",
        },
        {
            "clause": "combiner",
            "arguments": "",
            "description": "Specifies that the attached region performs combine operation",
            "optional": "No",
        },
    ]
    arg_names = {
        ArgKind.VARIABLE: "Variable name",
        ArgKind.VARIABLE_LIST: "A set of variable names",
        ArgKind.INTEGER: "Integer variable",
        ArgKind.NONE: "",
    }
    for spec in CLAUSES.values():
        rows.append(
            {
                "clause": spec.name,
                "arguments": arg_names[spec.arg_kind],
                "description": spec.description,
                "optional": "Yes" if spec.optional else "No",
            }
        )
    return rows


def table2() -> list[dict[str, object]]:
    """Table 2: benchmark descriptions, from the app registry."""
    rows = []
    order = PAPER_APP_ORDER
    by_short = {a.short: a for a in all_apps()}
    for short in order:
        app = by_short[short]
        c1, c2 = app.cluster1, app.cluster2
        rows.append(
            {
                "benchmark": f"{app.name} ({short})",
                "pct_map_combine": app.pct_map_combine_active,
                "nature": app.nature,
                "combiner": "Yes" if app.has_combiner else "No",
                "reduce_tasks_c1": c1.reduce_tasks if c1 else None,
                "reduce_tasks_c2": c2.reduce_tasks if c2 else None,
                "map_tasks_c1": c1.map_tasks if c1 else None,
                "map_tasks_c2": (c2.map_tasks if c2 and c2.map_tasks else "NA"),
                "input_gb_c1": c1.input_gb if c1 else None,
                "input_gb_c2": (c2.input_gb if c2 and c2.input_gb else "NA"),
            }
        )
    return rows


def _cluster_row(c: ClusterConfig) -> dict[str, object]:
    return {
        "name": c.name,
        "nodes": f"{c.num_slaves} (+1 master)",
        "cpu": c.cpu.name,
        "cpu_cores": c.cpu.cores,
        "gpus": f"{c.gpus_per_node}x{c.gpu.name}",
        "ram_gb": c.ram // (1024 ** 3),
        "disk": "500GB" if c.has_disk else "none",
        "hadoop": c.hadoop_version,
        "cuda": c.cuda_version,
        "hdfs_block_mb": c.hdfs_block_size // (1024 ** 2),
        "replication": c.hdfs_replication,
        "map_slots": f"{c.max_map_slots_per_node} (+1 per GPU)",
        "reduce_slots": c.max_reduce_slots_per_node,
        "speculative": "Off" if not c.speculative_execution else "On",
        "slowstart_pct": int(c.slowstart_maps_fraction * 100),
    }


def table3() -> list[dict[str, object]]:
    """Table 3: the two cluster setups."""
    return [_cluster_row(CLUSTER1), _cluster_row(CLUSTER2)]
