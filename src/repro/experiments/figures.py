"""Regeneration of every figure in the paper's evaluation (§7).

Each ``fig*`` function returns plain data structures (dicts keyed by the
paper's benchmark tags) that the benchmark harness prints next to the
paper's reported shapes; EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..apps import all_apps, get_app
from ..apps.base import Application
from ..config import CLUSTER1, CLUSTER2, ClusterConfig, OptimizationFlags
from ..errors import ConfigError
from ..hadoop import ClusterSimulator, JobConf
from ..scenarios.registry import PAPER_APP_ORDER
from ..scheduling import CpuOnlyPolicy, GpuFirstPolicy, TailPolicy
from .calibrate import TaskTimes, gpu_breakdown_from_trace, single_task_times

#: Benchmarks in the paper's Fig. 4/5 ordering (by increasing speedup).
APP_ORDER = list(PAPER_APP_ORDER)

#: Seeds for the paper's run-three-times-report-best protocol (§7.3).
RUN_SEEDS = (11, 23, 47)


# --------------------------------------------------------------------------
# Fig. 3 — tail scheduling key idea (toy scenario)
# --------------------------------------------------------------------------


@dataclass
class Fig3Result:
    """Makespans of the §6.1 example: 19 tasks, 2 CPU slots, 1 GPU that is
    6× faster than a CPU slot."""

    gpu_first_makespan: float
    tail_makespan: float
    gpu_first_schedule: list[tuple[int, str, float, float]]  # task, slot, start, end
    tail_schedule: list[tuple[int, str, float, float]]


def _toy_schedule(num_tasks: int, cpu_slots: int, gpu_speedup: float,
                  tail: bool) -> list[tuple[int, str, float, float]]:
    """Greedy event-driven schedule of identical tasks on 2 CPUs + 1 GPU."""
    cpu_dur, gpu_dur = 1.0, 1.0 / gpu_speedup
    free_at = {"gpu": 0.0, **{f"cpu{i}": 0.0 for i in range(cpu_slots)}}
    schedule: list[tuple[int, str, float, float]] = []
    for task in range(num_tasks):
        remaining = num_tasks - task
        slot = min(free_at, key=lambda s: free_at[s])
        if tail and remaining <= gpu_speedup:
            slot = "gpu"  # force the tail onto the GPU
        elif not slot.startswith("gpu"):
            # GPU-first: take the GPU whenever it frees no later than a CPU.
            if free_at["gpu"] <= free_at[slot]:
                slot = "gpu"
        dur = gpu_dur if slot == "gpu" else cpu_dur
        start = free_at[slot]
        free_at[slot] = start + dur
        schedule.append((task + 1, slot, start, start + dur))
    return schedule


def fig3(num_tasks: int = 19, cpu_slots: int = 2,
         gpu_speedup: float = 6.0) -> Fig3Result:
    """The paper's Fig. 3 example. Expected: tail scheduling finishes the
    job sooner because tasks 18–19 run on the GPU instead of straggling on
    CPU slots."""
    gf = _toy_schedule(num_tasks, cpu_slots, gpu_speedup, tail=False)
    tl = _toy_schedule(num_tasks, cpu_slots, gpu_speedup, tail=True)
    return Fig3Result(
        gpu_first_makespan=max(end for *_ignore, end in gf),
        tail_makespan=max(end for *_ignore, end in tl),
        gpu_first_schedule=gf,
        tail_schedule=tl,
    )


# --------------------------------------------------------------------------
# Fig. 4 — end-to-end speedup over CPU-only Hadoop
# --------------------------------------------------------------------------


@dataclass
class JobPoint:
    """One bar of Fig. 4: a (app, policy, gpus) job vs the CPU-only base."""

    app: str
    policy: str
    gpus_per_node: int
    speedup: float
    job_seconds: float
    baseline_seconds: float
    gpu_task_fraction: float
    forced_tasks: int


def _job_conf(app: Application, cluster: ClusterConfig, times: TaskTimes,
              seed: int, target_cpu_seconds: float,
              task_scale: float) -> JobConf:
    figures = app.figures_for(cluster.name)
    cpu_s, gpu_s = times.scaled(target_cpu_seconds)
    num_maps = max(1, int(figures.map_tasks * task_scale))
    # Map output volume per task, rescaled like the durations.
    out_bytes = times.output_bytes * (target_cpu_seconds / times.cpu_seconds)
    return JobConf(
        name=app.short,
        num_map_tasks=num_maps,
        num_reduce_tasks=figures.reduce_tasks,
        cluster=cluster,
        cpu_task_seconds=cpu_s,
        gpu_task_seconds=gpu_s,
        map_output_bytes=max(out_bytes, 1.0),
        reduce_compute_seconds=target_cpu_seconds
        * (100 - app.pct_map_combine_active) / 100.0,
        seed=seed,
    )


def _best_of_seeds(job_for_seed, policy_factory) -> float:
    """Paper §7.3: 'We ran each experiment three times, and report the
    best run.'"""
    best = None
    for seed in RUN_SEEDS:
        result = ClusterSimulator(job_for_seed(seed), policy_factory()).run()
        if best is None or result.job_seconds < best:
            best = result.job_seconds
    assert best is not None
    return best


def fig4(cluster: ClusterConfig, gpus_options: Iterable[int],
         apps: Iterable[str] | None = None,
         target_cpu_seconds: float = 60.0,
         task_scale: float = 1.0) -> list[JobPoint]:
    """Generic Fig. 4 engine: every app × policy × GPU count vs CPU-only."""
    points: list[JobPoint] = []
    selected = list(apps) if apps is not None else APP_ORDER
    for short in selected:
        app = get_app(short)
        try:
            app.figures_for(cluster.name)
        except ConfigError:
            continue  # Table 2 'NA' (KM on Cluster2)
        times = single_task_times(app, cluster)
        base_conf = lambda seed: _job_conf(  # noqa: E731
            app, cluster.cpu_only(), times, seed, target_cpu_seconds, task_scale
        )
        baseline = _best_of_seeds(base_conf, CpuOnlyPolicy)
        for gpus in gpus_options:
            gpu_cluster = cluster.with_gpus(gpus)
            if app.min_gpu_mem > gpu_cluster.gpu.global_mem:
                continue
            for policy_factory in (GpuFirstPolicy, TailPolicy):
                conf = lambda seed: _job_conf(  # noqa: E731
                    app, gpu_cluster, times, seed, target_cpu_seconds, task_scale
                )
                best = None
                best_result = None
                for seed in RUN_SEEDS:
                    result = ClusterSimulator(conf(seed), policy_factory()).run()
                    if best is None or result.job_seconds < best:
                        best, best_result = result.job_seconds, result
                assert best_result is not None
                total_tasks = best_result.cpu_tasks + best_result.gpu_tasks
                points.append(
                    JobPoint(
                        app=short,
                        policy=policy_factory().name,
                        gpus_per_node=gpus,
                        speedup=baseline / best,
                        job_seconds=best,
                        baseline_seconds=baseline,
                        gpu_task_fraction=best_result.gpu_tasks / max(total_tasks, 1),
                        forced_tasks=best_result.forced_gpu_tasks,
                    )
                )
    return points


def fig4a(task_scale: float = 1.0,
          apps: Iterable[str] | None = None) -> list[JobPoint]:
    """Fig. 4a: Cluster1, one K40 per node, GPU-first vs tail scheduling.

    Paper shape: speedups rise from ~1.05 (GR) to 2.78 (BS), geometric
    mean 1.6; tail ≥ GPU-first everywhere, with no benefit for LR."""
    return fig4(CLUSTER1, gpus_options=[1], apps=apps, task_scale=task_scale)


def fig4b(task_scale: float = 1.0,
          apps: Iterable[str] | None = None) -> list[JobPoint]:
    """Fig. 4b: Cluster2, 1–3 M2090s per node (KM excluded: exceeds GPU
    memory). Paper shape: speedups scale with GPU count; larger than
    Cluster1's because Cluster2 has fewer CPU cores and no disks."""
    return fig4(CLUSTER2, gpus_options=[1, 2, 3], apps=apps, task_scale=task_scale)


def geometric_mean(values: Iterable[float]) -> float:
    vals = list(values)
    if not vals:
        raise ConfigError("geometric mean of nothing")
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))


# --------------------------------------------------------------------------
# Fig. 5 — single GPU-task speedup over a CPU core (baseline + optimized)
# --------------------------------------------------------------------------


@dataclass
class Fig5Point:
    app: str
    baseline_speedup: float     # translated code, optimizations off
    optimized_speedup: float    # full HeteroDoop optimizer

    @property
    def optimization_gain(self) -> float:
        return self.optimized_speedup / self.baseline_speedup


def fig5(cluster: ClusterConfig = CLUSTER1,
         apps: Iterable[str] | None = None) -> list[Fig5Point]:
    """Fig. 5: per-benchmark single-task speedups, baseline vs optimized.

    Paper shape: ordered GR < HS < WC < HR < LR < KM < CL < BS, up to 47×
    for BS; optimizations matter most for GR, KM, CL, LR."""
    points = []
    for short in (apps if apps is not None else APP_ORDER):
        optimized = single_task_times(short, cluster)
        baseline = single_task_times(
            short, cluster, opt=OptimizationFlags.baseline()
        )
        points.append(
            Fig5Point(
                app=short,
                baseline_speedup=baseline.gpu_speedup,
                optimized_speedup=optimized.gpu_speedup,
            )
        )
    return points


# --------------------------------------------------------------------------
# Fig. 6 — execution-time breakdown of a GPU task
# --------------------------------------------------------------------------


def fig6(cluster: ClusterConfig = CLUSTER1,
         apps: Iterable[str] | None = None) -> dict[str, dict[str, float]]:
    """Fig. 6: per-stage fractions of one GPU task.

    Paper shape: BS dominated by output write (~62%); WC by sort (long
    keys); KM/CL map-heavy; HR/LR substantial combine; aggregation
    negligible everywhere.

    The per-stage seconds are read from the tracing layer (the ``phase``
    spans one traced GPU task emits) rather than from the pipeline's
    returned breakdown; see
    :func:`repro.experiments.calibrate.gpu_breakdown_from_trace`."""
    out: dict[str, dict[str, float]] = {}
    for short in (apps if apps is not None else APP_ORDER):
        phases = gpu_breakdown_from_trace(short, cluster)
        total = sum(phases.values()) or 1.0
        out[short] = {k: v / total for k, v in phases.items()}
    return out


# --------------------------------------------------------------------------
# Fig. 7 — effects of individual optimizations
# --------------------------------------------------------------------------


@dataclass
class AblationPoint:
    app: str
    optimization: str
    affected_stage: str
    time_without: float
    time_with: float

    @property
    def speedup(self) -> float:
        if self.time_with <= 0:
            raise ConfigError("zero stage time")
        return self.time_without / self.time_with


_ABLATIONS = [
    # (figure, flag, stage accessor, paper's affected apps, paper max gain)
    ("7a", "use_texture", "map", ["KM", "CL"], 2.0),
    ("7b", "vectorize_combine", "combine", ["GR", "WC", "HS", "HR", "LR"], 2.7),
    ("7c", "vectorize_map", "map", ["GR", "WC", "KM"], 1.7),
    ("7e", "kv_aggregation", "sort", ["WC", "HR", "LR", "KM", "CL"], 7.6),
]


#: Compute-per-record map used by the Fig. 7d mechanism benchmark: a
#: kmeans-shaped kernel (numeric parse + per-token distance-style math)
#: whose per-record work is proportional to the record length.
_FIG7D_SOURCE = """
int main()
{
    char tok[30], *line;
    size_t nbytes = 10000;
    double acc;
    int read, lp, offset, i, k;
    line = (char*) malloc(nbytes*sizeof(char));
    #pragma mapreduce mapper key(k) value(acc) \\
        kvpairs(2) blocks(2) threads(128)
    while( (read = getline(&line, &nbytes, stdin)) != -1) {
        offset = 0;
        acc = 0.0;
        k = 0;
        while( (lp = getWord(line, offset, tok, read, 30)) != -1) {
            offset += lp;
            for(i = 0; i < 60; i++) {
                acc += sqrt(atof(tok) + i);
            }
            k++;
        }
        printf("%d\\t%f\\n", k, acc);
    }
    free(line);
    return 0;
}
"""


def _fig7d_record_stealing(cluster: ClusterConfig) -> list[AblationPoint]:
    """Fig. 7d mechanism benchmark.

    Record stealing pays off when threads each process *many* records of
    skewed length — the regime of a real 256 MB fileSplit (millions of
    records over ~7680 threads). Laptop-scale splits under the default
    grid give every thread at most one record, where stealing is a no-op
    by construction. This benchmark therefore recreates the real
    multiplicity regime directly: a kmeans-shaped kernel on a small grid
    over Pareto-skewed records, stealing on vs off, at three skew levels.
    """
    import random

    from ..compiler import translate as _translate
    from ..gpu.device import GpuDevice
    from ..gpu.executor import run_map_kernel
    from ..kvstore import GlobalKVStore, Partitioner
    from ..minic import parse as _parse
    from ..minic.interpreter import Interpreter

    points: list[AblationPoint] = []
    for label, pareto_shape in (("mild-skew", 2.5), ("medium-skew", 1.5),
                                ("heavy-skew", 1.1)):
        rng = random.Random(31)
        records = [
            b"7.5 " * max(1, min(18, int(rng.paretovariate(pareto_shape))))
            for _ in range(1600)
        ]
        times: dict[bool, float] = {}
        for stealing in (True, False):
            opt = OptimizationFlags.all_on().but(record_stealing=stealing)
            tr = _translate(_parse(_FIG7D_SOURCE), opt=opt)
            kernel = tr.map_kernel
            device = GpuDevice(cluster.gpu)
            store = GlobalKVStore(
                total_threads=kernel.launch.total_threads,
                capacity_pairs=kernel.launch.total_threads * 40,
                key_length=kernel.key_length,
                value_length=kernel.value_length,
            )
            snapshot = Interpreter(tr.program, stdin="").run_until_region(
                kernel.original_region
            )
            launch = run_map_kernel(device, kernel, records, snapshot,
                                    store, Partitioner(4))
            times[stealing] = launch.cost.seconds
        points.append(
            AblationPoint(
                app=label,
                optimization="record_stealing",
                affected_stage="map",
                time_without=times[False],
                time_with=times[True],
            )
        )
    return points


def fig7(cluster: ClusterConfig = CLUSTER1,
         subfigure: str | None = None) -> list[AblationPoint]:
    """Fig. 7a–e: turn one optimization off, measure the affected kernel.

    Only benchmarks the paper shows (those affected) are measured."""
    points: list[AblationPoint] = []
    for fig_id, flag, stage, apps, _paper_max in _ABLATIONS:
        if subfigure is not None and fig_id != subfigure:
            continue
        for short in apps:
            with_opt = single_task_times(short, cluster)
            without = single_task_times(
                short, cluster, opt=OptimizationFlags.all_on().but(**{flag: False})
            )
            points.append(
                AblationPoint(
                    app=short,
                    optimization=flag,
                    affected_stage=stage,
                    time_without=getattr(without.gpu_breakdown, stage),
                    time_with=getattr(with_opt.gpu_breakdown, stage),
                )
            )
    if subfigure is None or subfigure == "7d":
        points.extend(_fig7d_record_stealing(cluster))
    return points
