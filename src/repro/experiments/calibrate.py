"""Single-task measurement: one fileSplit through the CPU path and the
GPU pipeline, timed by the respective models.

These measurements are the substrate for Fig. 5 (task speedups), Fig. 6
(GPU breakdown), Fig. 7 (ablations), and — scaled to realistic task
lengths — the per-task durations driving the Fig. 4 cluster simulations.

Scaling note: simulation splits are laptop-sized (hundreds of records,
not 256 MB), but every modelled cost is linear in split size (records,
bytes, KV pairs; sort is n·log n, a mild correction), so CPU/GPU *ratios*
are scale-invariant. For the cluster simulator we rescale both sides so
the CPU task lasts ``target_cpu_seconds`` (a realistic Hadoop map-task
length), preserving the ratio exactly.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any

from ..apps.base import Application
from ..apps import get_app
from ..config import CLUSTER1, CLUSTER2, ClusterConfig, OptimizationFlags
from ..costmodel.cpu import CpuTaskModel, CpuTaskTiming
from ..costmodel.io import IoModel
from ..errors import ConfigError
from ..gpu.device import GpuDevice
from ..hadoop.local import parse_kv_line
from ..hadoop.shuffle import sort_kv_run
from ..kvstore import Partitioner
from ..runtime.gpu_task import GpuTaskBreakdown, GpuTaskRunner
from ..scenarios.registry import APP_ORDER, get_workload

#: Default records per calibration split, per app — the registry's
#: ``calibration`` figures (BS interprets 128 pricing iterations per
#: record, so fewer records suffice).
DEFAULT_RECORDS = {app: get_workload(app).calibration
                   for app in APP_ORDER}


@dataclass
class TaskTimes:
    """Single-task timing for one (app, cluster, optimization) point."""

    app: str
    cluster: str
    cpu_seconds: float
    gpu_seconds: float
    cpu_timing: CpuTaskTiming
    gpu_breakdown: GpuTaskBreakdown
    map_output_pairs: int = 0
    output_bytes: int = 0
    records: int = 0

    @property
    def gpu_speedup(self) -> float:
        """GPU task speedup over a single-core CPU task (Fig. 5's metric)."""
        if self.gpu_seconds <= 0:
            raise ConfigError("GPU task time is zero")
        return self.cpu_seconds / self.gpu_seconds

    def scaled(self, target_cpu_seconds: float = 60.0) -> tuple[float, float]:
        """(cpu_s, gpu_s) rescaled so the CPU task lasts the target."""
        factor = target_cpu_seconds / self.cpu_seconds
        return target_cpu_seconds, self.gpu_seconds * factor


def _cluster_by_name(name: str) -> ClusterConfig:
    if name == "Cluster1":
        return CLUSTER1
    if name == "Cluster2":
        return CLUSTER2
    raise ConfigError(f"unknown cluster {name!r}")


def _cpu_task(app: Application, cluster: ClusterConfig, split: bytes,
              reducers: int) -> tuple[CpuTaskTiming, int, int]:
    """Run the split through the Hadoop Streaming CPU path; returns
    (timing, map_kv_pairs, output_bytes)."""
    io = IoModel.for_cluster(cluster)
    model = CpuTaskModel(cluster.cpu, io)
    text = split.decode("utf-8")
    map_out, map_counters = app.cpu_map(text)
    pairs = [parse_kv_line(ln) for ln in map_out.splitlines() if ln]

    partitioner = Partitioner(max(reducers, 1))
    parts: dict[int, list[tuple[Any, Any]]] = defaultdict(list)
    for k, v in pairs:
        parts[partitioner.partition(k)].append((k, v))

    combine_counters = None
    output_pairs: list[tuple[Any, Any]] = []
    for _part, kvs in sorted(parts.items()):
        kvs = sort_kv_run(kvs)
        if app.has_combiner:
            text_in = "".join(f"{k}\t{v}\n" for k, v in kvs)
            out, counters = app.cpu_combine(text_in)
            combine_counters = counters if combine_counters is None \
                else combine_counters.merged(counters)
            output_pairs.extend(parse_kv_line(ln) for ln in out.splitlines() if ln)
        else:
            output_pairs.extend(kvs)

    output_bytes = sum(len(f"{k}\t{v}\n".encode()) for k, v in output_pairs)
    key_len = app.translate_map().map_kernel.key_length
    timing = model.task_timing(
        split_bytes=len(split),
        map_counters=map_counters,
        map_kv_pairs=len(pairs),
        key_length=key_len,
        combine_counters=combine_counters,
        output_bytes=output_bytes,
        map_only=app.map_only,
        replication=cluster.hdfs_replication,
    )
    return timing, len(pairs), output_bytes


@lru_cache(maxsize=256)
def _single_task_times_cached(
    app_short: str, cluster_name: str, opt_key: tuple[bool, ...],
    records: int, seed: int,
) -> TaskTimes:
    app = get_app(app_short)
    cluster = _cluster_by_name(cluster_name)
    opt = OptimizationFlags(*opt_key)
    split = app.generate(records, seed).encode("utf-8")
    figures = app.cluster1 if cluster_name == "Cluster1" else app.cluster2
    reducers = figures.reduce_tasks if figures is not None else 1

    cpu_timing, map_pairs, output_bytes = _cpu_task(app, cluster, split, reducers)

    device = GpuDevice(cluster.gpu)
    runner = GpuTaskRunner(
        app.translate_map(opt),
        app.translate_combine(opt),
        device,
        IoModel.for_cluster(cluster),
        num_reducers=reducers,
        replication=cluster.hdfs_replication,
        min_gpu_mem=app.min_gpu_mem,
    )
    gpu_result = runner.run(split)

    return TaskTimes(
        app=app_short,
        cluster=cluster_name,
        cpu_seconds=cpu_timing.total,
        gpu_seconds=gpu_result.seconds,
        cpu_timing=cpu_timing,
        gpu_breakdown=gpu_result.breakdown,
        map_output_pairs=map_pairs,
        output_bytes=output_bytes,
        records=records,
    )


def single_task_times(
    app: Application | str,
    cluster: ClusterConfig = CLUSTER1,
    opt: OptimizationFlags | None = None,
    records: int | None = None,
    seed: int = 7,
) -> TaskTimes:
    """Measure one map(+combine) task on both processors (cached)."""
    short = app if isinstance(app, str) else app.short
    opt = opt if opt is not None else OptimizationFlags.all_on()
    records = records if records is not None else DEFAULT_RECORDS.get(short, 300)
    opt_key = (
        opt.use_texture, opt.vectorize_map, opt.vectorize_combine,
        opt.record_stealing, opt.kv_aggregation,
    )
    return _single_task_times_cached(short, cluster.name, opt_key, records, seed)


@lru_cache(maxsize=64)
def _traced_phase_seconds_cached(
    app_short: str, cluster_name: str, opt_key: tuple[bool, ...],
    records: int, seed: int,
) -> dict[str, float]:
    from .. import obs

    app = get_app(app_short)
    cluster = _cluster_by_name(cluster_name)
    opt = OptimizationFlags(*opt_key)
    split = app.generate(records, seed).encode("utf-8")
    figures = app.cluster1 if cluster_name == "Cluster1" else app.cluster2
    reducers = figures.reduce_tasks if figures is not None else 1
    runner = GpuTaskRunner(
        app.translate_map(opt),
        app.translate_combine(opt),
        GpuDevice(cluster.gpu),
        IoModel.for_cluster(cluster),
        num_reducers=reducers,
        replication=cluster.hdfs_replication,
        min_gpu_mem=app.min_gpu_mem,
    )
    recorder = obs.TraceRecorder()
    with obs.use_recorder(recorder):
        runner.run(split)
    phases: dict[str, float] = {}
    for span in recorder.spans("phase"):
        phases[span.name] = phases.get(span.name, 0.0) + (span.dur or 0.0)
    return phases


def gpu_breakdown_from_trace(
    app: Application | str,
    cluster: ClusterConfig = CLUSTER1,
    opt: OptimizationFlags | None = None,
    records: int | None = None,
    seed: int = 7,
) -> dict[str, float]:
    """Per-phase GPU-task seconds aggregated from *trace spans*.

    This is the Fig. 6 data path: the task runs once under a
    :class:`~repro.obs.TraceRecorder` and the breakdown is read back from
    the ``phase`` spans the pipeline emitted, rather than from the
    returned :class:`~repro.runtime.gpu_task.GpuTaskBreakdown`. The two
    agree exactly (a phase span's duration *is* the charged stage time) —
    the trace tests assert it — but deriving the figure from traces keeps
    the observable data the single source of truth.
    """
    short = app if isinstance(app, str) else app.short
    opt = opt if opt is not None else OptimizationFlags.all_on()
    records = records if records is not None else DEFAULT_RECORDS.get(short, 300)
    opt_key = (
        opt.use_texture, opt.vectorize_map, opt.vectorize_combine,
        opt.record_stealing, opt.kv_aggregation,
    )
    return dict(_traced_phase_seconds_cached(
        short, cluster.name, opt_key, records, seed
    ))
