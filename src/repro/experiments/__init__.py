"""Experiment harness: regenerates every table and figure in the paper's
evaluation (§7). See DESIGN.md §4 for the experiment index.

Layers:

* :mod:`repro.experiments.calibrate` — measures single-task CPU/GPU times
  per application via the functional simulators (the Fig. 5/6 substrate)
  and scales them for the cluster simulator.
* :mod:`repro.experiments.figures` — Fig. 3 (tail-scheduling idea),
  Fig. 4a/4b (end-to-end speedups), Fig. 5 (single-task speedups),
  Fig. 6 (GPU-task breakdown), Fig. 7a–e (optimization ablations).
* :mod:`repro.experiments.tables` — Tables 1–3.
* :mod:`repro.experiments.report` — plain-text rendering of results.
"""

from .calibrate import TaskTimes, single_task_times
from . import figures, tables, report

__all__ = ["TaskTimes", "single_task_times", "figures", "tables", "report"]
