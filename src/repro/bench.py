"""Interpreter-backend benchmark: tree-walker vs closure-compiled.

Runs complete CPU-path local jobs (``LocalJobRunner(use_gpu=False)``)
for selected benchmarks under both mini-C interpreter backends and
reports records/second plus the compiled-over-tree speedup. The two
runs must produce identical job output — a speedup over a wrong answer
is no speedup — so every bench run doubles as a differential test.

Timing uses ``time.process_time()`` (CPU time, immune to scheduler
noise) and keeps the best of ``repeat`` runs, which is the stable
estimator for a single-threaded hot loop. The two backends are timed
in interleaved rounds (tree, compiled, tree, compiled, ...) rather
than back-to-back phases, so slow CPU-frequency drift over the bench
run biases both backends equally instead of skewing the ratio.

CLI: ``python -m repro bench --out BENCH_interp.json``.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterable

from .apps import get_app
from .errors import ReproError
from .minic.interpreter import use_backend

#: Default record counts, sized so the tree-walker run stays around a
#: second per app (KM does ~40x more mini-C work per record than WC).
_DEFAULT_RECORDS = {
    "GR": 4000,
    "WC": 3000,
    "HS": 4000,
    "HR": 4000,
    "LR": 1500,
    "KM": 300,
    "CL": 400,
    "BS": 1500,
}
DEFAULT_APPS = ("WC", "KM")


def _timed_run(runner: Any, text: str, backend: str) -> tuple[float, dict]:
    with use_backend(backend):
        start = time.process_time()
        result = runner.run(text)
        return time.process_time() - start, result.output


def bench_app(short: str, records: int | None = None, repeat: int = 3,
              seed: int = 7, split_bytes: int = 64 * 1024) -> dict[str, Any]:
    """Benchmark one app's CPU-path local job under both backends."""
    from .hadoop.local import LocalJobRunner

    app = get_app(short)
    n = records if records is not None else _DEFAULT_RECORDS.get(short, 1000)
    text = app.generate(n, seed=seed)
    runner = LocalJobRunner(app, use_gpu=False, split_bytes=split_bytes)

    # Warm both backends (parse/compile/translate caches) off the clock.
    _, tree_out = _timed_run(runner, text, "tree")
    _, compiled_out = _timed_run(runner, text, "compiled")
    tree_s = compiled_s = float("inf")
    for _ in range(max(repeat, 1)):
        elapsed, tree_out = _timed_run(runner, text, "tree")
        tree_s = min(tree_s, elapsed)
        elapsed, compiled_out = _timed_run(runner, text, "compiled")
        compiled_s = min(compiled_s, elapsed)

    if tree_out != compiled_out:
        raise ReproError(
            f"{short}: backend outputs diverge "
            f"({len(tree_out)} vs {len(compiled_out)} keys)"
        )
    return {
        "app": short,
        "records": n,
        "output_keys": len(compiled_out),
        "tree_seconds": round(tree_s, 4),
        "compiled_seconds": round(compiled_s, 4),
        "tree_records_per_s": round(n / tree_s, 1) if tree_s else None,
        "compiled_records_per_s": round(n / compiled_s, 1)
        if compiled_s else None,
        "speedup": round(tree_s / compiled_s, 2) if compiled_s else None,
    }


def run_bench(apps: Iterable[str] = DEFAULT_APPS, records: int | None = None,
              repeat: int = 3, seed: int = 7) -> dict[str, Any]:
    """Benchmark several apps; returns the report dict."""
    results = [bench_app(a, records=records, repeat=repeat, seed=seed)
               for a in apps]
    return {
        "benchmark": "mini-C interpreter backends, CPU-path local jobs",
        "method": ("best-of-N process_time, interleaved backend rounds, "
                   "identical-output enforced"),
        "repeat": repeat,
        "results": results,
    }


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def check_min_speedup(report: dict[str, Any], minimum: float) -> list[str]:
    """Apps whose compiled-backend speedup is below ``minimum``."""
    return [
        r["app"]
        for r in report["results"]
        if r["speedup"] is None or r["speedup"] < minimum
    ]
