"""Execution-engine benchmarks: tree-walking vs closure-compiled.

Two benchmark paths, both running complete local jobs:

* **cpu** — ``LocalJobRunner(use_gpu=False)`` under both mini-C
  interpreter backends (the PR-1 comparison; canonical report
  ``BENCH_interp.json``);
* **gpu** — ``LocalJobRunner(use_gpu=True)`` under the tree-walking
  GPU path (``"tree"`` lane engine + ``"tree"`` mini-C backend — the
  fully interpreted reference) vs the compiled lane engine vs the
  numpy-vectorized warp engine (canonical report ``BENCH_gpu.json``).
  The vector row reports its ``vector.regions``/``vector.fallbacks``
  tallies so the report shows *whether* an app vectorized, not just how
  fast it went.

Each path reports records/second plus the compiled-over-tree speedup.
The paired runs must produce identical job output — a speedup over a
wrong answer is no speedup — so every bench run doubles as a
differential test; the GPU path additionally requires bit-identical
simulated task times, since the engines share one timing model.

Timing uses ``time.process_time()`` (CPU time, immune to scheduler
noise) and keeps the best of ``repeat`` runs, which is the stable
estimator for a single-threaded hot loop. The two engines are timed
in interleaved rounds (tree, compiled, tree, compiled, ...) rather
than back-to-back phases, so slow CPU-frequency drift over the bench
run biases both engines equally instead of skewing the ratio.

CLI: ``python -m repro bench --path all --json`` regenerates both
canonical reports in one command.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Iterable

from .apps import get_app
from .errors import ReproError
from .gpu.engine import use_gpu_engine
from .minic.interpreter import use_backend
from .scenarios.registry import APP_ORDER, get_workload

#: Default record counts — the registry's ``medium`` scale, sized so
#: the tree-walker run stays around a second per app (KM does ~40x
#: more mini-C work per record than WC).
_DEFAULT_RECORDS = {app: get_workload(app).records("medium")
                    for app in APP_ORDER}

#: GPU-path record counts: the registry's GPU-bench figures, sized so
#: the tree-walking GPU run lands around 1–2 s. WC is larger than its
#: CPU figure because the map kernel amortizes per-lane setup over
#: more records per lane.
_DEFAULT_GPU_RECORDS = {app: get_workload(app).gpu_bench_records
                        for app in APP_ORDER}
DEFAULT_APPS = ("WC", "KM")

#: GPU-path default app set: WC pins the whole-kernel-fallback side of
#: the vector engine, KM/BS/CL its vectorized side (uniform-trip
#: pricing/argmin/classification loops).
DEFAULT_GPU_APPS = ("WC", "KM", "BS", "CL")

#: Scaled-tier record counts — the registry's ``large`` scale: inputs
#: big enough that per-task work dominates dispatch overhead, which is
#: where the daemon pool's wall clock win shows (the seed-tier inputs
#: finish in tens of milliseconds — there, IPC is the job). Compute
#: apps get fewer records for comparable wall time per run.
_SCALED_RECORDS = {app: get_workload(app).records("large")
                   for app in APP_ORDER}

#: Worker counts the parallel bench compares (serial first).
_DEFAULT_WORKER_STEPS = (1, 2, 4)

#: Reduce-path default app set: the reduce-heavy Table 2 jobs, where
#: the shuffle-merge is a real fraction of the pipeline (WC collapses
#: its pairs in the combiner; GR is map-only-ish with one partition).
DEFAULT_REDUCE_APPS = ("TS", "II", "PR", "RJ")

#: Where ``--json`` writes each path's report.
CANONICAL_REPORTS = {
    "cpu": "BENCH_interp.json",
    "gpu": "BENCH_gpu.json",
    "parallel": "BENCH_parallel.json",
    "reduce": "BENCH_reduce.json",
}


def _timed_run(runner: Any, text: str, backend: str) -> tuple[float, dict]:
    with use_backend(backend):
        start = time.process_time()
        result = runner.run(text)
        return time.process_time() - start, result.output


def bench_app(short: str, records: int | None = None, repeat: int = 3,
              seed: int = 7, split_bytes: int = 64 * 1024) -> dict[str, Any]:
    """Benchmark one app's CPU-path local job under both backends."""
    from .hadoop.local import LocalJobRunner

    app = get_app(short)
    n = records if records is not None else _DEFAULT_RECORDS.get(short, 1000)
    text = app.generate(n, seed=seed)
    runner = LocalJobRunner(app, use_gpu=False, split_bytes=split_bytes)

    # Warm both backends (parse/compile/translate caches) off the clock.
    _, tree_out = _timed_run(runner, text, "tree")
    _, compiled_out = _timed_run(runner, text, "compiled")
    tree_s = compiled_s = float("inf")
    for _ in range(max(repeat, 1)):
        elapsed, tree_out = _timed_run(runner, text, "tree")
        tree_s = min(tree_s, elapsed)
        elapsed, compiled_out = _timed_run(runner, text, "compiled")
        compiled_s = min(compiled_s, elapsed)

    if tree_out != compiled_out:
        raise ReproError(
            f"{short}: backend outputs diverge "
            f"({len(tree_out)} vs {len(compiled_out)} keys)"
        )
    return {
        "app": short,
        "records": n,
        "output_keys": len(compiled_out),
        "tree_seconds": round(tree_s, 4),
        "compiled_seconds": round(compiled_s, 4),
        "tree_records_per_s": round(n / tree_s, 1) if tree_s else None,
        "compiled_records_per_s": round(n / compiled_s, 1)
        if compiled_s else None,
        "speedup": round(tree_s / compiled_s, 2) if compiled_s else None,
    }


def run_bench(apps: Iterable[str] = DEFAULT_APPS, records: int | None = None,
              repeat: int = 3, seed: int = 7) -> dict[str, Any]:
    """Benchmark several apps on the CPU path; returns the report dict."""
    results = [bench_app(a, records=records, repeat=repeat, seed=seed)
               for a in apps]
    return {
        "benchmark": "mini-C interpreter backends, CPU-path local jobs",
        "method": ("best-of-N process_time, interleaved backend rounds, "
                   "identical-output enforced"),
        "repeat": repeat,
        "results": results,
    }


def _timed_gpu_run(runner: Any, text: str, engine: str,
                   backend: str) -> tuple[float, Any]:
    with use_gpu_engine(engine), use_backend(backend):
        start = time.process_time()
        result = runner.run(text)
        return time.process_time() - start, result


def bench_gpu_app(short: str, records: int | None = None, repeat: int = 3,
                  seed: int = 7,
                  split_bytes: int = 64 * 1024) -> dict[str, Any]:
    """Benchmark one app's GPU-path local job under the three lane
    engines.

    The tree side is the fully interpreted reference (tree lane engine
    *and* tree mini-C backend); the compiled side is the default
    compiled lane engine; the vector side is the numpy warp engine.
    Beyond identical output, all runs must produce bit-identical
    simulated task seconds — the engines feed one timing model and may
    not drift. ``speedup`` is compiled-over-tree (the historical
    figure); ``vector_speedup`` is vector-over-*compiled*, the honest
    denominator for a second-generation engine.
    """
    from . import obs
    from .hadoop.local import LocalJobRunner

    app = get_app(short)
    n = records if records is not None else _DEFAULT_GPU_RECORDS.get(short, 1000)
    text = app.generate(n, seed=seed)
    runner = LocalJobRunner(app, use_gpu=True, split_bytes=split_bytes)

    # Warm all engines (parse/compile/translate/snapshot caches); the
    # traced vector warm run also captures the region/fallback tallies
    # off the clock (tracing is disabled during the timed rounds).
    _, tree_res = _timed_gpu_run(runner, text, "tree", "tree")
    _, compiled_res = _timed_gpu_run(runner, text, "compiled", "compiled")
    with obs.use_recorder(obs.TraceRecorder()) as rec:
        _, vector_res = _timed_gpu_run(runner, text, "vector", "compiled")
    vector_regions = int(rec.metrics.count("gpu.vector.regions"))
    vector_fallbacks = int(rec.metrics.count("gpu.vector.fallbacks"))
    tree_s = compiled_s = vector_s = float("inf")
    for _ in range(max(repeat, 1)):
        elapsed, tree_res = _timed_gpu_run(runner, text, "tree", "tree")
        tree_s = min(tree_s, elapsed)
        elapsed, compiled_res = _timed_gpu_run(runner, text, "compiled",
                                               "compiled")
        compiled_s = min(compiled_s, elapsed)
        elapsed, vector_res = _timed_gpu_run(runner, text, "vector",
                                             "compiled")
        vector_s = min(vector_s, elapsed)

    for name, res in (("compiled", compiled_res), ("vector", vector_res)):
        if res.output != tree_res.output:
            raise ReproError(
                f"{short}: GPU engine {name} output diverges from tree "
                f"({len(res.output)} vs {len(tree_res.output)} keys)"
            )
    tree_sim = [r.seconds for r in tree_res.gpu_task_results]
    for name, res in (("compiled", compiled_res), ("vector", vector_res)):
        sim = [r.seconds for r in res.gpu_task_results]
        if sim != tree_sim:
            raise ReproError(
                f"{short}: GPU engine {name} disagrees on simulated task "
                f"seconds ({sim} vs {tree_sim})"
            )
    return {
        "app": short,
        "records": n,
        "output_keys": len(compiled_res.output),
        "simulated_map_seconds": round(sum(tree_sim), 6),
        "tree_seconds": round(tree_s, 4),
        "compiled_seconds": round(compiled_s, 4),
        "vector_seconds": round(vector_s, 4),
        "tree_records_per_s": round(n / tree_s, 1) if tree_s else None,
        "compiled_records_per_s": round(n / compiled_s, 1)
        if compiled_s else None,
        "vector_records_per_s": round(n / vector_s, 1)
        if vector_s else None,
        "speedup": round(tree_s / compiled_s, 2) if compiled_s else None,
        "vector_speedup": round(compiled_s / vector_s, 2)
        if vector_s else None,
        "vector_regions": vector_regions,
        "vector_fallbacks": vector_fallbacks,
    }


def run_gpu_bench(apps: Iterable[str] = DEFAULT_GPU_APPS,
                  records: int | None = None, repeat: int = 3,
                  seed: int = 7) -> dict[str, Any]:
    """Benchmark several apps on the GPU path; returns the report dict."""
    results = [bench_gpu_app(a, records=records, repeat=repeat, seed=seed)
               for a in apps]
    return {
        "benchmark": "GPU lane engines, GPU-path local jobs",
        "method": ("best-of-N process_time, interleaved engine rounds, "
                   "identical output and simulated seconds enforced; "
                   "tree = tree lane engine + tree mini-C backend; "
                   "vector_speedup = compiled_seconds / vector_seconds"),
        "repeat": repeat,
        "results": results,
    }


def bench_parallel_app(short: str, records: int | None = None,
                       repeat: int = 3, seed: int = 7,
                       worker_steps: Iterable[int] = _DEFAULT_WORKER_STEPS,
                       use_gpu: bool = False) -> dict[str, Any]:
    """Benchmark one app's local job at several map-phase worker counts.

    Every worker count must produce the identical job result — output
    dict, per-task simulated seconds, map-output pair count — or the
    bench raises; a speedup over a different answer is no speedup.

    Two speedup figures per configuration:

    * ``sim_speedup`` — the serial simulated map critical path over the
      parallel one (the deterministic list-schedule makespan the job
      span also reports). This is the canonical figure: it measures how
      much task overlap the pool exposes and is host-independent — in
      particular, it is honest on single-core CI runners where real
      concurrency is impossible.
    * ``wall_speedup`` — measured wall clock (best of ``repeat``),
      including fork/warmup/IPC overheads. On a multi-core host this
      should track ``sim_speedup``; on a single core it will sit below
      1 and that is the truth worth recording.
    """
    from .hadoop.local import LocalJobRunner

    app = get_app(short)
    n = records if records is not None else _DEFAULT_RECORDS.get(short, 1000)
    text = app.generate(n, seed=seed)
    # Size splits for ~16 map tasks so 4 workers have balanced waves
    # (the record-count defaults would give 1-2 splits at 64 KiB).
    split_bytes = max(1024, -(-len(text.encode("utf-8")) // 16))

    steps = list(worker_steps)
    configs: list[dict[str, Any]] = []
    baseline: Any = None
    serial_cp: float | None = None
    for nworkers in steps:
        runner = LocalJobRunner(app, use_gpu=use_gpu,
                                split_bytes=split_bytes, workers=nworkers)
        result = runner.run(text)  # warm run, off the clock
        wall = float("inf")
        for _ in range(max(repeat, 1)):
            start = time.perf_counter()
            result = runner.run(text)
            wall = min(wall, time.perf_counter() - start)
        if baseline is None:
            baseline = result
            serial_cp = result.critical_path_seconds(1)
        else:
            if result.output != baseline.output:
                raise ReproError(
                    f"{short}: workers={nworkers} output diverges from serial"
                )
            if result.task_seconds() != baseline.task_seconds():
                raise ReproError(
                    f"{short}: workers={nworkers} simulated task seconds "
                    "diverge from serial"
                )
            if result.map_output_pairs != baseline.map_output_pairs:
                raise ReproError(
                    f"{short}: workers={nworkers} map-output pairs diverge"
                )
        cp = result.critical_path_seconds(nworkers)
        assert serial_cp is not None
        if not configs:
            # Serial is its own wall-clock baseline: 1.0 by definition
            # (the old report printed null here, which downstream
            # tooling had to special-case).
            wall_speedup = 1.0
        else:
            wall_speedup = (round(configs[0]["wall_seconds"] / wall, 2)
                            if wall else None)
        configs.append({
            "workers": nworkers,
            "wall_seconds": round(wall, 4),
            "critical_path_seconds": round(cp, 6),
            "sim_speedup": round(serial_cp / cp, 2) if cp else None,
            "wall_speedup": wall_speedup,
        })
    return {
        "app": short,
        "path": "gpu" if use_gpu else "cpu",
        "records": n,
        "map_tasks": baseline.map_tasks,
        "output_keys": len(baseline.output),
        "configs": configs,
        # Canonical figure: simulated critical-path speedup at the
        # highest worker count (what check_min_speedup/--baseline read).
        "speedup": configs[-1]["sim_speedup"],
        # Measured wall-clock speedup at the highest worker count (what
        # check_min_wall_speedup / --min-wall-speedup reads).
        "wall_speedup": configs[-1]["wall_speedup"],
    }


def run_parallel_bench(apps: Iterable[str] = DEFAULT_APPS,
                       records: int | None = None, repeat: int = 3,
                       seed: int = 7,
                       worker_steps: Iterable[int] = _DEFAULT_WORKER_STEPS,
                       tier: str = "seed") -> dict[str, Any]:
    """Benchmark several apps across worker counts (CPU path).

    ``tier`` selects the input scale: ``"seed"`` runs the small
    golden-trace-sized inputs (dispatch-overhead-dominated — the
    honest worst case for the pool), ``"scaled"`` the 100k-record-class
    inputs where per-task work dominates and the daemon pool's wall
    clock win is measurable, ``"both"`` runs both. Scaled runs cap
    ``repeat`` at 2 (each run is seconds, not milliseconds, and the
    warm run already absorbed the cold-start noise).
    """
    if tier not in ("seed", "scaled", "both"):
        raise ReproError(f"unknown bench tier {tier!r}")
    steps = tuple(worker_steps)
    tiers = ("seed", "scaled") if tier == "both" else (tier,)
    results = []
    for t in tiers:
        for a in apps:
            if t == "scaled":
                n = records if records is not None \
                    else _SCALED_RECORDS.get(a, 100_000)
                rep = min(repeat, 2)
            else:
                n = records
                rep = repeat
            entry = bench_parallel_app(a, records=n, repeat=rep, seed=seed,
                                       worker_steps=steps)
            entry["tier"] = t
            results.append(entry)
    return {
        "benchmark": "parallel map-task execution, CPU-path local jobs",
        "method": (
            "identical output/counters/simulated-seconds enforced at every "
            "worker count; speedup = serial simulated map critical path / "
            "parallel critical path (deterministic list-schedule makespan, "
            "host-independent); wall_seconds = best-of-N perf_counter on a "
            "warm daemon pool, wall_speedup reported as measured"
        ),
        "repeat": repeat,
        "worker_steps": list(steps),
        "tiers": list(tiers),
        "host_cpus": os.cpu_count(),
        "results": results,
    }


def bench_reduce_app(short: str, records: int | None = None,
                     repeat: int = 3, seed: int = 7,
                     worker_steps: Iterable[int] = _DEFAULT_WORKER_STEPS,
                     ) -> dict[str, Any]:
    """Benchmark one app's reduce-side shuffle: the k-way merge of
    map-sorted runs against the full re-sort it replaced.

    The map phase runs once to build the real shuffle input — per-task
    runs, already streaming-sorted and key-decorated by the map tasks.
    The timed rounds then compare, over every partition:

    * **sort** — ``sort_kv_run`` on the concatenated raw triples, the
      pre-merge reduce pipeline (sort keys recomputed at reduce time);
    * **merge** — ``merge_sorted_runs`` on the decorated runs, the
      current pipeline (map-side keys reused, runs pre-sorted).

    Both must produce identical pair sequences for every partition, so
    the bench doubles as a differential test of the merge shuffle.
    A full-job worker sweep then pins the parallel reduce contract:
    byte-identical output and task timings at every worker count, with
    the reduce critical path shrinking as workers grow.
    """
    from .hadoop.local import LocalJobResult, LocalJobRunner
    from .hadoop.shuffle import merge_sorted_runs, sort_kv_run

    app = get_app(short)
    n = records if records is not None else _DEFAULT_RECORDS.get(short, 1000)
    text = app.generate(n, seed=seed)
    data = text.encode("utf-8")
    # Same ~16-way split sizing as the parallel bench: enough map runs
    # per partition that the merge has real fan-in.
    split_bytes = max(1024, -(-len(data) // 16))
    runner = LocalJobRunner(app, use_gpu=False, split_bytes=split_bytes,
                            workers=1)

    # Map phase once, off the clock — every timed round re-consumes the
    # same shuffle input the real reduce phase would see.
    shuffle: dict[int, list[list]] = {}
    scratch = LocalJobResult()
    for a, b in runner.split_ranges(data):
        parts = runner._run_cpu_map_task(data[a:b], scratch)
        for part, run in parts.items():
            shuffle.setdefault(part, []).append(run)
    runs_per_part = [shuffle[part] for part in sorted(shuffle)]
    concat_per_part = [
        [entry for run in runs for _key, entry in run]
        for runs in runs_per_part
    ]
    input_pairs = sum(len(c) for c in concat_per_part)

    merged = [merge_sorted_runs(runs) for runs in runs_per_part]
    sorted_ = [sort_kv_run(c) for c in concat_per_part]
    if merged != sorted_:
        raise ReproError(f"{short}: merge shuffle diverges from re-sort")

    merge_s = sort_s = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.process_time()
        for concat in concat_per_part:
            sort_kv_run(concat)
        sort_s = min(sort_s, time.process_time() - start)
        start = time.process_time()
        for runs in runs_per_part:
            merge_sorted_runs(runs)
        merge_s = min(merge_s, time.process_time() - start)

    # Full-job worker sweep: identical results, shrinking critical path.
    configs: list[dict[str, Any]] = []
    serial = None
    for nworkers in worker_steps:
        result = LocalJobRunner(app, use_gpu=False, split_bytes=split_bytes,
                                workers=nworkers).run(text)
        if serial is None:
            serial = result
        else:
            if list(result.output.items()) != list(serial.output.items()):
                raise ReproError(
                    f"{short}: workers={nworkers} reduce output diverges "
                    "from serial"
                )
            if result.reduce_task_timings != serial.reduce_task_timings:
                raise ReproError(
                    f"{short}: workers={nworkers} reduce task timings "
                    "diverge from serial"
                )
        cp = result.reduce_critical_path_seconds
        total = result.total_reduce_seconds
        configs.append({
            "workers": nworkers,
            "reduce_workers": result.reduce_workers,
            "reduce_critical_path_seconds": round(cp, 6),
            "reduce_sim_speedup": round(total / cp, 2) if cp else None,
        })
        if configs[-1]["reduce_workers"] > 1 and cp > total:
            raise ReproError(
                f"{short}: pooled reduce critical path exceeds total work"
            )
    assert serial is not None
    return {
        "app": short,
        "records": n,
        "partitions": len(runs_per_part),
        "merge_runs": sum(len(runs) for runs in runs_per_part),
        "input_pairs": input_pairs,
        "sort_seconds": round(sort_s, 4),
        "merge_seconds": round(merge_s, 4),
        # Canonical figure: re-sort time over merge time (what
        # check_min_speedup / --baseline read).
        "speedup": round(sort_s / merge_s, 2) if merge_s else None,
        "configs": configs,
    }


def run_reduce_bench(apps: Iterable[str] = DEFAULT_REDUCE_APPS,
                     records: int | None = None, repeat: int = 3,
                     seed: int = 7,
                     worker_steps: Iterable[int] = _DEFAULT_WORKER_STEPS,
                     ) -> dict[str, Any]:
    """Benchmark the merge shuffle across the reduce-heavy apps."""
    steps = tuple(worker_steps)
    results = [bench_reduce_app(a, records=records, repeat=repeat,
                                seed=seed, worker_steps=steps)
               for a in apps]
    return {
        "benchmark": "sorted-run merge shuffle vs full re-sort, reduce phase",
        "method": (
            "map phase run once to build real per-task sorted runs; "
            "best-of-N process_time over all partitions, interleaved "
            "sort/merge rounds, identical pair sequences enforced; "
            "speedup = sort_seconds / merge_seconds; full-job worker "
            "sweep enforces byte-identical output and reduce timings"
        ),
        "repeat": repeat,
        "worker_steps": list(steps),
        "host_cpus": os.cpu_count(),
        "results": results,
    }


def write_report(report: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def check_min_speedup(report: dict[str, Any], minimum: float) -> list[str]:
    """Apps whose compiled-backend speedup is below ``minimum``."""
    return [
        r["app"]
        for r in report["results"]
        if r["speedup"] is None or r["speedup"] < minimum
    ]


def check_min_vector_speedup(report: dict[str, Any],
                             minimum: float) -> list[str]:
    """Vectorized apps whose vector-over-compiled speedup is below
    ``minimum``.

    Only rows that actually vectorized (``vector_regions > 0``) are
    gated: an app on the whole-kernel fallback path legitimately runs at
    ~1x and proves parity, not performance. Entries carry the measured
    figure so CI logs read without opening the report."""
    failing = []
    for r in report["results"]:
        if not r.get("vector_regions"):
            continue
        got = r.get("vector_speedup")
        if got is None or got < minimum:
            failing.append(f"{r['app']} ({got}x < {minimum}x)")
    return failing


def check_min_wall_speedup(report: dict[str, Any],
                           minimum: float) -> list[str]:
    """Results whose *measured* wall-clock speedup at the highest worker
    count is below ``minimum``.

    This is the daemon-pool CI gate: run it on a multi-core host with a
    scaled-tier input — a single core cannot overlap map tasks, and a
    10 ms job is all dispatch. Entries are ``app@tier (measured)`` so
    the failing configuration is readable straight from CI logs.
    """
    failing = []
    for r in report["results"]:
        wall = r.get("wall_speedup")
        if wall is None or wall < minimum:
            failing.append(
                f"{r['app']}@{r.get('tier', 'seed')} ({wall}x < {minimum}x)"
            )
    return failing


def check_against_baseline(report: dict[str, Any], baseline_path: str,
                           tolerance: float = 0.05) -> list[str]:
    """Apps whose speedup drifted beyond ``tolerance`` (relative) from a
    committed baseline report.

    This is the tracing-overhead guard: benches run with the recorder
    disabled, so the compiled-over-tree speedup ratio must stay within
    a few percent of the committed ``BENCH_gpu.json`` — a regression
    here means instrumentation leaked cost into the disabled path. The
    ratio is used (not absolute seconds) because both engines run on
    the same host, which cancels machine speed out.
    """
    with open(baseline_path, encoding="utf-8") as fh:
        baseline = json.load(fh)
    expected = {r["app"]: r.get("speedup") for r in baseline.get("results", [])}
    drifted = []
    for r in report["results"]:
        ref = expected.get(r["app"])
        if ref is None or r["speedup"] is None:
            continue
        if abs(r["speedup"] - ref) > tolerance * ref:
            drifted.append(
                f"{r['app']} ({r['speedup']}x vs baseline {ref}x)"
            )
    return drifted
