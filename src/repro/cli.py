"""Command-line interface.

::

    python -m repro translate mymap.c          # show the generated kernel
    python -m repro run WC --records 800       # run a job on both paths
    python -m repro simulate BS --policy tail  # cluster-scale simulation
    python -m repro trace WC -o wc.json        # Chrome trace of a job
    python -m repro stats WC --mode simulate   # span/counter totals
    python -m repro experiment fig5            # regenerate a paper figure
    python -m repro apps                       # list the Table 2 benchmarks
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .apps import all_apps, get_app
from .compiler import translate
from .config import CLUSTER1, CLUSTER2, OptimizationFlags
from .errors import ReproError
from .minic import parse
from .scheduling import policy_names


def _cmd_apps(_args: argparse.Namespace) -> int:
    print(f"{'tag':4s} {'name':20s} {'nature':8s} {'combiner':9s} {'map-only'}")
    for app in all_apps():
        print(f"{app.short:4s} {app.name:20s} {app.nature:8s} "
              f"{'yes' if app.has_combiner else 'no':9s} "
              f"{'yes' if app.map_only else 'no'}")
    return 0


def _cmd_translate(args: argparse.Namespace) -> int:
    if args.app:
        source = get_app(args.app).map_source
    else:
        with open(args.file, "r", encoding="utf-8") as fh:
            source = fh.read()
    opt = OptimizationFlags.all_on() if args.optimize \
        else OptimizationFlags.baseline()
    result = translate(parse(source), opt=opt)
    for kernel in result.kernels:
        print(kernel.source_text)
        print()
        print("variable classification (Algorithm 1):")
        for name, var in kernel.variables.items():
            print(f"  {name:12s} {str(var.ctype):10s} -> {var.klass.value}")
        print(f"vector width: {kernel.vector_width}, "
              f"launch {kernel.launch.blocks}x{kernel.launch.threads}")
        print()
    if result.host_plan:
        print(result.host_plan.describe())
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .hadoop.local import LocalJobRunner

    app = get_app(args.app)
    text = app.generate(args.records, seed=args.seed)
    cluster = CLUSTER1 if args.cluster == 1 else CLUSTER2
    runner = LocalJobRunner(
        app, cluster=cluster, use_gpu=not args.cpu_only,
        split_bytes=args.split_kb * 1024, workers=args.workers,
    )
    result = runner.run(text)
    path = "CPU (Hadoop Streaming)" if args.cpu_only else "GPU (translated kernels)"
    print(f"{app.name}: {result.map_tasks} map tasks on the {path} path"
          + (f" across {result.workers} workers" if result.workers > 1 else ""))
    print(f"map output pairs : {result.map_output_pairs}")
    print(f"final keys       : {len(result.output)}")
    if result.gpu_task_results:
        total = sum(r.seconds for r in result.gpu_task_results)
        print(f"simulated GPU map time: {total * 1e3:.3f} ms")
    if result.workers > 1:
        print(f"map critical path     : "
              f"{result.map_critical_path_seconds * 1e3:.3f} ms "
              f"(task-seconds sum {result.total_map_seconds * 1e3:.3f} ms)")
    sample = list(result.output.items())[: args.show]
    print(f"first {len(sample)} outputs: {sample}")
    return 0


def _sim_job_conf(app, cluster, task_scale: float):
    """The JobConf the ``simulate``/``trace``/``stats`` commands share.

    Built *before* any recorder is installed, so the calibration run
    feeding the task durations never leaks into a recorded trace."""
    from .experiments.calibrate import single_task_times
    from .hadoop import JobConf

    times = single_task_times(app, cluster)
    cpu_s, gpu_s = times.scaled(60.0)
    figures = app.figures_for(cluster.name)
    job = JobConf(
        name=app.short,
        num_map_tasks=max(1, int(figures.map_tasks * task_scale)),
        num_reduce_tasks=figures.reduce_tasks,
        cluster=cluster,
        cpu_task_seconds=cpu_s,
        gpu_task_seconds=gpu_s,
    )
    return job, times


def _policies() -> dict:
    from .scheduling import POLICIES

    return dict(POLICIES)


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .hadoop import ClusterSimulator
    from .scheduling import CpuOnlyPolicy

    app = get_app(args.app)
    cluster = (CLUSTER1 if args.cluster == 1 else CLUSTER2)
    cluster = cluster.with_gpus(args.gpus)
    job, times = _sim_job_conf(app, cluster, args.task_scale)
    policies = _policies()
    base = ClusterSimulator(job, CpuOnlyPolicy()).run()
    print(f"{app.short} on {cluster.name} ({args.gpus} GPU/node), "
          f"{job.num_map_tasks} maps, single-task speedup "
          f"{times.gpu_speedup:.1f}x")
    for name in (args.policy,) if args.policy else tuple(policies):
        result = ClusterSimulator(job, policies[name]()).run()
        print(f"  {name:10s}: {result.job_seconds:8.1f} s "
              f"({base.job_seconds / result.job_seconds:.2f}x), "
              f"gpu tasks {result.gpu_tasks}, forced {result.forced_gpu_tasks}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import time

    from .scenarios import (
        all_scenarios, get_scenario, report_bytes, run_sweep,
    )

    scenarios = list(all_scenarios())
    if args.scenarios:
        scenarios = [get_scenario(sid) for sid in args.scenarios]
    if args.apps:
        wanted = {tag.upper() for tag in args.apps}
        scenarios = [s for s in scenarios if s.app in wanted]
    if args.shapes:
        scenarios = [s for s in scenarios if s.shape in set(args.shapes)]
    if args.list:
        print(f"{'id':24s} {'app':4s} {'shape':14s} {'policy':11s} description")
        for s in scenarios:
            print(f"{s.id:24s} {s.app:4s} {s.shape:14s} {s.policy:11s} "
                  f"{s.description}")
        return 0
    if not scenarios:
        raise ReproError("sweep filters selected no scenarios")

    start = time.perf_counter()
    report = run_sweep(scenarios, policies=args.policies, scale=args.scale,
                       verify=args.verify)
    wall = time.perf_counter() - start
    payload = report_bytes(report)
    if args.out:
        with open(args.out, "wb") as fh:
            fh.write(payload)
    if args.json and not args.out:
        sys.stdout.write(payload.decode("utf-8"))
    else:
        rows = report["results"]
        print(f"{len(scenarios)} scenarios x policies -> {len(rows)} runs, "
              f"scale={args.scale}, {wall:.1f}s wall")
        for row in rows:
            speedup = row.get("speedup_vs_cpu_only")
            vs = f" ({speedup:.2f}x vs cpu-only)" if speedup else ""
            print(f"  {row['scenario']:24s} {row['policy']:11s} "
                  f"{row['job_seconds']:9.1f} s  gpu {row['gpu_tasks']:6d} "
                  f"local {row['data_local_fraction']:.3f}{vs}")
        if args.verify:
            print(f"verified {len(report['verification'])} scenarios: "
                  "cpu/gpu paths and reference agree")
        if args.out:
            print(f"report -> {args.out}")
    return 0


def _traced_run(args: argparse.Namespace):
    """Run one job with tracing on; returns the filled TraceRecorder
    plus the :class:`LocalJobResult` (``None`` in simulate mode).

    Everything nondeterministic-or-cached (input generation, kernel
    translation, calibration) happens before the recorder is installed,
    so identical invocations record identical traces.
    """
    from . import obs

    app = get_app(args.app)
    cluster = CLUSTER1 if args.cluster == 1 else CLUSTER2
    recorder = obs.TraceRecorder()
    result = None
    if args.mode == "simulate":
        from .hadoop import ClusterSimulator

        cluster = cluster.with_gpus(args.gpus)
        job, _times = _sim_job_conf(app, cluster, args.task_scale)
        policy = _policies()[args.policy]()
        with obs.use_recorder(recorder):
            ClusterSimulator(job, policy).run()
    else:
        from .hadoop.local import LocalJobRunner

        text = app.generate(args.records, seed=args.seed)
        runner = LocalJobRunner(
            app, cluster=cluster, use_gpu=not args.cpu_only,
            split_bytes=args.split_kb * 1024, workers=args.workers,
        )
        with obs.use_recorder(recorder):
            result = runner.run(text)
    return recorder, result


def _cmd_trace(args: argparse.Namespace) -> int:
    from . import obs

    recorder, _result = _traced_run(args)
    trace = obs.export_chrome(recorder)
    obs.check_trace(trace)
    payload = obs.dumps(trace)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(payload)
        events = len(recorder.events)
        print(f"wrote {args.out} ({events} events); "
              "load it at chrome://tracing or https://ui.perfetto.dev",
              file=sys.stderr)
    else:
        sys.stdout.write(payload)
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    recorder, result = _traced_run(args)
    snapshot = recorder.metrics.snapshot()
    by_cat: dict[str, tuple[int, float]] = {}
    for span in recorder.spans():
        count, seconds = by_cat.get(span.cat, (0, 0.0))
        by_cat[span.cat] = (count + 1, seconds + (span.dur or 0.0))
    print(f"{args.app} ({args.mode} mode)")
    print("spans by category:")
    for cat in sorted(by_cat):
        count, seconds = by_cat[cat]
        print(f"  {cat:14s} {count:6d} spans  {seconds:12.6f} simulated s")
    if result is not None and result.reduce_task_timings:
        timings = result.reduce_task_timings
        print("reduce phase:")
        print(f"  tasks        {len(timings):6d}  "
              f"merge runs {sum(t.merge_runs for t in timings):6d}  "
              f"input pairs {sum(t.input_pairs for t in timings):8d}")
        for phase in ("merge", "reduce", "output_write"):
            seconds = sum(getattr(t, phase) for t in timings)
            print(f"  {phase:12s} {seconds:22.6f} simulated s")
        print(f"  total        {result.total_reduce_seconds:22.6f} "
              f"simulated s")
        print(f"  critical path {result.reduce_critical_path_seconds:21.6f} "
              f"simulated s (reduce workers {result.reduce_workers})")
    print("counters:")
    for name, value in snapshot["counters"].items():
        print(f"  {name:28s} {value:14.1f}")
    if snapshot["gauges"]:
        print("gauges:")
        for name, value in snapshot["gauges"].items():
            print(f"  {name:28s} {value:14.4f}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from . import bench

    paths = ("cpu", "gpu", "parallel", "reduce") if args.path == "all" \
        else (args.path,)
    if args.out and len(paths) > 1:
        raise ReproError("--out needs a single --path; "
                         "use --json to write the canonical reports")
    if args.workers is None:
        worker_steps = bench._DEFAULT_WORKER_STEPS
    else:
        from .parallel.pool import resolve_workers

        top = resolve_workers(args.workers)
        if top < 2:
            raise ReproError("bench --workers must resolve to >= 2")
        worker_steps = tuple(sorted({1, 2, top}))
    rc = 0
    reports: dict[str, dict] = {}
    for path in paths:
        if path == "gpu":
            default_apps = bench.DEFAULT_GPU_APPS
        elif path == "reduce":
            default_apps = bench.DEFAULT_REDUCE_APPS
        else:
            default_apps = bench.DEFAULT_APPS
        apps = args.apps or list(default_apps)
        if path == "parallel":
            report = bench.run_parallel_bench(
                apps, records=args.records, repeat=args.repeat,
                seed=args.seed, worker_steps=worker_steps,
                tier=args.tier)
        elif path == "reduce":
            report = bench.run_reduce_bench(
                apps, records=args.records, repeat=args.repeat,
                seed=args.seed, worker_steps=worker_steps)
        else:
            run = bench.run_bench if path == "cpu" else bench.run_gpu_bench
            report = run(apps, records=args.records, repeat=args.repeat,
                         seed=args.seed)
        reports[path] = report
        if not args.json and path == "reduce":
            print(f"[{path} path, host_cpus={report['host_cpus']}]")
            for r in report["results"]:
                steps = "  ".join(
                    f"rw={c['reduce_workers']} cp "
                    f"{c['reduce_critical_path_seconds']:.6f}s"
                    + (f" ({c['reduce_sim_speedup']:.2f}x sim)"
                       if c["reduce_workers"] > 1 else "")
                    for c in r["configs"]
                )
                print(f"{r['app']:4s} {r['records']:7d} records  "
                      f"{r['partitions']:3d} parts  "
                      f"{r['merge_runs']:4d} runs  "
                      f"sort {r['sort_seconds']:.4f}s  "
                      f"merge {r['merge_seconds']:.4f}s  "
                      f"merge speedup {r['speedup']:.2f}x  {steps}")
        elif not args.json and path == "parallel":
            print(f"[{path} path, host_cpus={report['host_cpus']}]")
            for r in report["results"]:
                steps = "  ".join(
                    f"w={c['workers']} wall {c['wall_seconds']:.3f}s"
                    + (f" ({c['wall_speedup']}x wall, "
                       f"{c['sim_speedup']:.2f}x sim)"
                       if c["workers"] > 1 else "")
                    for c in r["configs"]
                )
                print(f"{r['app']:4s} {r.get('tier', 'seed'):6s} "
                      f"{r['records']:7d} records  "
                      f"{r['map_tasks']:3d} maps  {steps}")
        elif not args.json:
            print(f"[{path} path]")
            for r in report["results"]:
                line = (f"{r['app']:4s} {r['records']:6d} records  "
                        f"tree {r['tree_records_per_s']:10.1f} rec/s  "
                        f"compiled {r['compiled_records_per_s']:10.1f} rec/s  "
                        f"speedup {r['speedup']:.2f}x")
                if r.get("vector_speedup") is not None:
                    tag = (f"{r['vector_regions']} regions"
                           if r.get("vector_regions") else "fallback")
                    line += (f"  vector {r['vector_speedup']:.2f}x "
                             f"({tag})")
                print(line)
        out = args.out or (bench.CANONICAL_REPORTS[path] if args.json else None)
        if out:
            bench.write_report(report, out)
            if not args.json:
                print(f"wrote {out}")
        if args.min_speedup is not None:
            slow = bench.check_min_speedup(report, args.min_speedup)
            if slow:
                print(f"error: {path} path below --min-speedup "
                      f"{args.min_speedup}: {', '.join(slow)}",
                      file=sys.stderr)
                rc = 1
        if args.min_vector_speedup is not None and path == "gpu":
            slow = bench.check_min_vector_speedup(report,
                                                  args.min_vector_speedup)
            if slow:
                print(f"error: {path} path below --min-vector-speedup: "
                      f"{', '.join(slow)}", file=sys.stderr)
                rc = 1
        if args.min_wall_speedup is not None and path == "parallel":
            slow = bench.check_min_wall_speedup(report,
                                                args.min_wall_speedup)
            if slow:
                print(f"error: {path} path below --min-wall-speedup: "
                      f"{', '.join(slow)}", file=sys.stderr)
                rc = 1
        if args.min_merge_speedup is not None and path == "reduce":
            # the reduce path's canonical speedup IS the merge speedup
            slow = bench.check_min_speedup(report, args.min_merge_speedup)
            if slow:
                print(f"error: {path} path below --min-merge-speedup "
                      f"{args.min_merge_speedup}: {', '.join(slow)}",
                      file=sys.stderr)
                rc = 1
        if args.baseline is not None:
            drifted = bench.check_against_baseline(report, args.baseline,
                                                   args.tolerance)
            if drifted:
                print(f"error: {path} path drifted beyond "
                      f"{args.tolerance:.0%} of {args.baseline}: "
                      f"{', '.join(drifted)}", file=sys.stderr)
                rc = 1
    if args.json:
        payload = reports[paths[0]] if len(paths) == 1 else reports
        print(json.dumps(payload, indent=2))
    return rc


def _cmd_pool(args: argparse.Namespace) -> int:
    """Inspect or drive this process's persistent daemon pool.

    The pool is per-process: ``status`` after ``warm`` in the same
    invocation shows live workers, while a fresh invocation starts
    empty — the command exists for long-lived sessions (and as the
    smoke test for the pool lifecycle itself)."""
    from .parallel.daemon import get_pool, pool_metrics, shutdown_pool
    from .parallel.pool import resolve_workers

    if args.action == "shutdown":
        stopped = shutdown_pool()
        print(f"stopped {stopped} worker(s)")
        return 0
    pool = get_pool()
    if args.action == "warm":
        from .parallel.maptask import warm_worker_caches

        tags = tuple(t.upper() for t in (args.apps or ["WC"]))
        for tag in tags:
            get_app(tag)  # validate before forking anything
        nworkers = resolve_workers(args.workers)
        pids = pool.broadcast(warm_worker_caches, (tags,), workers=nworkers)
        print(f"warmed {len(pids)} worker(s) for {' '.join(tags)}: "
              f"pids {' '.join(str(p) for p in sorted(pids))}")
    status = pool.status()
    print(f"start method : {status.start_method}")
    print(f"idle timeout : {status.idle_timeout:.0f}s"
          + (" (reaping disabled)" if status.idle_timeout == 0 else ""))
    print(f"worker slots : {status.slots}")
    print(f"alive        : {' '.join(str(p) for p in status.alive) or '-'}")
    counters = pool_metrics().snapshot()["counters"]
    if counters:
        print("lifecycle counters:")
        for name in sorted(counters):
            print(f"  {name:16s} {counters[name]:10.0f}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from .fuzz import run_campaign
    from .fuzz.gen import KIND_SCHEDULE

    if args.registry:
        from .fuzz.runner import registry_conformance

        divergences = registry_conformance(
            scale=args.scale, log=None if args.quiet else print)
        status = "OK" if not divergences else \
            f"{len(divergences)} DIVERGENT"
        print(f"registry conformance @ {args.scale}: {status}")
        for divergence in divergences:
            print()
            print(divergence.report())
        return 0 if not divergences else 1
    kinds = KIND_SCHEDULE
    if args.kinds:
        kinds = tuple(args.kinds.split(","))
        from .fuzz.gen import KINDS

        unknown = set(kinds) - set(KINDS)
        if unknown:
            raise ReproError(f"unknown fuzz kinds: {', '.join(sorted(unknown))}")
    result = run_campaign(
        seed=args.seed,
        count=args.count,
        time_budget=args.time_budget,
        kinds=kinds,
        shrink=not args.no_shrink,
        corpus_dir=args.corpus_dir,
        log=None if args.quiet else print,
        workers=args.workers,
    )
    print(result.summary())
    for _case, divergence, minimized in result.divergences:
        print()
        print(divergence.report())
        print("--- minimized ---")
        print(minimized.source.rstrip())
    return 0 if result.ok else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import figures, report, tables

    name = args.name
    if name == "table1":
        print(report.render_table(tables.table1(), "Table 1"))
    elif name == "table2":
        print(report.render_table(tables.table2(), "Table 2"))
    elif name == "table3":
        print(report.render_table(tables.table3(), "Table 3"))
    elif name == "fig3":
        print(report.render_fig3(figures.fig3()))
    elif name == "fig4a":
        print(report.render_fig4(figures.fig4a(task_scale=args.task_scale),
                                 "Fig. 4a"))
    elif name == "fig4b":
        print(report.render_fig4(figures.fig4b(task_scale=args.task_scale),
                                 "Fig. 4b"))
    elif name == "fig5":
        print(report.render_fig5(figures.fig5()))
    elif name == "fig6":
        print(report.render_fig6(figures.fig6()))
    elif name.startswith("fig7"):
        sub = name[3:] if len(name) > 4 else None  # fig7a -> '7a'
        print(report.render_fig7(figures.fig7(subfigure=sub)))
    else:
        raise ReproError(f"unknown experiment {name!r}")
    return 0


def _add_workers_option(parser: argparse.ArgumentParser,
                        detail: str = "") -> None:
    """The one ``--workers`` flag every parallel-capable command shares.

    A single definition keeps the default chain (explicit flag →
    ``$REPRO_WORKERS`` → serial; 0 = one per core) identical across
    ``run``/``trace``/``stats``/``bench``/``fuzz``/``pool`` instead of
    five drifting copies.
    """
    help_text = ("worker processes (default: $REPRO_WORKERS or 1; "
                 "0 = one per CPU core)")
    if detail:
        help_text += f"; {detail}"
    parser.add_argument("--workers", type=int, default=None, help=help_text)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="HeteroDoop reproduction (HPDC 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("apps", help="list the Table 2 benchmarks") \
        .set_defaults(func=_cmd_apps)

    p = sub.add_parser("translate", help="translate a directive-annotated "
                                         "mini-C source (or a benchmark's)")
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--file", help="path to a mini-C source file")
    group.add_argument("--app", help="benchmark tag (e.g. WC)")
    p.add_argument("--no-optimize", dest="optimize", action="store_false",
                   help="show the baseline-translated kernel")
    p.set_defaults(func=_cmd_translate)

    p = sub.add_parser("run", help="run a benchmark job locally")
    p.add_argument("app", help="benchmark tag (GR HS WC HR LR KM CL BS)")
    p.add_argument("--records", type=int, default=400)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--cluster", type=int, choices=(1, 2), default=1)
    p.add_argument("--cpu-only", action="store_true",
                   help="use the Hadoop Streaming CPU path")
    p.add_argument("--split-kb", type=int, default=32)
    p.add_argument("--show", type=int, default=8)
    _add_workers_option(p, "fans the map phase across the daemon pool")
    p.set_defaults(func=_cmd_run)

    p = sub.add_parser("simulate", help="cluster-scale job simulation")
    p.add_argument("app")
    p.add_argument("--cluster", type=int, choices=(1, 2), default=1)
    p.add_argument("--gpus", type=int, default=1)
    p.add_argument("--policy", choices=policy_names())
    p.add_argument("--task-scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("sweep", help="run a scenario-registry slice through "
                                     "the cluster simulator")
    p.add_argument("--scale", choices=("small", "medium", "large"),
                   default="small",
                   help="workload scale (map-pool size and --verify input)")
    p.add_argument("--scenarios", nargs="*", metavar="ID",
                   help="scenario ids (default: the whole registry)")
    p.add_argument("--apps", nargs="*", metavar="TAG",
                   help="keep only scenarios for these app tags")
    p.add_argument("--shapes", nargs="*", metavar="SHAPE",
                   help="keep only scenarios on these cluster shapes")
    p.add_argument("--policies", nargs="*", metavar="NAME",
                   choices=policy_names(),
                   help="policy slate per scenario (default: cpu-only, "
                        "gpu-first, tail; each scenario's own policy is "
                        "always added)")
    p.add_argument("--verify", action="store_true",
                   help="also run each scenario's app functionally on both "
                        "execution paths and check against the reference")
    p.add_argument("--list", action="store_true",
                   help="list the selected scenarios and exit")
    p.add_argument("--json", action="store_true",
                   help="print the canonical JSON report to stdout")
    p.add_argument("-o", "--out", default=None,
                   help="write the canonical JSON report here")
    p.set_defaults(func=_cmd_sweep)

    trace_help = {
        "trace": ("run a job with tracing on and emit a Chrome trace-event "
                  "JSON (view at chrome://tracing or ui.perfetto.dev)"),
        "stats": "run a job with tracing on and print span/metric totals",
    }
    for cmd, func in (("trace", _cmd_trace), ("stats", _cmd_stats)):
        p = sub.add_parser(cmd, help=trace_help[cmd])
        p.add_argument("app", help="benchmark tag (GR HS WC HR LR KM CL BS)")
        p.add_argument("--mode", choices=("local", "simulate"),
                       default="local",
                       help="local: functional job on this process; "
                            "simulate: cluster-scale discrete-event run")
        p.add_argument("--cluster", type=int, choices=(1, 2), default=1)
        p.add_argument("--records", type=int, default=400,
                       help="input records (local mode)")
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--cpu-only", action="store_true",
                       help="local mode: use the Hadoop Streaming CPU path")
        p.add_argument("--split-kb", type=int, default=32)
        p.add_argument("--gpus", type=int, default=1,
                       help="GPUs per node (simulate mode)")
        p.add_argument("--policy", choices=policy_names(),
                       default="tail", help="scheduling policy (simulate mode)")
        p.add_argument("--task-scale", type=float, default=0.02,
                       help="fraction of the paper's map-task count "
                            "(simulate mode)")
        _add_workers_option(p, "local mode; worker spans land on "
                               "per-worker pid tracks")
        if cmd == "trace":
            p.add_argument("-o", "--out", default=None,
                           help="write the trace here (default: stdout)")
        p.set_defaults(func=func)

    p = sub.add_parser("bench", help="time tree-walking vs compiled "
                                     "execution on local jobs")
    p.add_argument("--apps", nargs="*", metavar="TAG",
                   help="benchmark tags (default: WC KM; "
                        "gpu path: WC KM BS CL)")
    p.add_argument("--path", choices=("cpu", "gpu", "parallel", "reduce",
                                      "all"),
                   default="cpu",
                   help="cpu: interpreter backends on streaming jobs; "
                        "gpu: lane engines on GPU-path jobs; parallel: "
                        "worker-pool map phase vs serial; reduce: "
                        "sorted-run merge shuffle vs full re-sort; "
                        "all: every path")
    p.add_argument("--records", type=int, default=None,
                   help="records per app (default: per-app sizes)")
    p.add_argument("--repeat", type=int, default=3)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", help="write the JSON report here "
                                 "(single --path only)")
    p.add_argument("--json", action="store_true",
                   help="print the report as JSON and write the canonical "
                        "BENCH_interp.json / BENCH_gpu.json for each path")
    p.add_argument("--min-speedup", type=float, default=None,
                   help="exit nonzero if any app's speedup is below this")
    p.add_argument("--min-vector-speedup", type=float, default=None,
                   help="--path gpu: exit nonzero if any *vectorized* "
                        "app's vector-over-compiled speedup is below "
                        "this (fallback apps are parity-only)")
    p.add_argument("--baseline", default=None, metavar="REPORT",
                   help="exit nonzero if any app's speedup drifts beyond "
                        "--tolerance of this committed report (the "
                        "tracing-overhead guard)")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative drift allowed by --baseline "
                        "(default 0.05)")
    p.add_argument("--tier", choices=("seed", "scaled", "both"),
                   default="seed",
                   help="--path parallel input scale: seed = small "
                        "golden-trace inputs, scaled = 100k-record-class "
                        "inputs where wall-clock wins show")
    p.add_argument("--min-wall-speedup", type=float, default=None,
                   help="--path parallel: exit nonzero if the measured "
                        "wall-clock speedup at the highest worker count "
                        "is below this (run on a multi-core host)")
    p.add_argument("--min-merge-speedup", type=float, default=None,
                   help="--path reduce: exit nonzero if any app's "
                        "merge-over-re-sort speedup is below this")
    _add_workers_option(p, "--path parallel: worker steps become 1,2,N "
                           "(default steps 1,2,4)")
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser("fuzz", help="differential conformance fuzzing "
                                    "across the mini-C backends")
    p.add_argument("--seed", type=int, default=0,
                   help="campaign seed (case i derives from 'seed/i')")
    p.add_argument("--count", type=int, default=300,
                   help="number of generated cases")
    p.add_argument("--time-budget", type=float, default=None, metavar="SEC",
                   help="stop generating new cases after SEC seconds")
    p.add_argument("--kinds", default=None,
                   help="comma-separated case kinds (expr,mapper,combiner); "
                        "default mixes all three")
    p.add_argument("--no-shrink", action="store_true",
                   help="report divergences without minimizing them")
    p.add_argument("--corpus-dir", default=None,
                   help="where to persist minimized divergences "
                        "(default: tests/fuzz_corpus/)")
    p.add_argument("--quiet", action="store_true",
                   help="only print the final summary line")
    p.add_argument("--registry", action="store_true",
                   help="instead of generated cases, run every scenario-"
                        "registry app's canonical workload through the "
                        "oracle (scenario conformance)")
    p.add_argument("--scale", choices=("small", "medium", "large"),
                   default="small",
                   help="--registry: datagen scale (default small)")
    _add_workers_option(p, "fans cases across the daemon pool (digest "
                           "is identical at any worker count)")
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser("pool", help="inspect or drive this process's "
                                    "persistent daemon worker pool")
    p.add_argument("action", choices=("status", "warm", "shutdown"),
                   help="status: print workers and lifecycle counters; "
                        "warm: fork workers and prime their caches; "
                        "shutdown: stop all workers")
    p.add_argument("--apps", nargs="*", metavar="TAG",
                   help="apps to warm caches for (default: WC)")
    _add_workers_option(p, "pool size for warm")
    p.set_defaults(func=_cmd_pool)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", help="table1|table2|table3|fig3|fig4a|fig4b|"
                                "fig5|fig6|fig7[a-e]")
    p.add_argument("--task-scale", type=float, default=1.0)
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
