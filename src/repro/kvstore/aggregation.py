"""Scan-based KV pair aggregation (paper §5.3 'Performing Partition
Aggregation').

After the map kernel, each partition's pairs are scattered across the
per-thread portions of the global KV store. A parallel prefix sum over
the per-thread emission counts yields each thread's output base; a second
kernel rewrites the indirection array so every partition becomes a dense,
contiguous index range — without moving any key/value bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .global_store import GlobalKVStore, KVPair


@dataclass
class AggregationResult:
    """Functional output + the quantities the timing model charges."""

    partitions: dict[int, list[KVPair]] = field(default_factory=dict)
    pairs_moved: int = 0            # indirection entries rewritten
    scan_elements: int = 0          # per-thread counts scanned
    span_before: int = 0            # slots a sort would traverse unaggregated
    span_after: int = 0             # dense size after aggregation

    def partition_list(self, partition: int) -> list[KVPair]:
        return self.partitions.get(partition, [])


def aggregate(store: GlobalKVStore, num_partitions: int) -> AggregationResult:
    """Compact every partition of the store.

    The prefix sum is computed with numpy (the GPU scan's functional
    equivalent); the discrete-event cost is charged by the caller from
    ``scan_elements`` and ``pairs_moved``.
    """
    counts = np.asarray(store.per_thread_counts(), dtype=np.int64)
    # Exclusive prefix sum = each thread's base offset in the dense store.
    bases = np.concatenate(([0], np.cumsum(counts)[:-1]))
    assert bases.shape == counts.shape

    partitions: dict[int, list[KVPair]] = {p: [] for p in range(num_partitions)}
    for _tid, pair in store.iter_pairs():
        partitions.setdefault(pair.partition, []).append(pair)

    emitted = int(counts.sum())
    return AggregationResult(
        partitions=partitions,
        pairs_moved=emitted,
        scan_elements=store.total_threads,
        span_before=store.capacity_pairs,
        span_after=emitted,
    )


def scattered_partitions(
    store: GlobalKVStore, num_partitions: int
) -> AggregationResult:
    """The *unaggregated* view (Fig. 7e ablation): pairs grouped by
    partition but the sort must traverse the full allocated span,
    whitespace included."""
    partitions: dict[int, list[KVPair]] = {p: [] for p in range(num_partitions)}
    for _tid, pair in store.iter_pairs():
        partitions.setdefault(pair.partition, []).append(pair)
    return AggregationResult(
        partitions=partitions,
        pairs_moved=0,
        scan_elements=0,
        span_before=store.capacity_pairs,
        span_after=store.capacity_pairs,
    )
