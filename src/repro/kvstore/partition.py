"""Hash partitioning of KV pairs to reduce tasks.

Hadoop's default partitioner is ``hash(key) % numReduceTasks``; we use
FNV-1a so results are deterministic across processes (Python's builtin
``hash`` is salted per interpreter run).
"""

from __future__ import annotations

from typing import Any

from ..errors import HadoopError

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK64 = (1 << 64) - 1


def fnv1a(data: bytes) -> int:
    """64-bit FNV-1a hash."""
    h = _FNV_OFFSET
    for byte in data:
        h ^= byte
        h = (h * _FNV_PRIME) & _MASK64
    return h


def _key_bytes(key: Any) -> bytes:
    if isinstance(key, bytes):
        return key
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):
        return b"\x01" if key else b"\x00"
    if isinstance(key, int):
        return key.to_bytes(8, "little", signed=True)
    if isinstance(key, float):
        import struct

        return struct.pack("<d", key)
    raise HadoopError(f"unhashable key type {type(key).__name__}")


class Partitioner:
    """Maps keys to reduce-task partitions."""

    def __init__(self, num_partitions: int):
        if num_partitions < 1:
            raise HadoopError("need at least one partition")
        self.num_partitions = num_partitions
        # Text keys repeat heavily (every WC emit re-hashes one of a few
        # hundred words), so their partitions are memoized. Only str keys:
        # a mixed-type memo would conflate 0/False-style dict-equal keys
        # whose key_bytes differ.
        self._str_memo: dict[str, int] = {}

    def partition(self, key: Any) -> int:
        n = self.num_partitions
        if n == 1:
            return 0
        if key.__class__ is str:
            part = self._str_memo.get(key)
            if part is None:
                part = fnv1a(key.encode("utf-8")) % n
                self._str_memo[key] = part
            return part
        return fnv1a(_key_bytes(key)) % n
