"""Streaming text coercion — the single source of truth for typing KV.

Hadoop Streaming moves keys and values as tab-separated *text*; the
reproduction types them in memory so reducers can sum and sort
numerically. Every boundary where KV data crosses between the textual
world and the typed world must apply the same rules, or the CPU and GPU
paths drift (a word key ``"42"`` read back as the int ``42`` on one
path but kept as text on the other changes partitioning, grouping, and
the final output dict — found by ``python -m repro fuzz``).

Rules:

* keys — int only when the text is the canonical decimal rendering.
  Keys are identities, not quantities: ``"007"`` and ``"1.0"`` name
  different words than ``"7"`` and ``"1"`` and must keep their text
  identity. Apps emit integer keys via ``%d``, whose output is always
  canonical, so those still come back as ints and sort numerically.
* values — quantities: int when the text parses as one, else float,
  else text.
"""

from __future__ import annotations

from typing import Any

from ..errors import HadoopError


def coerce_key(text: str) -> Any:
    """Type a streaming key (canonical ints only, see module doc)."""
    # The isdigit screen keeps word keys (the common case) off the
    # int() exception path.
    if text.isdigit() or (text[:1] == "-" and text[1:].isdigit()):
        i = int(text)
        if str(i) == text:
            return i
    return text


def coerce_value(text: str) -> Any:
    """Type a streaming value (int, else float, else text)."""
    if text.isdigit() or (text[:1] == "-" and text[1:].isdigit()):
        return int(text)
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def parse_kv_line(line: str) -> tuple[Any, Any]:
    """Parse a streaming 'key<TAB>value' line into typed KV."""
    if "\t" not in line:
        raise HadoopError(f"malformed KV line {line!r}")
    k, v = line.split("\t", 1)
    return coerce_key(k), coerce_value(v)


def kv_text(datum: Any) -> str:
    """Render one typed KV datum exactly as it appears on the wire."""
    return datum if isinstance(datum, str) else str(datum)


def kv_line(key: Any, value: Any) -> str:
    """Render one typed pair as its full streaming line (with newline).

    This is the *one* encode of a pair per job: the local job runner
    builds it when a map task's output materializes and reuses it for
    shuffle/output byte accounting and as reducer stdin.
    """
    return f"{kv_text(key)}\t{kv_text(value)}\n"


def utf8_len(text: str) -> int:
    """Byte length of ``text`` on the UTF-8 wire without re-encoding
    the (overwhelmingly ASCII) common case."""
    return len(text) if text.isascii() else len(text.encode("utf-8"))


def coerce_pair(key: Any, value: Any) -> tuple[Any, Any]:
    """Re-type an in-memory pair as if it had crossed the text wire.

    The GPU task spills its device-side KV store to text before the
    shuffle; this applies that text round-trip to its in-memory pairs.
    """
    return coerce_key(kv_text(key)), coerce_value(kv_text(value))
