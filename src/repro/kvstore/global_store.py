"""The global KV store (paper §4.1, §4.3).

Every map thread owns a fixed portion of a central device-resident store
(``storesPerThread`` slots); ``emitKV`` appends into the owner's portion.
Threads rarely fill their portions exactly, leaving *whitespaces* — empty
slots interleaved with live pairs — which the aggregation pass removes
via the indirection array before sorting.

The simulator keeps the live pairs densely (a per-thread Python list) and
tracks capacity arithmetically; materializing billions of empty slots
would model nothing the timing model doesn't already capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from ..errors import GpuError, KVStoreOverflow


@dataclass(frozen=True)
class KVPair:
    key: Any
    value: Any
    partition: int

    def encoded_size(self, key_length: int, value_length: int) -> int:
        return key_length + value_length


class GlobalKVStore:
    """Per-thread partitioned KV storage for one map kernel launch.

    Parameters
    ----------
    total_threads:
        Threads in the launch grid (blocks × threads).
    capacity_pairs:
        Total KV slots allocated. Without the ``kvpairs`` clause the host
        allocates *all free GPU memory* (paper §3.2), so this is typically
        a vast over-allocation; with the clause it is
        ``records × kvpairs_per_record``.
    key_length / value_length:
        Slot byte sizes (from the directive / derived types).
    """

    def __init__(
        self,
        total_threads: int,
        capacity_pairs: int,
        key_length: int,
        value_length: int,
    ):
        if total_threads <= 0:
            raise GpuError("KV store needs a positive thread count")
        if capacity_pairs < total_threads:
            raise GpuError(
                f"KV store capacity {capacity_pairs} smaller than one slot "
                f"per thread ({total_threads})"
            )
        self.total_threads = total_threads
        self.capacity_pairs = capacity_pairs
        self.stores_per_thread = capacity_pairs // total_threads
        self.key_length = key_length
        self.value_length = value_length
        self._slots: list[list[KVPair]] = [[] for _ in range(total_threads)]

    # -- emit path (device side) --------------------------------------------

    def emit(self, thread_id: int, key: Any, value: Any, partition: int) -> None:
        if not 0 <= thread_id < self.total_threads:
            raise GpuError(f"bad thread id {thread_id}")
        portion = self._slots[thread_id]
        if len(portion) >= self.stores_per_thread:
            raise KVStoreOverflow(
                f"thread {thread_id} exceeded its {self.stores_per_thread} "
                f"slots in the global KV store"
            )
        portion.append(KVPair(key, value, partition))

    def remaining_capacity(self, thread_id: int) -> int:
        """Slots left in a thread's portion — bounds how many more records
        the thread may steal (paper §4.1: 'The maximum record stealing that
        a thread can perform is limited by the storesPerThread')."""
        return self.stores_per_thread - len(self._slots[thread_id])

    # -- inspection ------------------------------------------------------------

    @property
    def emitted_pairs(self) -> int:
        return sum(len(p) for p in self._slots)

    @property
    def whitespace_slots(self) -> int:
        """Empty slots interleaved within the occupied per-thread span."""
        return self.capacity_pairs - self.emitted_pairs

    @property
    def occupancy(self) -> float:
        return self.emitted_pairs / self.capacity_pairs

    def per_thread_counts(self) -> list[int]:
        """devKvCount: pairs emitted by each thread (input to the scan)."""
        return [len(p) for p in self._slots]

    def iter_pairs(self) -> Iterator[tuple[int, KVPair]]:
        """(thread_id, pair) in per-thread slot order — the physical layout
        an unaggregated sort would traverse."""
        for tid, portion in enumerate(self._slots):
            for pair in portion:
                yield tid, pair

    def allocated_bytes(self) -> int:
        slot = self.key_length + self.value_length + 4  # +4: indexArray entry
        return self.capacity_pairs * slot
