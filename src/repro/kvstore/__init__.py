"""Global KV store, partitioning, and aggregation (paper §4.1, §4.3, §5.3).

Map threads emit into private portions of a central *global KV store* on
the device. Unused slots ("whitespaces") scatter the pairs; before the
sort phase, a scan-based aggregation compacts each partition through the
indirection array so keys never move in device memory.
"""

from .global_store import GlobalKVStore, KVPair
from .partition import Partitioner, fnv1a
from .aggregation import AggregationResult, aggregate

__all__ = [
    "GlobalKVStore",
    "KVPair",
    "Partitioner",
    "fnv1a",
    "AggregationResult",
    "aggregate",
]
