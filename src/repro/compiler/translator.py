"""Top-level source-to-source translation (paper §4.1–4.3).

``translate(program)`` locates each ``#pragma mapreduce`` directive, runs
Algorithm 1 variable classification, rewrites the region's IO calls into
GPU-runtime calls, renames locals with the ``gpu_`` prefix (as the paper's
Listings 3–4 show), decides vectorization, and packages the result as
:class:`~repro.compiler.kernel_ir.KernelIR` plus a host plan.
"""

from __future__ import annotations

import copy
import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from ..config import LaunchConfig, OptimizationFlags
from ..directives import Directive, DirectiveKind, find_directives
from ..errors import CompilerError
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.cache import cached_translation
from ..minic.pretty import pprint_function, pprint_stmt
from ..minic.semantics import declared_types
from .host_codegen import HostPlan
from .kernel_ir import KernelIR, VarClass, VarInfo
from .variables import classify_variables, emitted_kv_layout
from .vectorize import decide_vectorization

#: IO calls the translator rewrites, per §4.1/§4.2.
_RECORD_INPUT = "getline"
_KV_EMIT = "printf"
_KV_INPUT = "scanf"


@dataclass
class TranslationResult:
    """Everything the GPU side needs for one translated program."""

    program: A.Program                 # the original (CPU) program
    map_kernel: KernelIR | None = None
    combine_kernel: KernelIR | None = None
    host_plan: HostPlan | None = None
    cuda_source: str = ""              # human-readable generated "CUDA"

    @property
    def kernels(self) -> list[KernelIR]:
        return [k for k in (self.map_kernel, self.combine_kernel) if k is not None]


# --------------------------------------------------------------------------
# AST rewriting helpers
# --------------------------------------------------------------------------


def _rewrite_expr(expr: A.Expr, fn: Callable[[A.Call], A.Expr]) -> A.Expr:
    """Bottom-up expression rewrite, applying ``fn`` to every Call."""
    for f in dataclasses.fields(expr):
        val = getattr(expr, f.name)
        if isinstance(val, A.Expr):
            setattr(expr, f.name, _rewrite_expr(val, fn))
        elif isinstance(val, list):
            setattr(
                expr,
                f.name,
                [
                    _rewrite_expr(v, fn) if isinstance(v, A.Expr) else v
                    for v in val
                ],
            )
    if isinstance(expr, A.Call):
        return fn(expr)
    return expr


def rewrite_calls(node: A.Node, fn: Callable[[A.Call], A.Expr]) -> None:
    """Apply ``fn`` to every Call in all expressions under ``node`` (in place)."""
    for f in dataclasses.fields(node):
        val = getattr(node, f.name)
        if isinstance(val, A.Expr):
            setattr(node, f.name, _rewrite_expr(val, fn))
        elif isinstance(val, A.Node):
            rewrite_calls(val, fn)
        elif isinstance(val, list):
            new_list = []
            for item in val:
                if isinstance(item, A.Expr):
                    new_list.append(_rewrite_expr(item, fn))
                elif isinstance(item, A.Node):
                    rewrite_calls(item, fn)
                    new_list.append(item)
                elif isinstance(item, A.Declarator):
                    if item.init is not None:
                        item.init = _rewrite_expr(item.init, fn)
                    new_list.append(item)
                else:
                    new_list.append(item)
            setattr(node, f.name, new_list)


def rename_idents(node: A.Node, mapping: dict[str, str]) -> None:
    """Rename identifier references and declarations in place.

    This is the reproduction's ``addParameter``/``addPrivateVar`` renaming:
    Listing 3 shows ``word`` → ``gpu_word`` etc.
    """
    for sub in node.walk():
        if isinstance(sub, A.Ident) and sub.name in mapping:
            sub.name = mapping[sub.name]
        elif isinstance(sub, A.DeclStmt):
            for d in sub.decls:
                if d.name in mapping:
                    d.name = mapping[d.name]


# --------------------------------------------------------------------------
# Region rewrites
# --------------------------------------------------------------------------


def _find_record_input_vars(region: A.Stmt) -> tuple[str, str | None]:
    """Locate ``getline(&line, &nbytes, stdin)`` and return (line, nbytes)."""
    for node in region.walk():
        if isinstance(node, A.Call) and node.func == _RECORD_INPUT:
            if len(node.args) < 2:
                raise CompilerError("getline needs (&line, &nbytes, stdin)")

            def root(arg: A.Expr) -> str | None:
                if isinstance(arg, A.UnaryOp) and arg.op == "&" and \
                        isinstance(arg.operand, A.Ident):
                    return arg.operand.name
                if isinstance(arg, A.Ident):
                    return arg.name
                return None

            line = root(node.args[0])
            nbytes = root(node.args[1])
            if line is None:
                raise CompilerError("cannot identify the record buffer variable "
                                    "in getline(...)")
            return line, nbytes
    raise CompilerError(
        "mapper region contains no record input call (getline); the "
        "directive must annotate the record-iterating loop"
    )


def _rewrite_map_region(region: A.Stmt, line_var: str) -> None:
    """getline → getRecord, printf → emitKV (paper Listing 3)."""

    def fn(call: A.Call) -> A.Expr:
        if call.func == _RECORD_INPUT:
            return A.Call(
                func="getRecord",
                args=[A.UnaryOp(op="&", operand=A.Ident(name=line_var))],
                line=call.line,
            )
        if call.func == _KV_EMIT:
            if len(call.args) != 3:
                raise CompilerError(
                    "mapper emit must be printf(fmt, key, value); got "
                    f"{len(call.args)} arguments at line {call.line}"
                )
            return A.Call(func="emitKV", args=call.args[1:], line=call.line)
        return call

    rewrite_calls(region, fn)


def _rewrite_combine_region(region: A.Stmt) -> None:
    """scanf → getKV, printf → storeKV (paper Listing 4)."""
    saw_input = False

    def fn(call: A.Call) -> A.Expr:
        nonlocal saw_input
        if call.func == _KV_INPUT:
            if len(call.args) != 3:
                raise CompilerError(
                    "combiner input must be scanf(fmt, key, &value); got "
                    f"{len(call.args)} arguments at line {call.line}"
                )
            saw_input = True
            return A.Call(func="getKV", args=call.args[1:], line=call.line)
        if call.func == _KV_EMIT:
            if len(call.args) != 3:
                raise CompilerError(
                    "combiner emit must be printf(fmt, key, value)"
                )
            return A.Call(func="storeKV", args=call.args[1:], line=call.line)
        return call

    rewrite_calls(region, fn)
    if not saw_input:
        raise CompilerError(
            "combiner region contains no KV input call (scanf)"
        )


# --------------------------------------------------------------------------
# Kernel construction
# --------------------------------------------------------------------------


def _resolve_int_clause(value: int | str | None, func: A.FunctionDef) -> int | None:
    """Integer clause arguments may be literals or (unsupported at compile
    time) variables; variables degrade to None with the default behaviour."""
    return value if isinstance(value, int) else None


def _build_kernel(
    func: A.FunctionDef,
    region: A.Stmt,
    directive: Directive,
    opt: OptimizationFlags,
    program: A.Program,
    warp_size: int,
) -> KernelIR:
    known_functions = {f.name for f in program.functions}
    variables = classify_variables(func, region, directive, opt, known_functions)
    types = declared_types(func)
    key_t, val_t, key_len, val_len, key_arr, val_arr = emitted_kv_layout(
        directive, types
    )

    body = copy.deepcopy(region)
    body.pragma = None

    if directive.kind is DirectiveKind.MAPPER:
        line_var, nbytes_var = _find_record_input_vars(body)
        _rewrite_map_region(body, line_var)
        # The record buffer and its size variable are subsumed by the
        # runtime's record machinery (ip/recordLocator in Listing 3): they
        # become private, runtime-managed pointers, not host-initialized.
        for name in (line_var, nbytes_var):
            if name and name in variables:
                variables[name] = VarInfo(
                    name=name,
                    ctype=variables[name].ctype,
                    klass=VarClass.PRIVATE,
                    kernel_name=f"gpu_{name}",
                )
    else:
        _rewrite_combine_region(body)

    rename_map = {v.name: v.kernel_name for v in variables.values()}
    # Region-internal declarations also get the gpu_ prefix (Listing 3).
    from ..minic.semantics import collect_decl_names

    for name in collect_decl_names(body):
        rename_map.setdefault(name, f"gpu_{name}")
    rename_idents(body, rename_map)

    blocks = _resolve_int_clause(directive.blocks, func)
    threads = _resolve_int_clause(directive.threads, func)
    default = LaunchConfig()
    launch = LaunchConfig(
        blocks=blocks if blocks is not None else default.blocks,
        threads=threads if threads is not None else default.threads,
    )

    vec_enabled = (
        opt.vectorize_map
        if directive.kind is DirectiveKind.MAPPER
        else opt.vectorize_combine
    )
    decision = decide_vectorization(
        directive, key_arr, val_arr, key_t, val_t, vec_enabled, warp_size
    )

    kernel = KernelIR(
        kind=directive.kind,
        name=f"gpu_{'mapper' if directive.is_mapper else 'combiner'}",
        body=body,
        variables=variables,
        directive=directive,
        launch=launch,
        opt=opt,
        key_type=key_t,
        value_type=val_t,
        key_length=key_len,
        value_length=val_len,
        key_is_array=key_arr,
        value_is_array=val_arr,
        vector_width=decision.vector_width,
        kvpairs_per_record=_resolve_int_clause(directive.kvpairs, func),
        helpers=[f for f in program.functions if f.name != func.name],
        original_region=region,
    )
    kernel.source_text = render_kernel_source(kernel)
    return kernel


def render_kernel_source(kernel: KernelIR) -> str:
    """Pretty-print the kernel as CUDA-like source (cf. Listings 3–4)."""
    params: list[str] = []
    for var in kernel.variables.values():
        if var.klass is VarClass.CONST_SCALAR:
            params.append(f"{var.ctype} {var.kernel_name} /*constant*/")
        elif var.klass is VarClass.GLOBAL_RO_ARRAY:
            params.append(f"{var.ctype}* {var.kernel_name} /*global*/")
        elif var.klass is VarClass.TEXTURE_ARRAY:
            params.append(f"{var.ctype}* {var.kernel_name} /*texture*/")
        elif var.klass is VarClass.FIRSTPRIVATE_SCALAR:
            params.append(f"{var.ctype} {var.kernel_name}FP")
        elif var.klass is VarClass.FIRSTPRIVATE_ARRAY:
            params.append(f"{var.ctype}* {var.kernel_name}FP")
    if kernel.is_mapper:
        builtin = (
            "char *ip, int ipSize, int *recordLocator, char *devKey, "
            "int *devVal, int storesPerThread, int *devKvCount, "
            "int keyLength, int valLength, int *indexArray, int numReducers"
        )
    else:
        builtin = (
            "char *keys, int *values, char *opKey, int *opVal, "
            "int *indexArray, int size, int mapKeyLength, int mapValLength, "
            "int combKeyLength, int combValLength"
        )
    header = f"__global__ void {kernel.name}({builtin}"
    if params:
        header += ",\n        " + ", ".join(params)
    header += ")"
    shared = []
    if kernel.is_mapper:
        shared.append("    __shared__ unsigned int recordIndex;")
    for var in kernel.vars_of(VarClass.SHARED_ARRAY):
        base = var.ctype
        dims = ""
        while isinstance(base, T.Array):
            dims += f"[{base.size}]"
            base = base.base
        shared.append(
            f"    __shared__ {base} {var.kernel_name}[WARPS_IN_TB]{dims};"
        )
    setup = (
        "    mapSetup(&start, &tid, &index, ipSize, storesPerThread,\n"
        "             ip, devKvCount, numReducers, &recordIndex);"
        if kernel.is_mapper
        else "    combineSetup(kvsPerThread, &laneID, &warpID, &ptr,\n"
             "                 &high, &kvCount, &index, size);"
    )
    body = pprint_stmt(kernel.body, 1)
    finish = (
        "    mapFinish(index, storesPerThread, devKey, keyLength,\n"
        "              indexArray, numReducers, devKvCount);"
        if kernel.is_mapper
        else "    finalCount[warpID] = kvCount;"
    )
    return "\n".join(
        [header, "{"] + shared + [setup, body, finish, "}"]
    )


# --------------------------------------------------------------------------
# Entry point
# --------------------------------------------------------------------------


def translate(
    program: A.Program,
    opt: OptimizationFlags | None = None,
    warp_size: int = 32,
    map_only: bool = False,
) -> TranslationResult:
    """Translate every directive region in ``program``.

    A HeteroDoop app ships map and combine as separate Streaming
    executables, so a program typically contains exactly one directive.
    ``map_only`` marks jobs with zero reduce tasks (output goes straight to
    HDFS, Fig. 1).
    """
    opt = opt if opt is not None else OptimizationFlags.all_on()
    found = find_directives(program)
    if not found:
        raise CompilerError("program contains no mapreduce directives")

    result = TranslationResult(program=program)
    for directive, region, func in found:
        kernel = _build_kernel(func, region, directive, opt, program, warp_size)
        if kernel.is_mapper:
            if result.map_kernel is not None:
                raise CompilerError("multiple mapper directives in one program")
            result.map_kernel = kernel
        else:
            if result.combine_kernel is not None:
                raise CompilerError("multiple combiner directives in one program")
            result.combine_kernel = kernel

    result.host_plan = HostPlan.build(
        has_combiner=result.combine_kernel is not None,
        map_only=map_only,
        uses_kvpairs_clause=(
            result.map_kernel is not None
            and result.map_kernel.kvpairs_per_record is not None
        ),
    )
    result.cuda_source = "\n\n".join(k.source_text for k in result.kernels)
    return result


def translate_cached(
    program: A.Program,
    opt: OptimizationFlags | None = None,
    warp_size: int = 32,
    map_only: bool = False,
) -> TranslationResult:
    """Memoized :func:`translate`.

    A local job re-translates the same map/combine program once per map
    task; the result depends only on the program source, the
    optimization flags, and the launch parameters, so it is cached under
    that key (see :mod:`repro.minic.cache`). Callers share one
    TranslationResult — the translator never mutates it after build, and
    the GPU runner clones every buffer it materializes from it.
    """
    opt = opt if opt is not None else OptimizationFlags.all_on()
    opt_key = (
        opt.use_texture,
        opt.vectorize_map,
        opt.vectorize_combine,
        opt.record_stealing,
        opt.kv_aggregation,
    )
    return cached_translation(
        program,
        opt_key,
        warp_size,
        map_only,
        lambda: translate(
            program, opt=opt, warp_size=warp_size, map_only=map_only
        ),
    )
