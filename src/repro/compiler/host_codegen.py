"""Host driver code generation (paper Fig. 1).

The generated host code orchestrates the GPU task. We represent it as an
ordered :class:`HostPlan` of :class:`HostStep` entries; the runtime
(:mod:`repro.runtime.gpu_task`) executes the plan and charges time to each
step — producing exactly the Fig. 6 breakdown categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class HostStep(enum.Enum):
    """The flowchart boxes of Fig. 1 (dark boxes are runtime functions)."""

    COPY_INPUT = "copy fileSplit from HDFS to GPU memory"
    COUNT_RECORDS = "run record locator/counter kernel"
    ALLOC_STORAGE = "allocate global KV store and working memory"
    MAP_KERNEL = "launch map kernel"
    AGGREGATE = "aggregate KV pairs per partition (scan + reindex)"
    SORT = "sort each partition on the GPU"
    COMBINE_KERNEL = "launch combine kernel per partition"
    WRITE_OUTPUT = "write output (SequenceFile to local disk, or HDFS if map-only)"
    FREE = "free device memory"


@dataclass
class HostPlan:
    """Ordered host steps for one GPU task."""

    steps: list[HostStep] = field(default_factory=list)
    map_only: bool = False            # no reducers: output goes straight to HDFS
    has_combiner: bool = False
    uses_kvpairs_clause: bool = False  # shrinks the global KV store allocation

    @classmethod
    def build(cls, has_combiner: bool, map_only: bool,
              uses_kvpairs_clause: bool) -> "HostPlan":
        steps = [
            HostStep.COPY_INPUT,
            HostStep.COUNT_RECORDS,
            HostStep.ALLOC_STORAGE,
            HostStep.MAP_KERNEL,
            HostStep.AGGREGATE,
            HostStep.SORT,
        ]
        if has_combiner:
            steps.append(HostStep.COMBINE_KERNEL)
        steps.extend([HostStep.WRITE_OUTPUT, HostStep.FREE])
        return cls(
            steps=steps,
            map_only=map_only,
            has_combiner=has_combiner,
            uses_kvpairs_clause=uses_kvpairs_clause,
        )

    def describe(self) -> str:
        lines = [f"host driver plan ({'map-only' if self.map_only else 'map+combine'}):"]
        for i, step in enumerate(self.steps, 1):
            lines.append(f"  {i}. {step.value}")
        return "\n".join(lines)
