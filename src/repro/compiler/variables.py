"""Algorithm 1: Handling Variables in Generated Kernels.

Classifies every variable used inside a directive region and decides its
GPU placement:

* sharedRO scalars  → kernel parameters (constant memory),
* sharedRO arrays   → device global memory (cudaMalloc + copy-in),
* texture arrays    → texture memory (bindTexture) when the optimization
  is enabled, else they fall back to plain global memory,
* firstprivate      → per-thread private, initialized from a host value,
* everything else   → per-thread private.

For combiner kernels, private arrays are placed in per-warp shared memory
(§4.2's ``gpu_prevWord``/``gpu_word`` optimization).
"""

from __future__ import annotations

import warnings

from ..config import OptimizationFlags
from ..directives import Directive, DirectiveKind
from ..errors import CompilerError
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.semantics import analyze_region, auto_firstprivate, declared_types
from .kernel_ir import VarClass, VarInfo


class AliasingWarning(UserWarning):
    """The automatic firstprivate analysis may be inaccurate (paper §3.2:
    'It issues a warning if the analysis is inaccurate, e.g., due to
    aliasing.')."""


def classify_variables(
    func: A.FunctionDef,
    region: A.Stmt,
    directive: Directive,
    opt: OptimizationFlags,
    known_functions: set[str],
) -> dict[str, VarInfo]:
    """Run Algorithm 1 over ``region`` and return the variable table."""
    types = declared_types(func)
    info = analyze_region(region)

    shared_ro_set = set(directive.shared_ro)
    texture_set = set(directive.texture)
    first_private_set = set(directive.firstprivate)

    free_vars = {
        name
        for name in info.free_vars
        if name in types and name not in known_functions
    }

    for name in shared_ro_set | texture_set | first_private_set:
        if name not in types:
            raise CompilerError(
                f"directive names {name!r}, which is not declared in "
                f"function {func.name!r}"
            )
        # User annotations override the conservative may-write heuristic
        # (weak writes through unknown callees); definite writes are errors.
        if name in shared_ro_set and name in info.written_strong:
            raise CompilerError(
                f"sharedRO variable {name!r} is written inside the region"
            )
        if name in texture_set and name in info.written_strong:
            raise CompilerError(
                f"texture variable {name!r} is written inside the region"
            )
        if name in texture_set and not (
            isinstance(types[name], T.Array) or types[name].is_pointer
        ):
            raise CompilerError(f"texture clause requires an array: {name!r}")

    # Automatic firstprivate detection for free written variables the user
    # did not annotate (paper §3.2).
    unannotated_written = (
        (free_vars & info.written) - first_private_set - shared_ro_set - texture_set
    )
    detected = auto_firstprivate(region, unannotated_written)
    if detected & info.aliased:
        warnings.warn(
            "automatic firstprivate detection may be inaccurate due to "
            f"aliasing of: {sorted(detected & info.aliased)}",
            AliasingWarning,
            stacklevel=3,
        )
    first_private_set |= detected

    table: dict[str, VarInfo] = {}
    for name in sorted(free_vars):
        ctype = types[name]
        is_arrayish = isinstance(ctype, T.Array) or ctype.is_pointer
        if name in texture_set:
            # The texture optimization can be disabled (Fig. 7a ablation);
            # the data then lives in plain global memory.
            klass = (
                VarClass.TEXTURE_ARRAY if opt.use_texture else VarClass.GLOBAL_RO_ARRAY
            )
        elif name in shared_ro_set:
            klass = (
                VarClass.GLOBAL_RO_ARRAY if is_arrayish else VarClass.CONST_SCALAR
            )
        elif name in first_private_set:
            klass = (
                VarClass.FIRSTPRIVATE_ARRAY if is_arrayish
                else VarClass.FIRSTPRIVATE_SCALAR
            )
        elif name in info.read_only and not is_arrayish:
            # Read-only scalars the user didn't annotate still ride in as
            # kernel arguments (cheap, and what the CUDA compiler would do).
            klass = VarClass.CONST_SCALAR
        elif name in info.read_only and is_arrayish:
            klass = VarClass.GLOBAL_RO_ARRAY
        else:
            klass = VarClass.PRIVATE
        table[name] = VarInfo(
            name=name,
            ctype=ctype,
            klass=klass,
            kernel_name=f"gpu_{name}",
            initial_from_host=klass
            in (
                VarClass.CONST_SCALAR,
                VarClass.GLOBAL_RO_ARRAY,
                VarClass.TEXTURE_ARRAY,
                VarClass.FIRSTPRIVATE_SCALAR,
                VarClass.FIRSTPRIVATE_ARRAY,
            ),
        )

    # §4.2: in combiner kernels private arrays move to per-warp shared memory.
    if directive.kind is DirectiveKind.COMBINER:
        for var in table.values():
            if var.klass in (VarClass.PRIVATE, VarClass.FIRSTPRIVATE_ARRAY) and \
                    isinstance(var.ctype, T.Array):
                var.klass = VarClass.SHARED_ARRAY
        # keyin/valuein receive KV data; they are private per warp.
        for name in (directive.keyin, directive.valuein):
            if name and name in types and name not in table:
                ctype = types[name]
                table[name] = VarInfo(
                    name=name,
                    ctype=ctype,
                    klass=VarClass.SHARED_ARRAY
                    if isinstance(ctype, T.Array)
                    else VarClass.PRIVATE,
                    kernel_name=f"gpu_{name}",
                )

    # Variables declared inside the region are private by construction
    # (MapReduce has no shared written data, §3.2); they are not in the
    # table because the kernel body declares them itself.
    return table


def emitted_kv_layout(
    directive: Directive, types: dict[str, T.CType]
) -> tuple[T.CType, T.CType, int, int, bool, bool]:
    """Determine key/value types and byte lengths for the KV store.

    Returns (key_type, value_type, key_len, value_len, key_is_array,
    value_is_array). keylength/vallength clauses override derived sizes;
    they are *required* when the type is not compiler-derivable (e.g. a
    ``char*``), mirroring §3.1.
    """

    def resolve(name: str | None, length, what: str) -> tuple[T.CType, int, bool]:
        if name is None:
            raise CompilerError(f"directive missing {what} variable")
        ctype = types.get(name)
        if ctype is None:
            raise CompilerError(f"{what} variable {name!r} is not declared")
        if isinstance(ctype, T.Array):
            size = ctype.sizeof() if ctype.size is not None else None
            if size is None and length is None:
                raise CompilerError(
                    f"{what} variable {name!r} has no derivable size; "
                    f"use {what}length(...)"
                )
            if isinstance(length, int):
                size = length
            return ctype, int(size), True
        if ctype.is_pointer:
            if not isinstance(length, int):
                raise CompilerError(
                    f"{what} variable {name!r} is a pointer; "
                    f"{what}length(...) with a literal is required"
                )
            return ctype, int(length), True
        size = ctype.sizeof()
        if isinstance(length, int):
            size = length
        return ctype, size, False

    key_type, key_len, key_arr = resolve(directive.key, directive.keylength, "key")
    val_type, val_len, val_arr = resolve(directive.value, directive.vallength, "value")
    return key_type, val_type, key_len, val_len, key_arr, val_arr
