"""Kernel IR — the translated form of a directive region.

A :class:`KernelIR` is this reproduction's stand-in for a generated CUDA
``__global__`` function: a transformed AST whose IO calls have been
replaced with GPU-runtime calls (``getRecord``/``emitKV``/``getKV``/
``storeKV``), plus the variable classification from Algorithm 1 and the
optimization decisions (vector widths, texture placement) the executor's
timing model consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..config import LaunchConfig, OptimizationFlags
from ..directives import Directive, DirectiveKind
from ..minic import cast as A
from ..minic import ctypes as T


class VarClass(enum.Enum):
    """Placement classes from Algorithm 1 (plus the combiner's shared-memory
    private arrays, §4.2)."""

    CONST_SCALAR = "constant"          # sharedRO scalar → constant memory
    GLOBAL_RO_ARRAY = "global_ro"      # sharedRO array → device global memory
    TEXTURE_ARRAY = "texture"          # read-only array → texture memory
    PRIVATE = "private"                # per-thread private (registers/local)
    FIRSTPRIVATE_SCALAR = "fp_scalar"  # initialized via kernel parameter
    FIRSTPRIVATE_ARRAY = "fp_array"    # initialized via device copy + in-kernel memcpy
    SHARED_ARRAY = "shared"            # combiner private array in shared memory


@dataclass
class VarInfo:
    """One variable used by the kernel."""

    name: str
    ctype: T.CType
    klass: VarClass
    kernel_name: str          # renamed inside the kernel (gpu_ prefix)
    initial_from_host: bool = False   # value captured at kernel launch

    @property
    def is_array(self) -> bool:
        return isinstance(self.ctype, T.Array)

    def sizeof(self) -> int:
        return self.ctype.sizeof() if self.is_array else self.ctype.sizeof()


@dataclass
class KernelIR:
    """A translated map or combine kernel."""

    kind: DirectiveKind
    name: str
    body: A.Stmt                      # transformed region (calls GPU runtime)
    variables: dict[str, VarInfo]     # original name → info
    directive: Directive
    launch: LaunchConfig
    opt: OptimizationFlags
    # Emitted KV layout
    key_type: T.CType = T.INT
    value_type: T.CType = T.INT
    key_length: int = 4               # bytes per key slot in the KV store
    value_length: int = 4             # bytes per value slot
    key_is_array: bool = False
    value_is_array: bool = False
    # Optimization decisions
    vector_width: int = 1             # char4-style vector width for KV moves
    kvpairs_per_record: int | None = None  # from the kvpairs clause
    source_text: str = ""             # pretty-printed "CUDA" for humans
    helpers: list[A.FunctionDef] = field(default_factory=list)  # __device__ fns
    #: The untransformed region node in the original program — the host
    #: driver interprets main() up to this point to capture firstprivate/
    #: sharedRO values before launching the kernel.
    original_region: A.Stmt | None = None

    @property
    def is_mapper(self) -> bool:
        return self.kind is DirectiveKind.MAPPER

    @property
    def is_combiner(self) -> bool:
        return self.kind is DirectiveKind.COMBINER

    @property
    def kv_slot_bytes(self) -> int:
        """Bytes one KV pair occupies in the global KV store (key + value +
        index entry)."""
        return self.key_length + self.value_length + 4

    def vars_of(self, *classes: VarClass) -> list[VarInfo]:
        return [v for v in self.variables.values() if v.klass in classes]

    @property
    def texture_vars(self) -> list[VarInfo]:
        return self.vars_of(VarClass.TEXTURE_ARRAY)

    @property
    def shared_mem_bytes(self) -> int:
        """Shared memory used per threadblock: the record-stealing counter
        (mapper) plus per-warp private arrays (combiner)."""
        total = 4 if self.is_mapper else 0
        warps = self.launch.threads // 32
        for var in self.vars_of(VarClass.SHARED_ARRAY):
            total += var.ctype.sizeof() * warps
        return total
