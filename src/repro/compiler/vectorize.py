"""Vector load/store analysis (paper §4.1 "Using Vector Data Types" and
§4.2's warp-cooperative getKV/storeKV).

For array-typed keys/values the generated code uses CUDA vector types
(``char4``) in ``emitKV`` and string functions, quadrupling effective
memory throughput. In combine kernels, threads of a warp cooperatively
load/store array KV bytes lane-per-element ("all threads in the warp must
be active"); if neither key nor value is an array, only a single thread
per warp does useful work.

The analysis only *decides*; the GPU timing model applies the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..directives import Directive, DirectiveKind
from ..minic import ctypes as T


@dataclass(frozen=True)
class VectorDecision:
    """What the vectorizer decided for a kernel."""

    vector_width: int          # 1 (scalar) or 4 (char4)
    warp_cooperative: bool     # combiner lanes move KV bytes cooperatively
    active_lanes: int          # lanes doing useful work in a combiner warp
    reason: str


def decide_vectorization(
    directive: Directive,
    key_is_array: bool,
    value_is_array: bool,
    key_type: T.CType,
    value_type: T.CType,
    enabled: bool,
    warp_size: int = 32,
) -> VectorDecision:
    """Pick vector width and warp cooperation for a kernel."""
    any_array = key_is_array or value_is_array
    if not enabled:
        return VectorDecision(
            vector_width=1,
            warp_cooperative=False,
            active_lanes=1 if directive.kind is DirectiveKind.COMBINER else warp_size,
            reason="vectorization disabled",
        )
    if directive.kind is DirectiveKind.MAPPER:
        if any_array:
            return VectorDecision(
                vector_width=4,
                warp_cooperative=False,
                active_lanes=warp_size,
                reason="char4 vector loads/stores for array key/value in emitKV "
                       "and string functions",
            )
        if key_type.sizeof() + value_type.sizeof() >= 12:
            return VectorDecision(
                vector_width=2,
                warp_cooperative=False,
                active_lanes=warp_size,
                reason="wide scalar KV (e.g. double values): paired 64-bit "
                       "vector moves in emitKV",
            )
        return VectorDecision(
            vector_width=1,
            warp_cooperative=False,
            active_lanes=warp_size,
            reason="scalar key and value; vector types not applicable",
        )
    # Combiner: warp-redundant execution with cooperative KV movement.
    # The KV store holds serialized key/value bytes, so lane-cooperative
    # vectorized moves apply regardless of the declared C types.
    return VectorDecision(
        vector_width=4,
        warp_cooperative=True,
        active_lanes=warp_size if any_array else 1,
        reason="warp-cooperative vectorized getKV/storeKV over the KV byte "
               "stream" if any_array else
               "single active compute lane per warp (§4.2); KV bytes still "
               "move cooperatively",
    )
