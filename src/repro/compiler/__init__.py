"""The HeteroDoop source-to-source translator (paper §4).

Input: a mini-C MapReduce program annotated with ``#pragma mapreduce``
directives. Output: a :class:`~repro.compiler.translator.TranslationResult`
holding GPU Kernel IR for the map (and optionally combine) phases plus the
host driver plan — the reproduction's analogue of the generated CUDA file
that ``nvcc`` would compile.

The original source is left untouched: it remains the CPU executable
(paper Fig. 2 — "single MapReduce source ... for both CPUs and GPUs").
"""

from .kernel_ir import KernelIR, VarClass, VarInfo
from .translator import TranslationResult, translate, translate_cached
from .host_codegen import HostPlan, HostStep

__all__ = [
    "KernelIR",
    "VarClass",
    "VarInfo",
    "TranslationResult",
    "translate",
    "translate_cached",
    "HostPlan",
    "HostStep",
]
