"""Exception hierarchy for the HeteroDoop reproduction.

Every layer raises a subclass of :class:`ReproError` so callers can catch
library failures without swallowing genuine bugs (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MiniCError(ReproError):
    """Base class for mini-C frontend errors."""

    def __init__(self, message: str, line: int | None = None, col: int | None = None):
        self.line = line
        self.col = col
        loc = f" at line {line}" if line is not None else ""
        loc += f", col {col}" if col is not None else ""
        super().__init__(f"{message}{loc}")


class LexError(MiniCError):
    """Invalid token in mini-C source."""


class ParseError(MiniCError):
    """Syntactically invalid mini-C source."""


class SemanticError(MiniCError):
    """Type errors, undeclared identifiers, bad directive targets."""


class CRuntimeError(ReproError):
    """Raised when interpreting mini-C hits undefined behaviour we detect
    (out-of-bounds access, null dereference, bad format string)."""


class DirectiveError(ReproError):
    """Malformed or semantically invalid ``#pragma mapreduce`` directive."""


class CompilerError(ReproError):
    """Source-to-source translation failure."""


class GpuError(ReproError):
    """GPU simulator errors (e.g. launch misconfiguration)."""


class GpuOutOfMemory(GpuError):
    """Device memory allocation failed (GPUs have no virtual memory)."""

    def __init__(self, requested: int, free: int):
        self.requested = requested
        self.free = free
        super().__init__(
            f"cudaMalloc failed: requested {requested} bytes, {free} free"
        )


class KVStoreOverflow(GpuError):
    """A map thread exhausted its portion of the global KV store."""


class HdfsError(ReproError):
    """HDFS namenode/datanode failures."""


class HadoopError(ReproError):
    """Job/task orchestration errors."""


class TaskFailure(HadoopError):
    """A task attempt failed; carries the attempt for diagnosis."""

    def __init__(self, message: str, attempt_id: str | None = None):
        self.attempt_id = attempt_id
        super().__init__(message if attempt_id is None else f"{message} ({attempt_id})")


class SchedulerError(HadoopError):
    """Scheduling policy misconfiguration."""


class ConfigError(ReproError):
    """Invalid cluster/GPU/job configuration."""
