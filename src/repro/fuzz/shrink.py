"""Delta-debugging shrinker for divergent fuzz cases.

Classic ddmin adapted to the mini-C AST: instead of deleting source
*lines* (which mostly yields unparsable programs), candidate reductions
are structural — drop a statement from a block, pin an ``if`` condition
to a constant, zero or halve an integer literal, drop input lines — and
a candidate is kept only if the *same* divergence check still fires.
Because both CPU backends agree on error behavior, a reduction that
breaks the program (say, by deleting a declaration) produces an
identical error on both engines — no divergence — and is rejected
automatically; no validity checker is needed.

The reduction loop is deterministic: passes run in a fixed order and
restart after every accepted reduction, so a given (case, check) pair
always minimizes to the same program.
"""

from __future__ import annotations

import copy
from dataclasses import replace
from typing import Callable, Iterator

from ..minic import cast as A
from ..minic import parse
from ..minic.pretty import pprint_program
from .gen import FuzzCase
from .oracle import run_case


def _walk(node: A.Node) -> Iterator[A.Node]:
    yield node
    for child in node.children():
        yield from _walk(child)


def _render(program: A.Program) -> str:
    return pprint_program(program)


def _reparses(source: str) -> bool:
    try:
        parse(source)
        return True
    except Exception:
        return False


class _Shrinker:
    def __init__(self, case: FuzzCase, check: str, max_attempts: int):
        self.case = case
        self.check = check
        self.attempts_left = max_attempts

    def _holds(self, candidate: FuzzCase) -> bool:
        if self.attempts_left <= 0:
            return False
        self.attempts_left -= 1
        try:
            div = run_case(candidate)
        except Exception:
            return False
        return div is not None and div.check == self.check

    def _accept_if_holds(self, candidate: FuzzCase) -> bool:
        if self._holds(candidate):
            self.case = candidate
            return True
        return False

    # -- input reduction ---------------------------------------------------

    def _shrink_input(self) -> bool:
        progress = False
        while True:
            lines = self.case.input_text.splitlines()
            if len(lines) <= 1:
                break
            # Halving first (big strides), then single-line removal.
            half = len(lines) // 2
            cands = [lines[:half], lines[half:]]
            accepted = False
            for keep in cands:
                text = "\n".join(keep) + ("\n" if keep else "")
                if self._accept_if_holds(replace(self.case, input_text=text)):
                    accepted = progress = True
                    break
            if accepted:
                continue
            for i in reversed(range(len(lines))):
                keep = lines[:i] + lines[i + 1:]
                text = "\n".join(keep) + ("\n" if keep else "")
                if self._accept_if_holds(replace(self.case, input_text=text)):
                    accepted = progress = True
                    break
            if not accepted:
                break
        return progress

    # -- AST reduction -----------------------------------------------------

    def _source_fields(self) -> list[tuple[str, str]]:
        fields = [("source", self.case.source)]
        if self.case.combine_source:
            fields.append(("combine_source", self.case.combine_source))
        return fields

    def _mutate(self, field_name: str,
                mutator: Callable[[A.Program], bool]) -> bool:
        """Parse, apply one structural edit, re-render, test."""
        source = getattr(self.case, field_name)
        program = parse(source)
        if not mutator(program):
            return False
        new_source = _render(program)
        if new_source == source or not _reparses(new_source):
            return False
        return self._accept_if_holds(
            replace(self.case, **{field_name: new_source}))

    def _shrink_stmts(self) -> bool:
        progress = False
        for field_name, _src in self._source_fields():
            changed = True
            while changed:
                changed = False
                program = parse(getattr(self.case, field_name))
                blocks = [n for n in _walk(program) if isinstance(n, A.Block)]
                sites = [(bi, si)
                         for bi, b in enumerate(blocks)
                         for si in reversed(range(len(b.stmts)))]
                for bi, si in sites:
                    def drop(prog: A.Program, bi=bi, si=si) -> bool:
                        blks = [n for n in _walk(prog)
                                if isinstance(n, A.Block)]
                        if bi >= len(blks) or si >= len(blks[bi].stmts):
                            return False
                        del blks[bi].stmts[si]
                        return True
                    if self._mutate(field_name, drop):
                        changed = progress = True
                        break
        return progress

    def _shrink_exprs(self) -> bool:
        progress = False
        for field_name, _src in self._source_fields():
            changed = True
            while changed:
                changed = False
                program = parse(getattr(self.case, field_name))
                ifs = sum(isinstance(n, A.If) for n in _walk(program))
                for idx in range(ifs):
                    for pin in (0, 1):
                        def pin_cond(prog: A.Program, idx=idx,
                                     pin=pin) -> bool:
                            nodes = [n for n in _walk(prog)
                                     if isinstance(n, A.If)]
                            if idx >= len(nodes):
                                return False
                            cond = nodes[idx].cond
                            if isinstance(cond, A.IntLit):
                                return False
                            nodes[idx].cond = A.IntLit(value=pin)
                            return True
                        if self._mutate(field_name, pin_cond):
                            changed = progress = True
                            break
                    if changed:
                        break
                if changed:
                    continue
                lits = [n for n in _walk(program)
                        if isinstance(n, A.IntLit) and n.value not in (0, 1)]
                for idx in range(len(lits)):
                    for new_val in (0, lits[idx].value // 2):
                        def zero(prog: A.Program, idx=idx,
                                 new_val=new_val) -> bool:
                            nodes = [n for n in _walk(prog)
                                     if isinstance(n, A.IntLit)
                                     and n.value not in (0, 1)]
                            if idx >= len(nodes):
                                return False
                            nodes[idx].value = new_val
                            return True
                        if self._mutate(field_name, zero):
                            changed = progress = True
                            break
                    if changed:
                        break
        return progress

    def run(self) -> FuzzCase:
        while self.attempts_left > 0:
            progress = self._shrink_input()
            progress = self._shrink_stmts() or progress
            progress = self._shrink_exprs() or progress
            if not progress:
                break
        return self.case


def shrink_case(case: FuzzCase, check: str,
                max_attempts: int = 300) -> FuzzCase:
    """Minimize ``case`` while the divergence labelled ``check`` persists.

    Returns the smallest case found (possibly the original). The result
    still reproduces ``check`` — every accepted reduction was re-run
    through the full oracle.
    """
    # Normalize through the pretty-printer once so later textual
    # comparisons ("did this edit change anything?") are meaningful.
    normalized = replace(case, source=_render(parse(case.source)))
    if case.combine_source:
        normalized = replace(
            normalized,
            combine_source=_render(parse(case.combine_source)))
    shrinker = _Shrinker(case, check, max_attempts)
    if shrinker._holds(normalized):
        shrinker.case = normalized
    return shrinker.run()
