"""Differential conformance fuzzing across the mini-C execution backends.

The reproduction executes one mini-C source through three independent
engines — the tree-walking interpreter, the closure-compiled backend, and
the compiler→Kernel-IR→GPU-simulator path — and equivalence used to be
asserted only on the eight fixed benchmarks. This package generates
seeded, type-correct mini-C programs (plus matching synthetic inputs),
runs each through every applicable backend, compares all observable
boundaries (stdout KV streams, ExecCounters, error messages, simulated
GPU results), delta-debugs any divergent program down to a minimal
reproducer, and persists reproducers into ``tests/fuzz_corpus/``.

Entry points:

* ``python -m repro fuzz --seed 0 --count 300`` — run a campaign.
* :func:`repro.fuzz.runner.run_campaign` — the same, programmatically.
* :func:`repro.fuzz.gen.generate_case` — one deterministic case.
"""

from .gen import FuzzCase, generate_case, generate_source
from .oracle import Divergence, run_case
from .runner import CampaignResult, load_corpus, run_campaign
from .shrink import shrink_case

__all__ = [
    "FuzzCase",
    "generate_case",
    "generate_source",
    "Divergence",
    "run_case",
    "CampaignResult",
    "load_corpus",
    "run_campaign",
    "shrink_case",
]
