"""Differential oracle: run one case through every applicable engine.

Five engines execute each eligible case: the tree and compiled CPU
backends, the tree-walking GPU lane engine (itself run under both CPU
backends), the compiled GPU lane engine, and the numpy-vectorized warp
engine. Comparison boundaries, strictest first:

* tree vs. compiled CPU backends — stdout must be byte-identical,
  :class:`ExecCounters` bit-identical, and any ``CRuntimeError`` must
  carry the same message from both engines.
* mapper cases — a full ``LocalJobRunner`` job (map → combine →
  shuffle → reduce) with ``use_gpu=False`` vs. ``use_gpu=True`` must
  produce the same final output dict; and the GPU job itself must be
  invariant across lane engines and across the CPU backend used to
  execute kernel regions: same outputs, bit-identical simulated
  seconds, and bit-identical map-launch ``ExecCounters`` and
  ``KernelCost`` (the full per-warp charge fold).
* combiner cases with integer values — the standalone GPU combine
  kernel may emit chunk-boundary partial aggregates (paper §4.2), so
  only per-key sums are compared against the serial combiner; but the
  two lane engines must agree on the kernel's exact output pairs,
  counters, and cost first.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from ..apps.base import Application
from ..config import CLUSTER1
from ..errors import ReproError
from ..gpu.device import GpuDevice
from ..gpu.engine import use_gpu_engine
from ..gpu.executor import run_combine_kernel
from ..hadoop.local import LocalJobRunner, parse_kv_line
from ..kvstore.global_store import KVPair
from ..minic import parse
from ..minic.interpreter import ExecCounters, Interpreter, run_filter, use_backend
from ..parallel import in_worker
from .gen import FuzzCase

#: Small split so multi-line inputs exercise >1 map task occasionally.
_SPLIT_BYTES = 512

#: Step budget for direct filter runs. Generated programs finish in ~1k
#: tree steps; the ceiling exists for shrinker mutants that delete a
#: loop-advance statement and would otherwise spin for minutes against
#: the 200M default. Both backends report the limit with the same
#: message, so tripping it is agreeing error behavior, not divergence.
_MAX_STEPS = 200_000


@dataclass
class Divergence:
    """One observed disagreement between backends."""

    case: FuzzCase
    check: str          # which comparison failed, e.g. "stdout:tree-vs-compiled"
    detail: str         # human-readable evidence

    def report(self) -> str:
        lines = [
            f"divergence {self.case.name} [{self.check}]",
            self.detail.rstrip(),
            "--- program ---",
            self.case.source.rstrip(),
        ]
        if self.case.combine_source:
            lines += ["--- combiner ---", self.case.combine_source.rstrip()]
        lines += ["--- input ---", self.case.input_text.rstrip() or "(empty)"]
        return "\n".join(lines)


@dataclass(frozen=True)
class _Outcome:
    status: str                     # "ok" | "error"
    stdout: str = ""
    counters: ExecCounters | None = None
    error: str = ""


def _filter_outcome(source: str, input_text: str, backend: str) -> _Outcome:
    try:
        program = parse(source)
        out, counters = run_filter(program, input_text, backend=backend,
                                   max_steps=_MAX_STEPS)
        return _Outcome("ok", stdout=out, counters=counters)
    except Exception as exc:
        # Mostly CRuntimeError; anything else (e.g. a Python-level error
        # leaking out of an evaluator) still counts as this backend's
        # observable behavior and must match the other backend exactly.
        return _Outcome("error", error=f"{type(exc).__name__}: {exc}")


def _first_diff(a: str, b: str) -> str:
    a_lines, b_lines = a.splitlines(), b.splitlines()
    for i, (la, lb) in enumerate(zip(a_lines, b_lines)):
        if la != lb:
            return f"line {i + 1}: tree={la!r} compiled={lb!r}"
    return (f"line counts differ: tree={len(a_lines)} "
            f"compiled={len(b_lines)}")


def _compare_cpu(case: FuzzCase, source: str,
                 input_text: str) -> Divergence | None:
    """Tree vs. compiled differential on one streaming filter."""
    tree = _filter_outcome(source, input_text, "tree")
    comp = _filter_outcome(source, input_text, "compiled")
    if tree.status != comp.status:
        return Divergence(case, "error:tree-vs-compiled",
                          f"tree={tree.status}({tree.error}) "
                          f"compiled={comp.status}({comp.error})")
    if tree.status == "error":
        if tree.error != comp.error:
            return Divergence(case, "error-message:tree-vs-compiled",
                              f"tree={tree.error!r}\ncompiled={comp.error!r}")
        return None
    if tree.stdout != comp.stdout:
        return Divergence(case, "stdout:tree-vs-compiled",
                          _first_diff(tree.stdout, comp.stdout))
    if tree.counters != comp.counters:
        return Divergence(case, "counters:tree-vs-compiled",
                          f"tree={tree.counters}\ncompiled={comp.counters}")
    return None


# -- mapper cases: full job, CPU streaming vs GPU-simulated ----------------


def _sum_reduce(key: Any, values: list[Any]) -> list[tuple[Any, Any]]:
    return [(key, sum(values))]


def _fuzz_app(case: FuzzCase) -> Application:
    return Application(
        name=f"fuzz-{case.name}",
        short="FZ",
        nature="IO",
        map_source=case.source,
        combine_source=case.combine_source,
        reduce_py=_sum_reduce,
    )


def _run_job(app: Application, input_text: str, use_gpu: bool,
             workers: int = 1):
    runner = LocalJobRunner(app, use_gpu=use_gpu, num_reducers=2,
                            split_bytes=_SPLIT_BYTES, workers=workers)
    return runner.run(input_text)


def _fmt_output_diff(cpu: dict[Any, Any], gpu: dict[Any, Any]) -> str:
    keys = sorted({*cpu, *gpu}, key=repr)
    rows = [f"  {k!r}: cpu={cpu.get(k, '<absent>')!r} "
            f"gpu={gpu.get(k, '<absent>')!r}"
            for k in keys if cpu.get(k, object()) != gpu.get(k, object())]
    return "output dict mismatch:\n" + "\n".join(rows[:20])


def _outputs_diverge(got: dict[Any, Any], want: dict[Any, Any],
                     value_close: bool = False) -> bool:
    """Exact dict inequality, or float-tolerant when ``value_close``."""
    if not value_close:
        return got != want
    if set(got) != set(want):
        return True
    for key, value in want.items():
        other = got[key]
        if isinstance(value, float) or isinstance(other, float):
            if not math.isclose(float(other), float(value),
                                rel_tol=1e-4, abs_tol=1e-3):
                return True
        elif other != value:
            return True
    return False


def _compare_mapper_job(case: FuzzCase) -> Divergence | None:
    return _compare_job_matrix(case, _fuzz_app(case))


def _compare_job_matrix(case: FuzzCase, app: Application,
                        value_close: bool = False,
                        compare_cpu_backends: bool = False) -> Divergence | None:
    try:
        cpu = _run_job(app, case.input_text, use_gpu=False)
    except ReproError as exc:
        return Divergence(case, "cpu-job-error",
                          f"{type(exc).__name__}: {exc}")
    # Scenario cases additionally pin the CPU job across both mini-C
    # backends: the streaming map/combine interpreters must agree byte
    # for byte before the GPU matrix is worth consulting.
    if compare_cpu_backends:
        try:
            with use_backend("tree"):
                cpu_tree = _run_job(app, case.input_text, use_gpu=False)
            with use_backend("compiled"):
                cpu_comp = _run_job(app, case.input_text, use_gpu=False)
        except ReproError as exc:
            return Divergence(case, "cpu-backend-job-error",
                              f"{type(exc).__name__}: {exc}")
        if cpu_tree.output != cpu_comp.output:
            return Divergence(case, "cpu-backend-output:tree-vs-compiled",
                              _fmt_output_diff(cpu_tree.output,
                                               cpu_comp.output))
        if cpu_tree.map_output_pairs != cpu_comp.map_output_pairs:
            return Divergence(
                case, "cpu-backend-pairs:tree-vs-compiled",
                f"tree emitted {cpu_tree.map_output_pairs} map pairs, "
                f"compiled emitted {cpu_comp.map_output_pairs}")
    # Parallel configuration: the same CPU job fanned across a worker
    # pool must match the serial run byte for byte. Skipped inside a
    # fuzz pool worker (workers are leaves — the job would silently run
    # serially, comparing a run against itself) and for single-split
    # inputs (ditto: the runner caps workers at the task count).
    if not in_worker() and len(case.input_text.encode()) > _SPLIT_BYTES:
        try:
            par = _run_job(app, case.input_text, use_gpu=False, workers=2)
        except ReproError as exc:
            return Divergence(case, "parallel-job-error",
                              f"{type(exc).__name__}: {exc}")
        if par.output != cpu.output:
            return Divergence(case, "parallel-vs-serial-output",
                              _fmt_output_diff(cpu.output, par.output))
        if par.map_output_pairs != cpu.map_output_pairs or \
                par.task_seconds() != cpu.task_seconds():
            return Divergence(
                case, "parallel-vs-serial-timing",
                f"serial pairs={cpu.map_output_pairs} "
                f"seconds={cpu.task_seconds()}\n"
                f"parallel pairs={par.map_output_pairs} "
                f"seconds={par.task_seconds()}")
    try:
        # Four GPU configurations: the tree lane engine under both CPU
        # backends (kernel bodies interpreted vs compiled), the compiled
        # lane engine, and the vectorized warp engine. All must agree
        # exactly.
        with use_gpu_engine("tree"):
            with use_backend("compiled"):
                gpu_tc = _run_job(app, case.input_text, use_gpu=True)
            with use_backend("tree"):
                gpu_tt = _run_job(app, case.input_text, use_gpu=True)
        with use_gpu_engine("compiled"):
            gpu_c = _run_job(app, case.input_text, use_gpu=True)
        with use_gpu_engine("vector"):
            gpu_v = _run_job(app, case.input_text, use_gpu=True)
    except ReproError as exc:
        return Divergence(case, "gpu-job-error",
                          f"{type(exc).__name__}: {exc}")
    runs = [("tree/tree", gpu_tt), ("tree/compiled", gpu_tc),
            ("compiled", gpu_c), ("vector", gpu_v)]
    for name, gpu in runs[1:]:
        if gpu.output != gpu_tt.output:
            return Divergence(case, f"gpu-engine-output:{name}",
                              _fmt_output_diff(gpu_tt.output, gpu.output))
        sec = [r.seconds for r in gpu.gpu_task_results]
        sec_tt = [r.seconds for r in gpu_tt.gpu_task_results]
        if sec != sec_tt:
            return Divergence(case, f"gpu-engine-seconds:{name}",
                              f"tree/tree={sec_tt}\n{name}={sec}")
        for i, (a, b) in enumerate(zip(gpu_tt.gpu_task_results,
                                       gpu.gpu_task_results)):
            if a.map_launch.counters != b.map_launch.counters:
                return Divergence(
                    case, f"gpu-engine-counters:{name}",
                    f"task {i}: tree/tree={a.map_launch.counters}\n"
                    f"{name}={b.map_launch.counters}")
            if a.map_launch.cost != b.map_launch.cost:
                return Divergence(
                    case, f"gpu-engine-cost:{name}",
                    f"task {i}: tree/tree={a.map_launch.cost}\n"
                    f"{name}={b.map_launch.cost}")
    if _outputs_diverge(gpu_c.output, cpu.output, value_close):
        return Divergence(case, "cpu-vs-gpu-job",
                          _fmt_output_diff(cpu.output, gpu_c.output))
    if cpu.map_output_pairs != gpu_c.map_output_pairs:
        return Divergence(
            case, "map-output-pairs",
            f"cpu emitted {cpu.map_output_pairs} map pairs, "
            f"gpu emitted {gpu_c.map_output_pairs}")
    return None


# -- registry scenarios: the real apps through the same engine matrix ------


def scenario_case(short: str, scale: str = "small",
                  seed: int | None = None) -> FuzzCase:
    """One registry app plus its canonical datagen input as a case."""
    from ..apps import get_app
    from ..scenarios.registry import generate_input, get_workload

    app = get_app(short)
    if seed is None:
        seed = get_workload(short).seed
    return FuzzCase(kind="scenario", seed=seed, index=0,
                    source=app.map_source, gpu=True,
                    combine_source=app.combine_source,
                    input_text=generate_input(short, scale, seed=seed),
                    label=f"registry:{short}:{scale}")


def run_scenario(short: str, scale: str = "small",
                 seed: int | None = None) -> Divergence | None:
    """Five-engine oracle over one registry app's canonical workload.

    The comparison matrix is the generated-mapper one plus a CPU
    tree-vs-compiled backend leg, with two app-appropriate adjustments:
    final CPU-vs-GPU values compare with float tolerance (compute apps
    reduce to floats, and the two paths order float additions
    differently), and the app's pure-Python reference output is checked
    as one more independent opinion when the app defines one.
    """
    from ..apps import get_app

    case = scenario_case(short, scale, seed=seed)
    app = get_app(short)
    div = _compare_job_matrix(case, app, value_close=True,
                              compare_cpu_backends=True)
    if div is not None:
        return div
    if app.reference is not None:
        cpu = _run_job(app, case.input_text, use_gpu=False)
        want = app.reference(case.input_text)
        if _outputs_diverge(cpu.output, want, value_close=True):
            return Divergence(case, "cpu-vs-reference",
                              _fmt_output_diff(want, cpu.output))
    return None


# -- combiner cases: serial combiner vs GPU combine kernel -----------------


def _key_sums(pairs: list[tuple[Any, Any]]) -> dict[Any, Any]:
    sums: dict[Any, Any] = defaultdict(int)
    for k, v in pairs:
        sums[k] += v
    return dict(sums)


def _compare_combine_kernel(case: FuzzCase) -> Divergence | None:
    try:
        from ..compiler.translator import translate

        program = parse(case.source)
        tr = translate(program)
        kernel = tr.combine_kernel
        snapshot = Interpreter(tr.program, stdin="").run_until_region(
            kernel.original_region)
        pairs = [KVPair(*parse_kv_line(ln), 0)
                 for ln in case.input_text.splitlines() if ln]
        device = GpuDevice(CLUSTER1.gpu)
        launch = run_combine_kernel(device, kernel, pairs, snapshot,
                                    engine="compiled")
        launch_t = run_combine_kernel(device, kernel, pairs, snapshot,
                                      engine="tree")
        launch_v = run_combine_kernel(device, kernel, pairs, snapshot,
                                      engine="vector")
    except ReproError as exc:
        return Divergence(case, "gpu-combine-error",
                          f"{type(exc).__name__}: {exc}")
    # Lane engines must agree exactly — output pair-for-pair (including
    # any §4.2 chunk-boundary partials), counters, and cost. The vector
    # engine inherits the compiled combine path, so this leg pins the
    # inheritance rather than a separate implementation.
    for name, other in (("compiled", launch), ("vector", launch_v)):
        if other.output != launch_t.output:
            return Divergence(
                case, f"gpu-combine-engine-output:{name}",
                f"tree={launch_t.output[:10]}\n{name}={other.output[:10]}")
        if other.counters != launch_t.counters:
            return Divergence(
                case, f"gpu-combine-engine-counters:{name}",
                f"tree={launch_t.counters}\n{name}={other.counters}")
        if other.cost != launch_t.cost:
            return Divergence(
                case, f"gpu-combine-engine-cost:{name}",
                f"tree={launch_t.cost}\n{name}={other.cost}")
    serial_out, _ = run_filter(parse(case.source), case.input_text,
                               max_steps=_MAX_STEPS)
    serial = [parse_kv_line(ln) for ln in serial_out.splitlines() if ln]
    gpu_pairs = [parse_kv_line(f"{k}\t{v}") for k, v in launch.output]
    serial_sums = _key_sums(serial)
    gpu_sums = _key_sums(gpu_pairs)
    if serial_sums != gpu_sums:
        return Divergence(case, "gpu-combine-sums",
                          _fmt_output_diff(serial_sums, gpu_sums))
    return None


# -- entry point -----------------------------------------------------------


def run_case(case: FuzzCase) -> Divergence | None:
    """Run every applicable comparison; first failure wins."""
    div = _compare_cpu(case, case.source, case.input_text)
    if div is not None:
        return div
    # If the program errors (identically on both CPU backends — just
    # verified), there is nothing meaningful to feed the job/GPU paths.
    primary = _filter_outcome(case.source, case.input_text, "compiled")
    if primary.status != "ok":
        return None
    if case.kind == "mapper" and case.combine_source:
        # The paired combiner is also a tree-vs-compiled subject in its
        # own right: feed it the sorted map output.
        kv = sorted(ln for ln in primary.stdout.splitlines() if ln)
        div = _compare_cpu(case, case.combine_source,
                           "\n".join(kv) + "\n" if kv else "")
        if div is not None:
            div.check = f"pair-combine/{div.check}"
            return div
    if case.kind == "mapper" and case.gpu:
        return _compare_mapper_job(case)
    if case.kind == "combiner" and case.gpu:
        return _compare_combine_kernel(case)
    return None
