"""Campaign driver: generate → oracle → shrink → persist.

A campaign is fully determined by ``(seed, count, kinds)``: case ``i``
is derived from ``random.Random(f"{seed}/{i}")``, the oracle is
deterministic, and the shrinker explores reductions in a fixed order.
The campaign digest (SHA-1 over every case's source, input, and outcome)
is the determinism witness: two runs with the same parameters must print
the same digest on any machine.

Divergent cases are minimized and written to ``tests/fuzz_corpus/`` as
``<case>/program.c + input.txt + meta.json`` (plus ``combine.c`` for
mapper cases with a paired combiner). ``tests/test_fuzz_corpus.py``
replays every entry through the full oracle on each tier-1 run, so a
divergence found once can never silently return.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..parallel.daemon import get_pool
from ..parallel.pool import resolve_workers
from .gen import KIND_SCHEDULE, FuzzCase, generate_case
from .oracle import Divergence, run_case
from .shrink import shrink_case

#: Default corpus location inside the repo checkout.
DEFAULT_CORPUS = Path(__file__).resolve().parents[3] / "tests" / "fuzz_corpus"


@dataclass
class CampaignResult:
    seed: int
    requested: int
    executed: int = 0
    kind_counts: dict[str, int] = field(default_factory=dict)
    #: (original case, divergence, minimized case) triples.
    divergences: list[tuple[FuzzCase, Divergence, FuzzCase]] = (
        field(default_factory=list))
    digest: str = ""
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> str:
        kinds = " ".join(f"{k}={n}" for k, n in sorted(self.kind_counts.items()))
        status = "OK" if self.ok else f"{len(self.divergences)} DIVERGENT"
        return (f"fuzz seed={self.seed}: {self.executed}/{self.requested} "
                f"cases ({kinds}) in {self.elapsed:.1f}s — {status} "
                f"[digest {self.digest[:16]}]")


def persist_divergence(corpus_dir: Path, case: FuzzCase,
                       divergence: Divergence) -> Path:
    """Write one minimized case as a replayable corpus entry."""
    entry = corpus_dir / case.name
    entry.mkdir(parents=True, exist_ok=True)
    (entry / "program.c").write_text(case.source)
    (entry / "input.txt").write_text(case.input_text)
    if case.combine_source:
        (entry / "combine.c").write_text(case.combine_source)
    meta = {
        "kind": case.kind,
        "seed": case.seed,
        "index": case.index,
        "gpu": case.gpu,
        "check": divergence.check,
        "detail": divergence.detail,
    }
    (entry / "meta.json").write_text(json.dumps(meta, indent=2) + "\n")
    return entry


def load_corpus(corpus_dir: Path | None = None) -> list[FuzzCase]:
    """Load every persisted corpus entry as a replayable FuzzCase."""
    corpus_dir = DEFAULT_CORPUS if corpus_dir is None else Path(corpus_dir)
    cases: list[FuzzCase] = []
    if not corpus_dir.is_dir():
        return cases
    for entry in sorted(corpus_dir.iterdir()):
        meta_path = entry / "meta.json"
        if not meta_path.is_file():
            continue
        meta = json.loads(meta_path.read_text())
        combine = entry / "combine.c"
        cases.append(FuzzCase(
            kind=meta["kind"],
            seed=meta["seed"],
            index=meta["index"],
            source=(entry / "program.c").read_text(),
            input_text=(entry / "input.txt").read_text(),
            gpu=meta.get("gpu", False),
            combine_source=combine.read_text() if combine.is_file() else None,
            label=meta.get("check", ""),
        ))
    return cases


def _oracle_task(payload: tuple[int, int, tuple[str, ...]]) \
        -> tuple[FuzzCase, Divergence | None]:
    """Pool work item: generate case ``index`` and run the oracle.

    The oracle's own parallel-job configuration self-disables inside a
    pool worker (workers are leaves), so each case costs the same work
    it does serially.
    """
    seed, index, kinds = payload
    case = generate_case(seed, index, kinds=kinds)
    return case, run_case(case)


def run_campaign(
    seed: int = 0,
    count: int = 300,
    time_budget: float | None = None,
    kinds: tuple[str, ...] = KIND_SCHEDULE,
    shrink: bool = True,
    corpus_dir: Path | None = None,
    log: Callable[[str], None] | None = None,
    workers: int | None = None,
) -> CampaignResult:
    """Run ``count`` generated cases through the oracle.

    ``time_budget`` (seconds) bounds wall-clock: generation stops early
    once exceeded, recorded in ``executed``. Divergent cases are
    minimized (unless ``shrink=False``) and persisted under
    ``corpus_dir`` (default: the repo's ``tests/fuzz_corpus/``).

    ``workers`` fans cases across the persistent daemon pool (None →
    ``REPRO_WORKERS``). Results are consumed in case-index order (the
    pool reassembles its batches that way) and shrinking/persisting
    stays in the parent, so the campaign digest is identical at any
    worker count — the determinism witness covers the parallel driver
    too.
    """
    result = CampaignResult(seed=seed, requested=count)
    sha = hashlib.sha1()
    start = time.monotonic()
    nworkers = resolve_workers(workers, tasks=count)
    if nworkers > 1:
        payloads = [(seed, index, kinds) for index in range(count)]
        outcomes = get_pool().imap_job(nworkers, _oracle_task, payloads)
    else:
        outcomes = (_oracle_task((seed, index, kinds))
                    for index in range(count))
    try:
        for index, (case, divergence) in enumerate(outcomes):
            if time_budget is not None and \
                    time.monotonic() - start > time_budget:
                if log:
                    log(f"time budget {time_budget:.0f}s exhausted after "
                        f"{index} cases")
                break
            result.executed += 1
            result.kind_counts[case.kind] = \
                result.kind_counts.get(case.kind, 0) + 1
            outcome = "ok" if divergence is None else divergence.check
            for chunk in (case.name, case.source, case.input_text,
                          case.combine_source or "", outcome):
                sha.update(chunk.encode())
                sha.update(b"\x00")
            if divergence is not None:
                if log:
                    log(f"DIVERGENCE at case {case.name}: {divergence.check}")
                minimized = case
                if shrink:
                    minimized = shrink_case(case, divergence.check)
                    if log:
                        log(f"  minimized {len(case.source)} -> "
                            f"{len(minimized.source)} bytes")
                result.divergences.append((case, divergence, minimized))
                target = DEFAULT_CORPUS if corpus_dir is None \
                    else Path(corpus_dir)
                entry = persist_divergence(target, minimized, divergence)
                if log:
                    log(f"  persisted to {entry}")
            elif log and (index + 1) % 50 == 0:
                log(f"{index + 1}/{count} cases, all conforming")
    finally:
        # An early stop abandons the queued tail: the daemon pool
        # discards the stale results and its workers stay warm for the
        # next campaign.
        if hasattr(outcomes, "close"):
            outcomes.close()
    result.elapsed = time.monotonic() - start
    result.digest = sha.hexdigest()
    return result


# -- registry conformance ---------------------------------------------------


def registry_conformance(
    scale: str = "small",
    apps: Sequence[str] | None = None,
    log: Callable[[str], None] | None = None,
) -> list[Divergence]:
    """Every registry app's canonical workload through the full oracle.

    This is the fuzz tier's scenario-conformance leg: app coverage is
    enumerated from :func:`repro.scenarios.scenario_apps` (never a
    hard-coded list), each app's seeded datagen input is regenerated at
    ``scale``, and :func:`repro.fuzz.oracle.run_scenario` runs the
    engine matrix plus the reference check. Returns the divergences
    (empty means fully conforming). ``tests/test_scenarios.py``
    parametrizes the same entry point per app.
    """
    from ..scenarios.registry import scenario_apps
    from .oracle import run_scenario

    shorts = tuple(apps) if apps is not None else scenario_apps()
    divergences: list[Divergence] = []
    for short in shorts:
        divergence = run_scenario(short, scale=scale)
        if log:
            status = "ok" if divergence is None else divergence.check
            log(f"scenario {short} @ {scale}: {status}")
        if divergence is not None:
            divergences.append(divergence)
    return divergences
