"""Seeded, grammar-directed generation of type-correct mini-C programs.

Three program kinds cover the dialect:

* ``expr`` — straight-line/structured CPU programs over scalars, arrays,
  char buffers, the stdio/string.h/math.h subset, and bounded control
  flow. Differentially tested tree vs. compiled.
* ``mapper`` — directive-annotated Streaming mappers (getline/getWord
  loops emitting KV pairs), optionally paired with a matching combiner.
  Tested tree vs. compiled vs. the full GPU-simulated job under every
  lane engine. Mappers mix divergence-heavy shapes (data-dependent
  ``if``/``while`` trip counts, uneven word lengths per record) that
  force the vector engine onto its per-lane fallback paths with
  uniform-trip ``for`` accumulators that it vectorizes, so the oracle
  stresses both sides of the region-eligibility fence.
* ``combiner`` — directive-annotated sorted-KV aggregators. Tested tree
  vs. compiled, and (for integer values) against the GPU combine kernel
  under the §4.2 chunk-partial relaxation.

Every generated program terminates by construction: ``for`` loops use
literal bounds, ``while`` loops count a reserved variable down, and input
loops are EOF-bounded. Division, modulo, and shift operands are guarded
at generation time so the only runtime errors a program can raise are
deliberate (and must then be raised identically by every backend).

Generation is deterministic: ``generate_case(seed, index)`` derives an
isolated :class:`random.Random` from ``"seed/index"`` (string seeding is
hash-salt independent), so a campaign's case stream is reproducible
across processes and machines.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

#: Round-robin kind schedule; expr cases are cheap, GPU-backed kinds
#: heavier, so expr gets the larger share.
KIND_SCHEDULE = ("expr", "mapper", "expr", "combiner", "expr")

KINDS = ("expr", "mapper", "combiner")

#: Small word vocabulary for mapper/combiner keys. Includes
#: non-canonical numeric spellings ("007", "1.0", "+5") on purpose:
#: streaming key coercion must keep their text identity on every path.
_VOCAB = (
    "alpha", "beta", "gamma", "delta", "kappa", "omega",
    "map", "reduce", "key", "value", "x1", "zz",
    "007", "42", "1.0", "+5", "-3", "0",
)


@dataclass(frozen=True)
class FuzzCase:
    """One generated differential test case."""

    kind: str                       # "expr" | "mapper" | "combiner"
    seed: int
    index: int
    source: str                     # the mini-C program under test
    input_text: str                 # synthetic stdin / KV records
    gpu: bool = False               # GPU differential applies
    combine_source: str | None = None  # mapper cases: paired combiner
    label: str = ""

    @property
    def name(self) -> str:
        return f"{self.kind}-s{self.seed}-i{self.index}"


# --------------------------------------------------------------------------
# Expression / statement generation ("expr" programs)
# --------------------------------------------------------------------------


@dataclass
class _Vars:
    """Symbol table for the expr generator."""

    ints: list[str] = field(default_factory=list)
    doubles: list[str] = field(default_factory=list)
    arrays: list[tuple[str, int]] = field(default_factory=list)
    strbufs: list[tuple[str, int]] = field(default_factory=list)
    loop_vars: list[str] = field(default_factory=list)  # reserved counters
    helper: str | None = None       # name of the helper function, if any


class _ExprGen:
    """Generates one ``expr``-kind program."""

    def __init__(self, rng: random.Random):
        self.rng = rng
        self.v = _Vars()
        self._loop_depth = 0

    # -- expressions -------------------------------------------------------

    def int_atom(self) -> str:
        rng = self.rng
        choices = ["lit"]
        if self.v.ints:
            choices += ["var"] * 3
        if self.v.arrays:
            choices.append("arr")
        if self.v.strbufs:
            choices.append("strlen")
        if self.v.doubles:
            choices.append("cast")
        pick = rng.choice(choices)
        if pick == "var":
            return rng.choice(self.v.ints)
        if pick == "arr":
            name, size = rng.choice(self.v.arrays)
            return f"{name}[abs({self.int_expr(0)}) % {size}]"
        if pick == "strlen":
            name, _size = rng.choice(self.v.strbufs)
            return f"strlen({name})"
        if pick == "cast":
            return f"(int) {rng.choice(self.v.doubles)}"
        n = rng.randint(-9, 9) if rng.random() < 0.8 else rng.randint(-999, 999)
        return f"({n})" if n < 0 else str(n)

    def int_expr(self, depth: int | None = None) -> str:
        rng = self.rng
        if depth is None:
            depth = rng.randint(1, 3)
        if depth <= 0 or rng.random() < 0.3:
            return self.int_atom()
        shape = rng.choice(("bin", "bin", "bin", "un", "cmp", "cond", "call"))
        if shape == "un":
            return f"{rng.choice(('-', '!', '~'))}({self.int_expr(depth - 1)})"
        if shape == "cmp":
            op = rng.choice(("==", "!=", "<", ">", "<=", ">="))
            return f"({self.int_expr(depth - 1)} {op} {self.int_expr(depth - 1)})"
        if shape == "cond":
            return (f"({self.cond_expr(depth - 1)} ? {self.int_expr(depth - 1)}"
                    f" : {self.int_expr(depth - 1)})")
        if shape == "call" and self.v.helper:
            return (f"{self.v.helper}({self.int_expr(depth - 1)}, "
                    f"{self.int_expr(depth - 1)})")
        op = rng.choice(("+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>"))
        left = self.int_expr(depth - 1)
        right = self.int_expr(depth - 1)
        if op in ("/", "%"):
            return f"({left} {op} (({right}) ? ({right}) : 1))"
        if op in ("<<", ">>"):
            return f"({left} {op} (abs({right}) % 8))"
        return f"({left} {op} {right})"

    def cond_expr(self, depth: int = 1) -> str:
        rng = self.rng
        if rng.random() < 0.5:
            op = rng.choice(("==", "!=", "<", ">", "<=", ">="))
            return f"({self.int_expr(depth)} {op} {self.int_expr(depth)})"
        if rng.random() < 0.3:
            join = rng.choice(("&&", "||"))
            return f"({self.cond_expr(0)} {join} {self.cond_expr(0)})"
        return self.int_expr(depth)

    def double_atom(self) -> str:
        rng = self.rng
        if self.v.doubles and rng.random() < 0.6:
            return rng.choice(self.v.doubles)
        if rng.random() < 0.3:
            return f"(double) ({self.int_expr(1)})"
        lit = round(rng.uniform(-50.0, 50.0), 3)
        return f"({lit!r})" if lit < 0 else repr(lit)

    def double_expr(self, depth: int | None = None) -> str:
        rng = self.rng
        if depth is None:
            depth = rng.randint(1, 2)
        if depth <= 0 or rng.random() < 0.35:
            return self.double_atom()
        shape = rng.choice(("bin", "bin", "math"))
        if shape == "math":
            inner = self.double_expr(depth - 1)
            fn = rng.choice(
                ("sqrt(fabs(%s))", "log(fabs(%s) + 1.0)", "cos(%s)",
                 "sin(%s)", "floor(%s)", "ceil(%s)", "fabs(%s)",
                 "exp(fmin(%s, 12.0))")
            )
            return fn % inner
        op = rng.choice(("+", "-", "*", "/"))
        left = self.double_expr(depth - 1)
        right = self.double_expr(depth - 1)
        if op == "/":
            return f"({left} / (fabs({right}) + 0.5))"
        return f"({left} {op} {right})"

    # -- statements --------------------------------------------------------

    def statements(self, budget: int, depth: int) -> list[str]:
        out: list[str] = []
        while budget > 0:
            stmt, cost = self.statement(depth)
            out.extend(stmt)
            budget -= cost
        return out

    def statement(self, depth: int) -> tuple[list[str], int]:
        rng = self.rng
        choices = ["assign"] * 4 + ["print"] * 2
        if self.v.arrays:
            choices += ["arrstore"] * 2
        if self.v.strbufs:
            choices.append("strop")
        if self.v.doubles:
            choices += ["dassign"] * 2
        if depth > 0:
            choices += ["if", "if", "for", "while"]
        if self._loop_depth > 0:
            choices.append("breakish")
        pick = rng.choice(choices)
        if pick == "assign":
            name = rng.choice(self.v.ints)
            op = rng.choice(("=", "=", "=", "+=", "-=", "*=", "&=", "|=", "^="))
            return [f"{name} {op} {self.int_expr()};"], 1
        if pick == "dassign":
            name = rng.choice(self.v.doubles)
            op = rng.choice(("=", "=", "+=", "-=", "*="))
            return [f"{name} {op} {self.double_expr()};"], 1
        if pick == "arrstore":
            name, size = rng.choice(self.v.arrays)
            return [f"{name}[abs({self.int_expr(1)}) % {size}] = "
                    f"{self.int_expr()};"], 1
        if pick == "strop":
            name, size = rng.choice(self.v.strbufs)
            word = "".join(rng.choice("abcdxyz") for _ in range(rng.randint(1, 5)))
            if rng.random() < 0.5:
                return [f'strcpy({name}, "{word}");'], 1
            guard = size - len(word) - 2
            return [f"if (strlen({name}) < {guard})",
                    f'    strcat({name}, "{word}");'], 1
        if pick == "print":
            tag = rng.randint(0, 99)
            if self.v.doubles and rng.random() < 0.4:
                return [f'printf("t{tag} %f\\n", {self.double_expr(1)});'], 1
            return [f'printf("t{tag} %d\\n", {self.int_expr()});'], 1
        if pick == "breakish":
            kw = rng.choice(("break", "continue"))
            return [f"if ({self.cond_expr(0)}) {kw};"], 1
        if pick == "if":
            body = self.indent(self.statements(rng.randint(1, 3), depth - 1))
            lines = [f"if ({self.cond_expr()}) {{", *body, "}"]
            if rng.random() < 0.5:
                els = self.indent(self.statements(rng.randint(1, 2), depth - 1))
                lines += ["else {", *els, "}"]
            return lines, 2
        if pick == "for":
            return self.for_loop(depth), 3
        # while
        return self.while_loop(depth), 3

    def for_loop(self, depth: int) -> list[str]:
        rng = self.rng
        if not self.v.loop_vars:
            return [f"{rng.choice(self.v.ints)} = {self.int_expr()};"]
        var = self.v.loop_vars.pop()
        self._loop_depth += 1
        try:
            bound = rng.randint(1, 6)
            body = self.indent(self.statements(rng.randint(1, 3), depth - 1))
            return [f"for ({var} = 0; {var} < {bound}; {var}++) {{",
                    *body, "}"]
        finally:
            self._loop_depth -= 1
            self.v.loop_vars.append(var)

    def while_loop(self, depth: int) -> list[str]:
        rng = self.rng
        if not self.v.loop_vars:
            return [f"{rng.choice(self.v.ints)} = {self.int_expr()};"]
        var = self.v.loop_vars.pop()
        self._loop_depth += 1
        try:
            bound = rng.randint(1, 5)
            body = self.indent(self.statements(rng.randint(1, 2), depth - 1))
            return [f"{var} = {bound};",
                    f"while ({var} > 0) {{",
                    f"    {var} = {var} - 1;",
                    *body, "}"]
        finally:
            self._loop_depth -= 1
            self.v.loop_vars.append(var)

    @staticmethod
    def indent(lines: list[str]) -> list[str]:
        return ["    " + ln for ln in lines]

    # -- whole program -----------------------------------------------------

    def generate(self) -> tuple[str, str]:
        """Returns (source, input_text)."""
        rng = self.rng
        decls: list[str] = []
        inits: list[str] = []

        for i in range(rng.randint(2, 5)):
            name = f"v{i}"
            self.v.ints.append(name)
            decls.append(f"int {name};")
            inits.append(f"{name} = {rng.randint(-9, 9)};")
        for i in range(rng.randint(0, 2)):
            name = f"d{i}"
            self.v.doubles.append(name)
            decls.append(f"double {name};")
            inits.append(f"{name} = {round(rng.uniform(-9.0, 9.0), 2)!r};")
        for i in range(rng.randint(0, 2)):
            name, size = f"a{i}", rng.choice((4, 7, 10))
            self.v.arrays.append((name, size))
            decls.append(f"int {name}[{size}];")
        for i in range(rng.randint(0, 1)):
            name, size = f"s{i}", 48
            self.v.strbufs.append((name, size))
            decls.append(f"char {name}[{size}];")
            word = "".join(rng.choice("abcdefgh") for _ in range(rng.randint(1, 6)))
            inits.append(f'strcpy({name}, "{word}");')
        for i in range(3):
            name = f"i{i}"
            self.v.loop_vars.append(name)
            decls.append(f"int {name};")
        decls.append("int chk;")

        # Array init loops (use a loop var so it reads naturally).
        arr_init: list[str] = []
        for name, size in self.v.arrays:
            mul, add = rng.randint(1, 5), rng.randint(0, 9)
            arr_init += [
                f"for (i0 = 0; i0 < {size}; i0++) {{",
                f"    {name}[i0] = ((i0 * {mul}) + {add});",
                "}",
            ]

        helper_src = ""
        if rng.random() < 0.4:
            self.v.helper = "calc"
            saved, self.v.ints = self.v.ints, ["p0", "p1"]
            saved_arr, self.v.arrays = self.v.arrays, []
            saved_str, self.v.strbufs = self.v.strbufs, []
            saved_dbl, self.v.doubles = self.v.doubles, []
            helper_name = self.v.helper
            self.v.helper = None  # no recursion
            body_expr = self.int_expr(2)
            self.v.helper = helper_name
            self.v.ints = saved
            self.v.arrays = saved_arr
            self.v.strbufs = saved_str
            self.v.doubles = saved_dbl
            helper_src = (
                "int calc(int p0, int p1)\n{\n"
                f"    return {body_expr};\n"
                "}\n\n"
            )

        input_mode = rng.choice(("none", "none", "ints", "words"))
        input_lines: list[str] = []
        io_loop: list[str] = []
        if input_mode == "ints":
            self.v.ints.append("x")
            decls.append("int x;")
            for _ in range(rng.randint(2, 8)):
                input_lines.append(
                    " ".join(str(rng.randint(-99, 99))
                             for _ in range(rng.randint(1, 3)))
                )
            body = self.indent(self.statements(rng.randint(1, 3), 1))
            io_loop = [
                'while (scanf("%d", &x) == 1) {',
                '    printf("in %d\\n", x);',
                *body,
                "}",
            ]
        elif input_mode == "words":
            decls += ["char word[24];", "char *line;",
                      "size_t nbytes = 4096;", "int rd;", "int off;",
                      "int lp;"]
            inits.append("line = (char*) malloc(nbytes*sizeof(char));")
            for _ in range(rng.randint(2, 6)):
                input_lines.append(
                    " ".join(rng.choice(_VOCAB)
                             for _ in range(rng.randint(0, 5)))
                )
            io_loop = [
                "while ((rd = getline(&line, &nbytes, stdin)) != -1) {",
                "    off = 0;",
                "    while ((lp = getWord(line, off, word, rd, 24)) != -1) {",
                '        printf("w %s %d\\n", word, '
                f"{self._word_val_expr()});",
                "        off += lp;",
                "    }",
                "}",
            ]

        body = self.statements(rng.randint(3, 8), 2)

        epilogue: list[str] = []
        for name in self.v.ints:
            epilogue.append(f'printf("{name}=%d\\n", {name});')
        for name in self.v.doubles:
            epilogue.append(f'printf("{name}=%f\\n", {name});')
        for name, size in self.v.arrays:
            epilogue += [
                "chk = 0;",
                f"for (i0 = 0; i0 < {size}; i0++) {{",
                f"    chk = (chk + {name}[i0]);",
                "}",
                f'printf("{name}=%d\\n", chk);',
            ]
        for name, _size in self.v.strbufs:
            epilogue.append(f'printf("{name}=%s\\n", {name});')

        main_lines = (
            decls + inits + arr_init + io_loop + body + epilogue
            + ["return 0;"]
        )
        source = (
            helper_src
            + "int main()\n{\n"
            + "\n".join("    " + ln for ln in main_lines)
            + "\n}\n"
        )
        input_text = "\n".join(input_lines)
        if input_text:
            input_text += "\n"
        return source, input_text

    def _word_val_expr(self) -> str:
        saved, self.v.ints = self.v.ints, ["off", "rd"]
        saved_str, self.v.strbufs = self.v.strbufs, [("word", 24)]
        saved_arr, self.v.arrays = self.v.arrays, []
        saved_dbl, self.v.doubles = self.v.doubles, []
        try:
            return self.int_expr(2)
        finally:
            self.v.ints = saved
            self.v.strbufs = saved_str
            self.v.arrays = saved_arr
            self.v.doubles = saved_dbl


# --------------------------------------------------------------------------
# Mapper generation
# --------------------------------------------------------------------------


def _mapper_val_gen(rng: random.Random, atoms: list[str]) -> str:
    """A deterministic per-word int value expression over ``atoms``."""
    gen = _ExprGen(rng)
    gen.v.ints = list(atoms)
    return gen.int_expr(2)


def _gen_mapper(rng: random.Random) -> tuple[str, str, str | None]:
    """Returns (map_source, input_text, combine_source)."""
    string_key = rng.random() < 0.6
    keylen = rng.choice((16, 24, 30))
    kvpairs = 20
    with_table = rng.random() < 0.5
    with_helper = rng.random() < 0.3
    table_size = rng.choice((4, 8, 16))
    use_texture = with_table and rng.random() < 0.5

    decls = [
        f"char word[{keylen}];",
        "char *line;",
        "size_t nbytes = 10000;",
        "int read;",
        "int linePtr;",
        "int offset;",
        "int val;",
        "int scale;",
    ]
    pre = [
        "line = (char*) malloc(nbytes*sizeof(char));",
        f"scale = {rng.randint(1, 9)};",
    ]
    if not string_key:
        decls.append("int kv;")
    if with_table:
        decls.append(f"int table[{table_size}];")
        decls.append("int ti;")
        mul, add = rng.randint(1, 7), rng.randint(0, 9)
        pre += [
            f"for (ti = 0; ti < {table_size}; ti++) {{",
            f"    table[ti] = ((ti * {mul}) + {add});",
            "}",
        ]

    helper_src = ""
    if with_helper:
        inner = _mapper_val_gen(rng, ["p0", "p1"])
        helper_src = (
            "int calc(int p0, int p1)\n{\n"
            f"    return {inner};\n"
            "}\n\n"
        )

    atoms = ["scale", "offset", "strlen(word)"]
    if with_table:
        atoms.append(f"table[abs(strlen(word)) % {table_size}]")
    if with_helper:
        atoms.append("calc(scale, strlen(word))")
    if not string_key:
        atoms.append("kv")
    val_expr = _mapper_val_gen(rng, atoms)

    # kv must be derived from the current word BEFORE any use: reading
    # last iteration's kv is a cross-record dependence the mapper
    # contract forbids (CPU streams one process per split; GPU threads
    # each start from the host snapshot), so CPU and GPU would
    # legitimately disagree on the first word of every record.
    key_setup: list[str] = []
    emit: list[str] = []
    if string_key:
        key_clause = f"key(word) value(val) keylength({keylen})"
        emit.append('printf("%s\\t%d\\n", word, val);')
    else:
        key_clause = "key(kv) value(val)"
        key_setup = ["kv = (abs(atoi(word)) % 7);"]
        emit = ['printf("%d\\t%d\\n", kv, val);']

    clauses = f"mapper {key_clause} kvpairs({kvpairs})"
    if use_texture:
        clauses += " texture(table)"

    cond_tweak: list[str] = []
    if rng.random() < 0.5:
        cond_tweak = [
            f"if ((val % 3) == {rng.randint(0, 2)}) {{",
            f"    val = (val + {rng.randint(1, 9)});",
            "}",
        ]

    # Divergence-heavy countdown: the trip count depends on the current
    # word, so warp lanes disagree on it and the vector engine must take
    # its per-lane spine/fallback path. Terminates by construction (spin
    # starts bounded by a literal modulus and strictly decreases).
    diverge: list[str] = []
    if rng.random() < 0.4:
        decls.append("int spin;")
        cap = rng.randint(2, 6)
        diverge = [
            f"spin = (abs(val) % {cap});",
            "while (spin > 0) {",
            f"    val = (val + {rng.randint(1, 3)});",
            "    spin = (spin - 1);",
            "}",
        ]

    # Uniform-trip accumulator: a literal-bounded for over scalars, the
    # one shape the vector engine compiles to numpy ops over the lane
    # axis. Float accumulation on purpose — the engine refuses varying
    # *int* arithmetic (int64 overflow risk) but float64 ops are
    # bit-exact between numpy and the scalar interpreters. Keeps the
    # oracle honest on the vectorized side of the fence.
    vec_block: list[str] = []
    if rng.random() < 0.4:
        decls += ["double acc;", "int rr;"]
        trips = rng.choice((4, 8, 16))
        frac = rng.choice(("0.25", "0.5", "1.5"))
        vec_block = [
            "acc = 0.0;",
            f"for (rr = 0; rr < {trips}; rr++) {{",
            f"    acc = (acc + ((rr * {rng.randint(1, 5)})"
            f" * ({frac} * val)));",
            "}",
            f"val = (val + (((int) acc) % {rng.choice((97, 101, 251))}));",
        ]

    body = [
        "offset = 0;",
        f"while ((linePtr = getWord(line, offset, word, read, {keylen})) "
        "!= -1) {",
        *["    " + ln for ln in key_setup],
        f"    val = {val_expr};",
        *(["    " + ln for ln in diverge]),
        *(["    " + ln for ln in vec_block]),
        *(["    " + ln for ln in cond_tweak]),
        *(["    " + ln for ln in emit]),
        "    offset += linePtr;",
        "}",
    ]
    main_lines = (
        decls + pre
        + [f"#pragma mapreduce {clauses}",
           "while ((read = getline(&line, &nbytes, stdin)) != -1) {",
           *["    " + ln for ln in body],
           "}",
           "free(line);",
           "return 0;"]
    )
    source = (
        helper_src
        + "int main()\n{\n"
        + "\n".join("    " + ln for ln in main_lines)
        + "\n}\n"
    )

    # Uneven records: some campaigns mix near-keylength words with
    # one-char words and wildly varying word counts, so adjacent GPU
    # lanes walk getWord loops of very different lengths (maximum
    # divergence across a warp).
    uneven = rng.random() < 0.35
    lines = []
    for _ in range(rng.randint(8, 24)):
        if uneven and rng.random() < 0.5:
            words = []
            for _ in range(rng.randint(0, 12)):
                if rng.random() < 0.4:
                    words.append("".join(
                        rng.choice("qwertyuiop")
                        for _ in range(rng.randint(1, keylen - 2))))
                else:
                    words.append(rng.choice(_VOCAB))
            lines.append(" ".join(words))
        else:
            lines.append(" ".join(rng.choice(_VOCAB)
                                  for _ in range(rng.randint(0, 8))))
    input_text = "\n".join(lines) + "\n"

    combine_source = None
    if rng.random() < 0.6:
        combine_source = _combiner_source(
            rng, string_key=string_key, keylen=keylen, float_value=False
        )
    return source, input_text, combine_source


# --------------------------------------------------------------------------
# Combiner generation
# --------------------------------------------------------------------------


def _combiner_source(rng: random.Random, string_key: bool, keylen: int,
                     float_value: bool) -> str:
    """A sum-style combiner (sum is the only §4.2-safe aggregation: the
    GPU's chunk partials must add back to the CPU total)."""
    if string_key:
        header = [
            f"char word[{keylen}];",
            f"char prevWord[{keylen}];",
            "int count;",
            "int val;",
            "int read;",
            "prevWord[0] = '\\0';",
            "count = 0;",
        ]
        pragma = (
            f"#pragma mapreduce combiner key(prevWord) value(count) "
            f"keyin(word) valuein(val) keylength({keylen}) vallength(4) "
            f"firstprivate(prevWord, count)"
        )
        region = [
            "{",
            '    while ((read = scanf("%s %d", word, &val)) == 2) {',
            "        if (strcmp(word, prevWord) == 0) {",
            "            count += val;",
            "        }",
            "        else {",
            "            if (prevWord[0] != '\\0')",
            '                printf("%s\\t%d\\n", prevWord, count);',
            "            strcpy(prevWord, word);",
            "            count = val;",
            "        }",
            "    }",
            "    if (prevWord[0] != '\\0')",
            '        printf("%s\\t%d\\n", prevWord, count);',
            "}",
        ]
    else:
        vtype = "double" if float_value else "int"
        vconv = "%f" if float_value else "%d"
        vfmt = "%f" if float_value else "%d"
        header = [
            "int prevKey;",
            "int key;",
            "int read;",
            "int have;",
            f"{vtype} total;",
            f"{vtype} val;",
            "prevKey = 0;",
            "have = 0;",
            f"total = {'0.0' if float_value else '0'};",
        ]
        pragma = (
            "#pragma mapreduce combiner key(prevKey) value(total) "
            "keyin(key) valuein(val) firstprivate(prevKey, total, have)"
        )
        region = [
            "{",
            f'    while ((read = scanf("%d {vconv}", &key, &val)) == 2) {{',
            "        if (have && (key == prevKey)) {",
            "            total += val;",
            "        }",
            "        else {",
            "            if (have)",
            f'                printf("%d\\t{vfmt}\\n", prevKey, total);',
            "            prevKey = key;",
            "            total = val;",
            "            have = 1;",
            "        }",
            "    }",
            "    if (have)",
            f'        printf("%d\\t{vfmt}\\n", prevKey, total);',
            "}",
        ]
    main_lines = header + [pragma] + region + ["return 0;"]
    return (
        "int main()\n{\n"
        + "\n".join("    " + ln for ln in main_lines)
        + "\n}\n"
    )


def _gen_combiner(rng: random.Random) -> tuple[str, str, bool]:
    """Returns (source, sorted_kv_input, gpu_applicable)."""
    string_key = rng.random() < 0.5
    float_value = (not string_key) and rng.random() < 0.4
    keylen = rng.choice((16, 30))
    source = _combiner_source(rng, string_key=string_key, keylen=keylen,
                              float_value=float_value)

    if string_key:
        pool = sorted(rng.sample(_VOCAB, rng.randint(2, 6)))
    else:
        pool = sorted(rng.sample(range(-20, 99), rng.randint(2, 6)))
    lines: list[str] = []
    for key in pool:
        for _ in range(rng.randint(1, 6)):
            if float_value:
                value: object = round(rng.uniform(-20.0, 20.0), 3)
            else:
                value = rng.randint(-50, 50)
            lines.append(f"{key}\t{value}")
    input_text = "\n".join(lines)
    if input_text:
        input_text += "\n"
    # Float totals render through %f on the CPU but ride as raw floats
    # through the GPU store; only integer values compare exactly.
    return source, input_text, not float_value


# --------------------------------------------------------------------------
# Entry points
# --------------------------------------------------------------------------


def case_rng(seed: int, index: int) -> random.Random:
    """The per-case RNG; string seeding is stable across processes."""
    return random.Random(f"{seed}/{index}")


def generate_case(seed: int, index: int,
                  kinds: tuple[str, ...] = KIND_SCHEDULE) -> FuzzCase:
    """Deterministically generate the ``index``-th case of a campaign."""
    kind = kinds[index % len(kinds)]
    rng = case_rng(seed, index)
    if kind == "expr":
        source, input_text = _ExprGen(rng).generate()
        return FuzzCase(kind=kind, seed=seed, index=index, source=source,
                        input_text=input_text)
    if kind == "mapper":
        source, input_text, combine = _gen_mapper(rng)
        return FuzzCase(kind=kind, seed=seed, index=index, source=source,
                        input_text=input_text, gpu=True,
                        combine_source=combine)
    if kind == "combiner":
        source, input_text, gpu = _gen_combiner(rng)
        return FuzzCase(kind=kind, seed=seed, index=index, source=source,
                        input_text=input_text, gpu=gpu)
    raise ValueError(f"unknown fuzz kind {kind!r}")


def generate_source(seed: int, kind: str = "expr") -> str:
    """A single program source for one kind (property-test helper)."""
    index = {"expr": 0, "mapper": 1, "combiner": 3}[kind]
    return generate_case(seed, index).source
