"""Directive and clause catalogue — the machine-readable form of Table 1."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import DirectiveError


class DirectiveKind(enum.Enum):
    MAPPER = "mapper"
    COMBINER = "combiner"


class ArgKind(enum.Enum):
    NONE = "none"            # bare clause, no arguments
    VARIABLE = "variable"    # a single variable name
    VARIABLE_LIST = "vars"   # one or more variable names
    INTEGER = "integer"      # an integer literal or integer variable


@dataclass(frozen=True)
class ClauseSpec:
    """Static description of one clause from Table 1."""

    name: str
    arg_kind: ArgKind
    description: str
    optional: bool
    valid_on: frozenset[DirectiveKind] = frozenset(
        {DirectiveKind.MAPPER, DirectiveKind.COMBINER}
    )


_BOTH = frozenset({DirectiveKind.MAPPER, DirectiveKind.COMBINER})
_MAPPER = frozenset({DirectiveKind.MAPPER})
_COMBINER = frozenset({DirectiveKind.COMBINER})

#: Table 1, verbatim. ``mapper``/``combiner`` are the directive kinds
#: themselves; the rest are clauses.
CLAUSES: dict[str, ClauseSpec] = {
    spec.name: spec
    for spec in [
        ClauseSpec("key", ArgKind.VARIABLE,
                   "Variable that contains the key", optional=False),
        ClauseSpec("value", ArgKind.VARIABLE,
                   "Variable that contains the value", optional=False),
        ClauseSpec("keyin", ArgKind.VARIABLE,
                   "Variable that receives the incoming key",
                   optional=False, valid_on=_COMBINER),
        ClauseSpec("valuein", ArgKind.VARIABLE,
                   "Variable that receives the incoming value",
                   optional=False, valid_on=_COMBINER),
        ClauseSpec("keylength", ArgKind.INTEGER,
                   "Length of the emitted key", optional=False),
        ClauseSpec("vallength", ArgKind.INTEGER,
                   "Length of the emitted value", optional=False),
        ClauseSpec("firstprivate", ArgKind.VARIABLE_LIST,
                   "Variables initialized before the region", optional=False),
        ClauseSpec("sharedRO", ArgKind.VARIABLE_LIST,
                   "Read-only variables inside the region", optional=True),
        ClauseSpec("texture", ArgKind.VARIABLE_LIST,
                   "Read-only arrays placed in texture memory", optional=True),
        ClauseSpec("kvpairs", ArgKind.INTEGER,
                   "Maximum KV pairs emitted per record",
                   optional=True, valid_on=_MAPPER),
        ClauseSpec("blocks", ArgKind.INTEGER,
                   "Number of threadblocks", optional=True),
        ClauseSpec("threads", ArgKind.INTEGER,
                   "Threads per threadblock", optional=True),
    ]
}

#: keylength/vallength are required only when the key/value variable has no
#: compiler-derivable type (paper §3.1). The directive validator enforces
#: this contextually, so at parse time they are treated as optional.
_CONTEXTUALLY_OPTIONAL = frozenset(["keylength", "vallength", "firstprivate"])


@dataclass
class Directive:
    """A parsed ``#pragma mapreduce`` directive."""

    kind: DirectiveKind
    key: str | None = None
    value: str | None = None
    keyin: str | None = None
    valuein: str | None = None
    keylength: int | str | None = None
    vallength: int | str | None = None
    firstprivate: list[str] = field(default_factory=list)
    shared_ro: list[str] = field(default_factory=list)
    texture: list[str] = field(default_factory=list)
    kvpairs: int | str | None = None
    blocks: int | str | None = None
    threads: int | str | None = None
    line: int = 0

    def validate(self) -> None:
        """Structural validation (types/scope checks happen in the compiler)."""
        if self.key is None:
            raise DirectiveError(f"{self.kind.value} directive requires key(...)")
        if self.value is None:
            raise DirectiveError(f"{self.kind.value} directive requires value(...)")
        if self.kind is DirectiveKind.COMBINER:
            if self.keyin is None or self.valuein is None:
                raise DirectiveError(
                    "combiner directive requires keyin(...) and valuein(...)"
                )
            if self.kvpairs is not None:
                raise DirectiveError("kvpairs is only valid on the mapper")
        else:
            if self.keyin is not None or self.valuein is not None:
                raise DirectiveError("keyin/valuein are only valid on the combiner")
        overlap = set(self.shared_ro) & set(self.firstprivate)
        if overlap:
            raise DirectiveError(
                f"variables cannot be both sharedRO and firstprivate: {sorted(overlap)}"
            )

    @property
    def is_mapper(self) -> bool:
        return self.kind is DirectiveKind.MAPPER

    @property
    def is_combiner(self) -> bool:
        return self.kind is DirectiveKind.COMBINER
