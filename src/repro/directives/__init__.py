"""HeteroDoop directive parsing (paper §3, Table 1).

A directive is a ``#pragma mapreduce`` line attached to the statement that
follows it in the source — for a mapper, the record-iterating ``while``
loop; for a combiner, the loop or a block containing it.
"""

from .clauses import CLAUSES, ClauseSpec, Directive, DirectiveKind
from .parser import parse_directive, find_directives

__all__ = [
    "CLAUSES",
    "ClauseSpec",
    "Directive",
    "DirectiveKind",
    "parse_directive",
    "find_directives",
]
