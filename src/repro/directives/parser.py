"""Parser for ``#pragma mapreduce`` directive text."""

from __future__ import annotations

import re

from ..errors import DirectiveError
from ..minic import cast as A
from .clauses import CLAUSES, ArgKind, Directive, DirectiveKind

_CLAUSE_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(([^)]*)\))?")


def _int_or_name(text: str, clause: str) -> int | str:
    text = text.strip()
    if re.fullmatch(r"[+-]?\d+", text):
        value = int(text)
        if value <= 0:
            raise DirectiveError(f"{clause}({value}): argument must be positive")
        return value
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", text):
        return text
    raise DirectiveError(f"bad argument {text!r} for clause {clause!r}")


def _name(text: str, clause: str) -> str:
    text = text.strip()
    if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", text):
        raise DirectiveError(f"clause {clause!r} needs a variable name, got {text!r}")
    return text


def _name_list(text: str, clause: str) -> list[str]:
    names = [t.strip() for t in text.split(",") if t.strip()]
    if not names:
        raise DirectiveError(f"clause {clause!r} needs at least one variable")
    return [_name(n, clause) for n in names]


def parse_directive(text: str, line: int = 0) -> Directive:
    """Parse one logical ``#pragma mapreduce ...`` line into a Directive."""
    body = text.strip()
    if body.startswith("#pragma"):
        body = body[len("#pragma"):].strip()
    if not body.startswith("mapreduce"):
        raise DirectiveError(f"not a mapreduce pragma: {text!r}")
    body = body[len("mapreduce"):].strip()

    matches = list(_CLAUSE_RE.finditer(body))
    if not matches:
        raise DirectiveError("empty mapreduce directive")

    kind_name = matches[0].group(1)
    if matches[0].group(2) is not None:
        raise DirectiveError(f"directive kind {kind_name!r} takes no arguments")
    try:
        kind = DirectiveKind(kind_name)
    except ValueError:
        raise DirectiveError(
            f"unknown directive {kind_name!r}; expected mapper or combiner"
        ) from None

    directive = Directive(kind=kind, line=line)
    seen: set[str] = set()
    # Verify nothing but clause syntax exists between matches.
    covered = matches[0].end()
    for m in matches[1:]:
        gap = body[covered:m.start()].strip()
        if gap:
            raise DirectiveError(f"unexpected text {gap!r} in directive")
        covered = m.end()
        clause_name, arg_text = m.group(1), m.group(2)
        spec = CLAUSES.get(clause_name)
        if spec is None:
            raise DirectiveError(f"unknown clause {clause_name!r}")
        if kind not in spec.valid_on:
            raise DirectiveError(
                f"clause {clause_name!r} is not valid on a {kind.value}"
            )
        if clause_name in seen:
            raise DirectiveError(f"duplicate clause {clause_name!r}")
        seen.add(clause_name)
        if spec.arg_kind is not ArgKind.NONE and arg_text is None:
            raise DirectiveError(f"clause {clause_name!r} requires arguments")

        if clause_name == "key":
            directive.key = _name(arg_text, clause_name)
        elif clause_name == "value":
            directive.value = _name(arg_text, clause_name)
        elif clause_name == "keyin":
            directive.keyin = _name(arg_text, clause_name)
        elif clause_name == "valuein":
            directive.valuein = _name(arg_text, clause_name)
        elif clause_name == "keylength":
            directive.keylength = _int_or_name(arg_text, clause_name)
        elif clause_name == "vallength":
            directive.vallength = _int_or_name(arg_text, clause_name)
        elif clause_name == "firstprivate":
            directive.firstprivate = _name_list(arg_text, clause_name)
        elif clause_name == "sharedRO":
            directive.shared_ro = _name_list(arg_text, clause_name)
        elif clause_name == "texture":
            directive.texture = _name_list(arg_text, clause_name)
        elif clause_name == "kvpairs":
            directive.kvpairs = _int_or_name(arg_text, clause_name)
        elif clause_name == "blocks":
            directive.blocks = _int_or_name(arg_text, clause_name)
        elif clause_name == "threads":
            directive.threads = _int_or_name(arg_text, clause_name)

    tail = body[covered:].strip()
    if tail:
        raise DirectiveError(f"unexpected trailing text {tail!r} in directive")

    directive.validate()
    return directive


def find_directives(program: A.Program) -> list[tuple[Directive, A.Stmt, A.FunctionDef]]:
    """Locate every mapreduce directive in a program.

    Returns (directive, annotated statement, enclosing function) triples in
    source order. Non-mapreduce pragmas are ignored.
    """
    found: list[tuple[Directive, A.Stmt, A.FunctionDef]] = []
    for func in program.functions:
        for node in func.body.walk():
            if isinstance(node, A.Stmt) and node.pragma is not None:
                text = node.pragma.text
                if "mapreduce" not in text.split():
                    continue
                directive = parse_directive(text, line=node.pragma.line)
                found.append((directive, node, func))
    return found
