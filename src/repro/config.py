"""Hardware and cluster configurations (paper Table 3).

All sizes are in bytes, all rates in bytes per simulated second, and all
times in simulated seconds. The cost model is calibrated to reproduce the
paper's *ratios* (GPU-task vs CPU-task speedups, end-to-end speedups), not
absolute wall-clock numbers; see ``repro.costmodel.calibration``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

KB = 1024
MB = 1024 * KB
GB = 1024 * MB


@dataclass(frozen=True)
class GpuSpec:
    """Architectural parameters of a simulated GPU device.

    The defaults model a Tesla K40 (Kepler); :data:`TESLA_M2090` models the
    Fermi parts in Cluster2. Only parameters the timing model consumes are
    included.
    """

    name: str = "Tesla K40"
    num_sms: int = 15
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_blocks: int = 65535
    shared_mem_per_sm: int = 48 * KB
    global_mem: int = 12 * GB
    constant_mem: int = 64 * KB
    # Timing-model knobs (simulated cycles / costs).
    clock_ghz: float = 0.745
    issue_cycles: float = 1.0            # per warp instruction
    global_mem_cycles: float = 400.0     # per memory transaction
    shared_mem_cycles: float = 30.0      # per shared-memory access
    shared_atomic_cycles: float = 40.0   # per (serialized) shared atomic
    global_atomic_cycles: float = 500.0  # per (serialized) global atomic
    texture_hit_cycles: float = 150.0    # texture cache hit
    texture_miss_cycles: float = 400.0   # texture cache miss
    texture_hit_rate: float = 0.9
    transaction_bytes: int = 128         # coalesced transaction width
    pcie_bw: float = 6.0 * GB            # host<->device copy bandwidth (B/s)
    pcie_latency_s: float = 20e-6        # per-transfer latency

    def __post_init__(self) -> None:
        if self.warp_size <= 0 or self.num_sms <= 0:
            raise ConfigError("GPU must have positive warp size and SM count")
        if self.global_mem <= 0:
            raise ConfigError("GPU global memory must be positive")

    @property
    def cycle_time_s(self) -> float:
        """Seconds per GPU clock cycle."""
        return 1e-9 / self.clock_ghz


TESLA_K40 = GpuSpec()

# Fermi-generation part: the nominal clock is 1.3 GHz, but per-SM issue
# width, cache sizes, and DRAM throughput are roughly half of Kepler's —
# modelled as a lower effective clock plus costlier memory.
TESLA_M2090 = GpuSpec(
    name="Tesla M2090",
    num_sms=16,
    shared_mem_per_sm=48 * KB,
    global_mem=6 * GB,
    clock_ghz=0.45,
    global_mem_cycles=500.0,
    texture_hit_cycles=170.0,
    pcie_bw=4.0 * GB,
)


@dataclass(frozen=True)
class CpuSpec:
    """CPU node processor model. ``relative_speed`` scales the per-record
    costs in :mod:`repro.costmodel.cpu`; 1.0 corresponds to one Xeon
    E5-2680 core."""

    name: str = "Intel Xeon E5-2680"
    cores: int = 20
    relative_speed: float = 1.0


XEON_E5_2680 = CpuSpec()
XEON_X5560 = CpuSpec(name="Intel Xeon X5560", cores=12, relative_speed=0.8)


@dataclass(frozen=True)
class ClusterConfig:
    """A full cluster setup (paper Table 3)."""

    name: str
    num_slaves: int
    cpu: CpuSpec
    gpus_per_node: int
    gpu: GpuSpec
    ram: int
    has_disk: bool
    disk_bw: float                 # local disk bandwidth, B/s
    network_bw: float              # per-link bandwidth, B/s
    hdfs_block_size: int = 256 * MB
    hdfs_replication: int = 3
    max_map_slots_per_node: int = 20
    max_reduce_slots_per_node: int = 2
    speculative_execution: bool = False
    slowstart_maps_fraction: float = 0.20   # % maps done before reduce starts
    heartbeat_interval_s: float = 0.6
    hadoop_version: str = "Hadoop 1.2.1"
    cuda_version: str = "CUDA 6.0"

    def __post_init__(self) -> None:
        if self.num_slaves <= 0:
            raise ConfigError("cluster needs at least one slave node")
        if self.gpus_per_node < 0:
            raise ConfigError("gpus_per_node must be >= 0")
        if self.hdfs_replication < 1:
            raise ConfigError("replication factor must be >= 1")
        if not 0.0 <= self.slowstart_maps_fraction <= 1.0:
            raise ConfigError("slowstart fraction must be in [0, 1]")

    @property
    def total_map_slots(self) -> int:
        """CPU map slots across the cluster (excludes reserved GPU slots)."""
        return self.num_slaves * self.max_map_slots_per_node

    @property
    def total_gpus(self) -> int:
        return self.num_slaves * self.gpus_per_node

    def with_gpus(self, gpus_per_node: int) -> "ClusterConfig":
        """A copy with a different GPU count per node (Fig. 4b sweeps)."""
        return replace(self, gpus_per_node=gpus_per_node)

    def cpu_only(self) -> "ClusterConfig":
        """The CPU-only Hadoop baseline configuration."""
        return replace(self, gpus_per_node=0)


# Paper Table 3. Cluster2 is disk-less: input/output/temporary storage live
# in RAM, which the IO cost model treats as a very fast "disk".
CLUSTER1 = ClusterConfig(
    name="Cluster1",
    num_slaves=48,
    cpu=XEON_E5_2680,
    gpus_per_node=1,
    gpu=TESLA_K40,
    ram=256 * GB,
    has_disk=True,
    # Effective per-task HDFS streaming rate (Java stream + checksum +
    # contended spindle), not raw platter bandwidth.
    disk_bw=40 * MB,
    network_bw=6 * GB,       # FDR InfiniBand
    hdfs_replication=3,
    max_map_slots_per_node=20,
    cuda_version="CUDA 6.0",
)

CLUSTER2 = ClusterConfig(
    name="Cluster2",
    num_slaves=32,
    cpu=XEON_X5560,
    gpus_per_node=3,
    gpu=TESLA_M2090,
    ram=24 * GB,
    has_disk=False,
    disk_bw=2 * GB,          # in-memory "disk"
    network_bw=4 * GB,       # QDR InfiniBand
    hdfs_replication=1,
    max_map_slots_per_node=4,
    cuda_version="CUDA 5.5",
)


@dataclass(frozen=True)
class LaunchConfig:
    """Kernel launch geometry, settable via ``blocks``/``threads`` clauses."""

    blocks: int = 60
    threads: int = 128

    def __post_init__(self) -> None:
        if self.blocks <= 0 or self.threads <= 0:
            raise ConfigError("launch geometry must be positive")
        if self.threads % 32 != 0:
            raise ConfigError("threads per block must be a multiple of warp size")

    @property
    def total_threads(self) -> int:
        return self.blocks * self.threads


@dataclass
class OptimizationFlags:
    """Compiler/runtime optimization toggles (paper Fig. 5 and Fig. 7).

    ``baseline()`` is the straight translated code; ``all_on()`` is the full
    HeteroDoop optimizer. Individual flags drive the Fig. 7 ablations.
    """

    use_texture: bool = True
    vectorize_map: bool = True
    vectorize_combine: bool = True
    record_stealing: bool = True
    kv_aggregation: bool = True

    @classmethod
    def baseline(cls) -> "OptimizationFlags":
        return cls(False, False, False, False, False)

    @classmethod
    def all_on(cls) -> "OptimizationFlags":
        return cls()

    def but(self, **kw: bool) -> "OptimizationFlags":
        new = OptimizationFlags(
            self.use_texture,
            self.vectorize_map,
            self.vectorize_combine,
            self.record_stealing,
            self.kv_aggregation,
        )
        for key, val in kw.items():
            if not hasattr(new, key):
                raise ConfigError(f"unknown optimization flag {key!r}")
            setattr(new, key, val)
        return new
