"""IO timing: HDFS reads, local-disk writes, and shuffle transfers."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ClusterConfig
from ..errors import ConfigError


@dataclass(frozen=True)
class IoModel:
    """Byte-rate based IO model for one cluster configuration.

    Cluster2 has no disks (paper Table 3): its "disk" rate is RAM-backed
    tmpfs speed, which is what makes its IO-intensive benchmarks less
    IO-bound (paper §7.3's explanation for higher Cluster2 speedups).
    """

    disk_bw: float
    network_bw: float
    seek_latency_s: float = 1e-4
    network_latency_s: float = 5e-5

    @classmethod
    def for_cluster(cls, cluster: ClusterConfig) -> "IoModel":
        return cls(
            disk_bw=cluster.disk_bw,
            network_bw=cluster.network_bw,
            seek_latency_s=1e-4 if cluster.has_disk else 1e-5,
        )

    def _check(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ConfigError(f"negative IO size {nbytes}")

    def hdfs_read_s(self, nbytes: int, local: bool = True) -> float:
        """Read a fileSplit: local-disk rate when data-local, network hop
        otherwise (Hadoop schedules for locality, but misses happen)."""
        self._check(nbytes)
        t = self.seek_latency_s + nbytes / self.disk_bw
        if not local:
            t += self.network_latency_s + nbytes / self.network_bw
        return t

    def local_write_s(self, nbytes: int) -> float:
        """Spill map+combine output to the task-local disk."""
        self._check(nbytes)
        return self.seek_latency_s + nbytes / self.disk_bw

    def hdfs_write_s(self, nbytes: int, replication: int) -> float:
        """Write job output to HDFS: one local write + pipelined copies."""
        self._check(nbytes)
        if replication < 1:
            raise ConfigError("replication must be >= 1")
        t = self.local_write_s(nbytes)
        if replication > 1:
            t += self.network_latency_s + nbytes / self.network_bw
        return t

    def shuffle_s(self, nbytes: int) -> float:
        """Move one map output partition to its reduce task."""
        self._check(nbytes)
        return self.network_latency_s + nbytes / self.network_bw
