"""Calibration record: paper target bands and their verification.

The cost models' constants (``CPU_OPS_PER_SECOND``, GPU cycle charges,
IO rates) were tuned so the *single-task* GPU/CPU speedups land in the
bands the paper's Fig. 5 reports, with the paper's strict ordering by
compute intensity. This module records those targets and provides
:func:`verify_calibration`, used by the test suite to fail loudly if a
model change silently breaks the reproduction's shape.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CLUSTER1, ClusterConfig


@dataclass(frozen=True)
class CalibrationBand:
    """Acceptable single-task speedup range for one benchmark."""

    app: str
    paper_value: float      # read off the paper's Fig. 5
    low: float              # accepted band in this reproduction
    high: float


#: Fig. 5 targets. The paper's figure gives exact bars only for BS (47x,
#: named in the text); the rest are read off the plot. Bands are wide —
#: the reproduction promises ordering and magnitude, not bar heights.
FIG5_BANDS: tuple[CalibrationBand, ...] = (
    CalibrationBand("GR", 3.5, 1.05, 5.0),
    CalibrationBand("HS", 3.7, 2.0, 8.0),
    CalibrationBand("WC", 4.5, 3.0, 11.0),
    CalibrationBand("HR", 7.0, 4.0, 15.0),
    CalibrationBand("LR", 10.0, 7.0, 22.0),
    CalibrationBand("KM", 13.0, 9.0, 26.0),
    CalibrationBand("CL", 17.0, 12.0, 32.0),
    CalibrationBand("BS", 47.0, 25.0, 60.0),
)

#: Fig. 4a headline: geometric-mean end-to-end speedup (paper: 1.6x).
GEOMEAN_BAND = (1.15, 2.2)

#: Paper's strict Fig. 5 ordering by increasing compute intensity.
FIG5_ORDER = tuple(band.app for band in FIG5_BANDS)


def measured_speedups(cluster: ClusterConfig = CLUSTER1) -> dict[str, float]:
    """Current single-task speedups (cached functional simulation)."""
    from ..experiments.calibrate import single_task_times

    return {
        band.app: single_task_times(band.app, cluster).gpu_speedup
        for band in FIG5_BANDS
    }


def verify_calibration(cluster: ClusterConfig = CLUSTER1) -> list[str]:
    """Returns a list of violations (empty = calibrated)."""
    speedups = measured_speedups(cluster)
    problems: list[str] = []
    for band in FIG5_BANDS:
        value = speedups[band.app]
        if not band.low <= value <= band.high:
            problems.append(
                f"{band.app}: speedup {value:.2f} outside "
                f"[{band.low}, {band.high}] (paper ~{band.paper_value})"
            )
    ordered = [speedups[a] for a in FIG5_ORDER]
    if ordered != sorted(ordered):
        problems.append(f"Fig. 5 ordering broken: {speedups}")
    return problems
