"""CPU map-task timing (the Hadoop Streaming baseline path).

A CPU map task runs the *original* mini-C program over its fileSplit on
one core: read split → map filter → sort KV pairs → combine filter →
write spill. The functional work is done by the real interpreter; this
model converts its :class:`~repro.minic.interpreter.ExecCounters` into
simulated seconds on one Xeon core.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import CpuSpec
from ..minic.interpreter import ExecCounters
from .io import IoModel

#: Simulated scalar operations one Xeon core retires per second. The
#: interpreter counts *source-level* operations (each stands for several
#: machine instructions), so this is far below the GHz clock; the value is
#: calibrated so single-task GPU/CPU ratios land in the paper's Fig. 5
#: ranges (see costmodel/calibration.py).
CPU_OPS_PER_SECOND = 55e6

#: Streaming's per-KV pipe/serialization overhead (stdin/stdout framing).
STREAMING_OVERHEAD_S_PER_KV = 1.5e-7

#: Comparison cost of the CPU-side sort per element (qsort over records).
CPU_SORT_OP_FACTOR = 6.0


@dataclass
class CpuTaskTiming:
    """Per-phase seconds of one CPU map task (mirrors Fig. 6 categories)."""

    input_read: float = 0.0
    map: float = 0.0
    sort: float = 0.0
    combine: float = 0.0
    output_write: float = 0.0

    @property
    def total(self) -> float:
        return (self.input_read + self.map + self.sort + self.combine
                + self.output_write)


class CpuTaskModel:
    def __init__(self, cpu: CpuSpec, io: IoModel):
        self.cpu = cpu
        self.io = io
        self.ops_per_second = CPU_OPS_PER_SECOND * cpu.relative_speed

    def compute_s(self, counters: ExecCounters) -> float:
        """Seconds of pure computation for interpreted work on one core."""
        work = (
            counters.ops
            + 2.0 * counters.fp_ops
            + counters.loads
            + counters.stores
            + 2.0 * counters.calls
            + counters.branches
        )
        return work / self.ops_per_second

    def streaming_s(self, kv_pairs: int) -> float:
        return kv_pairs * STREAMING_OVERHEAD_S_PER_KV

    def sort_s(self, kv_pairs: int, key_length: int) -> float:
        """In-memory sort of the map output before the combiner runs."""
        if kv_pairs <= 1:
            return 0.0
        comparisons = kv_pairs * math.log2(kv_pairs)
        op_cost = CPU_SORT_OP_FACTOR * (1.0 + key_length / 16.0)
        return comparisons * op_cost / self.ops_per_second

    def task_timing(
        self,
        split_bytes: int,
        map_counters: ExecCounters,
        map_kv_pairs: int,
        key_length: int,
        combine_counters: ExecCounters | None,
        output_bytes: int,
        map_only: bool,
        replication: int,
        data_local: bool = True,
    ) -> CpuTaskTiming:
        timing = CpuTaskTiming()
        timing.input_read = self.io.hdfs_read_s(split_bytes, local=data_local)
        timing.map = self.compute_s(map_counters) + self.streaming_s(map_kv_pairs)
        timing.sort = self.sort_s(map_kv_pairs, key_length)
        if combine_counters is not None:
            timing.combine = self.compute_s(combine_counters) + \
                self.streaming_s(map_kv_pairs)
        if map_only:
            timing.output_write = self.io.hdfs_write_s(output_bytes, replication)
        else:
            timing.output_write = self.io.local_write_s(output_bytes)
        return timing
