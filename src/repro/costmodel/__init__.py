"""Cost models for CPU task execution and IO.

The GPU side is timed by the architecture simulator; the CPU side (plain
Hadoop Streaming tasks) and the IO paths (HDFS read, local-disk spill,
shuffle network) are timed by the analytical models here. Absolute
numbers are simulated seconds; only *ratios* are calibrated against the
paper (see ``calibration.py``).
"""

from .io import IoModel
from .cpu import CpuTaskModel, CpuTaskTiming

__all__ = ["IoModel", "CpuTaskModel", "CpuTaskTiming"]
