"""Locality-aware scheduling — delay-scheduling on top of GPU-first.

Stock Hadoop (and the paper's schedulers, which inherit its grant loop)
lets a node drain the FIFO queue the moment its own local queue is
empty, which at scale turns the map phase into a remote-read storm: an
unlucky heartbeat order can hand one rack's blocks to the other end of
the cluster while the blocks' owners sit a heartbeat away from asking.
Delay scheduling's observation is that waiting one beat is almost always
cheaper than a remote read.

While pending work is plentiful (more pending maps than slaves — every
node still expects local work), each heartbeat may take at most
``REMOTE_CAP_PLENTY`` non-local task; once the job drains below one task
per slave the cap lifts entirely, so the tail stays work-conserving and
stragglers get pulled from anywhere. The cap never blocks a grant
outright — a node with free slots and pending work is always offered at
least one task — so no heartbeat ordering can strand the queue.
"""

from __future__ import annotations

from .gpu_first import GpuFirstPolicy


class LocalityAwarePolicy(GpuFirstPolicy):
    """GPU-first placement + delay-scheduling grants."""

    name = "locality"
    uses_gpus = True

    #: Non-local tasks a heartbeat may take while work is plentiful.
    REMOTE_CAP_PLENTY = 1

    def remote_cap(self, pending: int, num_slaves: int) -> int | None:
        if pending > num_slaves:
            return self.REMOTE_CAP_PLENTY
        return None
