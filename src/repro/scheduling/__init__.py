"""Scheduling policies for heterogeneous CPU+GPU clusters (paper §6).

* :mod:`repro.scheduling.gpu_first` — the simplistic baseline: a new task
  goes to a GPU if one is free, otherwise to a CPU slot.
* :mod:`repro.scheduling.tail` — HeteroDoop's tail scheduling
  (Algorithm 2): near the end of the job, remaining tasks are forced onto
  GPUs so the fast devices never idle while slow CPU stragglers finish.
"""

from .gpu_first import GpuFirstPolicy
from .tail import TailPolicy, SchedulingPolicy, CpuOnlyPolicy

__all__ = ["SchedulingPolicy", "GpuFirstPolicy", "TailPolicy", "CpuOnlyPolicy"]
