"""Scheduling policies for heterogeneous CPU+GPU clusters (paper §6).

* :mod:`repro.scheduling.gpu_first` — the simplistic baseline: a new task
  goes to a GPU if one is free, otherwise to a CPU slot.
* :mod:`repro.scheduling.tail` — HeteroDoop's tail scheduling
  (Algorithm 2): near the end of the job, remaining tasks are forced onto
  GPUs so the fast devices never idle while slow CPU stragglers finish.
* :mod:`repro.scheduling.locality` — delay-scheduling grants: non-local
  tasks are rationed per heartbeat while work is plentiful.
* :mod:`repro.scheduling.fair_share` — proportional-share grants: each
  heartbeat is capped at the node's share of the pending work.

Every policy is registered in :data:`POLICIES` under its ``name``; the
CLI, the scenario registry, and the tests all resolve policies through
:func:`get_policy` so adding a policy here is the whole job.
"""

from __future__ import annotations

from ..errors import ConfigError
from .fair_share import FairSharePolicy
from .gpu_first import GpuFirstPolicy, PlacementDecision
from .locality import LocalityAwarePolicy
from .tail import TailPolicy, SchedulingPolicy, CpuOnlyPolicy

#: name → policy class, the single source of truth for "which policies
#: exist" (insertion order is the CLI/help presentation order).
POLICIES: dict[str, type] = {
    "cpu-only": CpuOnlyPolicy,
    "gpu-first": GpuFirstPolicy,
    "tail": TailPolicy,
    "locality": LocalityAwarePolicy,
    "fair-share": FairSharePolicy,
}


def policy_names() -> tuple[str, ...]:
    return tuple(POLICIES)


def get_policy(name: str) -> SchedulingPolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ConfigError(
            f"unknown policy {name!r}; known: {sorted(POLICIES)}"
        ) from None
    return cls()


__all__ = [
    "SchedulingPolicy", "PlacementDecision", "GpuFirstPolicy", "TailPolicy",
    "CpuOnlyPolicy", "LocalityAwarePolicy", "FairSharePolicy",
    "POLICIES", "policy_names", "get_policy",
]
