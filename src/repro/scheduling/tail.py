"""Tail scheduling (paper §6, Algorithm 2).

Two cooperating halves:

* **JobTracker** (``TailScheduleOnJT``): tracks the maximum GPU speedup
  reported by any TaskTracker; once the *job tail* begins — the remaining
  map count drops to what all the cluster's GPUs can finish within one
  CPU-task time (``numGPUs × maxSpeedup × numSlaves``) — it grants at
  most ``numGPUs`` tasks per TaskTracker per heartbeat, so forced-GPU
  tasks don't queue up. It also tells every TaskTracker its estimated
  share of the remaining maps (total remaining ÷ slaves).

* **TaskTracker** (``TailScheduleOnTT``): computes its *task tail*
  (``numGPUs × aveSpeedup`` — the tasks its GPUs retire in one CPU-task
  time). While the node's share of remaining maps exceeds the task tail,
  ordinary GPU-first placement runs; once the share falls to the task
  tail, every subsequent task is forced onto a GPU (Fig. 3's tasks 18–19).

Note on the paper's listing: Algorithm 2 as printed compares
``taskTail <= numMapsRemainingPerNode`` for forcing (and ``jobTail <
remaining`` for capping), which would force GPUs from the *start* of the
job and contradicts both Fig. 3 and the surrounding prose ('the load
imbalance only arises in the execution of the final tasks'). We implement
the prose/figure semantics: forcing begins when the remaining share drops
*below* the tail size.
"""

from __future__ import annotations

from typing import Protocol

from ..obs import trace as obs
from .gpu_first import GpuFirstPolicy, PlacementDecision


class SchedulingPolicy(Protocol):
    """Interface both halves of the simulator consume."""

    name: str
    uses_gpus: bool

    def tasks_to_grant(self, free_cpu_slots: int, free_gpu_slots: int,
                       remaining: int, num_gpus_per_node: int,
                       max_speedup: float, num_slaves: int) -> int: ...

    def remote_cap(self, pending: int, num_slaves: int) -> int | None: ...

    def place(self, gpu_free: bool, cpu_free: bool,
              num_gpus: int, ave_speedup: float,
              maps_remaining_per_node: float) -> PlacementDecision: ...


class TailPolicy(GpuFirstPolicy):
    """Algorithm 2 on top of GPU-first."""

    name = "tail"
    uses_gpus = True

    def tasks_to_grant(self, free_cpu_slots: int, free_gpu_slots: int,
                       remaining: int, num_gpus_per_node: int,
                       max_speedup: float, num_slaves: int) -> int:
        job_tail = num_gpus_per_node * max_speedup * num_slaves
        if remaining <= job_tail:
            rec = obs.active()
            if rec.enabled:
                rec.inc("tail.capped_grants")
                rec.gauge("tail.job_tail", job_tail)
            # scheduleNumGPUTasksAtMax: once the job tail begins, grants
            # are capped so forced tasks don't pile up behind busy devices
            # ('the JobTracker only schedules at most numGPUs tasks on a
            # TaskTracker per heartbeat once the jobTail begins', §6.2).
            # free_gpu_slots already nets out queued tasks; the CPU-slot
            # term lets the TaskTracker's fallback guard keep CPUs busy
            # when the GPU speedup is too small for queueing to pay off.
            return min(num_gpus_per_node + free_cpu_slots,
                       free_gpu_slots + free_cpu_slots, remaining)
        return super().tasks_to_grant(
            free_cpu_slots, free_gpu_slots, remaining,
            num_gpus_per_node, max_speedup, num_slaves,
        )

    #: Forcing margin: the JobTracker's remaining-per-node figure is a
    #: cluster average, while queues are node-local; forcing exactly at
    #: taskTail makes unlucky (above-average) nodes drain past one
    #: CPU-task time. A margin below 1 trades a sliver of the ideal win
    #: for never losing to GPU-first.
    FORCE_MARGIN = 0.75

    def place(self, gpu_free: bool, cpu_free: bool,
              num_gpus: int, ave_speedup: float,
              maps_remaining_per_node: float) -> PlacementDecision:
        task_tail = num_gpus * ave_speedup
        if maps_remaining_per_node <= self.FORCE_MARGIN * task_tail:
            rec = obs.active()
            if rec.enabled:
                rec.inc("tail.forced_placements")
                rec.gauge("tail.task_tail", task_tail)
            return PlacementDecision(use_gpu=True, forced=True)
        return super().place(
            gpu_free, cpu_free, num_gpus, ave_speedup, maps_remaining_per_node
        )


class CpuOnlyPolicy(GpuFirstPolicy):
    """The CPU-only Hadoop baseline (no GPU slots exist)."""

    name = "cpu-only"
    uses_gpus = False

    def place(self, gpu_free: bool, cpu_free: bool,
              num_gpus: int, ave_speedup: float,
              maps_remaining_per_node: float) -> PlacementDecision:
        return PlacementDecision(use_gpu=False)
