"""Fair-share scheduling — per-node grant caps on top of GPU-first.

Stock Hadoop fills every free slot per heartbeat, so whichever node
heartbeats first after a task wave swallows the whole queue — harmless
on homogeneous racks, but on a heterogeneous cluster the fast nodes
strip-mine the queue and the slow nodes' GPUs idle. Fair share caps each
heartbeat's grant at the node's proportional share of the pending work,
``ceil(pending / slaves)``, floored at one task so the policy stays
work-conserving: a node with free slots and pending work always gets at
least one task regardless of heartbeat order.
"""

from __future__ import annotations

from .gpu_first import GpuFirstPolicy


class FairSharePolicy(GpuFirstPolicy):
    """GPU-first placement + proportional-share grants."""

    name = "fair-share"
    uses_gpus = True

    def tasks_to_grant(self, free_cpu_slots: int, free_gpu_slots: int,
                       remaining: int, num_gpus_per_node: int,
                       max_speedup: float, num_slaves: int) -> int:
        share = max(1, -(-remaining // max(num_slaves, 1)))
        return min(share, free_cpu_slots + free_gpu_slots, remaining)
