"""GPU-first scheduling — the baseline HeteroDoop improves on (§6.1).

'Whenever a new task is issued on a node, the task is scheduled on a GPU
if such a device is free; otherwise, the CPU is chosen.' The JobTracker
side is stock Hadoop: fill every free slot per heartbeat.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class PlacementDecision:
    use_gpu: bool
    forced: bool = False   # tail scheduling may force a queued GPU placement


class GpuFirstPolicy:
    """Baseline placement: free GPU wins, else CPU."""

    name = "gpu-first"
    uses_gpus = True

    def tasks_to_grant(self, free_cpu_slots: int, free_gpu_slots: int,
                       remaining: int, num_gpus_per_node: int,
                       max_speedup: float, num_slaves: int) -> int:
        """JobTracker side: stock Hadoop grants one task per free slot."""
        return min(free_cpu_slots + free_gpu_slots, remaining)

    def remote_cap(self, pending: int, num_slaves: int) -> int | None:
        """Max non-data-local tasks granted per heartbeat, or ``None``
        for unbounded (stock Hadoop takes any task once local ones run
        out). Locality-aware policies override this."""
        return None

    def place(self, gpu_free: bool, cpu_free: bool,
              num_gpus: int, ave_speedup: float,
              maps_remaining_per_node: float) -> PlacementDecision:
        """TaskTracker side."""
        if gpu_free:
            return PlacementDecision(use_gpu=True)
        return PlacementDecision(use_gpu=False)
