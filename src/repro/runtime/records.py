"""Record location and counting (paper §5.2 "Record Handling").

Records in an input fileSplit must be pre-determined to support record
stealing: a GPU kernel scans the split once, builds the ``recordLocator``
(starting offset of every record) and counts them, before the map kernel
launches. The default record is a line of input (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import GpuSpec
from ..gpu.timing import MAX_MLP


@dataclass
class RecordLocator:
    """Result of the record-locator kernel."""

    records: list[bytes] = field(default_factory=list)
    offsets: list[int] = field(default_factory=list)
    total_bytes: int = 0
    cycles: float = 0.0

    @property
    def count(self) -> int:
        return len(self.records)

    @property
    def max_record_bytes(self) -> int:
        return max((len(r) for r in self.records), default=0)

    @property
    def skew(self) -> float:
        """max/mean record length — drives record-stealing benefit."""
        if not self.records:
            return 1.0
        mean = self.total_bytes / len(self.records)
        return self.max_record_bytes / mean if mean else 1.0


def locate_records(data: bytes, spec: GpuSpec) -> RecordLocator:
    """Scan the split, splitting on newlines. A trailing unterminated line
    still forms a record (Hadoop's LineRecordReader behaviour)."""
    records: list[bytes] = []
    offsets: list[int] = []
    start = 0
    n = len(data)
    while start < n:
        end = data.find(b"\n", start)
        if end == -1:
            end = n
        if end > start:  # skip empty lines, as getline-driven maps do
            records.append(data[start:end])
            offsets.append(start)
        start = end + 1
    # One coalesced pass over the split + one atomic per record found.
    txns = max(1.0, n / spec.transaction_bytes)
    parallel = spec.num_sms * MAX_MLP
    cycles = (txns * spec.global_mem_cycles) / parallel \
        + len(records) * spec.global_atomic_cycles / parallel
    return RecordLocator(
        records=records, offsets=offsets, total_bytes=n, cycles=cycles
    )
