"""Hadoop-compatible binary output format (paper §5.2 "File Handling").

The map+combine output is written to the local disk in a
SequenceFile-style container: a magic header, length-prefixed key/value
records, periodic sync markers, and a CRC32 checksum trailer — enough
structure to exercise the paper's 'formatting the generated GPU output in
Hadoop binary format, calculating the checksum' output-write path
(Fig. 6) and to round-trip through the shuffle.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from ..errors import ReproError

MAGIC = b"SEQ\x06repro"
SYNC_INTERVAL = 2000  # records between sync markers
_SYNC = b"\xfe\xed\xfa\xce" * 4


class SeqFileError(ReproError):
    pass


def _encode_datum(value: Any) -> bytes:
    if isinstance(value, bytes):
        return b"B" + value
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bool):
        return b"I" + struct.pack("<q", int(value))
    if isinstance(value, int):
        return b"I" + struct.pack("<q", value)
    if isinstance(value, float):
        return b"F" + struct.pack("<d", value)
    raise SeqFileError(f"cannot serialize {type(value).__name__}")


def _decode_datum(raw: bytes) -> Any:
    tag, body = raw[:1], raw[1:]
    if tag == b"B":
        return body
    if tag == b"S":
        return body.decode("utf-8")
    if tag == b"I":
        return struct.unpack("<q", body)[0]
    if tag == b"F":
        return struct.unpack("<d", body)[0]
    raise SeqFileError(f"bad datum tag {tag!r}")


class SequenceFileWriter:
    """Serializes KV pairs into an in-memory SequenceFile image."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = [MAGIC]
        self._count = 0
        self._crc = zlib.crc32(MAGIC)

    def append(self, key: Any, value: Any) -> None:
        k = _encode_datum(key)
        v = _encode_datum(value)
        record = struct.pack("<II", len(k), len(v)) + k + v
        if self._count and self._count % SYNC_INTERVAL == 0:
            self._chunks.append(_SYNC)
            self._crc = zlib.crc32(_SYNC, self._crc)
        self._chunks.append(record)
        self._crc = zlib.crc32(record, self._crc)
        self._count += 1

    def extend(self, pairs) -> None:
        for key, value in pairs:
            self.append(key, value)

    def finish(self) -> bytes:
        trailer = struct.pack("<II", 0xFFFFFFFF, self._crc & 0xFFFFFFFF)
        return b"".join(self._chunks) + trailer

    @property
    def count(self) -> int:
        return self._count


class SequenceFileReader:
    """Reads a SequenceFile image, verifying the checksum trailer."""

    def __init__(self, data: bytes):
        if not data.startswith(MAGIC):
            raise SeqFileError("bad magic: not a SequenceFile image")
        if len(data) < len(MAGIC) + 8:
            raise SeqFileError("truncated SequenceFile")
        marker, crc = struct.unpack("<II", data[-8:])
        if marker != 0xFFFFFFFF:
            raise SeqFileError("missing trailer marker")
        body = data[:-8]
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            raise SeqFileError("checksum mismatch: corrupted SequenceFile")
        self._body = body
        self._pos = len(MAGIC)

    def __iter__(self) -> Iterator[tuple[Any, Any]]:
        pos = len(MAGIC)
        body = self._body
        while pos < len(body):
            if body[pos : pos + len(_SYNC)] == _SYNC:
                pos += len(_SYNC)
                continue
            if pos + 8 > len(body):
                raise SeqFileError("truncated record header")
            klen, vlen = struct.unpack_from("<II", body, pos)
            pos += 8
            if pos + klen + vlen > len(body):
                raise SeqFileError("truncated record body")
            key = _decode_datum(body[pos : pos + klen])
            pos += klen
            value = _decode_datum(body[pos : pos + vlen])
            pos += vlen
            yield key, value

    def read_all(self) -> list[tuple[Any, Any]]:
        return list(self)
