"""The per-node GPU driver (paper §5.1 "Hadoop Integration and Fault
Tolerance").

TaskTrackers keep one slot reserved per GPU; tasks issued to those slots
are handed to this driver, which runs one logical thread per device and
guarantees a single task per GPU at a time. Failures are contained: a
task failure is reported back (so Hadoop reschedules it), the device is
revived, and the driver thread restarts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import GpuError, ReproError, TaskFailure
from ..gpu.device import GpuDevice


@dataclass
class DriverThreadState:
    """Bookkeeping for one device's driver thread."""

    device: GpuDevice
    tasks_completed: int = 0
    failures: int = 0
    restarts: int = 0
    busy: bool = False
    log: list[str] = field(default_factory=list)


@dataclass
class TaskCompletion:
    """What the driver reports to the TaskTracker on completion
    ('execution time, task log, etc.')."""

    task_id: str
    device_id: int
    seconds: float
    succeeded: bool
    result: Any = None
    error: str | None = None


class GpuDriver:
    """Runs GPU tasks on a node's devices, one at a time per device."""

    def __init__(self, devices: list[GpuDevice]):
        if not devices:
            raise GpuError("GPU driver needs at least one device")
        self.threads = {d.device_id: DriverThreadState(device=d) for d in devices}
        self.completions: list[TaskCompletion] = []

    @property
    def num_gpus(self) -> int:
        return len(self.threads)

    def free_devices(self) -> list[int]:
        return [i for i, t in self.threads.items() if not t.busy]

    def run_task(
        self,
        task_id: str,
        work: Callable[[GpuDevice], Any],
        device_id: int | None = None,
        seconds_of: Callable[[Any], float] = lambda r: getattr(r, "seconds", 0.0),
    ) -> TaskCompletion:
        """Execute ``work(device)`` on a free device.

        Library failures (:class:`ReproError`) are contained per §5.1:
        the completion records the error, the device is revived so future
        tasks can be issued to it, and the driver thread restarts. The
        TaskTracker sees ``succeeded=False`` and lets Hadoop reschedule.
        """
        if device_id is None:
            free = self.free_devices()
            if not free:
                raise GpuError("all GPUs busy: driver admits one task per GPU")
            device_id = free[0]
        state = self.threads.get(device_id)
        if state is None:
            raise GpuError(f"no such device {device_id}")
        if state.busy:
            raise GpuError(
                f"device {device_id} already running a task; the driver "
                "assures that only a single task runs on the GPU at a time"
            )
        state.busy = True
        try:
            result = work(state.device)
        except ReproError as exc:
            state.failures += 1
            state.device.reset()       # revive the failed GPU
            state.restarts += 1        # restart the driver thread
            state.log.append(f"{task_id}: FAILED ({exc})")
            completion = TaskCompletion(
                task_id=task_id,
                device_id=device_id,
                seconds=0.0,
                succeeded=False,
                error=str(exc),
            )
            self.completions.append(completion)
            return completion
        finally:
            state.busy = False
        state.tasks_completed += 1
        state.log.append(f"{task_id}: OK")
        completion = TaskCompletion(
            task_id=task_id,
            device_id=device_id,
            seconds=seconds_of(result),
            succeeded=True,
            result=result,
        )
        self.completions.append(completion)
        return completion
