"""The GPU task pipeline (paper Fig. 1) with a Fig. 6 time breakdown.

One GPU task processes one fileSplit end to end:

  copy input → count records → allocate storage → map kernel →
  aggregate KV pairs → sort each partition → combine kernel →
  write output (SequenceFile to local disk, or HDFS if map-only) → free.

Every stage runs functionally (real records in, real KV pairs out) and is
charged simulated time; the per-stage seconds are exactly the categories
of the paper's Fig. 6 breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..compiler import TranslationResult
from ..config import OptimizationFlags
from ..errors import GpuError, GpuOutOfMemory
from ..gpu.device import GpuDevice
from ..gpu.executor import (
    CombineLaunchResult,
    MapLaunchResult,
    run_combine_kernel,
    run_map_kernel,
)
from ..gpu.scan import reindex_cycles, scan_cycles
from ..gpu.sort import sort_partition
from ..kvstore import GlobalKVStore, KVPair, Partitioner
from ..kvstore.aggregation import aggregate, scattered_partitions
from ..kvstore.coerce import coerce_pair
from ..costmodel.io import IoModel
from ..minic.interpreter import Interpreter
from ..obs import trace as obs
from .records import locate_records
from .seqfile import SequenceFileWriter

#: Host-side formatting + CRC cost per output byte (the 'calculating the
#: checksum' part of the Fig. 6 output-write bar).
_FORMAT_S_PER_BYTE = 8.0e-9

#: Fixed per-task driver cost: task hand-off, kernel launches, stream
#: setup/teardown (several cudaLaunch/cudaMalloc round-trips).
_TASK_OVERHEAD_S = 2.5e-4

#: Upper bound on KV-store slots when the kvpairs clause is absent and the
#: host grabs "all free GPU memory" (paper §3.2). The *cost* model still
#: uses the true byte figure; this only caps Python-side bookkeeping.
_DEFAULT_STORE_FRACTION = 0.9


@dataclass
class GpuTaskBreakdown:
    """Seconds per pipeline stage (Fig. 6 categories)."""

    input_read: float = 0.0
    record_count: float = 0.0
    map: float = 0.0
    aggregate: float = 0.0
    sort: float = 0.0
    combine: float = 0.0
    output_write: float = 0.0

    @property
    def total(self) -> float:
        return (
            self.input_read + self.record_count + self.map + self.aggregate
            + self.sort + self.combine + self.output_write
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "input_read": self.input_read,
            "record_count": self.record_count,
            "map": self.map,
            "aggregate": self.aggregate,
            "sort": self.sort,
            "combine": self.combine,
            "output_write": self.output_write,
        }


@dataclass
class GpuTaskResult:
    """Functional output + timing of one GPU task."""

    partition_output: dict[int, list[tuple[Any, Any]]] = field(default_factory=dict)
    breakdown: GpuTaskBreakdown = field(default_factory=GpuTaskBreakdown)
    map_launch: MapLaunchResult | None = None
    records: int = 0
    emitted_pairs: int = 0
    output_pairs: int = 0
    output_bytes: int = 0
    seqfiles: dict[int, bytes] = field(default_factory=dict)

    @property
    def seconds(self) -> float:
        return self.breakdown.total

    def all_output(self) -> list[tuple[Any, Any]]:
        out: list[tuple[Any, Any]] = []
        for part in sorted(self.partition_output):
            out.extend(self.partition_output[part])
        return out

    def rendered_runs(self) -> dict[int, list]:
        """Per-partition shuffle runs: streaming-sorted, decorated, and
        rendered ``(key, value, line)`` triples.

        This is the form the reduce-side merge consumes. Encoding and
        sort-key computation happen here — once per pair, in whatever
        process ran the task — instead of in the driver's fold (pool
        workers ship these runs in their envelopes; the driver used to
        re-encode every pair). The GPU sort ordered pairs byte-wise
        before type coercion, so the decorate-sort also restores
        streaming key order for coerced numerics.
        """
        # Local import: hadoop.local imports this module at top level.
        from ..hadoop.shuffle import decorate_kv_run
        from ..kvstore.coerce import kv_line

        return {
            part: decorate_kv_run([(k, v, kv_line(k, v)) for k, v in kvs])
            for part, kvs in self.partition_output.items()
        }


class GpuTaskRunner:
    """Executes GPU map(+combine) tasks for one translated application.

    Parameters
    ----------
    map_translation:
        Translation of the map program (must contain a mapper kernel).
    combine_translation:
        Translation of the combine program, or None for apps without a
        combiner (paper Table 2: KM, CL, BS have none).
    device:
        The simulated GPU that runs the kernels.
    io:
        IO model of the hosting cluster.
    num_reducers:
        Reduce-task count (partition count). 0 means a map-only job whose
        output goes straight to HDFS.
    replication:
        HDFS replication factor (charged on map-only output writes).
    min_gpu_mem:
        Application working-set floor; allocation fails if the device is
        smaller (this is what excludes KM from Cluster2 in Fig. 4b).
    engine:
        GPU lane engine name (``"compiled"``/``"tree"``), or None for the
        process default (:func:`repro.gpu.engine.default_gpu_engine`).
    """

    def __init__(
        self,
        map_translation: TranslationResult,
        combine_translation: TranslationResult | None,
        device: GpuDevice,
        io: IoModel,
        num_reducers: int,
        replication: int = 3,
        min_gpu_mem: int = 0,
        engine: str | None = None,
    ):
        if map_translation.map_kernel is None:
            raise GpuError("map translation lacks a mapper kernel")
        if combine_translation is not None and \
                combine_translation.combine_kernel is None:
            raise GpuError("combine translation lacks a combiner kernel")
        self.map_tr = map_translation
        self.combine_tr = combine_translation
        self.device = device
        self.io = io
        self.num_reducers = num_reducers
        self.replication = replication
        self.min_gpu_mem = min_gpu_mem
        self.engine = engine
        self.map_only = num_reducers == 0
        self._map_snapshot: dict[str, Any] | None = None
        self._combine_snapshot: dict[str, Any] | None = None

    # -- host snapshots --------------------------------------------------------

    def _snapshot_for(self, translation: TranslationResult, kernel_attr: str) \
            -> dict[str, Any]:
        # Snapshots are memoized on the TranslationResult itself, so the
        # N GpuTaskRunner instances a job may create (one per map task)
        # share one host pre-region run. Safe to share: the executor
        # clones every buffer it materializes from a snapshot and copies
        # scalars by value (build_thread_env / prepare_shared_ro).
        cache = translation.__dict__.get("_snapshots")
        if cache is None:
            cache = {}
            setattr(translation, "_snapshots", cache)
        snap = cache.get(kernel_attr)
        if snap is None:
            kernel = getattr(translation, kernel_attr)
            if kernel.original_region is None:
                raise GpuError("kernel has no original region to snapshot")
            interp = Interpreter(translation.program, stdin="")
            snap = interp.run_until_region(kernel.original_region)
            cache[kernel_attr] = snap
        return snap

    def map_snapshot(self) -> dict[str, Any]:
        if self._map_snapshot is None:
            self._map_snapshot = self._snapshot_for(self.map_tr, "map_kernel")
        return self._map_snapshot

    def combine_snapshot(self) -> dict[str, Any]:
        if self._combine_snapshot is None:
            assert self.combine_tr is not None
            self._combine_snapshot = self._snapshot_for(
                self.combine_tr, "combine_kernel"
            )
        return self._combine_snapshot

    # -- pipeline -------------------------------------------------------------

    def run(self, split: bytes, data_local: bool = True,
            task_index: int | None = None) -> GpuTaskResult:
        """Run one split. ``task_index`` names the task in trace spans
        (defaults to this process's running ``gpu.tasks`` count; pool
        workers pass the job-wide index so spliced parent traces number
        tasks the way the serial run does)."""
        kernel = self.map_tr.map_kernel
        assert kernel is not None
        device = self.device
        spec = device.spec
        result = GpuTaskResult()
        bd = result.breakdown

        if self.min_gpu_mem > spec.global_mem:
            raise GpuOutOfMemory(self.min_gpu_mem, spec.global_mem)
        bd.record_count += _TASK_OVERHEAD_S  # driver + launch overheads

        # 1. Copy the fileSplit from HDFS into GPU memory.
        input_alloc = device.memory.malloc(len(split), "fileSplit")
        bd.input_read = self.io.hdfs_read_s(len(split), local=data_local) \
            + device.transfer_time(len(split))

        try:
            # 2. Record locator/counter kernel.
            locator = locate_records(split, spec)
            result.records = locator.count
            bd.record_count = device.cycles_to_seconds(locator.cycles)

            # 3. Allocate the global KV store.
            total_threads = kernel.launch.total_threads
            slot = kernel.kv_slot_bytes
            if kernel.kvpairs_per_record is not None:
                # storesPerThread must cover each thread's (possibly stolen)
                # record share: kvpairs × the per-thread record quota, with
                # 2× headroom for stealing imbalance.
                records_per_block = -(-locator.count // kernel.launch.blocks)
                per_thread_records = max(
                    1, -(-records_per_block // kernel.launch.threads)
                )
                stores_per_thread = (
                    kernel.kvpairs_per_record * per_thread_records * 2
                )
                capacity = stores_per_thread * total_threads
            else:
                capacity = int(
                    device.memory.free * _DEFAULT_STORE_FRACTION
                ) // max(slot, 1)
                capacity = max(capacity, total_threads)
            store_alloc = device.memory.malloc(capacity * slot, "globalKVStore")
            store = GlobalKVStore(
                total_threads=total_threads,
                capacity_pairs=capacity,
                key_length=kernel.key_length,
                value_length=kernel.value_length,
            )
            partitions = max(self.num_reducers, 1)
            partitioner = Partitioner(partitions)

            # 4. Map kernel.
            map_launch = run_map_kernel(
                device, kernel, locator.records, self.map_snapshot(),
                store, partitioner, engine=self.engine,
            )
            result.map_launch = map_launch
            result.emitted_pairs = store.emitted_pairs
            bd.map = map_launch.cost.seconds

            # 5. Aggregate KV pairs (scan + reindex) — or skip (Fig. 7e).
            if kernel.opt.kv_aggregation:
                agg = aggregate(store, partitions)
                agg_cycles = scan_cycles(agg.scan_elements, spec) \
                    + reindex_cycles(agg.pairs_moved, spec)
                bd.aggregate = device.cycles_to_seconds(agg_cycles)
            else:
                agg = scattered_partitions(store, partitions)
                bd.aggregate = 0.0

            # 6. Sort each partition on the GPU (indirection merge sort).
            sorted_partitions: dict[int, list[KVPair]] = {}
            for part in range(partitions):
                pairs = agg.partition_list(part)
                if not pairs and agg.span_after == agg.span_before == 0:
                    continue
                if kernel.opt.kv_aggregation:
                    span = len(pairs)
                else:
                    # Unaggregated: the indirection sort walks whitespace
                    # interleaved with live pairs. Fully empty per-thread
                    # regions are skipped at block granularity, so the
                    # traversal penalty is bounded (calibrated to Fig. 7e's
                    # ≤7.6× sort-kernel effect).
                    span = min(
                        max(len(pairs), agg.span_before // partitions),
                        max(len(pairs), 1) * 8,
                    )
                sr = sort_partition(pairs, span, kernel.key_length, spec)
                sorted_partitions[part] = sr.pairs
                bd.sort += sr.seconds

            # 7. Combine kernel per partition. Leaving the device, pairs
            # cross the textual streaming wire — the same coercion the
            # CPU path applies when parsing filter stdout, so a word key
            # like "42" types identically on both paths.
            output: dict[int, list[tuple[Any, Any]]] = {}
            if self.combine_tr is not None:
                ck = self.combine_tr.combine_kernel
                assert ck is not None
                snapshot = self.combine_snapshot()
                for part, pairs in sorted_partitions.items():
                    launch = run_combine_kernel(device, ck, pairs, snapshot,
                                                engine=self.engine)
                    output[part] = [coerce_pair(k, v)
                                    for k, v in launch.output]
                    bd.combine += launch.cost.seconds
            else:
                for part, pairs in sorted_partitions.items():
                    output[part] = [coerce_pair(p.key, p.value)
                                    for p in pairs]
            result.partition_output = output
            result.output_pairs = sum(len(v) for v in output.values())

            # 8. Write the output (SequenceFile + checksum).
            total_bytes = 0
            for part, pairs in output.items():
                writer = SequenceFileWriter()
                writer.extend(pairs)
                image = writer.finish()
                result.seqfiles[part] = image
                total_bytes += len(image)
            result.output_bytes = total_bytes
            copy_back = device.transfer_time(total_bytes)
            format_s = total_bytes * _FORMAT_S_PER_BYTE
            if self.map_only:
                io_s = self.io.hdfs_write_s(total_bytes, self.replication)
            else:
                io_s = self.io.local_write_s(total_bytes)
            bd.output_write = copy_back + format_s + io_s

            device.memory.free_(store_alloc)
        finally:
            # 9. Free device memory.
            device.memory.free_(input_alloc)

        rec = obs.active()
        if rec.enabled:
            self._record_task_trace(rec, result, task_index)

        return result

    def run_many(self, splits: list[bytes], workers: int | None = None,
                 data_local: bool = True) -> list[GpuTaskResult]:
        """Run several splits, optionally fanned across pool workers.

        Results come back in split order with per-task timing identical
        to a serial loop (the simulated device is stateless across
        tasks: every allocation is freed before the next task starts, so
        a fresh per-worker device charges the same seconds as a shared
        one). ``workers=None`` resolves via ``REPRO_WORKERS``.
        """
        from ..parallel.maptask import run_gpu_tasks

        return run_gpu_tasks(self, splits, workers=workers,
                             data_local=data_local)

    def _record_task_trace(self, rec: obs.TraceRecorder,
                           result: GpuTaskResult,
                           task_index: int | None = None) -> None:
        """One task span with a phase child per Fig. 6 category.

        Spans live on the simulated-seconds cursor of the device's
        ``tasks`` lane; the phase children tile the task span exactly,
        so per-task phase sums equal ``result.seconds`` by construction
        (the span-invariant the trace tests assert, and the substrate
        the Fig. 6 breakdown is derived from).
        """
        pid = f"gpu:{self.device.spec.name}"
        tid = "tasks"
        kernel = self.map_tr.map_kernel
        assert kernel is not None
        index = task_index if task_index is not None \
            else int(rec.metrics.count("gpu.tasks"))
        task = rec.begin(
            f"gpu-task#{index} {kernel.name}", "gpu-task",
            pid, tid,
            args={
                "records": result.records,
                "emitted_pairs": result.emitted_pairs,
                "output_pairs": result.output_pairs,
                "output_bytes": result.output_bytes,
            },
        )
        for phase, seconds in result.breakdown.as_dict().items():
            rec.complete(phase, "phase", pid, tid, seconds)
        rec.end(task)
        rec.inc("gpu.tasks")
        rec.inc("gpu.records", result.records)
        rec.inc("gpu.emitted_pairs", result.emitted_pairs)
