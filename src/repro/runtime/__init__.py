"""HeteroDoop runtime system (paper §5).

* :mod:`repro.runtime.records` — record locator/counter kernel and
  ``getRecord`` support,
* :mod:`repro.runtime.seqfile` — the Hadoop-compatible binary output
  format (SequenceFile) with checksums,
* :mod:`repro.runtime.gpu_task` — the full GPU task pipeline of Fig. 1,
  producing the Fig. 6 per-phase breakdown,
* :mod:`repro.runtime.gpu_driver` — the per-node GPU driver that fetches
  tasks from the TaskTracker, serializes kernel launches per device, and
  survives task/thread failures (§5.1).
"""

from .records import RecordLocator, locate_records
from .seqfile import SequenceFileReader, SequenceFileWriter
from .gpu_task import GpuTaskBreakdown, GpuTaskResult, GpuTaskRunner
from .gpu_driver import GpuDriver

__all__ = [
    "RecordLocator",
    "locate_records",
    "SequenceFileReader",
    "SequenceFileWriter",
    "GpuTaskBreakdown",
    "GpuTaskResult",
    "GpuTaskRunner",
    "GpuDriver",
]
