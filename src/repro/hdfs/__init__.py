"""Simulated Hadoop Distributed File System (paper §2.2).

Files are stored as fixed-size blocks (fileSplits), each replicated on
``replication`` datanodes. The namenode answers placement and locality
queries; the JobTracker uses them for data-local map scheduling, and the
IO model charges network reads for locality misses.
"""

from .filesystem import Hdfs, HdfsFile, Block

__all__ = ["Hdfs", "HdfsFile", "Block"]
