"""Namenode + block placement.

The simulation stores block *metadata* always, and block *contents* only
when the caller supplies real bytes (single-node functional runs). For
cluster-scale scheduling experiments only sizes and placements matter.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..errors import HdfsError


@dataclass
class Block:
    """One fileSplit: metadata plus (optionally) its bytes."""

    block_id: int
    file_name: str
    index: int                      # position within the file
    size: int
    replicas: tuple[int, ...]       # datanode (slave) ids
    data: bytes | None = None

    def is_local_to(self, node: int) -> bool:
        return node in self.replicas


@dataclass
class HdfsFile:
    name: str
    blocks: list[Block] = field(default_factory=list)

    @property
    def size(self) -> int:
        return sum(b.size for b in self.blocks)


class Hdfs:
    """A namenode over ``num_nodes`` datanodes."""

    def __init__(self, num_nodes: int, block_size: int, replication: int,
                 seed: int = 0):
        if num_nodes < 1:
            raise HdfsError("HDFS needs at least one datanode")
        if replication < 1:
            raise HdfsError("replication must be >= 1")
        if replication > num_nodes:
            replication = num_nodes  # Hadoop clamps to cluster size
        if block_size <= 0:
            raise HdfsError("block size must be positive")
        self.num_nodes = num_nodes
        self.block_size = block_size
        self.replication = replication
        self._rng = random.Random(seed)
        self._files: dict[str, HdfsFile] = {}
        self._next_block = 0

    # -- writes ----------------------------------------------------------------

    #: Node count above which placement switches from shuffling the full
    #: node list (O(nodes) per block — fine for the paper's 48-node
    #: clusters, ruinous at 1000+ where it dominated sweep setup in
    #: profiles) to ``Random.sample`` (O(replication)). Both draw
    #: uniformly over distinct nodes; they just consume the seeded RNG
    #: differently, and the committed golden traces pin the small-cluster
    #: stream byte-for-byte, so the shuffle path stays for those sizes.
    SAMPLE_PLACEMENT_NODES = 256

    def _place_replicas(self) -> tuple[int, ...]:
        """First replica on a random node, the rest on distinct others
        (Hadoop's rack policy simplified to distinct nodes)."""
        if self.num_nodes > self.SAMPLE_PLACEMENT_NODES:
            return tuple(self._rng.sample(range(self.num_nodes),
                                          self.replication))
        nodes = list(range(self.num_nodes))
        self._rng.shuffle(nodes)
        return tuple(nodes[: self.replication])

    def put(self, name: str, data: bytes) -> HdfsFile:
        """Store real bytes, split into blocks."""
        if name in self._files:
            raise HdfsError(f"file exists: {name}")
        f = HdfsFile(name=name)
        for index, start in enumerate(range(0, max(len(data), 1), self.block_size)):
            chunk = data[start : start + self.block_size]
            f.blocks.append(
                Block(
                    block_id=self._next_block,
                    file_name=name,
                    index=index,
                    size=len(chunk),
                    replicas=self._place_replicas(),
                    data=chunk,
                )
            )
            self._next_block += 1
        self._files[name] = f
        return f

    def put_virtual(self, name: str, num_blocks: int,
                    block_bytes: int | None = None) -> HdfsFile:
        """Register a file by metadata only (cluster-scale experiments:
        Table 2's 7632-split inputs are not materialized)."""
        if name in self._files:
            raise HdfsError(f"file exists: {name}")
        if num_blocks < 1:
            raise HdfsError("need at least one block")
        size = block_bytes if block_bytes is not None else self.block_size
        f = HdfsFile(name=name)
        for index in range(num_blocks):
            f.blocks.append(
                Block(
                    block_id=self._next_block,
                    file_name=name,
                    index=index,
                    size=size,
                    replicas=self._place_replicas(),
                )
            )
            self._next_block += 1
        self._files[name] = f
        return f

    # -- reads -----------------------------------------------------------------

    def get_file(self, name: str) -> HdfsFile:
        try:
            return self._files[name]
        except KeyError:
            raise HdfsError(f"no such file: {name}") from None

    def exists(self, name: str) -> bool:
        return name in self._files

    def read(self, name: str) -> bytes:
        f = self.get_file(name)
        parts: list[bytes] = []
        for b in f.blocks:
            if b.data is None:
                raise HdfsError(
                    f"block {b.block_id} of {name} is virtual (metadata only)"
                )
            parts.append(b.data)
        return b"".join(parts)

    def locations(self, name: str, index: int) -> tuple[int, ...]:
        f = self.get_file(name)
        if not 0 <= index < len(f.blocks):
            raise HdfsError(f"{name} has no block {index}")
        return f.blocks[index].replicas

    def delete(self, name: str) -> None:
        if name not in self._files:
            raise HdfsError(f"no such file: {name}")
        del self._files[name]

    def ls(self) -> list[str]:
        return sorted(self._files)

    def blocks_on(self, node: int) -> list[Block]:
        """All block replicas hosted by one datanode."""
        out = []
        for f in self._files.values():
            out.extend(b for b in f.blocks if node in b.replicas)
        return out
