"""Modelled C standard library for mini-C execution.

Provides stdio (``getline``/``scanf``/``printf``), string.h, stdlib.h, and
math.h, plus the ``getWord`` helper the paper's Wordcount listing uses.
Builtins receive the interpreter so they can touch its IO streams and
instrumentation counters.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, TYPE_CHECKING

from ..errors import CRuntimeError
from . import ctypes as T
from .values import NULL, Buffer, Ptr, ScalarRef

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Interpreter


class InputStream:
    """Cursor over the program's standard input text.

    Supports both line-oriented reads (``getline``) and token-oriented
    reads (``scanf``), which may be interleaved like real stdio.
    """

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    @property
    def at_eof(self) -> bool:
        return self.pos >= len(self.text)

    def read_line(self) -> str | None:
        """Read up to and including the next newline; None at EOF."""
        if self.at_eof:
            return None
        end = self.text.find("\n", self.pos)
        if end == -1:
            line = self.text[self.pos :]
            self.pos = len(self.text)
            return line
        line = self.text[self.pos : end + 1]
        self.pos = end + 1
        return line

    _WS_RE = re.compile(r"[ \t\r\n]*")
    _TOKEN_RE = re.compile(r"[ \t\r\n]*([^ \t\r\n]*)")
    _INT_RE = re.compile(r"[+-]?\d+")
    _FLOAT_RE = re.compile(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")

    def skip_space(self) -> None:
        self.pos = self._WS_RE.match(self.text, self.pos).end()

    def read_token(self) -> str | None:
        """Whitespace-delimited token (scanf %s); None at EOF."""
        m = self._TOKEN_RE.match(self.text, self.pos)
        token = m.group(1)
        self.pos = m.end()
        return token if token else None

    def read_int(self) -> int | None:
        self.pos = self._WS_RE.match(self.text, self.pos).end()
        m = self._INT_RE.match(self.text, self.pos)
        if not m:
            return None
        self.pos = m.end()
        return int(m.group(0))

    def read_float(self) -> float | None:
        self.pos = self._WS_RE.match(self.text, self.pos).end()
        m = self._FLOAT_RE.match(self.text, self.pos)
        if not m:
            return None
        self.pos = m.end()
        return float(m.group(0))


# --------------------------------------------------------------------------
# printf / scanf machinery
# --------------------------------------------------------------------------

_FMT_RE = re.compile(r"%([-+ #0]*)(\d+)?(?:\.(\d+))?(l|ll|h)?([diufFeEgGscx%])")


def _as_str(value: Any) -> str:
    cls = value.__class__
    if cls is Ptr:
        buffer = value.buffer
        if buffer is None:
            raise CRuntimeError("c_string on null pointer")
        return buffer.c_string(value.offset)
    if cls is Buffer:
        return value.c_string()
    if cls is str:
        return value
    raise CRuntimeError(f"%s argument is not a string: {value!r}")


def _compile_format(
    fmt: str,
) -> tuple[tuple[tuple[str, Any], ...], str, Any]:
    """Parse ``fmt`` once into (literal, renderer) segments plus a tail
    literal and an optional straight-line fast renderer. A renderer is
    None for ``%%`` (the ``%`` is folded into the literal); otherwise it
    maps one argument to its formatted text."""
    segs: list[tuple[str, Any]] = []
    pos = 0
    for m in _FMT_RE.finditer(fmt):
        lit = fmt[pos : m.start()]
        pos = m.end()
        flags, width, prec, _length, conv = m.groups()
        if conv == "%":
            segs.append((lit + "%", None))
            continue
        spec = "%" + (flags or "") + (width or "") + (f".{prec}" if prec else "")
        if conv in "di":
            if spec == "%":
                render: Any = lambda v: str(int(v))
            else:
                render = lambda v, _s=spec + "d": _s % int(v)
        elif conv == "u":
            render = lambda v, _s=spec + "d": _s % (int(v) & 0xFFFFFFFF)
        elif conv == "x":
            render = lambda v, _s=spec + "x": _s % int(v)
        elif conv in "fFeEgG":
            render = lambda v, _s=spec + conv: _s % float(v)
        elif conv == "c":
            render = lambda v: chr(int(v)) if not isinstance(v, str) else v[:1]
        else:  # conv == "s"
            if spec == "%":
                render = _as_str
            else:
                render = lambda v, _s=spec + "s": _s % _as_str(v)
        segs.append((lit, render))
    return tuple(segs), fmt[pos:], _make_fast_renderer(segs, fmt[pos:])


def _make_fast_renderer(segs: list, tail: str) -> Any:
    """A straight-line renderer closure for small formats (the common
    ``"%s\\t%d\\n"``-style KV emitters), or None when the format needs
    the generic segment loop. ``args[i]`` raising IndexError stands in
    for the generic loop's too-few-arguments check."""
    if any(render is None for _lit, render in segs):
        return None  # %% segments: keep the generic loop
    if len(segs) == 0:
        return lambda args, _t=tail: _t
    if len(segs) == 1:
        ((l0, r0),) = segs
        return lambda args, _l0=l0, _r0=r0, _t=tail: _l0 + _r0(args[0]) + _t
    if len(segs) == 2:
        (l0, r0), (l1, r1) = segs
        return lambda args: l0 + r0(args[0]) + l1 + r1(args[1]) + tail
    if len(segs) == 3:
        (l0, r0), (l1, r1), (l2, r2) = segs
        return lambda args: (
            l0 + r0(args[0]) + l1 + r1(args[1]) + l2 + r2(args[2]) + tail
        )
    return None


_FMT_CACHE: dict[str, tuple[tuple[tuple[str, Any], ...], str, Any]] = {}


def c_format(fmt: str, args: list[Any]) -> str:
    """Render a printf format string against evaluated arguments.

    Format strings are parsed once and memoized — printf runs per
    emitted KV pair on the map hot path, almost always with the same
    handful of formats."""
    cached = _FMT_CACHE.get(fmt)
    if cached is None:
        cached = _FMT_CACHE[fmt] = _compile_format(fmt)
    segs, tail, fast = cached
    if fast is not None:
        try:
            return fast(args)
        except IndexError:
            raise CRuntimeError(
                f"printf: too few arguments for format {fmt!r}"
            ) from None
    out: list[str] = []
    arg_i = 0
    nargs = len(args)
    for lit, render in segs:
        if lit:
            out.append(lit)
        if render is not None:
            if arg_i >= nargs:
                raise CRuntimeError(
                    f"printf: too few arguments for format {fmt!r}"
                )
            out.append(render(args[arg_i]))
            arg_i += 1
    if tail:
        out.append(tail)
    return "".join(out)


def _store_out(target: Any, value: Any) -> None:
    cls = target.__class__
    if cls is ScalarRef or cls is Ptr or isinstance(target, (Ptr, ScalarRef)):
        target.store(value)
    else:
        raise CRuntimeError(f"scanf target is not a pointer: {target!r}")


_SCAN_CACHE: dict[str, tuple[str, ...]] = {}

#: One-shot regexes for the fully-whitespace-separated instances of the
#: two-conversion scanf shapes: both fields and the gap between them
#: match in a single pass. The separator is a *mandatory* whitespace
#: run — without it the first greedy group could backtrack and donate
#: its tail to the second field ("12345" scanning as 1234/5), which the
#: stepwise path would never do. Non-separated or partial inputs simply
#: fail the combined match and take the stepwise path below.
_SCAN_PAIR_RES: dict[tuple[str, str], "re.Pattern[str]"] = {
    ("s", "d"): re.compile(
        r"[ \t\r\n]*([^\x00 \t\r\n]+)[ \t\r\n]+([+-]?\d+)"),
    ("d", "d"): re.compile(
        r"[ \t\r\n]*([+-]?\d+)[ \t\r\n]+([+-]?\d+)"),
    ("d", "f"): re.compile(
        r"[ \t\r\n]*([+-]?\d+)[ \t\r\n]+"
        r"([+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)"),
}


def _scan_convs(fmt: str) -> tuple[str, ...]:
    """The conversion characters of a scanf format, parsed once."""
    convs = _SCAN_CACHE.get(fmt)
    if convs is None:
        convs = tuple(
            m.group(5) for m in _FMT_RE.finditer(fmt) if m.group(5) != "%"
        )
        _SCAN_CACHE[fmt] = convs
    return convs


def c_scan(stream: InputStream, fmt: str, args: list[Any]) -> int:
    """Execute a scanf against the input stream. Returns the number of
    successful conversions, or -1 on EOF before the first conversion.

    The two-conversion shapes every benchmark's KV readers use
    (``"%s %d"``, ``"%d %d"``, ``"%d %f"``) run on a straight-line fast
    path with the token/number scans inlined; anything else falls back
    to the generic conversion loop below."""
    convs = _scan_convs(fmt)
    if (
        len(convs) == 2
        and len(args) >= 2
        and (convs[0] == "s" or convs[0] == "d")
        and (convs[1] == "d" or convs[1] == "f")
    ):
        text = stream.text
        m = _SCAN_PAIR_RES[convs].match(text, stream.pos)
        if m is not None:
            stream.pos = m.end()
            if convs[0] == "s":
                target = args[0]
                if isinstance(target, Ptr) and target.buffer is not None:
                    target.buffer.store_string(target.offset, m.group(1))
                else:
                    raise CRuntimeError(
                        "scanf %s target must be a char buffer")
            else:
                _store_out(args[0], int(m.group(1)))
            if convs[1] == "d":
                _store_out(args[1], int(m.group(2)))
            else:
                _store_out(args[1], float(m.group(2)))
            return 2
        if convs[0] == "s":
            m = InputStream._TOKEN_RE.match(text, stream.pos)
            token = m.group(1)
            stream.pos = m.end()
            if not token:
                return -1 if stream.pos >= len(text) else 0
            target = args[0]
            if isinstance(target, Ptr) and target.buffer is not None:
                target.buffer.store_string(target.offset, token)
            else:
                raise CRuntimeError("scanf %s target must be a char buffer")
        else:
            pos = InputStream._WS_RE.match(text, stream.pos).end()
            m = InputStream._INT_RE.match(text, pos)
            if m is None:
                stream.pos = pos
                return -1 if pos >= len(text) else 0
            stream.pos = m.end()
            _store_out(args[0], int(m.group(0)))
        pos = InputStream._WS_RE.match(text, stream.pos).end()
        if convs[1] == "d":
            m = InputStream._INT_RE.match(text, pos)
            if m is None:
                stream.pos = pos
                return 1
            stream.pos = m.end()
            _store_out(args[1], int(m.group(0)))
        else:
            m = InputStream._FLOAT_RE.match(text, pos)
            if m is None:
                stream.pos = pos
                return 1
            stream.pos = m.end()
            _store_out(args[1], float(m.group(0)))
        return 2
    converted = 0
    arg_i = 0
    for conv in _scan_convs(fmt):
        if arg_i >= len(args):
            raise CRuntimeError(f"scanf: too few arguments for format {fmt!r}")
        target = args[arg_i]
        arg_i += 1
        if conv in "diu":
            val = stream.read_int()
            if val is None:
                break
            _store_out(target, val)
        elif conv in "fFeEgG":
            fval = stream.read_float()
            if fval is None:
                break
            _store_out(target, fval)
        elif conv == "s":
            tok = stream.read_token()
            if tok is None:
                break
            if isinstance(target, Ptr) and target.buffer is not None:
                target.buffer.store_string(target.offset, tok)
            else:
                raise CRuntimeError("scanf %s target must be a char buffer")
        elif conv == "c":
            if stream.at_eof:
                break
            ch = stream.text[stream.pos]
            stream.pos += 1
            _store_out(target, ord(ch))
        else:  # pragma: no cover - regex restricts conversions
            raise CRuntimeError(f"unsupported scanf conversion %{conv}")
        converted += 1
    if converted == 0 and stream.at_eof:
        return -1
    return converted


# --------------------------------------------------------------------------
# Builtin implementations. Signature: fn(interp, args) -> value
# --------------------------------------------------------------------------


def _bi_printf(interp: "Interpreter", args: list[Any]) -> int:
    if not args:
        raise CRuntimeError("printf needs a format string")
    text = c_format(_as_str(args[0]), args[1:])
    interp.stdout.write(text)
    return len(text)


def _bi_scanf(interp: "Interpreter", args: list[Any]) -> int:
    if not args:
        raise CRuntimeError("scanf needs a format string")
    return c_scan(interp.stdin, _as_str(args[0]), args[1:])


def _bi_getline(interp: "Interpreter", args: list[Any]) -> int:
    """``getline(&line, &nbytes, stdin)``: reads one line incl. newline."""
    if len(args) < 2:
        raise CRuntimeError("getline(&line, &n, stdin)")
    line_ref, n_ref = args[0], args[1]
    text = interp.stdin.read_line()
    if text is None:
        return -1
    if not isinstance(line_ref, ScalarRef):
        raise CRuntimeError("getline: first arg must be &line")
    ptr = line_ref.deref()
    needed = len(text.encode("utf-8")) + 1
    if not isinstance(ptr, Ptr) or ptr.buffer is None:
        buf = Buffer(T.CHAR, max(needed, 128), label="getline")
        ptr = Ptr(buf, 0)
        line_ref.store(ptr)
    elif ptr.buffer.size - ptr.offset < needed:
        ptr.buffer.resize(ptr.offset + needed)
    written = ptr.buffer.store_string(ptr.offset, text)
    if isinstance(n_ref, (ScalarRef, Ptr)):
        n_ref.store(ptr.buffer.size)
    return written


_WORD_SCAN_RE = re.compile(rb"[ \t\r\n]*([^\x00 \t\r\n]*)")


def _bi_getword(interp: "Interpreter", args: list[Any]) -> int:
    """``getWord(line, offset, word, read, maxLen)`` — the paper's helper.

    Scans ``line`` starting at ``offset`` for the next whitespace-delimited
    word, copies it (truncated to maxLen-1) into ``word``, and returns the
    number of characters consumed from ``line`` (so the caller can advance
    its offset), or -1 if no word remains within ``read`` bytes.
    """
    if len(args) != 5:
        raise CRuntimeError("getWord(line, offset, word, read, maxLen)")
    line, offset, word, read, max_len = args
    if not isinstance(line, Ptr) or line.buffer is None:
        raise CRuntimeError("getWord: line must be a char pointer")
    if not isinstance(word, Ptr) or word.buffer is None:
        raise CRuntimeError("getWord: word must be a char buffer")
    offset = int(offset)
    limit = min(int(read), line.buffer.size - line.offset)
    data = line.buffer.data
    base = line.offset
    if offset >= 0 and isinstance(data, (bytes, bytearray)):
        # C-speed scan: leading whitespace, then the word (stopping at
        # whitespace, NUL, or the read limit). An empty word group means
        # only whitespace/NUL remained.
        if offset >= limit:
            return -1
        m = _WORD_SCAN_RE.match(data, base + offset, base + limit)
        token_b = m.group(1)
        if not token_b:
            return -1
        mlen = int(max_len) - 1
        if token_b.isascii():
            # ASCII bytes truncate and decode 1:1, so the word can be
            # copied without the decode/encode round trip store_string
            # would make; the decoded text seeds the c_string cache.
            if len(token_b) > mlen:
                token_b = token_b[:mlen]
            wbuf = word.buffer
            woff = word.offset
            n = len(token_b)
            if woff + n + 1 > wbuf.size:
                raise CRuntimeError(
                    f"string of {n} bytes overflows buffer "
                    f"{wbuf.label!r} (size {wbuf.size}, offset {woff})"
                )
            wbuf.data[woff : woff + n] = token_b
            wbuf.data[woff + n] = 0
            wbuf._strcache = {woff: token_b.decode("ascii")}
            return m.end(1) - base - offset
        token = token_b.decode("utf-8", errors="replace")
        token = token[:mlen]
        word.buffer.store_string(word.offset, token)
        return m.end(1) - base - offset
    # Fallback for exotic buffers: byte-at-a-time int indexing
    # (space=32, tab=9, CR=13, LF=10).
    i = offset
    while i < limit:
        c = data[base + i]
        if c == 32 or c == 9 or c == 13 or c == 10:
            i += 1
        else:
            break
    if i >= limit or data[base + i] == 0:
        return -1
    start = i
    while i < limit:
        c = data[base + i]
        if c == 0 or c == 32 or c == 9 or c == 13 or c == 10:
            break
        i += 1
    token = bytes(data[base + start : base + i]).decode("utf-8", errors="replace")
    token = token[: int(max_len) - 1]
    word.buffer.store_string(word.offset, token)
    return i - offset


def _bi_malloc(interp: "Interpreter", args: list[Any]) -> Ptr:
    size = int(args[0])
    buf = Buffer(T.CHAR, size, label="malloc")
    interp.heap.append(buf)
    return Ptr(buf, 0)


def _bi_free(interp: "Interpreter", args: list[Any]) -> int:
    ptr = args[0]
    if isinstance(ptr, Ptr) and ptr.buffer is not None:
        if ptr.buffer.freed:
            raise CRuntimeError("double free")
        ptr.buffer.freed = True
        # c_string trusts a warm decode cache without re-checking freed.
        ptr.buffer._strcache = None
    return 0


def _str_of(arg: Any) -> str:
    return _as_str(arg)


def _bi_strcmp(interp: "Interpreter", args: list[Any]) -> int:
    # Both operands are almost always Ptr-to-char on the KV hot loop
    # (key vs. previous key); c_string hits the per-buffer decode cache.
    a, b = args
    a = a.buffer.c_string(a.offset) if a.__class__ is Ptr and \
        a.buffer is not None else _str_of(a)
    b = b.buffer.c_string(b.offset) if b.__class__ is Ptr and \
        b.buffer is not None else _str_of(b)
    return (a > b) - (a < b)


def _bi_strncmp(interp: "Interpreter", args: list[Any]) -> int:
    n = int(args[2])
    a, b = _str_of(args[0])[:n], _str_of(args[1])[:n]
    return (a > b) - (a < b)


def _bi_strcpy(interp: "Interpreter", args: list[Any]) -> Any:
    dst, src = args[0], _str_of(args[1])
    if not isinstance(dst, Ptr) or dst.buffer is None:
        raise CRuntimeError("strcpy: bad destination")
    dst.buffer.store_string(dst.offset, src)
    return dst


def _bi_strlen(interp: "Interpreter", args: list[Any]) -> int:
    return len(_str_of(args[0]))


def _bi_strstr(interp: "Interpreter", args: list[Any]) -> Any:
    """strstr(haystack, needle) → pointer to first match or NULL. Charges
    compute at compiled-C scan rate (~1 op per 4 bytes scanned)."""
    hay = args[0]
    if not isinstance(hay, Ptr) or hay.buffer is None:
        raise CRuntimeError("strstr: bad haystack")
    text = hay.c_string()
    needle = _str_of(args[1])
    idx = text.find(needle)
    scanned = len(text) if idx == -1 else idx + len(needle)
    interp.counters.ops += max(1, scanned // 2)
    if idx == -1:
        from .values import NULL

        return NULL
    return Ptr(hay.buffer, hay.offset + len(text[:idx].encode("utf-8")))


def _bi_strcat(interp: "Interpreter", args: list[Any]) -> Any:
    dst = args[0]
    if not isinstance(dst, Ptr) or dst.buffer is None:
        raise CRuntimeError("strcat: bad destination")
    existing = dst.buffer.c_string(dst.offset)
    dst.buffer.store_string(dst.offset + len(existing.encode()), _str_of(args[1]))
    return dst


def _bi_atoi(interp: "Interpreter", args: list[Any]) -> int:
    m = re.match(r"\s*[+-]?\d+", _str_of(args[0]))
    return int(m.group(0)) if m else 0


def _bi_atof(interp: "Interpreter", args: list[Any]) -> float:
    m = re.match(r"\s*[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", _str_of(args[0]))
    return float(m.group(0)) if m else 0.0


def _math1(fn: Callable[[float], float]) -> Callable[["Interpreter", list[Any]], float]:
    def impl(interp: "Interpreter", args: list[Any]) -> float:
        return fn(float(args[0]))

    return impl


def _bi_pow(interp: "Interpreter", args: list[Any]) -> float:
    return float(args[0]) ** float(args[1])


def _bi_fmin(interp: "Interpreter", args: list[Any]) -> float:
    return min(float(args[0]), float(args[1]))


def _bi_fmax(interp: "Interpreter", args: list[Any]) -> float:
    return max(float(args[0]), float(args[1]))


def _bi_abs(interp: "Interpreter", args: list[Any]) -> int:
    return abs(int(args[0]))


def _bi_isspace(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])) in " \t\r\n\v\f")


def _bi_isdigit(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])).isdigit())


def _bi_isalpha(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])).isalpha())


def _bi_tolower(interp: "Interpreter", args: list[Any]) -> int:
    return ord(chr(int(args[0])).lower())


def _bi_toupper(interp: "Interpreter", args: list[Any]) -> int:
    return ord(chr(int(args[0])).upper())


def host_builtins() -> dict[str, Callable[["Interpreter", list[Any]], Any]]:
    """The CPU-path C library (what gcc + glibc provide in the paper).

    Returns a fresh copy of the (stateless) table — callers may add or
    replace entries without affecting other interpreters — built from a
    module-level prototype so the lambdas are only created once."""
    return dict(_HOST_BUILTINS)


_HOST_BUILTINS: dict[str, Callable[["Interpreter", list[Any]], Any]] = {
        "printf": _bi_printf,
        "fprintf": lambda i, a: _bi_printf(i, a[1:]),  # stderr folded to stdout
        "scanf": _bi_scanf,
        "getline": _bi_getline,
        "getWord": _bi_getword,
        "malloc": _bi_malloc,
        "calloc": lambda i, a: _bi_malloc(i, [int(a[0]) * int(a[1])]),
        "free": _bi_free,
        "strcmp": _bi_strcmp,
        "strncmp": _bi_strncmp,
        "strcpy": _bi_strcpy,
        "strlen": _bi_strlen,
        "strcat": _bi_strcat,
        "strstr": _bi_strstr,
        "atoi": _bi_atoi,
        "atof": _bi_atof,
        "sqrt": _math1(math.sqrt),
        "sqrtf": _math1(math.sqrt),
        "exp": _math1(math.exp),
        "expf": _math1(math.exp),
        "log": _math1(lambda x: math.log(x)),
        "logf": _math1(lambda x: math.log(x)),
        "log2": _math1(math.log2),
        "sin": _math1(math.sin),
        "sinf": _math1(math.sin),
        "cos": _math1(math.cos),
        "cosf": _math1(math.cos),
        "tan": _math1(math.tan),
        "atan": _math1(math.atan),
        "fabs": _math1(abs),
        "fabsf": _math1(abs),
        "floor": _math1(math.floor),
        "ceil": _math1(math.ceil),
        "erf": _math1(math.erf),
        "erff": _math1(math.erf),
        "pow": _bi_pow,
        "powf": _bi_pow,
        "fmin": _bi_fmin,
        "fmax": _bi_fmax,
        "abs": _bi_abs,
        "isspace": _bi_isspace,
        "isdigit": _bi_isdigit,
        "isalpha": _bi_isalpha,
        "tolower": _bi_tolower,
        "toupper": _bi_toupper,
        "exit": lambda i, a: (_ for _ in ()).throw(CRuntimeError(f"exit({int(a[0])})")),
    }


#: Names the HeteroDoop compiler recognises as record-input, KV-emit, and
#: KV-input calls (paper §4.1–4.2). Used by the translator's IO-replacement
#: pass.
RECORD_INPUT_FUNCS = frozenset(["getline"])
KV_EMIT_FUNCS = frozenset(["printf"])
KV_INPUT_FUNCS = frozenset(["scanf"])
