"""Modelled C standard library for mini-C execution.

Provides stdio (``getline``/``scanf``/``printf``), string.h, stdlib.h, and
math.h, plus the ``getWord`` helper the paper's Wordcount listing uses.
Builtins receive the interpreter so they can touch its IO streams and
instrumentation counters.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, TYPE_CHECKING

from ..errors import CRuntimeError
from . import ctypes as T
from .values import NULL, Buffer, Ptr, ScalarRef

if TYPE_CHECKING:  # pragma: no cover
    from .interpreter import Interpreter


class InputStream:
    """Cursor over the program's standard input text.

    Supports both line-oriented reads (``getline``) and token-oriented
    reads (``scanf``), which may be interleaved like real stdio.
    """

    __slots__ = ("text", "pos")

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    @property
    def at_eof(self) -> bool:
        return self.pos >= len(self.text)

    def read_line(self) -> str | None:
        """Read up to and including the next newline; None at EOF."""
        if self.at_eof:
            return None
        end = self.text.find("\n", self.pos)
        if end == -1:
            line = self.text[self.pos :]
            self.pos = len(self.text)
            return line
        line = self.text[self.pos : end + 1]
        self.pos = end + 1
        return line

    def skip_space(self) -> None:
        while not self.at_eof and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_token(self) -> str | None:
        """Whitespace-delimited token (scanf %s); None at EOF."""
        self.skip_space()
        if self.at_eof:
            return None
        start = self.pos
        while not self.at_eof and self.text[self.pos] not in " \t\r\n":
            self.pos += 1
        return self.text[start : self.pos]

    _INT_RE = re.compile(r"[+-]?\d+")
    _FLOAT_RE = re.compile(r"[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?")

    def read_int(self) -> int | None:
        self.skip_space()
        m = self._INT_RE.match(self.text, self.pos)
        if not m:
            return None
        self.pos = m.end()
        return int(m.group(0))

    def read_float(self) -> float | None:
        self.skip_space()
        m = self._FLOAT_RE.match(self.text, self.pos)
        if not m:
            return None
        self.pos = m.end()
        return float(m.group(0))


# --------------------------------------------------------------------------
# printf / scanf machinery
# --------------------------------------------------------------------------

_FMT_RE = re.compile(r"%([-+ #0]*)(\d+)?(?:\.(\d+))?(l|ll|h)?([diufFeEgGscx%])")


def _as_str(value: Any) -> str:
    if isinstance(value, Ptr):
        return value.c_string()
    if isinstance(value, Buffer):
        return value.c_string()
    if isinstance(value, str):
        return value
    raise CRuntimeError(f"%s argument is not a string: {value!r}")


def c_format(fmt: str, args: list[Any]) -> str:
    """Render a printf format string against evaluated arguments."""
    out: list[str] = []
    pos = 0
    arg_i = 0

    def next_arg() -> Any:
        nonlocal arg_i
        if arg_i >= len(args):
            raise CRuntimeError(f"printf: too few arguments for format {fmt!r}")
        val = args[arg_i]
        arg_i += 1
        return val

    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos : m.start()])
        pos = m.end()
        flags, width, prec, _length, conv = m.groups()
        if conv == "%":
            out.append("%")
            continue
        spec = "%" + (flags or "") + (width or "") + (f".{prec}" if prec else "")
        if conv in "di":
            out.append((spec + "d") % int(next_arg()))
        elif conv == "u":
            out.append((spec + "d") % (int(next_arg()) & 0xFFFFFFFF))
        elif conv == "x":
            out.append((spec + "x") % int(next_arg()))
        elif conv in "fFeEgG":
            out.append((spec + conv) % float(next_arg()))
        elif conv == "c":
            val = next_arg()
            out.append(chr(int(val)) if not isinstance(val, str) else val[:1])
        elif conv == "s":
            out.append((spec + "s") % _as_str(next_arg()))
    out.append(fmt[pos:])
    return "".join(out)


def _store_out(target: Any, value: Any) -> None:
    if isinstance(target, (Ptr, ScalarRef)):
        target.store(value)
    else:
        raise CRuntimeError(f"scanf target is not a pointer: {target!r}")


def c_scan(stream: InputStream, fmt: str, args: list[Any]) -> int:
    """Execute a scanf against the input stream. Returns the number of
    successful conversions, or -1 on EOF before the first conversion."""
    converted = 0
    arg_i = 0
    for m in _FMT_RE.finditer(fmt):
        conv = m.group(5)
        if conv == "%":
            continue
        if arg_i >= len(args):
            raise CRuntimeError(f"scanf: too few arguments for format {fmt!r}")
        target = args[arg_i]
        arg_i += 1
        if conv in "diu":
            val = stream.read_int()
            if val is None:
                break
            _store_out(target, val)
        elif conv in "fFeEgG":
            fval = stream.read_float()
            if fval is None:
                break
            _store_out(target, fval)
        elif conv == "s":
            tok = stream.read_token()
            if tok is None:
                break
            if isinstance(target, Ptr) and target.buffer is not None:
                target.buffer.store_string(target.offset, tok)
            else:
                raise CRuntimeError("scanf %s target must be a char buffer")
        elif conv == "c":
            if stream.at_eof:
                break
            ch = stream.text[stream.pos]
            stream.pos += 1
            _store_out(target, ord(ch))
        else:  # pragma: no cover - regex restricts conversions
            raise CRuntimeError(f"unsupported scanf conversion %{conv}")
        converted += 1
    if converted == 0 and stream.at_eof:
        return -1
    return converted


# --------------------------------------------------------------------------
# Builtin implementations. Signature: fn(interp, args) -> value
# --------------------------------------------------------------------------


def _bi_printf(interp: "Interpreter", args: list[Any]) -> int:
    if not args:
        raise CRuntimeError("printf needs a format string")
    text = c_format(_as_str(args[0]), args[1:])
    interp.stdout.write(text)
    return len(text)


def _bi_scanf(interp: "Interpreter", args: list[Any]) -> int:
    if not args:
        raise CRuntimeError("scanf needs a format string")
    return c_scan(interp.stdin, _as_str(args[0]), args[1:])


def _bi_getline(interp: "Interpreter", args: list[Any]) -> int:
    """``getline(&line, &nbytes, stdin)``: reads one line incl. newline."""
    if len(args) < 2:
        raise CRuntimeError("getline(&line, &n, stdin)")
    line_ref, n_ref = args[0], args[1]
    text = interp.stdin.read_line()
    if text is None:
        return -1
    if not isinstance(line_ref, ScalarRef):
        raise CRuntimeError("getline: first arg must be &line")
    ptr = line_ref.deref()
    needed = len(text.encode("utf-8")) + 1
    if not isinstance(ptr, Ptr) or ptr.buffer is None:
        buf = Buffer(T.CHAR, max(needed, 128), label="getline")
        ptr = Ptr(buf, 0)
        line_ref.store(ptr)
    elif ptr.buffer.size - ptr.offset < needed:
        ptr.buffer.resize(ptr.offset + needed)
    written = ptr.buffer.store_string(ptr.offset, text)
    if isinstance(n_ref, (ScalarRef, Ptr)):
        n_ref.store(ptr.buffer.size)
    return written


def _bi_getword(interp: "Interpreter", args: list[Any]) -> int:
    """``getWord(line, offset, word, read, maxLen)`` — the paper's helper.

    Scans ``line`` starting at ``offset`` for the next whitespace-delimited
    word, copies it (truncated to maxLen-1) into ``word``, and returns the
    number of characters consumed from ``line`` (so the caller can advance
    its offset), or -1 if no word remains within ``read`` bytes.
    """
    if len(args) != 5:
        raise CRuntimeError("getWord(line, offset, word, read, maxLen)")
    line, offset, word, read, max_len = args
    if not isinstance(line, Ptr) or line.buffer is None:
        raise CRuntimeError("getWord: line must be a char pointer")
    if not isinstance(word, Ptr) or word.buffer is None:
        raise CRuntimeError("getWord: word must be a char buffer")
    offset = int(offset)
    limit = min(int(read), line.buffer.size - line.offset)
    i = offset
    data = line.buffer.data
    base = line.offset
    # Skip leading whitespace.
    while i < limit and data[base + i : base + i + 1] in (b" ", b"\t", b"\r", b"\n"):
        i += 1
    if i >= limit or data[base + i] == 0:
        return -1
    start = i
    while i < limit and data[base + i] != 0 and \
            data[base + i : base + i + 1] not in (b" ", b"\t", b"\r", b"\n"):
        i += 1
    token = bytes(data[base + start : base + i]).decode("utf-8", errors="replace")
    token = token[: int(max_len) - 1]
    word.buffer.store_string(word.offset, token)
    return i - offset


def _bi_malloc(interp: "Interpreter", args: list[Any]) -> Ptr:
    size = int(args[0])
    buf = Buffer(T.CHAR, size, label="malloc")
    interp.heap.append(buf)
    return Ptr(buf, 0)


def _bi_free(interp: "Interpreter", args: list[Any]) -> int:
    ptr = args[0]
    if isinstance(ptr, Ptr) and ptr.buffer is not None:
        if ptr.buffer.freed:
            raise CRuntimeError("double free")
        ptr.buffer.freed = True
    return 0


def _str_of(arg: Any) -> str:
    return _as_str(arg)


def _bi_strcmp(interp: "Interpreter", args: list[Any]) -> int:
    a, b = _str_of(args[0]), _str_of(args[1])
    return (a > b) - (a < b)


def _bi_strncmp(interp: "Interpreter", args: list[Any]) -> int:
    n = int(args[2])
    a, b = _str_of(args[0])[:n], _str_of(args[1])[:n]
    return (a > b) - (a < b)


def _bi_strcpy(interp: "Interpreter", args: list[Any]) -> Any:
    dst, src = args[0], _str_of(args[1])
    if not isinstance(dst, Ptr) or dst.buffer is None:
        raise CRuntimeError("strcpy: bad destination")
    dst.buffer.store_string(dst.offset, src)
    return dst


def _bi_strlen(interp: "Interpreter", args: list[Any]) -> int:
    return len(_str_of(args[0]))


def _bi_strstr(interp: "Interpreter", args: list[Any]) -> Any:
    """strstr(haystack, needle) → pointer to first match or NULL. Charges
    compute at compiled-C scan rate (~1 op per 4 bytes scanned)."""
    hay = args[0]
    if not isinstance(hay, Ptr) or hay.buffer is None:
        raise CRuntimeError("strstr: bad haystack")
    text = hay.c_string()
    needle = _str_of(args[1])
    idx = text.find(needle)
    scanned = len(text) if idx == -1 else idx + len(needle)
    interp.counters.ops += max(1, scanned // 2)
    if idx == -1:
        from .values import NULL

        return NULL
    return Ptr(hay.buffer, hay.offset + len(text[:idx].encode("utf-8")))


def _bi_strcat(interp: "Interpreter", args: list[Any]) -> Any:
    dst = args[0]
    if not isinstance(dst, Ptr) or dst.buffer is None:
        raise CRuntimeError("strcat: bad destination")
    existing = dst.buffer.c_string(dst.offset)
    dst.buffer.store_string(dst.offset + len(existing.encode()), _str_of(args[1]))
    return dst


def _bi_atoi(interp: "Interpreter", args: list[Any]) -> int:
    m = re.match(r"\s*[+-]?\d+", _str_of(args[0]))
    return int(m.group(0)) if m else 0


def _bi_atof(interp: "Interpreter", args: list[Any]) -> float:
    m = re.match(r"\s*[+-]?(\d+\.?\d*|\.\d+)([eE][+-]?\d+)?", _str_of(args[0]))
    return float(m.group(0)) if m else 0.0


def _math1(fn: Callable[[float], float]) -> Callable[["Interpreter", list[Any]], float]:
    def impl(interp: "Interpreter", args: list[Any]) -> float:
        return fn(float(args[0]))

    return impl


def _bi_pow(interp: "Interpreter", args: list[Any]) -> float:
    return float(args[0]) ** float(args[1])


def _bi_fmin(interp: "Interpreter", args: list[Any]) -> float:
    return min(float(args[0]), float(args[1]))


def _bi_fmax(interp: "Interpreter", args: list[Any]) -> float:
    return max(float(args[0]), float(args[1]))


def _bi_abs(interp: "Interpreter", args: list[Any]) -> int:
    return abs(int(args[0]))


def _bi_isspace(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])) in " \t\r\n\v\f")


def _bi_isdigit(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])).isdigit())


def _bi_isalpha(interp: "Interpreter", args: list[Any]) -> int:
    return int(chr(int(args[0])).isalpha())


def _bi_tolower(interp: "Interpreter", args: list[Any]) -> int:
    return ord(chr(int(args[0])).lower())


def _bi_toupper(interp: "Interpreter", args: list[Any]) -> int:
    return ord(chr(int(args[0])).upper())


def host_builtins() -> dict[str, Callable[["Interpreter", list[Any]], Any]]:
    """The CPU-path C library (what gcc + glibc provide in the paper)."""
    return {
        "printf": _bi_printf,
        "fprintf": lambda i, a: _bi_printf(i, a[1:]),  # stderr folded to stdout
        "scanf": _bi_scanf,
        "getline": _bi_getline,
        "getWord": _bi_getword,
        "malloc": _bi_malloc,
        "calloc": lambda i, a: _bi_malloc(i, [int(a[0]) * int(a[1])]),
        "free": _bi_free,
        "strcmp": _bi_strcmp,
        "strncmp": _bi_strncmp,
        "strcpy": _bi_strcpy,
        "strlen": _bi_strlen,
        "strcat": _bi_strcat,
        "strstr": _bi_strstr,
        "atoi": _bi_atoi,
        "atof": _bi_atof,
        "sqrt": _math1(math.sqrt),
        "sqrtf": _math1(math.sqrt),
        "exp": _math1(math.exp),
        "expf": _math1(math.exp),
        "log": _math1(lambda x: math.log(x)),
        "logf": _math1(lambda x: math.log(x)),
        "log2": _math1(math.log2),
        "sin": _math1(math.sin),
        "sinf": _math1(math.sin),
        "cos": _math1(math.cos),
        "cosf": _math1(math.cos),
        "tan": _math1(math.tan),
        "atan": _math1(math.atan),
        "fabs": _math1(abs),
        "fabsf": _math1(abs),
        "floor": _math1(math.floor),
        "ceil": _math1(math.ceil),
        "erf": _math1(math.erf),
        "erff": _math1(math.erf),
        "pow": _bi_pow,
        "powf": _bi_pow,
        "fmin": _bi_fmin,
        "fmax": _bi_fmax,
        "abs": _bi_abs,
        "isspace": _bi_isspace,
        "isdigit": _bi_isdigit,
        "isalpha": _bi_isalpha,
        "tolower": _bi_tolower,
        "toupper": _bi_toupper,
        "exit": lambda i, a: (_ for _ in ()).throw(CRuntimeError(f"exit({int(a[0])})")),
    }


#: Names the HeteroDoop compiler recognises as record-input, KV-emit, and
#: KV-input calls (paper §4.1–4.2). Used by the translator's IO-replacement
#: pass.
RECORD_INPUT_FUNCS = frozenset(["getline"])
KV_EMIT_FUNCS = frozenset(["printf"])
KV_INPUT_FUNCS = frozenset(["scanf"])
