"""Program-level caches for the mini-C toolchain.

A local job runs one map program over N fileSplits and (on the GPU
path) one kernel body over thousands of simulated threads. Without
caching, each task re-parses, re-translates, and re-walks the same
source. This module provides:

* :func:`compiled_program` — one :class:`~repro.minic.compile.CompiledProgram`
  per distinct program *source* (sha1 of ``Program.source``), shared by
  every interpreter instance, task, and thread executing it;
* :func:`compiled_suite` — one compiled closure tree per (statement,
  program) pair, stashed on the statement node (the GPU kernel-body
  case: the same ``kernel.body`` node runs per thread per split);
* :func:`compiled_kernel_body` — like :func:`compiled_suite` but keyed
  on program + charge profile, for the GPU lane engine: a kernel body
  compiles once per job (in practice once per process, since kernels
  are themselves memoized) and every lane invocation is then a closure
  call over a per-thread frame;
* :func:`strlit_buffers` — the per-program string-literal Buffer table
  used by the tree-walking backend, so literals inside loops stop
  allocating a fresh Buffer per interpreter instance;
* :func:`cached_translation` — memoized source-to-source translation,
  keyed by source hash + optimization flags + launch parameters, used
  by :func:`repro.compiler.translator.translate_cached`.

Keying by source hash (rather than object identity) means two
``Program`` objects parsed from identical source share one compiled
artifact; programs with no source text (e.g. synthesized kernel-helper
programs) fall back to identity keys, with the cache holding a strong
reference to the program so ids cannot be recycled.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from . import cast as A
from .compile import CompiledProgram, CompiledSuite

_ATTR_KEY = "_repro_cache_key"
_ATTR_COMPILED = "_repro_compiled"
_ATTR_SUITE = "_repro_compiled_suite"
_ATTR_KERNEL_BODIES = "_repro_compiled_kernel_bodies"
_ATTR_WARP_BODIES = "_repro_compiled_warp_bodies"
_ATTR_STRLITS = "_repro_strlit_buffers"

#: source-hash key → CompiledProgram (or (program, CompiledProgram) for
#: identity keys, pinning the program alive).
_compiled: dict[str, CompiledProgram] = {}
_translations: dict[tuple, Any] = {}


def program_key(program: A.Program) -> str:
    """Stable cache key: sha1 of the source, or identity for synthetic
    programs with no source text."""
    key = program.__dict__.get(_ATTR_KEY)
    if key is None:
        if program.source:
            digest = hashlib.sha1(program.source.encode("utf-8")).hexdigest()
            key = f"sha1:{digest}"
        else:
            key = f"id:{id(program)}"
        setattr(program, _ATTR_KEY, key)
    return key


def compiled_program(program: A.Program) -> CompiledProgram:
    """The (cached) closure-compiled form of ``program``."""
    cp = program.__dict__.get(_ATTR_COMPILED)
    if cp is not None:
        return cp
    key = program_key(program)
    cp = _compiled.get(key)
    if cp is None:
        cp = CompiledProgram(program)
        _compiled[key] = cp
    setattr(program, _ATTR_COMPILED, cp)
    return cp


def compiled_suite(program: A.Program, stmt: A.Stmt) -> CompiledSuite:
    """The (cached) compiled form of one statement of ``program``,
    executed against a live interpreter environment (kernel bodies)."""
    cached = stmt.__dict__.get(_ATTR_SUITE)
    cp = compiled_program(program)
    if cached is not None and cached.cp is cp:
        return cached
    suite = CompiledSuite(stmt, cp)
    setattr(stmt, _ATTR_SUITE, suite)
    return suite


def compiled_kernel_body(program: A.Program, stmt: A.Stmt,
                         profile_key: str,
                         free_ctypes: dict | None = None) -> CompiledSuite:
    """The compiled form of a GPU kernel body for direct lane execution,
    cached per (statement, program, charge profile).

    The profile dimension exists because a :class:`~repro.gpu.charging.
    ChargeHook` defines which cost events a compiled body must surface;
    bodies compiled under one profile must never be reused under
    another. Today all profiles share one closure tree shape, so this is
    a dict keyed by ``profile_key`` — cheap, and the invariant is
    enforced structurally rather than by convention."""
    cp = compiled_program(program)
    cache = stmt.__dict__.get(_ATTR_KERNEL_BODIES)
    if cache is None:
        cache = {}
        setattr(stmt, _ATTR_KERNEL_BODIES, cache)
    suite = cache.get(profile_key)
    if suite is None or suite.cp is not cp:
        # free_ctypes derives deterministically from the kernel (and so
        # from the program), so it does not need its own cache dimension.
        suite = CompiledSuite(stmt, cp, free_ctypes)
        cache[profile_key] = suite
    return suite


def compiled_warp_body(program: A.Program, stmt: A.Stmt,
                       profile_key: str,
                       build: Callable[[Any], Any]) -> Any:
    """The warp-compiled form of a GPU kernel body (vector lane engine),
    cached per (statement, program, charge profile) exactly like
    :func:`compiled_kernel_body`.

    ``build(cp)`` constructs the suite from the compiled program — a
    callback so this module never imports the GPU layer. The artifact
    only depends on the program and the charge profile (eligibility
    gates that involve launch geometry are checked by the caller before
    consulting the cache)."""
    cp = compiled_program(program)
    cache = stmt.__dict__.get(_ATTR_WARP_BODIES)
    if cache is None:
        cache = {}
        setattr(stmt, _ATTR_WARP_BODIES, cache)
    suite = cache.get(profile_key)
    if suite is None or suite.cp is not cp:
        suite = build(cp)
        cache[profile_key] = suite
    return suite


def strlit_buffers(program: A.Program) -> dict[int, Any]:
    """The per-program string-literal Buffer table (tree backend).

    Shared across interpreter instances of the same Program object, so
    the GPU executor's one-interpreter-per-thread pattern stops
    re-allocating literal buffers. Literal buffers are effectively
    read-only (format strings, comparison operands)."""
    cache = program.__dict__.get(_ATTR_STRLITS)
    if cache is None:
        cache = {}
        setattr(program, _ATTR_STRLITS, cache)
    return cache


def warm_program(program: A.Program) -> CompiledProgram:
    """Eagerly build the artifacts a job needs from ``program``.

    The per-worker warmup hook of the parallel layer: a pool worker
    calls this once per distinct program per job so the first map task
    does not pay compile latency (closures don't cross the process
    boundary — sources do, and recompile here). Covers the compiled
    program and the string-literal Buffer table; translations and kernel
    bodies warm through :func:`cached_translation` /
    :func:`compiled_kernel_body` at their own call sites.
    """
    cp = compiled_program(program)
    strlit_buffers(program)
    return cp


def cached_translation(
    program: A.Program,
    opt_key: tuple,
    warp_size: int,
    map_only: bool,
    build: Callable[[], Any],
) -> Any:
    """Memoize ``build()`` (a translate() call) under the program's
    source hash + optimization flags + launch parameters."""
    key = (program_key(program), opt_key, warp_size, map_only)
    result = _translations.get(key)
    if result is None:
        result = build()
        _translations[key] = result
    return result


def clear_caches() -> None:
    """Drop all memoized artifacts (test isolation helper)."""
    _compiled.clear()
    _translations.clear()
