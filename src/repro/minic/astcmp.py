"""Structural AST equality, ignoring positions.

The pretty-printer round-trip property (parse → print → parse) must
reproduce the same tree *shape*, but re-parsing printed source naturally
assigns new ``line`` numbers and a new ``Program.source`` string. This
module compares two trees field by field while ignoring exactly those
position/provenance attributes, and reports the first difference as a
human-readable path for test failure messages.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from . import cast as A

#: Field names that carry provenance, not structure.
_IGNORED_FIELDS = frozenset({"line", "source"})


def ast_diff(a: Any, b: Any, path: str = "program") -> str | None:
    """Return a description of the first structural difference, or None.

    Works over AST nodes, the plain helper dataclasses (Declarator,
    Param), lists of either, and leaf values (ints, floats, strings,
    CTypes). Floats are compared by exact repr so a printer that loses
    precision (``1e-07`` vs ``1.0000000000000001e-07``) is caught.
    """
    if a is None or b is None:
        if a is None and b is None:
            return None
        return f"{path}: {a!r} != {b!r}"
    if type(a) is not type(b):
        return f"{path}: {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, list):
        if len(a) != len(b):
            return f"{path}: list length {len(a)} != {len(b)}"
        for i, (xa, xb) in enumerate(zip(a, b)):
            diff = ast_diff(xa, xb, f"{path}[{i}]")
            if diff is not None:
                return diff
        return None
    if isinstance(a, float):
        # NaN never equals itself; two NaN literals are the same literal.
        if a != b and not (a != a and b != b):
            return f"{path}: {a!r} != {b!r}"
        return None
    if not dataclasses.is_dataclass(a) or isinstance(a, A.CType):
        return None if a == b else f"{path}: {a!r} != {b!r}"
    for f in dataclasses.fields(a):
        if f.name in _IGNORED_FIELDS:
            continue
        diff = ast_diff(
            getattr(a, f.name), getattr(b, f.name), f"{path}.{f.name}"
        )
        if diff is not None:
            return diff
    return None


def ast_equal(a: Any, b: Any) -> bool:
    """True when the two trees match everywhere but line/source fields."""
    return ast_diff(a, b) is None
