"""Static analyses over mini-C ASTs used by the HeteroDoop translator.

The paper's Algorithm 1 classifies every variable used inside the annotated
region as shared read-only, texture, firstprivate, or private. The
compiler derives the candidate sets with the helpers here:

* :func:`collect_idents` / :func:`collect_writes` — use/def sets,
* :func:`declared_types` — in-scope declarations preceding the region,
* :func:`auto_firstprivate` — read-before-write detection (the automatic
  firstprivate identification mentioned in §3.2),
* :func:`address_taken` — names whose address escapes (aliasing warning).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import cast as A
from . import ctypes as T
from ..errors import SemanticError


#: Library functions with out-only pointer parameters (0-based indices).
#: Used to avoid classifying pure output buffers as read-before-write.
OUT_ONLY_ARGS: dict[str, set[int]] = {
    "getline": {0, 1},
    "getWord": {2},
    "strcpy": {0},
    "strcat": {0},
    "getRecord": {0},
    "getKV": {0, 1},
}

#: Functions whose trailing arguments are all outputs (scanf-style).
VARARG_OUT_FUNCS = frozenset(["scanf", "sscanf"])


def collect_idents(node: A.Node) -> set[str]:
    """Every identifier referenced anywhere in the subtree."""
    names: set[str] = set()
    for sub in node.walk():
        if isinstance(sub, A.Ident):
            names.add(sub.name)
    return names


def collect_decl_names(node: A.Node) -> set[str]:
    """Names declared inside the subtree."""
    names: set[str] = set()
    for sub in node.walk():
        if isinstance(sub, A.DeclStmt):
            names.update(d.name for d in sub.decls)
    return names


def _write_target_names(expr: A.Expr) -> set[str]:
    """Root identifiers an lvalue expression may write through."""
    if isinstance(expr, A.Ident):
        return {expr.name}
    if isinstance(expr, A.Index):
        return _write_target_names(expr.base)
    if isinstance(expr, A.UnaryOp) and expr.op == "*":
        return collect_idents(expr.operand)
    return collect_idents(expr)


def collect_writes(node: A.Node) -> tuple[set[str], set[str]]:
    """(strong, weak) write sets for the subtree.

    *Strong* writes are definite: assignment targets, ++/--, address-of and
    out-parameter call arguments. *Weak* writes are pointer/array arguments
    to calls whose effect we cannot see — the callee *may* write through
    them. User directives (sharedRO/texture) override weak writes; strong
    writes against them are errors.
    """
    strong: set[str] = set()
    weak: set[str] = set()
    for sub in node.walk():
        if isinstance(sub, A.Assign):
            strong.update(_write_target_names(sub.target))
        elif isinstance(sub, (A.PostfixOp,)) or (
            isinstance(sub, A.UnaryOp) and sub.op in ("++", "--")
        ):
            strong.update(_write_target_names(sub.operand))
        elif isinstance(sub, A.Call):
            out_only = OUT_ONLY_ARGS.get(sub.func, set())
            vararg_out = sub.func in VARARG_OUT_FUNCS
            known = sub.func in OUT_ONLY_ARGS or vararg_out
            for idx, arg in enumerate(sub.args):
                if isinstance(arg, A.UnaryOp) and arg.op == "&":
                    strong.update(_write_target_names(arg.operand))
                elif isinstance(arg, A.Ident) and (
                    idx in out_only or (vararg_out and idx >= 1)
                ):
                    strong.add(arg.name)
                elif isinstance(arg, A.Ident) and not known:
                    # Unknown callee: it may write through pointer args.
                    weak.add(arg.name)
    return strong, weak


def address_taken(node: A.Node) -> set[str]:
    """Names whose address is taken (potential aliasing)."""
    taken: set[str] = set()
    for sub in node.walk():
        if isinstance(sub, A.UnaryOp) and sub.op == "&":
            taken.update(_write_target_names(sub.operand))
    return taken


def declared_types(func: A.FunctionDef) -> dict[str, T.CType]:
    """All declarations in the function (params + locals), name → type."""
    types: dict[str, T.CType] = {p.name: p.ctype for p in func.params}
    for sub in func.body.walk():
        if isinstance(sub, A.DeclStmt):
            for d in sub.decls:
                types[d.name] = d.ctype
    return types


@dataclass
class RegionInfo:
    """Use/def summary of a directive-annotated region."""

    used: set[str] = field(default_factory=set)
    written_strong: set[str] = field(default_factory=set)
    written_weak: set[str] = field(default_factory=set)
    declared_inside: set[str] = field(default_factory=set)
    aliased: set[str] = field(default_factory=set)

    @property
    def written(self) -> set[str]:
        return self.written_strong | self.written_weak

    @property
    def free_vars(self) -> set[str]:
        """Variables used in the region but declared outside it."""
        return self.used - self.declared_inside

    @property
    def read_only(self) -> set[str]:
        return self.free_vars - self.written


def analyze_region(region: A.Stmt) -> RegionInfo:
    strong, weak = collect_writes(region)
    return RegionInfo(
        used=collect_idents(region),
        written_strong=strong,
        written_weak=weak,
        declared_inside=collect_decl_names(region),
        aliased=address_taken(region),
    )


def expr_value_reads(expr: A.Expr) -> set[str]:
    """Names whose *value* an expression reads. Plain-assignment targets
    and out-only call arguments are writes, not reads."""
    reads: set[str] = set()

    def visit(e: A.Expr) -> None:
        if isinstance(e, A.Ident):
            reads.add(e.name)
        elif isinstance(e, A.Assign):
            visit(e.value)
            if e.op != "=":
                visit(e.target)
            elif isinstance(e.target, (A.Index,)):
                visit(e.target.base)
                visit(e.target.index)
            elif isinstance(e.target, A.UnaryOp) and e.target.op == "*":
                visit(e.target.operand)
        elif isinstance(e, A.UnaryOp) and e.op == "&":
            pass  # taking an address reads nothing
        elif isinstance(e, A.Call):
            out_only = OUT_ONLY_ARGS.get(e.func, set())
            vararg_out = e.func in VARARG_OUT_FUNCS
            for idx, arg in enumerate(e.args):
                if isinstance(arg, A.Ident) and (
                    idx in out_only or (vararg_out and idx >= 1)
                ):
                    continue
                visit(arg)
        else:
            for child in e.children():
                if isinstance(child, A.Expr):
                    visit(child)

    visit(expr)
    return reads


def expr_plain_writes(expr: A.Expr) -> set[str]:
    """Identifiers written by top-level-dominating ``=`` assignments and
    out-params inside the expression (every evaluation writes them)."""
    writes: set[str] = set()
    for sub in expr.walk():
        if isinstance(sub, A.Assign) and isinstance(sub.target, A.Ident):
            writes.add(sub.target.name)
        elif isinstance(sub, A.Call):
            out_only = OUT_ONLY_ARGS.get(sub.func, set())
            vararg_out = sub.func in VARARG_OUT_FUNCS
            for idx, arg in enumerate(sub.args):
                is_out = idx in out_only or (vararg_out and idx >= 1)
                if not is_out:
                    continue
                if isinstance(arg, A.UnaryOp) and arg.op == "&" and \
                        isinstance(arg.operand, A.Ident):
                    writes.add(arg.operand.name)
                elif isinstance(arg, A.Ident):
                    writes.add(arg.name)
    return writes


def _stmt_reads_before_write(stmt: A.Stmt, pending: set[str], rbw: set[str]) -> None:
    """Sequentially scan a statement list, moving names from ``pending`` to
    ``rbw`` when read before any write. Conservative: condition reads in
    loops count as reads; a write anywhere in a compound statement only
    retires the name if the write dominates (we approximate: writes in
    straight-line code and loop conditions retire; writes inside if/while
    bodies do not)."""

    def note_reads(expr: A.Expr | None) -> None:
        if expr is None:
            return
        for name in expr_value_reads(expr):
            if name in pending:
                rbw.add(name)
                pending.discard(name)

    def note_cond_writes(expr: A.Expr | None) -> None:
        """A loop condition's assignments execute before every body entry."""
        if expr is None:
            return
        for name in expr_plain_writes(expr):
            pending.discard(name)

    if isinstance(stmt, A.Block):
        for inner in stmt.stmts:
            _stmt_reads_before_write(inner, pending, rbw)
    elif isinstance(stmt, A.DeclStmt):
        for d in stmt.decls:
            note_reads(d.init)
            pending.discard(d.name)  # re-declared inside: shadows outer
    elif isinstance(stmt, A.ExprStmt):
        if stmt.expr is not None:
            note_reads(stmt.expr)
            # Dominating straight-line writes retire pending names.
            for name in expr_plain_writes(stmt.expr):
                pending.discard(name)
    elif isinstance(stmt, A.If):
        note_reads(stmt.cond)
        branch_pending = set(pending)
        _stmt_reads_before_write(stmt.then, branch_pending, rbw)
        if stmt.otherwise is not None:
            branch_pending = set(pending)
            _stmt_reads_before_write(stmt.otherwise, branch_pending, rbw)
        # Writes under a condition don't dominate: keep pending as-is minus rbw.
        pending -= rbw
    elif isinstance(stmt, A.While):
        note_reads(stmt.cond)
        note_cond_writes(stmt.cond)
        body_pending = set(pending)
        _stmt_reads_before_write(stmt.body, body_pending, rbw)
        pending -= rbw
    elif isinstance(stmt, A.For):
        if stmt.init is not None:
            _stmt_reads_before_write(stmt.init, pending, rbw)
        note_reads(stmt.cond)
        body_pending = set(pending)
        _stmt_reads_before_write(stmt.body, body_pending, rbw)
        note_reads(stmt.step)
        pending -= rbw
    elif isinstance(stmt, A.Return):
        note_reads(stmt.value)
    # Break/Continue: nothing


def auto_firstprivate(region: A.Stmt, candidates: set[str]) -> set[str]:
    """Of ``candidates`` (free written variables), those read before being
    written inside the region — they need their pre-region value, i.e.
    firstprivate (paper §3.2 'the compiler tries to identify such variables
    automatically')."""
    pending = set(candidates)
    rbw: set[str] = set()
    _stmt_reads_before_write(region, pending, rbw)
    return rbw


def check_region_variables(
    func: A.FunctionDef, region: A.Stmt
) -> dict[str, T.CType]:
    """Types of the region's free variables; errors on undeclared names."""
    types = declared_types(func)
    info = analyze_region(region)
    result: dict[str, T.CType] = {}
    builtin_like = {"stdin", "stdout", "stderr", "NULL"}
    for name in sorted(info.free_vars):
        if name in builtin_like:
            continue
        if name not in types:
            # Could be a function name; callers filter those.
            continue
        result[name] = types[name]
    return result
