"""AST → source printer.

Used to display the translator's output (the analogue of the generated
CUDA file) and in round-trip tests of the parser.
"""

from __future__ import annotations

from . import cast as A
from . import ctypes as T
from ..errors import ReproError


def _type_prefix_suffix(ctype: T.CType) -> tuple[str, str]:
    """Split a C type into declaration prefix and array suffix."""
    suffix = ""
    while isinstance(ctype, T.Array):
        n = "" if ctype.size is None else str(ctype.size)
        suffix += f"[{n}]"
        ctype = ctype.base
    stars = ""
    while isinstance(ctype, T.Pointer):
        stars += "*"
        ctype = ctype.base
    return f"{ctype}{' ' if not stars else ' ' + stars}", suffix


def pprint_expr(expr: A.Expr) -> str:
    if isinstance(expr, A.IntLit):
        return str(expr.value)
    if isinstance(expr, A.FloatLit):
        text = repr(expr.value)
        return text
    if isinstance(expr, A.CharLit):
        ch = chr(expr.value)
        escaped = {"\n": "\\n", "\t": "\\t", "\0": "\\0", "'": "\\'", "\\": "\\\\"}.get(ch, ch)
        return f"'{escaped}'"
    if isinstance(expr, A.StringLit):
        body = expr.value.replace("\\", "\\\\").replace('"', '\\"')
        body = body.replace("\n", "\\n").replace("\t", "\\t").replace("\0", "\\0")
        return f'"{body}"'
    if isinstance(expr, A.Ident):
        return expr.name
    if isinstance(expr, A.BinOp):
        return f"({pprint_expr(expr.left)} {expr.op} {pprint_expr(expr.right)})"
    if isinstance(expr, A.UnaryOp):
        operand = pprint_expr(expr.operand)
        # Keep '-' + '-x' from fusing into the '--' token (same for
        # '+'/'&'): a space preserves the lexing of the original tree.
        sep = " " if operand and expr.op[-1] == operand[0] else ""
        return f"{expr.op}{sep}{operand}"
    if isinstance(expr, A.PostfixOp):
        return f"{pprint_expr(expr.operand)}{expr.op}"
    if isinstance(expr, A.Assign):
        return f"({pprint_expr(expr.target)} {expr.op} {pprint_expr(expr.value)})"
    if isinstance(expr, A.Conditional):
        return (
            f"({pprint_expr(expr.cond)} ? {pprint_expr(expr.then)}"
            f" : {pprint_expr(expr.otherwise)})"
        )
    if isinstance(expr, A.Call):
        args = ", ".join(pprint_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    if isinstance(expr, A.Index):
        return f"{pprint_expr(expr.base)}[{pprint_expr(expr.index)}]"
    if isinstance(expr, A.Cast):
        prefix, suffix = _type_prefix_suffix(expr.to_type)
        return f"({prefix.strip()}{suffix}) {pprint_expr(expr.operand)}"
    if isinstance(expr, A.SizeofType):
        prefix, suffix = _type_prefix_suffix(expr.of_type)
        return f"sizeof({prefix.strip()}{suffix})"
    raise ReproError(f"cannot print {type(expr).__name__}")


def pprint_stmt(stmt: A.Stmt, indent: int = 0) -> str:
    pad = "    " * indent
    lines: list[str] = []
    if stmt.pragma is not None:
        lines.append(f"{pad}{stmt.pragma.text}")
    if isinstance(stmt, A.Block):
        lines.append(f"{pad}{{")
        for inner in stmt.stmts:
            lines.append(pprint_stmt(inner, indent + 1))
        lines.append(f"{pad}}}")
    elif isinstance(stmt, A.DeclStmt):
        # One declarator per line: keeps print→parse→print idempotent.
        for d in stmt.decls:
            prefix, suffix = _type_prefix_suffix(d.ctype)
            init = f" = {pprint_expr(d.init)}" if d.init is not None else ""
            lines.append(f"{pad}{prefix}{d.name}{suffix}{init};")
    elif isinstance(stmt, A.ExprStmt):
        body = pprint_expr(stmt.expr) if stmt.expr is not None else ""
        lines.append(f"{pad}{body};")
    elif isinstance(stmt, A.If):
        lines.append(f"{pad}if ({pprint_expr(stmt.cond)})")
        lines.append(pprint_stmt(stmt.then, indent + 1))
        if stmt.otherwise is not None:
            lines.append(f"{pad}else")
            lines.append(pprint_stmt(stmt.otherwise, indent + 1))
    elif isinstance(stmt, A.While):
        lines.append(f"{pad}while ({pprint_expr(stmt.cond)})")
        lines.append(pprint_stmt(stmt.body, indent + 1))
    elif isinstance(stmt, A.For):
        init = pprint_stmt(stmt.init, 0).strip().rstrip(";") if stmt.init else ""
        cond = pprint_expr(stmt.cond) if stmt.cond is not None else ""
        step = pprint_expr(stmt.step) if stmt.step is not None else ""
        lines.append(f"{pad}for ({init}; {cond}; {step})")
        lines.append(pprint_stmt(stmt.body, indent + 1))
    elif isinstance(stmt, A.Return):
        value = f" {pprint_expr(stmt.value)}" if stmt.value is not None else ""
        lines.append(f"{pad}return{value};")
    elif isinstance(stmt, A.Break):
        lines.append(f"{pad}break;")
    elif isinstance(stmt, A.Continue):
        lines.append(f"{pad}continue;")
    else:
        raise ReproError(f"cannot print {type(stmt).__name__}")
    return "\n".join(lines)


def pprint_function(func: A.FunctionDef, qualifier: str = "") -> str:
    prefix, _ = _type_prefix_suffix(func.return_type)
    params = ", ".join(
        f"{_type_prefix_suffix(p.ctype)[0]}{p.name}" for p in func.params
    )
    head = f"{qualifier}{prefix}{func.name}({params})"
    return head + "\n" + pprint_stmt(func.body, 0)


def pprint_program(program: A.Program) -> str:
    return "\n\n".join(pprint_function(f) for f in program.functions) + "\n"
