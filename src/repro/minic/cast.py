"""Abstract syntax tree for the mini-C dialect.

Nodes carry ``line`` for diagnostics. Statement nodes may carry an attached
:class:`Pragma` (the ``#pragma mapreduce`` directive that immediately
precedes them in source order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from .ctypes import CType


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)

    def children(self) -> Iterator["Node"]:
        return iter(())

    def walk(self) -> Iterator["Node"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class CharLit(Expr):
    value: int  # the character code


@dataclass
class StringLit(Expr):
    value: str


@dataclass
class Ident(Expr):
    name: str


@dataclass
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def children(self) -> Iterator[Node]:
        yield self.left
        yield self.right


@dataclass
class UnaryOp(Expr):
    """Prefix unary: ``- ! ~ * & ++ --``."""

    op: str
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class PostfixOp(Expr):
    """Postfix ``++``/``--``."""

    op: str
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class Assign(Expr):
    """Assignment, possibly compound (``op`` is '=', '+=', ...)."""

    op: str
    target: Expr
    value: Expr

    def children(self) -> Iterator[Node]:
        yield self.target
        yield self.value


@dataclass
class Conditional(Expr):
    cond: Expr
    then: Expr
    otherwise: Expr

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        yield self.otherwise


@dataclass
class Call(Expr):
    func: str
    args: list[Expr]

    def children(self) -> Iterator[Node]:
        yield from self.args


@dataclass
class Index(Expr):
    base: Expr
    index: Expr

    def children(self) -> Iterator[Node]:
        yield self.base
        yield self.index


@dataclass
class Cast(Expr):
    to_type: CType
    operand: Expr

    def children(self) -> Iterator[Node]:
        yield self.operand


@dataclass
class SizeofType(Expr):
    of_type: CType


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pragma: Optional["Pragma"] = field(default=None, kw_only=True)


@dataclass
class Declarator:
    """One declared name within a declaration statement."""

    name: str
    ctype: CType
    init: Expr | None = None
    line: int = 0


@dataclass
class DeclStmt(Stmt):
    decls: list[Declarator] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        for d in self.decls:
            if d.init is not None:
                yield d.init


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        if self.expr is not None:
            yield self.expr


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)

    def children(self) -> Iterator[Node]:
        yield from self.stmts


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    otherwise: Stmt | None = None

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.then
        if self.otherwise is not None:
            yield self.otherwise


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.cond
        yield self.body


@dataclass
class For(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Expr | None = None
    body: Stmt = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        if self.init is not None:
            yield self.init
        if self.cond is not None:
            yield self.cond
        if self.step is not None:
            yield self.step
        yield self.body


@dataclass
class Return(Stmt):
    value: Expr | None = None

    def children(self) -> Iterator[Node]:
        if self.value is not None:
            yield self.value


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------


@dataclass
class Param:
    name: str
    ctype: CType


@dataclass
class FunctionDef(Node):
    name: str = ""
    return_type: CType = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    body: Block = None  # type: ignore[assignment]

    def children(self) -> Iterator[Node]:
        yield self.body


@dataclass
class Pragma(Node):
    """A raw ``#pragma`` line; parsed further by ``repro.directives``."""

    text: str = ""


@dataclass
class Program(Node):
    functions: list[FunctionDef] = field(default_factory=list)
    source: str = ""

    def children(self) -> Iterator[Node]:
        yield from self.functions

    def function(self, name: str) -> FunctionDef:
        for f in self.functions:
            if f.name == name:
                return f
        raise KeyError(f"no function {name!r} in program")

    @property
    def main(self) -> FunctionDef:
        return self.function("main")
