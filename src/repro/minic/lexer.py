"""Tokenizer for the mini-C dialect.

``#pragma`` lines become PRAGMA tokens (with ``\\`` line continuations
folded); ``#include`` lines are skipped. ``//`` and ``/* */`` comments are
stripped.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import LexError

KEYWORDS = frozenset(
    [
        "int", "char", "float", "double", "long", "short", "unsigned",
        "void", "size_t",
        "if", "else", "while", "for", "return", "break", "continue",
        "sizeof", "const", "struct",
    ]
)

# Longest-first so multi-char operators win.
OPERATORS = [
    "<<=", ">>=", "...",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>", "->",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident' | 'keyword' | 'int' | 'float' | 'char' | 'string' | 'op' | 'pragma' | 'eof'
    value: str
    line: int
    col: int

    def __repr__(self) -> str:  # compact for test failures
        return f"Token({self.kind}, {self.value!r}, L{self.line})"


_NUMBER_RE = re.compile(
    r"""
    (?:0[xX][0-9a-fA-F]+)              # hex int
    | (?:\d+\.\d*(?:[eE][+-]?\d+)?[fF]?)  # 12. / 12.5 / 1.5e3
    | (?:\.\d+(?:[eE][+-]?\d+)?[fF]?)     # .5
    | (?:\d+[eE][+-]?\d+[fF]?)            # 1e9
    | (?:\d+[fF])                          # 3f
    | (?:\d+[uUlL]*)                       # plain int w/ suffixes
    """,
    re.VERBOSE,
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def _unescape(body: str, line: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            if i + 1 >= len(body):
                raise LexError("dangling escape in literal", line)
            esc = body[i + 1]
            if esc not in _ESCAPES:
                raise LexError(f"unsupported escape \\{esc}", line)
            out.append(_ESCAPES[esc])
            i += 2
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source into a list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def col() -> int:
        return i - line_start + 1

    while i < n:
        ch = source[i]
        # Newlines / whitespace
        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue
        # Comments
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j == -1 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j == -1:
                raise LexError("unterminated block comment", line)
            line += source.count("\n", i, j)
            i = j + 2
            continue
        # Preprocessor lines
        if ch == "#":
            j = i
            # Fold '\'-continued lines into one logical line.
            parts: list[str] = []
            while True:
                eol = source.find("\n", j)
                if eol == -1:
                    eol = n
                segment = source[j:eol]
                stripped = segment.rstrip()
                if stripped.endswith("\\"):
                    parts.append(stripped[:-1])
                    j = eol + 1
                    line += 1
                else:
                    parts.append(segment)
                    break
            logical = " ".join(p.strip() for p in parts).strip()
            if logical.startswith("#pragma"):
                tokens.append(Token("pragma", logical, line, col()))
            elif logical.startswith(("#include", "#define")):
                pass  # headers are modelled by the stdlib; simple defines unsupported
            else:
                raise LexError(f"unsupported preprocessor line: {logical!r}", line)
            i = eol
            continue
        # String literal
        if ch == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    buf.append(source[j : j + 2])
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line)
            tokens.append(Token("string", _unescape("".join(buf), line), line, col()))
            i = j + 1
            continue
        # Char literal
        if ch == "'":
            j = source.find("'", i + 1)
            if source[i + 1] == "\\":
                j = source.find("'", i + 3)
            if j == -1:
                raise LexError("unterminated char literal", line)
            body = _unescape(source[i + 1 : j], line)
            if len(body) != 1:
                raise LexError(f"bad char literal {source[i:j+1]!r}", line)
            tokens.append(Token("char", body, line, col()))
            i = j + 1
            continue
        # Numbers
        m = _NUMBER_RE.match(source, i)
        if m and ch.isdigit() or (ch == "." and m):
            text = m.group(0)
            kind = "float" if any(c in text for c in ".eEfF") and not text.startswith("0x") else "int"
            # hex has no dot/e markers issue
            if text.lower().startswith("0x"):
                kind = "int"
            tokens.append(Token(kind, text, line, col()))
            i = m.end()
            continue
        # Identifiers / keywords
        m = _IDENT_RE.match(source, i)
        if m:
            text = m.group(0)
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col()))
            i = m.end()
            continue
        # Operators
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line, col()))
                i += len(op)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, col())

    tokens.append(Token("eof", "", line, col()))
    return tokens
