"""Closure-compilation backend for mini-C.

The tree-walking interpreter dispatches ``getattr(self, f"_eval_...")``
per AST node and signals ``break``/``continue``/``return`` with
exceptions — per-*record* costs that dominate wall-clock on the map and
combine hot paths. This module walks a :class:`~repro.minic.cast.Program`
**once** and emits nested Python closures per node:

* operators are pre-resolved to per-op functions (no ``op`` string
  comparisons at run time),
* variables live in flat frame *slots* resolved lexically at compile
  time (no scope-chain dict lookups),
* loops use Python-native control flow with sentinel return values
  (``_BREAK``/``_CONT``/``_Return``) instead of exceptions,
* :class:`~repro.minic.interpreter.ExecCounters` accounting is batched
  per basic block: every increment that is unconditional for a run of
  simple statements is folded into one flush at the head of the run.

Every closure has the signature ``fn(rt, frame)`` where ``rt`` is the
shared :class:`Runtime` (counters, builtins, globals, the facade
interpreter handed to builtins, the GPU charge hook) and ``frame`` is a
flat ``list`` of :class:`~repro.minic.values.Cell` slots.

Counter totals and functional outputs are bit-identical to the
tree-walker for runs that complete; aborted runs (``CRuntimeError``)
may differ only in counts attributable to the aborted basic block.

The public entry points are :class:`CompiledProgram` (whole programs,
``main()``-style execution) and :class:`CompiledSuite` (a single
statement executed against a facade interpreter's live environment —
the GPU kernel-body case). Both are cached per program / per statement
by :mod:`repro.minic.cache`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import CRuntimeError
from . import cast as A
from . import ctypes as T
from .values import NULL, Buffer, Cell, Ptr, ScalarRef, float_to_int, truthy

# --------------------------------------------------------------------------
# Control-flow sentinels
# --------------------------------------------------------------------------

#: Statement closures return None (fell through), one of these two
#: sentinels, or a _Return box. Plain ``is`` checks replace the
#: tree-walker's exception unwinding.
_BREAK = object()
_CONT = object()


class _Return:
    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value


_RETURN_NONE = _Return(None)


# --------------------------------------------------------------------------
# Runtime context
# --------------------------------------------------------------------------


class Runtime:
    """Mutable per-execution state shared by all closures of one run.

    ``facade`` is the :class:`~repro.minic.interpreter.Interpreter`
    (or the GPU engine's lean lane facade) whose builtins/streams/heap
    the compiled code must use — builtins keep their ``fn(interp,
    args)`` signature unchanged. ``charge`` is the facade's
    ``_charge_access`` attribute when present — on the GPU that is a
    closure bound from the launch's :class:`~repro.gpu.charging.
    ChargeHook` — else None.
    """

    __slots__ = ("facade", "counters", "builtins", "globals", "charge",
                 "funcs", "steps", "max_steps")

    def __init__(self, facade: Any, funcs: dict[str, Callable]):
        self.facade = facade
        self.counters = facade.counters
        self.builtins = facade.builtins
        self.globals = facade._globals
        self.charge = getattr(facade, "_charge_access", None)
        self.funcs = funcs
        self.steps = facade._steps
        self.max_steps = facade.max_steps


# --------------------------------------------------------------------------
# Batched counter accounting
# --------------------------------------------------------------------------


class _Counts:
    """Compile-time accumulator of unconditional counter increments."""

    __slots__ = ("ops", "loads", "stores", "branches", "calls")

    def __init__(self) -> None:
        self.ops = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.calls = 0

    def add(self, other: "_Counts") -> None:
        self.ops += other.ops
        self.loads += other.loads
        self.stores += other.stores
        self.branches += other.branches
        self.calls += other.calls


def _flush_pairs(cnt: _Counts) -> list[tuple[str, int]]:
    return [(attr, value)
            for attr in ("ops", "loads", "stores", "branches", "calls")
            if (value := getattr(cnt, attr))]


def _make_flush(cnt: _Counts) -> Callable[[Any], None] | None:
    """A single multi-attribute ExecCounters increment, or None if empty.

    The increments are exec-stamped straight-line code: flushes run once
    per executed statement run / loop iteration, so five zero-checks per
    call add up. Attribute names and values are compile-time constants
    (fixed field list, int counts), never program text."""
    pairs = _flush_pairs(cnt)
    if not pairs:
        return None
    body = "".join(f"    c.{attr} += {value}\n" for attr, value in pairs)
    env: dict[str, Any] = {}
    exec(compile(f"def flush(c):\n{body}", "<minic-flush>", "exec"), env)
    return env["flush"]


def _codegen_call_site(specs: tuple, name: str, void: bool) -> Callable:
    """exec-compile one call site into straight-line argument code.

    Call arguments are the hottest spot in compiled programs (every
    ``getWord``/``scanf``/``printf`` in a record loop lands here), so
    instead of looping over the spec tuple at run time we stamp out one
    Python function per call site with each argument fetched inline:

    * kind 0 — frame-slot read with the null-cell check and Buffer
      decay expanded in place;
    * kind 1 — compile-time constant, referenced straight from the
      generated function's globals (zero per-call work);
    * kind 2 — a generic compiled-expression closure invocation.

    Evaluation stays left-to-right, matching the tree-walker. Nothing
    from the source program is interpolated into the generated text —
    slots, constants, closures and messages all travel via the exec
    globals dict — so arbitrary identifiers cannot inject code.
    """
    env: dict[str, Any] = {
        "CRuntimeError": CRuntimeError,
        "Buffer": Buffer,
        "_name": name,
        "_undef_msg": f"call to undefined function {name!r}",
    }
    body: list[str] = []
    argv: list[str] = []
    for i, (kind, a, b) in enumerate(specs):
        if kind == 0:
            env[f"_s{i}"] = a
            env[f"_m{i}"] = f"undeclared identifier {b!r}"
            body += [
                f"        c{i} = frame[_s{i}]",
                f"        if c{i} is None:",
                f"            raise CRuntimeError(_m{i})",
                f"        v{i} = c{i}.value",
                f"        if v{i}.__class__ is Buffer:",
                f"            v{i} = v{i}.decay_ptr()",
            ]
            argv.append(f"v{i}")
        elif kind == 1:
            env[f"_k{i}"] = a
            argv.append(f"_k{i}")
        else:
            env[f"_f{i}"] = a
            body.append(f"        v{i} = _f{i}(rt, frame)")
            argv.append(f"v{i}")
    args = "[" + ", ".join(argv) + "]"
    ret = "None" if void else "result"
    # The builtin lookup is memoized per call site on the identity of
    # rt.builtins: builtins dicts are built before an interpreter runs
    # and never mutated afterwards, and the strong reference pins the
    # dict so the identity check cannot alias a recycled id.
    src = "\n".join([
        "def _factory():",
        "    last_bi = None",
        "    last_fn = None",
        "    def call(rt, frame):",
        "        nonlocal last_bi, last_fn",
        *body,
        "        bi = rt.builtins",
        "        if bi is not last_bi:",
        "            last_bi = bi",
        "            last_fn = bi.get(_name)",
        "        builtin = last_fn",
        "        if builtin is not None:",
        f"            result = builtin(rt.facade, {args})",
        f"            return {ret}",
        "        func = rt.funcs.get(_name)",
        "        if func is None:",
        "            raise CRuntimeError(_undef_msg)",
        f"        result = func(rt, {args})",
        f"        return {ret}",
        "    return call",
    ])
    exec(compile(src, "<minic-call-site>", "exec"), env)
    return env["_factory"]()


# --------------------------------------------------------------------------
# Pre-resolved operators (tree-walker _binop/_ptr_binop semantics)
# --------------------------------------------------------------------------


def _ptr_binop(op: str, left: Any, right: Any) -> Any:
    if op == "+" and isinstance(left, Ptr):
        return left.add(int(right))
    if op == "+" and isinstance(right, Ptr):
        return right.add(int(left))
    if op == "-" and isinstance(left, Ptr) and isinstance(right, Ptr):
        if left.buffer is not right.buffer:
            raise CRuntimeError("pointer difference across buffers")
        return left.offset - right.offset
    if op == "-" and isinstance(left, Ptr):
        return left.add(-int(right))
    if op in ("==", "!="):
        same = (
            isinstance(left, Ptr)
            and isinstance(right, Ptr)
            and left.buffer is right.buffer
            and (left.buffer is None or left.offset == right.offset)
        )
        if isinstance(left, Ptr) and isinstance(right, int):
            same = left.is_null and right == 0
        if isinstance(right, Ptr) and isinstance(left, int):
            same = right.is_null and left == 0
        return int(same if op == "==" else not same)
    raise CRuntimeError(f"unsupported pointer operation {op!r}")


def _c_div(left: Any, right: Any) -> Any:
    if right == 0:
        raise CRuntimeError("division by zero")
    if isinstance(left, int) and isinstance(right, int):
        q = abs(left) // abs(right)
        return q if (left < 0) == (right < 0) else -q
    return left / right


def _c_mod(left: Any, right: Any) -> Any:
    if right == 0:
        raise CRuntimeError("modulo by zero")
    r = abs(left) % abs(right)
    return r if left >= 0 else -r


def _mk_binop(op: str, apply: Callable[[Any, Any], Any]) -> Callable:
    # fp check precedes pointer dispatch, exactly like Interpreter._binop.
    # Exact int/float operand classes take the fast paths (the interpreter
    # only ever produces exact ints/floats/Ptrs); the generic tail keeps
    # the tree-walker's isinstance semantics for anything else.
    def binop(rt: Runtime, left: Any, right: Any) -> Any:
        lc = left.__class__
        rc = right.__class__
        if lc is int:
            if rc is int:
                return apply(left, right)
            if rc is float:
                rt.counters.fp_ops += 1
                return apply(left, right)
        elif lc is float:
            if rc is int or rc is float:
                rt.counters.fp_ops += 1
                return apply(left, right)
        if isinstance(left, float) or isinstance(right, float):
            rt.counters.fp_ops += 1
        if isinstance(left, Ptr) or isinstance(right, Ptr):
            return _ptr_binop(op, left, right)
        return apply(left, right)

    return binop


#: Raw two-operand appliers — the int/int (and generic) arithmetic the
#: dispatching wrapper in :data:`_BINOPS` falls through to. The binary
#: closures inline these directly when both operands are exact ints,
#: skipping one call level on the hottest path.
_APPLY: dict[str, Callable] = {
    "+": lambda l, r: l + r,
    "-": lambda l, r: l - r,
    "*": lambda l, r: l * r,
    "/": _c_div,
    "%": _c_mod,
    "==": lambda l, r: int(l == r),
    "!=": lambda l, r: int(l != r),
    "<": lambda l, r: int(l < r),
    ">": lambda l, r: int(l > r),
    "<=": lambda l, r: int(l <= r),
    ">=": lambda l, r: int(l >= r),
    "&": lambda l, r: int(l) & int(r),
    "|": lambda l, r: int(l) | int(r),
    "^": lambda l, r: int(l) ^ int(r),
    "<<": lambda l, r: int(l) << int(r),
    ">>": lambda l, r: int(l) >> int(r),
}

_BINOPS: dict[str, Callable] = {
    op: _mk_binop(op, fn) for op, fn in _APPLY.items()
}


def _binop_fn(op: str) -> Callable:
    try:
        return _BINOPS[op]
    except KeyError:
        raise CRuntimeError(f"unsupported operator {op!r}") from None


def _as_ptr(value: Any) -> Ptr:
    if isinstance(value, Ptr):
        if value.buffer is None:
            raise CRuntimeError("null pointer indexed")
        return value
    if isinstance(value, Buffer):
        return Ptr(value, 0)
    raise CRuntimeError(f"expected a pointer, got {value!r}")


def _noop(rt: Runtime, frame: list) -> None:
    return None


def _param_coerce(ctype: T.CType) -> Callable[[Any], Any]:
    if ctype.is_float:
        return lambda a: a if isinstance(a, (Ptr, Buffer)) else float(a)
    if ctype.is_integer:
        return lambda a: a if isinstance(a, (Ptr, Buffer)) else int(a)
    return lambda a: a


def _flatten_array(ctype: T.Array, name: str) -> tuple[T.CType, int, int | None]:
    """(element type, flat size, inner row length) — 2-D max, row-major."""
    base = ctype.base
    size = ctype.size or 0
    inner: int | None = None
    if isinstance(base, T.Array):
        inner = base.size or 0
        size *= inner
        base = base.base
        if isinstance(base, T.Array):
            raise CRuntimeError(
                f"arrays of more than two dimensions unsupported ({name})"
            )
    return base, size, inner


# --------------------------------------------------------------------------
# The compiler
# --------------------------------------------------------------------------


class _FunctionCompiler:
    """Compiles one function body (or one free-standing suite) to closures.

    Slot resolution is lexical: every declaration gets a fresh frame
    slot; a name not declared in any enclosing compile-time scope is a
    *free* variable, bound once at entry (from the program globals for
    functions, from the facade's live scope chain for suites). A free
    name that resolves to nothing stays ``None`` in its slot and raises
    the tree-walker's "undeclared identifier" lazily on first access —
    preserving reachability semantics.
    """

    def __init__(self, cp: "CompiledProgram"):
        self.cp = cp
        self.scopes: list[dict[str, int]] = []
        self.nslots = 0
        self.free: dict[str, int] = {}
        # Declared ctype per local slot (non-array decls only). A
        # declared cell's value class is an invariant — every store path
        # coerces through the declared ctype and expression values never
        # hold raw Buffers — so ident/assign/incdec closures compiled
        # against a recorded slot skip the Buffer-decay check and the
        # per-store ctype dispatch. Free slots (kernel snapshot globals)
        # are absent here and keep the generic closures.
        self.slot_ctype: dict[int, T.CType] = {}
        # Caller-supplied declared ctypes for free names (kernel suites:
        # the KernelIR's variable table). A free slot whose runtime cell
        # is guaranteed to carry this ctype gets the same specialized
        # closures as a local declaration.
        self.free_ctypes: dict[str, T.CType] = {}

    # -- slots -----------------------------------------------------------

    def _new_slot(self) -> int:
        slot = self.nslots
        self.nslots += 1
        return slot

    def declare(self, name: str) -> int:
        slot = self._new_slot()
        self.scopes[-1][name] = slot
        return slot

    def slot_for(self, name: str) -> int:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        slot = self.free.get(name)
        if slot is None:
            slot = self._new_slot()
            self.free[name] = slot
            ct = self.free_ctypes.get(name)
            if ct is not None:
                self.slot_ctype[slot] = ct
        return slot

    # -- statements ------------------------------------------------------

    def compile_stmt(self, stmt: A.Stmt) -> tuple[Callable, _Counts]:
        method = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if method is None:
            raise CRuntimeError(f"cannot execute {type(stmt).__name__}")
        return method(stmt)

    def _flushed_stmt(self, stmt: A.Stmt) -> Callable:
        """A statement closure that flushes its own batched counts.

        The counter increments are exec-fused into the statement
        wrapper, saving a flush-closure call per execution."""
        fn, cnt = self.compile_stmt(stmt)
        pairs = _flush_pairs(cnt)
        if not pairs:
            return fn
        body = "".join(f"    c.{attr} += {value}\n" for attr, value in pairs)
        src = (f"def run(rt, frame):\n"
               f"    c = rt.counters\n{body}"
               f"    return fn(rt, frame)\n")
        env: dict[str, Any] = {"fn": fn}
        exec(compile(src, "<minic-flush>", "exec"), env)
        return env["run"]

    def _stmt_Block(self, stmt: A.Block) -> tuple[Callable, _Counts]:
        self.scopes.append({})
        seq: list[Callable] = []
        run_start: int | None = None
        pending = _Counts()

        def close_run() -> None:
            nonlocal run_start, pending
            if run_start is not None:
                pairs = _flush_pairs(pending)
                if pairs:
                    body = "".join(f"    c.{attr} += {value}\n"
                                   for attr, value in pairs)
                    env: dict[str, Any] = {}
                    if run_start < len(seq):
                        # Fuse the run's counts into its first statement
                        # (simple statements never signal an early exit).
                        env["fn"] = seq[run_start]
                        src = (f"def flush_stmt(rt, frame):\n"
                               f"    c = rt.counters\n{body}"
                               f"    return fn(rt, frame)\n")
                        exec(compile(src, "<minic-flush>", "exec"), env)
                        seq[run_start] = env["flush_stmt"]
                    else:
                        src = (f"def flush_stmt(rt, frame):\n"
                               f"    c = rt.counters\n{body}"
                               f"    return None\n")
                        exec(compile(src, "<minic-flush>", "exec"), env)
                        seq.append(env["flush_stmt"])
                run_start = None
                pending = _Counts()

        for inner in stmt.stmts:
            fn, cnt = self.compile_stmt(inner)
            if isinstance(inner, (A.DeclStmt, A.ExprStmt)):
                # Simple statements cannot exit the block early: their
                # unconditional counts batch into one flush at run head.
                if run_start is None:
                    run_start = len(seq)
                pending.add(cnt)
                if fn is not _noop:
                    seq.append(fn)
            else:
                close_run()
                seq.append(fn)
        close_run()
        self.scopes.pop()

        if not seq:
            return _noop, _Counts()
        if len(seq) == 1:
            return seq[0], _Counts()
        fns = tuple(seq)

        def block(rt: Runtime, frame: list) -> Any:
            for fn in fns:
                sig = fn(rt, frame)
                if sig is not None:
                    return sig
            return None

        return block, _Counts()

    def _stmt_DeclStmt(self, stmt: A.DeclStmt) -> tuple[Callable, _Counts]:
        cnt = _Counts()
        fns: list[Callable] = []
        for decl in stmt.decls:
            init_fn = None
            if decl.init is not None:
                init_fn, icnt = self.compile_expr(decl.init)
                cnt.add(icnt)
            # The slot is created *after* compiling the initializer, so
            # `int x = x + 1;` resolves the rhs to the outer binding,
            # matching the tree-walker's execution-order declare.
            slot = self.declare(decl.name)
            ctype = decl.ctype
            self.slot_ctype[slot] = ctype
            if isinstance(ctype, T.Array):
                if isinstance(ctype.base, T.Array) and \
                        isinstance(ctype.base.base, T.Array):
                    # The tree-walker evaluates the initializer, then
                    # raises from _alloc_array at execution time.
                    def decl_3d(rt: Runtime, frame: list,
                                _init: Callable | None = init_fn,
                                _name: str = decl.name) -> None:
                        if _init is not None:
                            _init(rt, frame)
                        raise CRuntimeError(
                            "arrays of more than two dimensions unsupported "
                            f"({_name})"
                        )

                    fns.append(decl_3d)
                    continue
                base, size, inner = _flatten_array(ctype, decl.name)
                if init_fn is not None:
                    # The tree-walker allocates, then rejects the
                    # initializer — after evaluating it.
                    def decl_arr_bad(rt: Runtime, frame: list,
                                     _init: Callable = init_fn,
                                     _name: str = decl.name) -> None:
                        _init(rt, frame)
                        raise CRuntimeError(
                            f"array initializers unsupported ({_name})"
                        )

                    fns.append(decl_arr_bad)
                    continue

                def decl_arr(rt: Runtime, frame: list, _slot: int = slot,
                             _base: T.CType = base, _size: int = size,
                             _inner: int | None = inner,
                             _name: str = decl.name,
                             _ctype: T.CType = ctype) -> None:
                    buf = Buffer(_base, _size, label=_name)
                    buf.inner_dim = _inner
                    frame[_slot] = Cell(value=buf, ctype=_ctype)
                    return None

                fns.append(decl_arr)
            else:
                if ctype.is_pointer:
                    default: Any = NULL
                elif ctype.is_float:
                    default = 0.0
                else:
                    default = 0
                if init_fn is not None:
                    if ctype.is_float:
                        coerce: Callable[[Any], Any] = float
                    elif ctype.is_integer:
                        coerce = int
                    else:
                        coerce = lambda v: v  # noqa: E731

                    # A void-call initializer yields None; the tree-walker
                    # then keeps the declaration default.
                    def decl_init(rt: Runtime, frame: list, _slot: int = slot,
                                  _init: Callable = init_fn,
                                  _coerce: Callable = coerce,
                                  _default: Any = default,
                                  _ctype: T.CType = ctype) -> None:
                        value = _init(rt, frame)
                        frame[_slot] = Cell(
                            value=_default if value is None else _coerce(value),
                            ctype=_ctype,
                        )
                        return None

                    fns.append(decl_init)
                else:
                    def decl_plain(rt: Runtime, frame: list,
                                   _slot: int = slot, _default: Any = default,
                                   _ctype: T.CType = ctype) -> None:
                        frame[_slot] = Cell(value=_default, ctype=_ctype)
                        return None

                    fns.append(decl_plain)

        if len(fns) == 1:
            return fns[0], cnt
        seq = tuple(fns)

        def decls(rt: Runtime, frame: list) -> None:
            for fn in seq:
                fn(rt, frame)
            return None

        return decls, cnt

    def _stmt_ExprStmt(self, stmt: A.ExprStmt) -> tuple[Callable, _Counts]:
        expr = stmt.expr
        if expr is None:
            return _noop, _Counts()
        # Statement-position expressions discard their value; the hot
        # forms get void closures that return None directly (a legal
        # "fell through" statement signal), skipping both the result
        # read-back and the discard wrapper.
        if isinstance(expr, A.Assign):
            return self._compile_assign(expr, void=True)
        if isinstance(expr, A.PostfixOp) and isinstance(expr.operand, A.Ident):
            cnt = _Counts()
            cnt.ops += 1
            delta = 1 if expr.op == "++" else -1
            return self._incdec_ident(expr.operand.name, delta,
                                      post=True, void=True), cnt
        if isinstance(expr, A.UnaryOp) and expr.op in ("++", "--") \
                and isinstance(expr.operand, A.Ident):
            delta = 1 if expr.op == "++" else -1
            return self._incdec_ident(expr.operand.name, delta,
                                      post=False, void=True), _Counts()
        if isinstance(expr, A.Call):
            return self._compile_call(expr, void=True)
        fn, cnt = self.compile_expr(expr)

        def run(rt: Runtime, frame: list) -> None:
            fn(rt, frame)
            return None

        return run, cnt

    def _stmt_If(self, stmt: A.If) -> tuple[Callable, _Counts]:
        cond_fn, cnt = self.compile_expr(stmt.cond)
        cnt.branches += 1
        flush = _make_flush(cnt)
        assert flush is not None  # branches >= 1
        then_fn = self._flushed_stmt(stmt.then)
        if stmt.otherwise is not None:
            else_fn = self._flushed_stmt(stmt.otherwise)

            def if_else(rt: Runtime, frame: list) -> Any:
                flush(rt.counters)
                cond = cond_fn(rt, frame)
                if cond if cond.__class__ is int else truthy(cond):
                    return then_fn(rt, frame)
                return else_fn(rt, frame)

            return if_else, _Counts()

        def if_only(rt: Runtime, frame: list) -> Any:
            flush(rt.counters)
            cond = cond_fn(rt, frame)
            if cond if cond.__class__ is int else truthy(cond):
                return then_fn(rt, frame)
            return None

        return if_only, _Counts()

    def _stmt_While(self, stmt: A.While) -> tuple[Callable, _Counts]:
        cond_fn, cnt = self.compile_expr(stmt.cond)
        cnt.branches += 1
        cond_flush = _make_flush(cnt)
        assert cond_flush is not None
        body_fn = self._flushed_stmt(stmt.body)

        def while_loop(rt: Runtime, frame: list) -> Any:
            counters = rt.counters
            max_steps = rt.max_steps
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > max_steps:
                    raise CRuntimeError(
                        f"execution exceeded {max_steps} steps (runaway loop?)"
                    )
                cond_flush(counters)
                cond = cond_fn(rt, frame)
                if not (cond if cond.__class__ is int else truthy(cond)):
                    return None
                sig = body_fn(rt, frame)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONT:
                        return sig

        return while_loop, _Counts()

    def _stmt_For(self, stmt: A.For) -> tuple[Callable, _Counts]:
        self.scopes.append({})
        init_fn = self._flushed_stmt(stmt.init) if stmt.init is not None else None
        cond_fn = None
        cond_flush = None
        if stmt.cond is not None:
            cond_fn, ccnt = self.compile_expr(stmt.cond)
            ccnt.branches += 1
            cond_flush = _make_flush(ccnt)
        step_fn = None
        step_flush = None
        if stmt.step is not None:
            step_fn, scnt = self.compile_expr(stmt.step)
            step_flush = _make_flush(scnt)
        body_fn = self._flushed_stmt(stmt.body)
        self.scopes.pop()

        def for_loop(rt: Runtime, frame: list) -> Any:
            counters = rt.counters
            max_steps = rt.max_steps
            if init_fn is not None:
                init_fn(rt, frame)
            while True:
                rt.steps = steps = rt.steps + 1
                if steps > max_steps:
                    raise CRuntimeError(
                        f"execution exceeded {max_steps} steps (runaway loop?)"
                    )
                if cond_fn is not None:
                    cond_flush(counters)
                    cond = cond_fn(rt, frame)
                    if not (cond if cond.__class__ is int
                            else truthy(cond)):
                        return None
                sig = body_fn(rt, frame)
                if sig is not None:
                    if sig is _BREAK:
                        return None
                    if sig is not _CONT:
                        return sig
                # break skips the step; continue runs it (tree-walker order)
                if step_fn is not None:
                    if step_flush is not None:
                        step_flush(counters)
                    step_fn(rt, frame)

        return for_loop, _Counts()

    def _stmt_Return(self, stmt: A.Return) -> tuple[Callable, _Counts]:
        if stmt.value is None:
            def ret_void(rt: Runtime, frame: list) -> _Return:
                return _RETURN_NONE

            return ret_void, _Counts()
        value_fn, cnt = self.compile_expr(stmt.value)
        flush = _make_flush(cnt)
        if flush is None:
            def ret_plain(rt: Runtime, frame: list) -> _Return:
                return _Return(value_fn(rt, frame))

            return ret_plain, _Counts()

        def ret(rt: Runtime, frame: list) -> _Return:
            flush(rt.counters)
            return _Return(value_fn(rt, frame))

        return ret, _Counts()

    def _stmt_Break(self, stmt: A.Break) -> tuple[Callable, _Counts]:
        def brk(rt: Runtime, frame: list) -> Any:
            return _BREAK

        return brk, _Counts()

    def _stmt_Continue(self, stmt: A.Continue) -> tuple[Callable, _Counts]:
        def cont(rt: Runtime, frame: list) -> Any:
            return _CONT

        return cont, _Counts()

    # -- expressions -----------------------------------------------------

    def compile_expr(self, expr: A.Expr) -> tuple[Callable, _Counts]:
        method = getattr(self, f"_expr_{type(expr).__name__}", None)
        if method is None:
            raise CRuntimeError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    def _flushed_expr(self, expr: A.Expr) -> Callable:
        """An expression closure that flushes its own batched counts —
        for conditionally-evaluated subexpressions (&&/|| rhs, ?: arms)."""
        fn, cnt = self.compile_expr(expr)
        flush = _make_flush(cnt)
        if flush is None:
            return fn

        def run(rt: Runtime, frame: list) -> Any:
            flush(rt.counters)
            return fn(rt, frame)

        return run

    def _const(self, value: Any) -> tuple[Callable, _Counts]:
        def const(rt: Runtime, frame: list) -> Any:
            return value

        return const, _Counts()

    def _expr_IntLit(self, expr: A.IntLit) -> tuple[Callable, _Counts]:
        return self._const(expr.value)

    def _expr_FloatLit(self, expr: A.FloatLit) -> tuple[Callable, _Counts]:
        return self._const(expr.value)

    def _expr_CharLit(self, expr: A.CharLit) -> tuple[Callable, _Counts]:
        return self._const(expr.value)

    def _expr_SizeofType(self, expr: A.SizeofType) -> tuple[Callable, _Counts]:
        return self._const(expr.of_type.sizeof())

    def _expr_StringLit(self, expr: A.StringLit) -> tuple[Callable, _Counts]:
        # One Buffer per literal per program, baked in at compile time.
        ptr = self.cp.strlit_ptr(expr)
        return self._const(ptr)

    def _expr_Ident(self, expr: A.Ident) -> tuple[Callable, _Counts]:
        slot = self.slot_for(expr.name)
        name = expr.name
        decl_ct = self.slot_ctype.get(slot)
        if decl_ct is not None:
            if isinstance(decl_ct, T.Array):
                def ident_array(rt: Runtime, frame: list) -> Any:
                    cell = frame[slot]
                    if cell is None:
                        raise CRuntimeError(
                            f"undeclared identifier {name!r}")
                    return cell.value.decay_ptr()

                return ident_array, _Counts()

            def ident_scalar(rt: Runtime, frame: list) -> Any:
                cell = frame[slot]
                if cell is None:
                    raise CRuntimeError(f"undeclared identifier {name!r}")
                return cell.value

            return ident_scalar, _Counts()

        def ident(rt: Runtime, frame: list) -> Any:
            cell = frame[slot]
            if cell is None:
                raise CRuntimeError(f"undeclared identifier {name!r}")
            value = cell.value
            if value.__class__ is Buffer:
                return value.decay_ptr()  # array decay
            return value

        return ident, _Counts()

    def _expr_Cast(self, expr: A.Cast) -> tuple[Callable, _Counts]:
        operand_fn, cnt = self.compile_expr(expr.operand)
        to = expr.to_type
        if to.is_pointer:
            return operand_fn, cnt  # pointer reinterpretation is a no-op
        if to.is_float:
            def cast_float(rt: Runtime, frame: list) -> float:
                return float(operand_fn(rt, frame))

            return cast_float, cnt
        if to.is_integer:
            is_char = to == T.CHAR

            def cast_int(rt: Runtime, frame: list) -> int:
                value = operand_fn(rt, frame)
                if isinstance(value, float):
                    return float_to_int(value)
                if is_char:
                    return int(value) & 0xFF
                return int(value)

            return cast_int, cnt
        return operand_fn, cnt

    def _expr_Index(self, expr: A.Index) -> tuple[Callable, _Counts]:
        base_fn, cnt = self.compile_expr(expr.base)
        index_fn, icnt = self.compile_expr(expr.index)
        cnt.add(icnt)

        # loads (and the GPU charge) depend on the runtime stride, so
        # they stay inline rather than batching.
        def index(rt: Runtime, frame: list) -> Any:
            ptr = base_fn(rt, frame)
            if ptr.__class__ is not Ptr:
                ptr = _as_ptr(ptr)
            elif ptr.buffer is None:
                raise CRuntimeError("null pointer indexed")
            idx = index_fn(rt, frame)
            if idx.__class__ is not int:
                idx = int(idx)
            if ptr.stride > 1:  # row of a flattened 2-D array
                return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
            rt.counters.loads += 1
            charge = rt.charge
            if charge is not None:
                charge(ptr.buffer, False)
            # Inlined Buffer.read: the _check call is the hot-path cost.
            buf = ptr.buffer
            off = ptr.offset + idx
            if buf.freed or not 0 <= off < buf.size:
                buf._check(off)  # raises the canonical error
            return buf.data[off]

        return index, cnt

    def _expr_Call(self, expr: A.Call) -> tuple[Callable, _Counts]:
        return self._compile_call(expr, void=False)

    def _compile_call(self, expr: A.Call,
                      void: bool) -> tuple[Callable, _Counts]:
        cnt = _Counts()
        cnt.calls += 1
        # Argument specs: most call arguments are plain identifiers or
        # literals (getWord(line, off, word, read, N)), so those are
        # fetched inline in the call closure instead of paying one
        # compiled-closure invocation each.
        #   kind 0 → frame slot read (a=slot, b=name, Buffer decays)
        #   kind 1 → compile-time constant (a=value)
        #   kind 2 → generic compiled expression (a=closure)
        specs = []
        for arg in expr.args:
            if type(arg) is A.Ident:
                specs.append((0, self.slot_for(arg.name), arg.name))
            elif type(arg) is A.IntLit or type(arg) is A.FloatLit \
                    or type(arg) is A.CharLit:
                specs.append((1, arg.value, None))
            elif type(arg) is A.StringLit:
                specs.append((1, self.cp.strlit_ptr(arg), None))
            else:
                fn, acnt = self.compile_expr(arg)
                cnt.add(acnt)
                specs.append((2, fn, None))
        return _codegen_call_site(tuple(specs), expr.func, void), cnt

    def _expr_UnaryOp(self, expr: A.UnaryOp) -> tuple[Callable, _Counts]:
        op = expr.op
        if op == "&":
            return self.compile_lvalue(expr.operand)
        if op == "*":
            operand_fn, cnt = self.compile_expr(expr.operand)
            cnt.loads += 1

            def deref(rt: Runtime, frame: list) -> Any:
                value = operand_fn(rt, frame)
                if isinstance(value, (Ptr, ScalarRef)):
                    return value.deref()
                raise CRuntimeError(f"cannot dereference {value!r}")

            return deref, cnt
        if op in ("++", "--"):
            # Prefix inc/dec: the tree-walker counts no op here.
            delta = 1 if op == "++" else -1
            if isinstance(expr.operand, A.Ident):
                fn = self._incdec_ident(expr.operand.name, delta, post=False)
                return fn, _Counts()
            ref_fn, cnt = self.compile_lvalue(expr.operand)

            def prefix(rt: Runtime, frame: list) -> Any:
                ref = ref_fn(rt, frame)
                value = ref.deref()
                new = value.add(delta) if isinstance(value, Ptr) \
                    else value + delta
                ref.store(new)
                return new

            return prefix, cnt
        operand_fn, cnt = self.compile_expr(expr.operand)
        cnt.ops += 1
        if op == "-":
            def neg(rt: Runtime, frame: list) -> Any:
                return -operand_fn(rt, frame)

            return neg, cnt
        if op == "!":
            def lnot(rt: Runtime, frame: list) -> int:
                return int(not truthy(operand_fn(rt, frame)))

            return lnot, cnt
        if op == "~":
            def inv(rt: Runtime, frame: list) -> int:
                return ~int(operand_fn(rt, frame))

            return inv, cnt
        raise CRuntimeError(f"unsupported unary {op!r}")

    def _expr_PostfixOp(self, expr: A.PostfixOp) -> tuple[Callable, _Counts]:
        delta = 1 if expr.op == "++" else -1
        if isinstance(expr.operand, A.Ident):
            cnt = _Counts()
            cnt.ops += 1
            fn = self._incdec_ident(expr.operand.name, delta, post=True)
            return fn, cnt
        ref_fn, cnt = self.compile_lvalue(expr.operand)
        cnt.ops += 1

        def postfix(rt: Runtime, frame: list) -> Any:
            ref = ref_fn(rt, frame)
            value = ref.deref()
            new = value.add(delta) if isinstance(value, Ptr) else value + delta
            ref.store(new)
            return value

        return postfix, cnt

    def _incdec_ident(self, name: str, delta: int, post: bool,
                      void: bool = False) -> Callable:
        """``x++``/``--x`` on a plain variable: mutate the Cell in place.

        The Buffer-valued case mirrors the generic path's Ptr(buf, 0)
        ref (element 0 read-modify-write); the pre-coercion value is
        returned exactly as the tree-walker's ref.store/return order
        produces it."""
        slot = self.slot_for(name)
        decl_ct = self.slot_ctype.get(slot)
        if decl_ct is T.INT or decl_ct is T.LONG or decl_ct is T.SIZE_T:
            # An int-declared cell holds an exact int (every store path
            # coerces), so held + delta is already the stored value.
            def incdec_int(rt: Runtime, frame: list) -> Any:
                cell = frame[slot]
                if cell is None:
                    raise CRuntimeError(f"undeclared identifier {name!r}")
                held = cell.value
                new = held + delta
                cell.value = new
                return None if void else (held if post else new)

            return incdec_int

        def incdec(rt: Runtime, frame: list) -> Any:
            cell = frame[slot]
            if cell is None:
                raise CRuntimeError(f"undeclared identifier {name!r}")
            held = cell.value
            if held.__class__ is Buffer:
                value = held.read(0)
                new = value.add(delta) if value.__class__ is Ptr \
                    else value + delta
                held.write(0, new)
                return None if void else (value if post else new)
            new = held.add(delta) if held.__class__ is Ptr else held + delta
            ct = cell.ctype
            stored = new
            if ct is T.INT or ct is T.LONG or ct is T.SIZE_T:
                if stored.__class__ is not int:
                    stored = int(stored)
            elif ct is T.FLOAT or ct is T.DOUBLE:
                if stored.__class__ is not float:
                    stored = float(stored)
            elif ct.is_float:
                stored = float(stored)
            elif ct.is_integer:
                stored = int(stored)
            cell.value = stored
            return None if void else (held if post else new)

        return incdec

    def _expr_Conditional(self, expr: A.Conditional) -> tuple[Callable, _Counts]:
        cond_fn, cnt = self.compile_expr(expr.cond)
        cnt.branches += 1
        then_fn = self._flushed_expr(expr.then)
        else_fn = self._flushed_expr(expr.otherwise)

        def conditional(rt: Runtime, frame: list) -> Any:
            cond = cond_fn(rt, frame)
            if cond if cond.__class__ is int else truthy(cond):
                return then_fn(rt, frame)
            return else_fn(rt, frame)

        return conditional, cnt

    def _expr_Assign(self, expr: A.Assign) -> tuple[Callable, _Counts]:
        return self._compile_assign(expr, void=False)

    def _compile_assign(self, expr: A.Assign,
                        void: bool) -> tuple[Callable, _Counts]:
        # Scalar-variable targets skip the ScalarRef allocation and the
        # per-store ctype property checks of the generic ref path; the
        # Buffer-valued case keeps the tree-walker's Ptr(buf, 0) ref
        # semantics (element 0 store, buffer-coerced read-back, charge
        # against the buffer). ``void`` closures (statement position)
        # return None instead of the assigned value and skip the
        # side-effect-free result read-back.
        if isinstance(expr.target, A.Ident):
            slot = self.slot_for(expr.target.name)
            name = expr.target.name
            value_fn, cnt = self.compile_expr(expr.value)
            cnt.stores += 1
            decl_ct = self.slot_ctype.get(slot)
            coerce = None
            if decl_ct is T.INT or decl_ct is T.LONG or decl_ct is T.SIZE_T:
                coerce = int
            elif decl_ct is T.FLOAT or decl_ct is T.DOUBLE:
                coerce = float
            if coerce is not None:
                if expr.op == "=":
                    def assign_decl_ident(rt: Runtime, frame: list) -> Any:
                        cell = frame[slot]
                        if cell is None:
                            raise CRuntimeError(
                                f"undeclared identifier {name!r}")
                        value = value_fn(rt, frame)
                        if value.__class__ is not coerce:
                            value = coerce(value)
                        cell.value = value
                        charge = rt.charge
                        if charge is not None:
                            charge(None, True)
                        return None if void else value

                    return assign_decl_ident, cnt
                binop = _binop_fn(expr.op[:-1])
                cnt.ops += 1

                def compound_decl_ident(rt: Runtime, frame: list) -> Any:
                    cell = frame[slot]
                    if cell is None:
                        raise CRuntimeError(
                            f"undeclared identifier {name!r}")
                    value = value_fn(rt, frame)
                    # cell.value read after the rhs (tree-walker order).
                    new = binop(rt, cell.value, value)
                    if new.__class__ is not coerce:
                        new = coerce(new)
                    cell.value = new
                    charge = rt.charge
                    if charge is not None:
                        charge(None, True)
                    return None if void else new

                return compound_decl_ident, cnt
            if expr.op == "=":
                def assign_ident(rt: Runtime, frame: list) -> Any:
                    cell = frame[slot]
                    if cell is None:
                        raise CRuntimeError(f"undeclared identifier {name!r}")
                    held = cell.value
                    if held.__class__ is Buffer:
                        held.write(0, value_fn(rt, frame))
                        charge = rt.charge
                        if charge is not None:
                            charge(held, True)
                        return None if void else held.read(0)
                    value = value_fn(rt, frame)
                    ct = cell.ctype
                    if ct is T.INT or ct is T.LONG or ct is T.SIZE_T:
                        if value.__class__ is not int:
                            value = int(value)
                    elif ct is T.FLOAT or ct is T.DOUBLE:
                        if value.__class__ is not float:
                            value = float(value)
                    elif ct.is_float:
                        value = float(value)
                    elif ct.is_integer:
                        value = int(value)
                    cell.value = value
                    charge = rt.charge
                    if charge is not None:
                        charge(None, True)
                    return None if void else value

                return assign_ident, cnt
            binop = _binop_fn(expr.op[:-1])
            cnt.ops += 1

            def compound_ident(rt: Runtime, frame: list) -> Any:
                cell = frame[slot]
                if cell is None:
                    raise CRuntimeError(f"undeclared identifier {name!r}")
                held = cell.value
                if held.__class__ is Buffer:
                    value = value_fn(rt, frame)
                    held.write(0, binop(rt, held.read(0), value))
                    charge = rt.charge
                    if charge is not None:
                        charge(held, True)
                    return None if void else held.read(0)
                value = value_fn(rt, frame)
                # ref.deref() happens after the rhs (tree-walker order).
                new = binop(rt, cell.value, value)
                ct = cell.ctype
                if ct is T.INT or ct is T.LONG or ct is T.SIZE_T:
                    if new.__class__ is not int:
                        new = int(new)
                elif ct is T.FLOAT or ct is T.DOUBLE:
                    if new.__class__ is not float:
                        new = float(new)
                elif ct.is_float:
                    new = float(new)
                elif ct.is_integer:
                    new = int(new)
                cell.value = new
                charge = rt.charge
                if charge is not None:
                    charge(None, True)
                return None if void else new

            return compound_ident, cnt
        ref_fn, cnt = self.compile_lvalue(expr.target)
        value_fn, vcnt = self.compile_expr(expr.value)
        cnt.add(vcnt)
        cnt.stores += 1
        if expr.op == "=":
            def assign(rt: Runtime, frame: list) -> Any:
                ref = ref_fn(rt, frame)
                ref.store(value_fn(rt, frame))
                charge = rt.charge
                if charge is not None:
                    charge(ref.buffer if ref.__class__ is Ptr else None, True)
                return None if void else ref.deref()

            return assign, cnt
        binop = _binop_fn(expr.op[:-1])
        cnt.ops += 1

        def compound(rt: Runtime, frame: list) -> Any:
            ref = ref_fn(rt, frame)
            value = value_fn(rt, frame)
            ref.store(binop(rt, ref.deref(), value))
            charge = rt.charge
            if charge is not None:
                charge(ref.buffer if ref.__class__ is Ptr else None, True)
            return None if void else ref.deref()

        return compound, cnt

    def _expr_BinOp(self, expr: A.BinOp) -> tuple[Callable, _Counts]:
        op = expr.op
        if op == ",":
            left_fn, cnt = self.compile_expr(expr.left)
            right_fn, rcnt = self.compile_expr(expr.right)
            cnt.add(rcnt)

            def comma(rt: Runtime, frame: list) -> Any:
                left_fn(rt, frame)
                return right_fn(rt, frame)

            return comma, cnt
        if op in ("&&", "||"):
            left_fn, cnt = self.compile_expr(expr.left)
            cnt.ops += 1
            right_fn = self._flushed_expr(expr.right)  # rhs is conditional
            if op == "&&":
                def land(rt: Runtime, frame: list) -> int:
                    return int(truthy(left_fn(rt, frame))
                               and truthy(right_fn(rt, frame)))

                return land, cnt

            def lor(rt: Runtime, frame: list) -> int:
                return int(truthy(left_fn(rt, frame))
                           or truthy(right_fn(rt, frame)))

            return lor, cnt
        left_fn, cnt = self.compile_expr(expr.left)
        cnt.ops += 1
        binop = _binop_fn(op)
        apply = _APPLY[op]
        rnode = expr.right
        # Literal right operands (`scanf(...) == 2`, `ret != -1`) skip
        # the operand-closure call; int literals also skip the operand
        # class dispatch when the left side is an exact int.
        if type(rnode) is A.IntLit or type(rnode) is A.CharLit:
            rconst = rnode.value

            def binary_riconst(rt: Runtime, frame: list) -> Any:
                left = left_fn(rt, frame)
                if left.__class__ is int:
                    return apply(left, rconst)
                return binop(rt, left, rconst)

            return binary_riconst, cnt
        if type(rnode) is A.FloatLit:
            rconst = rnode.value

            def binary_rconst(rt: Runtime, frame: list) -> Any:
                return binop(rt, left_fn(rt, frame), rconst)

            return binary_rconst, cnt
        right_fn, rcnt = self.compile_expr(rnode)
        cnt.add(rcnt)

        def binary(rt: Runtime, frame: list) -> Any:
            left = left_fn(rt, frame)
            right = right_fn(rt, frame)
            if left.__class__ is int and right.__class__ is int:
                return apply(left, right)
            return binop(rt, left, right)

        return binary, cnt

    # -- lvalues ---------------------------------------------------------

    def compile_lvalue(self, expr: A.Expr) -> tuple[Callable, _Counts]:
        if isinstance(expr, A.Ident):
            slot = self.slot_for(expr.name)
            name = expr.name
            decl_ct = self.slot_ctype.get(slot)
            if decl_ct is not None and not isinstance(decl_ct, T.Array):
                def lv_scalar(rt: Runtime, frame: list) -> ScalarRef:
                    cell = frame[slot]
                    if cell is None:
                        raise CRuntimeError(
                            f"undeclared identifier {name!r}")
                    return ScalarRef(cell)

                return lv_scalar, _Counts()

            def lv_ident(rt: Runtime, frame: list) -> Ptr | ScalarRef:
                cell = frame[slot]
                if cell is None:
                    raise CRuntimeError(f"undeclared identifier {name!r}")
                value = cell.value
                if value.__class__ is Buffer:
                    return Ptr(value, 0)
                return ScalarRef(cell)

            return lv_ident, _Counts()
        if isinstance(expr, A.Index):
            base_fn, cnt = self.compile_expr(expr.base)
            index_fn, icnt = self.compile_expr(expr.index)
            cnt.add(icnt)

            def lv_index(rt: Runtime, frame: list) -> Ptr:
                ptr = base_fn(rt, frame)
                if ptr.__class__ is not Ptr:
                    ptr = _as_ptr(ptr)
                elif ptr.buffer is None:
                    raise CRuntimeError("null pointer indexed")
                idx = index_fn(rt, frame)
                if idx.__class__ is not int:
                    idx = int(idx)
                if ptr.stride > 1:
                    return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
                return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, ptr.stride)

            return lv_index, cnt
        if isinstance(expr, A.UnaryOp) and expr.op == "*":
            operand_fn, cnt = self.compile_expr(expr.operand)

            def lv_deref(rt: Runtime, frame: list) -> Ptr | ScalarRef:
                value = operand_fn(rt, frame)
                if isinstance(value, (Ptr, ScalarRef)):
                    return value
                raise CRuntimeError(f"cannot dereference {value!r}")

            return lv_deref, cnt
        kind = type(expr).__name__

        def lv_bad(rt: Runtime, frame: list) -> Any:
            raise CRuntimeError(f"cannot take address of {kind}")

        return lv_bad, _Counts()


# --------------------------------------------------------------------------
# Compiled units
# --------------------------------------------------------------------------


def _compile_function(func: A.FunctionDef, cp: "CompiledProgram") -> Callable:
    comp = _FunctionCompiler(cp)
    comp.scopes.append({})
    param_info = []
    for param in func.params:
        slot = comp.declare(param.name)
        param_info.append((slot, param.ctype, _param_coerce(param.ctype)))
    body_fn = comp._flushed_stmt(func.body)
    nslots = comp.nslots
    # Function bodies see only params + locals + program globals (the
    # tree-walker resets the scope chain per call), so frees bind from
    # rt.globals; unknown names stay None and raise lazily on access.
    frees = tuple(comp.free.items())
    nparams = len(func.params)
    fname = func.name
    params_t = tuple(param_info)

    def call(rt: Runtime, args: list) -> Any:
        if len(args) != nparams:
            raise CRuntimeError(
                f"{fname}() expects {nparams} args, got {len(args)}"
            )
        rt.steps = steps = rt.steps + 1
        if steps > rt.max_steps:
            raise CRuntimeError(
                f"execution exceeded {rt.max_steps} steps (runaway loop?)"
            )
        frame: list = [None] * nslots
        for (slot, ctype, coerce), arg in zip(params_t, args):
            frame[slot] = Cell(value=coerce(arg), ctype=ctype)
        if frees:
            glb = rt.globals
            for name, slot in frees:
                frame[slot] = glb.get(name)
        sig = body_fn(rt, frame)
        if type(sig) is _Return:
            return sig.value
        return None

    return call


class CompiledProgram:
    """All functions of one program compiled to closures, plus the
    per-program string-literal buffer table."""

    def __init__(self, program: A.Program):
        self.program = program
        self._strlit_ptrs: dict[int, Ptr] = {}
        self.functions: dict[str, Callable] = {}
        for func in program.functions:
            self.functions[func.name] = _compile_function(func, self)

    def strlit_ptr(self, expr: A.StringLit) -> Ptr:
        ptr = self._strlit_ptrs.get(id(expr))
        if ptr is None:
            ptr = Ptr(Buffer.from_string(expr.value), 0)
            self._strlit_ptrs[id(expr)] = ptr
        return ptr

    def runtime(self, facade: Any) -> Runtime:
        return Runtime(facade, self.functions)

    def run_main(self, facade: Any) -> int:
        main = self.functions.get("main")
        if main is None:
            # Match Program.main's KeyError for programs without main().
            raise KeyError("no function 'main' in program")
        rt = self.runtime(facade)
        try:
            result = main(rt, [])
        finally:
            facade._steps = rt.steps
        return int(result) if result is not None else 0

    def call(self, facade: Any, name: str, args: list) -> Any:
        func = self.functions.get(name)
        if func is None:
            raise KeyError(f"no function {name!r} in program")
        rt = self.runtime(facade)
        try:
            return func(rt, args)
        finally:
            facade._steps = rt.steps


class CompiledSuite:
    """One statement compiled against a live facade environment — used
    for GPU kernel bodies. Two entry points:

    * :meth:`execute` binds free variables by walking the facade's scope
      chain (the tree engine path, where ``build_thread_env`` has
      populated the scopes before ``exec_stmt(kernel.body)``);
    * :meth:`execute_with_frame` takes a caller-built frame, letting the
      GPU lane engine bind kernel variables straight into slots from a
      precomputed per-launch plan — no scope dicts, no per-name lookup.

    ``nslots``/``frees`` expose the frame layout the plan needs.
    """

    def __init__(self, stmt: A.Stmt, cp: CompiledProgram,
                 free_ctypes: dict[str, T.CType] | None = None):
        comp = _FunctionCompiler(cp)
        if free_ctypes:
            comp.free_ctypes = free_ctypes
        comp.scopes.append({})
        self._body_fn = comp._flushed_stmt(stmt)
        self._nslots = comp.nslots
        self._frees = tuple(comp.free.items())
        self.cp = cp

    @property
    def nslots(self) -> int:
        """Frame length :meth:`execute_with_frame` expects."""
        return self._nslots

    @property
    def frees(self) -> tuple[tuple[str, int], ...]:
        """(name, slot) pairs of the suite's free variables."""
        return self._frees

    def execute(self, facade: Any) -> None:
        rt = self.cp.runtime(facade)
        frame: list = [None] * self._nslots
        lookup = facade.lookup
        for name, slot in self._frees:
            try:
                frame[slot] = lookup(name)
            except CRuntimeError:
                frame[slot] = None  # raises lazily if actually accessed
        try:
            self._body_fn(rt, frame)
        finally:
            facade._steps = rt.steps
        return None

    def execute_with_frame(self, facade: Any, frame: list) -> None:
        """Run the compiled body against a caller-built frame. Unbound
        frees must be left as None slots (they raise the tree-walker's
        'undeclared identifier' error lazily, on first access)."""
        rt = self.cp.runtime(facade)
        try:
            self._body_fn(rt, frame)
        finally:
            facade._steps = rt.steps
        return None
