"""Recursive-descent parser for the mini-C dialect."""

from __future__ import annotations

from . import cast as A
from . import ctypes as T
from ..errors import ParseError
from .lexer import Token, tokenize

# Binary operator precedence (higher binds tighter).
_BIN_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_ASSIGN_OPS = frozenset(["=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="])

_TYPE_KEYWORDS = frozenset(
    ["int", "char", "float", "double", "long", "short", "unsigned", "void", "size_t", "const"]
)


class _Parser:
    def __init__(self, tokens: list[Token]):
        self.toks = tokens
        self.pos = 0
        self.pending_pragma: A.Pragma | None = None

    # -- token helpers ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.toks[min(self.pos + ahead, len(self.toks) - 1)]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (value is None or tok.value == value):
            return self.next()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        tok = self.accept(kind, value)
        if tok is None:
            got = self.peek()
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, got {got.value!r}", got.line, got.col)
        return tok

    def at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "keyword" and tok.value in _TYPE_KEYWORDS

    # -- types --------------------------------------------------------------

    def parse_base_type(self) -> T.CType:
        while self.accept("keyword", "const"):
            pass
        tok = self.expect("keyword")
        name = tok.value
        if name == "unsigned":
            # 'unsigned int' / 'unsigned char' / bare 'unsigned'
            follow = self.peek()
            if follow.kind == "keyword" and follow.value in ("int", "char", "long"):
                self.next()
                name = "unsigned" if follow.value == "int" else follow.value
        elif name == "long":
            if self.peek().kind == "keyword" and self.peek().value in ("long", "int"):
                self.next()
        if name not in T.Scalar._SIZES:
            raise ParseError(f"unsupported type {name!r}", tok.line, tok.col)
        ctype: T.CType = T.scalar(name)
        while self.accept("keyword", "const"):
            pass
        return ctype

    def parse_pointers(self, base: T.CType) -> T.CType:
        while self.accept("op", "*"):
            base = T.Pointer(base)
        return base

    def try_parse_type(self) -> T.CType | None:
        """Parse a full type (for casts/sizeof); None if not at a type."""
        if not self.at_type():
            return None
        base = self.parse_base_type()
        return self.parse_pointers(base)

    # -- program ------------------------------------------------------------

    def parse_program(self, source: str) -> A.Program:
        prog = A.Program(source=source)
        while self.peek().kind != "eof":
            if self.peek().kind == "pragma":
                tok = self.next()
                self.pending_pragma = A.Pragma(text=tok.value, line=tok.line)
                continue
            prog.functions.append(self.parse_function())
        return prog

    def parse_function(self) -> A.FunctionDef:
        start = self.peek()
        ret = self.parse_base_type()
        ret = self.parse_pointers(ret)
        name = self.expect("ident").value
        self.expect("op", "(")
        params: list[A.Param] = []
        if not self.accept("op", ")"):
            if self.peek().kind == "keyword" and self.peek().value == "void" \
                    and self.peek(1).kind == "op" and self.peek(1).value == ")":
                self.next()
                self.expect("op", ")")
            else:
                while True:
                    ptype = self.parse_base_type()
                    ptype = self.parse_pointers(ptype)
                    pname = self.expect("ident").value
                    while self.accept("op", "["):
                        size = None
                        if not self.accept("op", "]"):
                            size_tok = self.expect("int")
                            size = int(size_tok.value, 0)
                            self.expect("op", "]")
                        # array parameters decay to pointers
                        ptype = T.Pointer(ptype) if size is None else T.Pointer(ptype)
                    params.append(A.Param(pname, ptype))
                    if not self.accept("op", ","):
                        break
                self.expect("op", ")")
        body = self.parse_block()
        return A.FunctionDef(
            name=name, return_type=ret, params=params, body=body, line=start.line
        )

    # -- statements ----------------------------------------------------------

    def take_pragma(self) -> A.Pragma | None:
        pragma = self.pending_pragma
        self.pending_pragma = None
        return pragma

    def parse_block(self) -> A.Block:
        lbrace = self.expect("op", "{")
        stmts: list[A.Stmt] = []
        while not self.accept("op", "}"):
            if self.peek().kind == "eof":
                raise ParseError("unterminated block", lbrace.line)
            stmts.append(self.parse_statement())
        return A.Block(stmts=stmts, line=lbrace.line)

    def parse_statement(self) -> A.Stmt:
        tok = self.peek()
        if tok.kind == "pragma":
            self.next()
            self.pending_pragma = A.Pragma(text=tok.value, line=tok.line)
            return self.parse_statement()
        pragma = self.take_pragma()

        stmt: A.Stmt
        if tok.kind == "op" and tok.value == "{":
            stmt = self.parse_block()
        elif tok.kind == "op" and tok.value == ";":
            self.next()
            stmt = A.ExprStmt(expr=None, line=tok.line)
        elif self.at_type():
            stmt = self.parse_declaration()
        elif tok.kind == "keyword" and tok.value in (
            "if", "while", "for", "return", "break", "continue"
        ):
            stmt = self._parse_keyword_statement(tok)
        else:
            expr = self.parse_expression()
            self.expect("op", ";")
            stmt = A.ExprStmt(expr=expr, line=tok.line)
        stmt.pragma = pragma
        return stmt

    def _parse_keyword_statement(self, tok: Token) -> A.Stmt:
        if tok.value == "if":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            then = self.parse_statement()
            otherwise = None
            if self.accept("keyword", "else"):
                otherwise = self.parse_statement()
            return A.If(cond=cond, then=then, otherwise=otherwise, line=tok.line)
        if tok.value == "while":
            self.next()
            self.expect("op", "(")
            cond = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_statement()
            return A.While(cond=cond, body=body, line=tok.line)
        if tok.value == "for":
            self.next()
            self.expect("op", "(")
            init: A.Stmt | None = None
            if not self.accept("op", ";"):
                if self.at_type():
                    init = self.parse_declaration()
                else:
                    init = A.ExprStmt(expr=self.parse_expression(), line=tok.line)
                    self.expect("op", ";")
            cond = None
            if not self.accept("op", ";"):
                cond = self.parse_expression()
                self.expect("op", ";")
            step = None
            if self.peek().value != ")":
                step = self.parse_expression()
            self.expect("op", ")")
            body = self.parse_statement()
            return A.For(init=init, cond=cond, step=step, body=body, line=tok.line)
        if tok.value == "return":
            self.next()
            value = None
            if not (self.peek().kind == "op" and self.peek().value == ";"):
                value = self.parse_expression()
            self.expect("op", ";")
            return A.Return(value=value, line=tok.line)
        if tok.value == "break":
            self.next()
            self.expect("op", ";")
            return A.Break(line=tok.line)
        if tok.value == "continue":
            self.next()
            self.expect("op", ";")
            return A.Continue(line=tok.line)
        raise ParseError(f"unexpected keyword {tok.value!r}", tok.line, tok.col)

    def parse_declaration(self) -> A.DeclStmt:
        start = self.peek()
        base = self.parse_base_type()
        decls: list[A.Declarator] = []
        while True:
            ctype = self.parse_pointers(base)
            name_tok = self.expect("ident")
            dims: list[int] = []
            while self.accept("op", "["):
                size_tok = self.expect("int")
                dims.append(int(size_tok.value, 0))
                self.expect("op", "]")
            # int a[4][8] -> Array(Array(int, 8), 4): build inner-out.
            for size in reversed(dims):
                ctype = T.Array(ctype, size)
            init = None
            if self.accept("op", "="):
                init = self.parse_assignment()
            decls.append(A.Declarator(name_tok.value, ctype, init, name_tok.line))
            if not self.accept("op", ","):
                break
        self.expect("op", ";")
        return A.DeclStmt(decls=decls, line=start.line)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> A.Expr:
        expr = self.parse_assignment()
        while self.accept("op", ","):
            right = self.parse_assignment()
            expr = A.BinOp(op=",", left=expr, right=right, line=expr.line)
        return expr

    def parse_assignment(self) -> A.Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.value in _ASSIGN_OPS:
            self.next()
            value = self.parse_assignment()
            return A.Assign(op=tok.value, target=left, value=value, line=tok.line)
        return left

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(1)
        if self.accept("op", "?"):
            then = self.parse_assignment()
            self.expect("op", ":")
            otherwise = self.parse_ternary()
            return A.Conditional(cond=cond, then=then, otherwise=otherwise, line=cond.line)
        return cond

    def parse_binary(self, min_prec: int) -> A.Expr:
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                return left
            prec = _BIN_PREC.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            left = A.BinOp(op=tok.value, left=left, right=right, line=tok.line)

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.value in ("-", "+", "!", "~", "*", "&", "++", "--"):
            self.next()
            operand = self.parse_unary()
            if tok.value == "+":
                return operand
            return A.UnaryOp(op=tok.value, operand=operand, line=tok.line)
        if tok.kind == "keyword" and tok.value == "sizeof":
            self.next()
            self.expect("op", "(")
            of_type = self.try_parse_type()
            if of_type is None:
                raise ParseError("sizeof(expr) unsupported; use sizeof(type)", tok.line)
            self.expect("op", ")")
            return A.SizeofType(of_type=of_type, line=tok.line)
        # Cast: '(' type ')' unary
        if tok.kind == "op" and tok.value == "(":
            nxt = self.peek(1)
            if nxt.kind == "keyword" and nxt.value in _TYPE_KEYWORDS:
                self.next()
                to_type = self.try_parse_type()
                assert to_type is not None
                self.expect("op", ")")
                operand = self.parse_unary()
                return A.Cast(to_type=to_type, operand=operand, line=tok.line)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind != "op":
                return expr
            if tok.value == "(":
                if not isinstance(expr, A.Ident):
                    raise ParseError("only direct calls supported", tok.line)
                self.next()
                args: list[A.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("op", ","):
                            break
                    self.expect("op", ")")
                expr = A.Call(func=expr.name, args=args, line=tok.line)
            elif tok.value == "[":
                self.next()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = A.Index(base=expr, index=index, line=tok.line)
            elif tok.value in ("++", "--"):
                self.next()
                expr = A.PostfixOp(op=tok.value, operand=expr, line=tok.line)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "int":
            return A.IntLit(value=int(tok.value.rstrip("uUlL"), 0), line=tok.line)
        if tok.kind == "float":
            return A.FloatLit(value=float(tok.value.rstrip("fF")), line=tok.line)
        if tok.kind == "char":
            return A.CharLit(value=ord(tok.value), line=tok.line)
        if tok.kind == "string":
            return A.StringLit(value=tok.value, line=tok.line)
        if tok.kind == "ident":
            return A.Ident(name=tok.value, line=tok.line)
        if tok.kind == "op" and tok.value == "(":
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)


def parse(source: str) -> A.Program:
    """Parse mini-C source text into a :class:`~repro.minic.cast.Program`."""
    return _Parser(tokenize(source)).parse_program(source)
