"""Runtime value model for mini-C execution.

Scalars are Python ints/floats held in :class:`Cell` slots. Arrays and
malloc'ed storage are :class:`Buffer` objects; pointers are
(:class:`Buffer`, offset) pairs. ``&scalar`` yields a :class:`ScalarRef`
so ``scanf``-style out-parameters work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import CRuntimeError
from . import ctypes as T


def float_to_int(value: float) -> int:
    """C ``(int)`` cast of a double. Non-finite values have no integer
    representation; both execution backends must trap identically rather
    than leak a Python OverflowError/ValueError."""
    if value != value or value in (float("inf"), float("-inf")):
        raise CRuntimeError(f"cast of non-finite double {value!r} to int")
    return int(value)


@dataclass
class Cell:
    """A mutable variable slot."""

    value: Any = 0
    ctype: T.CType = T.INT


class Buffer:
    """Contiguous typed storage; char buffers use a bytearray."""

    #: write() coercion kinds, resolved once at construction.
    _W_CHAR, _W_FLOAT, _W_INT, _W_RAW = 0, 1, 2, 3

    __slots__ = ("elem_type", "data", "size", "label", "freed", "space",
                 "inner_dim", "_decay", "_strcache", "_wkind")

    def __init__(self, elem_type: T.CType, size: int, label: str = "",
                 space: str | None = None):
        # For flattened 2-D arrays: the row length (columns); indexing the
        # buffer once yields a row pointer with this stride.
        self.inner_dim: int | None = None
        self._decay: "Ptr | None" = None
        # Decoded-string cache (offset -> str), dropped on any char
        # write; see c_string().
        self._strcache: dict[int, str] | None = None
        if size < 0:
            raise CRuntimeError(f"negative buffer size {size}")
        self.elem_type = elem_type
        self.size = size
        self.label = label
        self.freed = False
        # GPU memory space tag ('global' | 'texture' | 'shared' | 'private'
        # | None for host memory); the GPU executor charges accesses by it.
        self.space = space
        if elem_type == T.CHAR:
            self.data: Any = bytearray(size)
            self._wkind = Buffer._W_CHAR
        elif elem_type.is_float:
            self.data = [0.0] * size
            self._wkind = Buffer._W_FLOAT
        else:
            self.data = [0] * size
            self._wkind = Buffer._W_INT if elem_type.is_integer \
                else Buffer._W_RAW

    @classmethod
    def from_string(cls, text: str) -> "Buffer":
        """A NUL-terminated char buffer holding ``text``."""
        raw = text.encode("utf-8", errors="replace")
        buf = cls(T.CHAR, len(raw) + 1, label="strlit")
        buf.data[: len(raw)] = raw
        return buf

    def decay_ptr(self) -> "Ptr":
        """The array-decay pointer ``Ptr(self, 0, stride=inner_dim or 1)``.

        Ptr is frozen, so one instance serves every rvalue mention of the
        array — a hot-path allocation saver. ``inner_dim`` is fixed right
        after construction, before any decay can be observed."""
        ptr = self._decay
        if ptr is None:
            ptr = Ptr(self, 0, self.inner_dim or 1)
            self._decay = ptr
        return ptr

    def _check(self, index: int) -> None:
        if self.freed:
            raise CRuntimeError(f"use-after-free on buffer {self.label!r}")
        if not 0 <= index < self.size:
            raise CRuntimeError(
                f"out-of-bounds access: index {index} on buffer "
                f"{self.label!r} of size {self.size}"
            )

    def read(self, index: int) -> Any:
        self._check(index)
        return self.data[index]

    def write(self, index: int, value: Any) -> None:
        self._check(index)
        kind = self._wkind
        if kind == 0:  # char
            self.data[index] = int(value) & 0xFF
            self._strcache = None
        elif kind == 1:  # float
            self.data[index] = float(value)
        elif kind == 2:  # integer
            self.data[index] = int(value)
        else:
            self.data[index] = value

    def resize(self, new_size: int) -> None:
        """Grow the buffer (getline's realloc behaviour)."""
        if new_size <= self.size:
            return
        if self.elem_type == T.CHAR:
            self.data.extend(b"\0" * (new_size - self.size))
            self._strcache = None
        else:
            filler = 0.0 if self.elem_type.is_float else 0
            self.data.extend([filler] * (new_size - self.size))
        self.size = new_size

    def c_string(self, start: int = 0) -> str:
        """Decode a NUL-terminated string beginning at ``start``.

        Decodes are memoized per offset until the next char write —
        printf re-reads its format-string buffer once per emitted KV
        pair, and string literals are never written at all.

        The cache is consulted before any validity check: a warm entry
        proves the buffer is char-typed, live, and the offset in bounds
        (entries only form after the checks pass, writes and resize
        invalidate, and free() drops the cache entirely)."""
        cache = self._strcache
        if cache is not None:
            text = cache.get(start)
            if text is not None:
                return text
        if self._wkind != Buffer._W_CHAR:
            raise CRuntimeError("c_string on non-char buffer")
        if self.size and (self.freed or not 0 <= start < self.size):
            self._check(start)
        if cache is None:
            cache = self._strcache = {}
        end = self.data.find(b"\0", start)
        if end == -1:
            end = self.size
        text = self.data[start:end].decode("utf-8", errors="replace")
        cache[start] = text
        return text

    def store_string(self, start: int, text: str) -> int:
        """Store ``text`` + NUL at ``start``; returns bytes written (excl NUL)."""
        # Sorted KV streams store the same key into the same buffer for
        # every pair of a run; when the decode cache proves the buffer
        # already holds exactly ``text`` + NUL there, the store is a no-op
        # (ASCII only — its decode/encode round trip is bijective).
        cache = self._strcache
        if (cache is not None and cache.get(start) == text and text.isascii()
                and start + len(text) < self.size
                and self.data[start + len(text)] == 0):
            return len(text)
        raw = text.encode("utf-8", errors="replace")
        needed = start + len(raw) + 1
        if needed > self.size:
            raise CRuntimeError(
                f"string of {len(raw)} bytes overflows buffer "
                f"{self.label!r} (size {self.size}, offset {start})"
            )
        self.data[start : start + len(raw)] = raw
        self.data[start + len(raw)] = 0
        # ASCII text round-trips decode(encode(text)) exactly, so the
        # just-stored string can seed the decode cache directly.
        self._strcache = {start: text} if text.isascii() else None
        return len(raw)

    def __repr__(self) -> str:
        return f"Buffer({self.elem_type}, size={self.size}, label={self.label!r})"


@dataclass(frozen=True)
class Ptr:
    """A typed pointer into a :class:`Buffer` (or NULL when buffer is None).

    ``stride`` > 1 marks a row pointer into a flattened 2-D array: one
    more index step multiplies by the stride before reaching elements.
    """

    buffer: Buffer | None
    offset: int = 0
    stride: int = 1

    @property
    def is_null(self) -> bool:
        return self.buffer is None

    def deref(self) -> Any:
        if self.buffer is None:
            raise CRuntimeError("null pointer dereference")
        return self.buffer.read(self.offset)

    def store(self, value: Any) -> None:
        if self.buffer is None:
            raise CRuntimeError("store through null pointer")
        self.buffer.write(self.offset, value)

    def add(self, delta: int) -> "Ptr":
        return Ptr(self.buffer, self.offset + int(delta) * self.stride, self.stride)

    def c_string(self) -> str:
        if self.buffer is None:
            raise CRuntimeError("c_string on null pointer")
        return self.buffer.c_string(self.offset)


NULL = Ptr(None, 0)


@dataclass(frozen=True)
class ScalarRef:
    """Address of a scalar variable (``&x``)."""

    cell: Cell

    def deref(self) -> Any:
        return self.cell.value

    def store(self, value: Any) -> None:
        # Identity checks against the interned scalar ctype singletons
        # sidestep the is_float/is_integer property lookups on the
        # scanf hot path; the property tail keeps exotic types working.
        cell = self.cell
        ct = cell.ctype
        if ct is T.INT or ct is T.LONG or ct is T.SIZE_T:
            cell.value = value if value.__class__ is int else int(value)
        elif ct is T.FLOAT or ct is T.DOUBLE:
            cell.value = value if value.__class__ is float else float(value)
        elif ct.is_float:
            cell.value = float(value)
        elif ct.is_integer:
            cell.value = int(value)
        else:
            cell.value = value


def truthy(value: Any) -> bool:
    """C truthiness for ints, floats, and pointers."""
    if isinstance(value, Ptr):
        return value.buffer is not None
    return bool(value)
