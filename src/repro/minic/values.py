"""Runtime value model for mini-C execution.

Scalars are Python ints/floats held in :class:`Cell` slots. Arrays and
malloc'ed storage are :class:`Buffer` objects; pointers are
(:class:`Buffer`, offset) pairs. ``&scalar`` yields a :class:`ScalarRef`
so ``scanf``-style out-parameters work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import CRuntimeError
from . import ctypes as T


@dataclass
class Cell:
    """A mutable variable slot."""

    value: Any = 0
    ctype: T.CType = T.INT


class Buffer:
    """Contiguous typed storage; char buffers use a bytearray."""

    __slots__ = ("elem_type", "data", "size", "label", "freed", "space",
                 "inner_dim")

    def __init__(self, elem_type: T.CType, size: int, label: str = "",
                 space: str | None = None):
        # For flattened 2-D arrays: the row length (columns); indexing the
        # buffer once yields a row pointer with this stride.
        self.inner_dim: int | None = None
        if size < 0:
            raise CRuntimeError(f"negative buffer size {size}")
        self.elem_type = elem_type
        self.size = size
        self.label = label
        self.freed = False
        # GPU memory space tag ('global' | 'texture' | 'shared' | 'private'
        # | None for host memory); the GPU executor charges accesses by it.
        self.space = space
        if elem_type == T.CHAR:
            self.data: Any = bytearray(size)
        elif elem_type.is_float:
            self.data = [0.0] * size
        else:
            self.data = [0] * size

    @classmethod
    def from_string(cls, text: str) -> "Buffer":
        """A NUL-terminated char buffer holding ``text``."""
        raw = text.encode("utf-8", errors="replace")
        buf = cls(T.CHAR, len(raw) + 1, label="strlit")
        buf.data[: len(raw)] = raw
        return buf

    def _check(self, index: int) -> None:
        if self.freed:
            raise CRuntimeError(f"use-after-free on buffer {self.label!r}")
        if not 0 <= index < self.size:
            raise CRuntimeError(
                f"out-of-bounds access: index {index} on buffer "
                f"{self.label!r} of size {self.size}"
            )

    def read(self, index: int) -> Any:
        self._check(index)
        return self.data[index]

    def write(self, index: int, value: Any) -> None:
        self._check(index)
        if self.elem_type == T.CHAR:
            self.data[index] = int(value) & 0xFF
        elif self.elem_type.is_float:
            self.data[index] = float(value)
        elif self.elem_type.is_integer:
            self.data[index] = int(value)
        else:
            self.data[index] = value

    def resize(self, new_size: int) -> None:
        """Grow the buffer (getline's realloc behaviour)."""
        if new_size <= self.size:
            return
        if self.elem_type == T.CHAR:
            self.data.extend(b"\0" * (new_size - self.size))
        else:
            filler = 0.0 if self.elem_type.is_float else 0
            self.data.extend([filler] * (new_size - self.size))
        self.size = new_size

    def c_string(self, start: int = 0) -> str:
        """Decode a NUL-terminated string beginning at ``start``."""
        if self.elem_type != T.CHAR:
            raise CRuntimeError("c_string on non-char buffer")
        self._check(start) if self.size else None
        end = self.data.find(b"\0", start)
        if end == -1:
            end = self.size
        return self.data[start:end].decode("utf-8", errors="replace")

    def store_string(self, start: int, text: str) -> int:
        """Store ``text`` + NUL at ``start``; returns bytes written (excl NUL)."""
        raw = text.encode("utf-8", errors="replace")
        needed = start + len(raw) + 1
        if needed > self.size:
            raise CRuntimeError(
                f"string of {len(raw)} bytes overflows buffer "
                f"{self.label!r} (size {self.size}, offset {start})"
            )
        self.data[start : start + len(raw)] = raw
        self.data[start + len(raw)] = 0
        return len(raw)

    def __repr__(self) -> str:
        return f"Buffer({self.elem_type}, size={self.size}, label={self.label!r})"


@dataclass(frozen=True)
class Ptr:
    """A typed pointer into a :class:`Buffer` (or NULL when buffer is None).

    ``stride`` > 1 marks a row pointer into a flattened 2-D array: one
    more index step multiplies by the stride before reaching elements.
    """

    buffer: Buffer | None
    offset: int = 0
    stride: int = 1

    @property
    def is_null(self) -> bool:
        return self.buffer is None

    def deref(self) -> Any:
        if self.buffer is None:
            raise CRuntimeError("null pointer dereference")
        return self.buffer.read(self.offset)

    def store(self, value: Any) -> None:
        if self.buffer is None:
            raise CRuntimeError("store through null pointer")
        self.buffer.write(self.offset, value)

    def add(self, delta: int) -> "Ptr":
        return Ptr(self.buffer, self.offset + int(delta) * self.stride, self.stride)

    def c_string(self) -> str:
        if self.buffer is None:
            raise CRuntimeError("c_string on null pointer")
        return self.buffer.c_string(self.offset)


NULL = Ptr(None, 0)


@dataclass(frozen=True)
class ScalarRef:
    """Address of a scalar variable (``&x``)."""

    cell: Cell

    def deref(self) -> Any:
        return self.cell.value

    def store(self, value: Any) -> None:
        if self.cell.ctype.is_float:
            self.cell.value = float(value)
        elif self.cell.ctype.is_integer:
            self.cell.value = int(value)
        else:
            self.cell.value = value


def truthy(value: Any) -> bool:
    """C truthiness for ints, floats, and pointers."""
    if isinstance(value, Ptr):
        return value.buffer is not None
    return bool(value)
