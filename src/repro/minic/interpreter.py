"""Tree-walking interpreter for mini-C.

This is the reproduction's "gcc path": the original, directive-annotated
source runs unchanged as a Hadoop Streaming filter (stdin → stdout). The
GPU kernel executor (:mod:`repro.gpu.executor`) reuses this evaluator with
GPU-runtime builtins substituted, exactly mirroring the paper's design
where one source serves both processors.

The interpreter also keeps instruction/memory counters
(:class:`ExecCounters`) that the cost models consume.
"""

from __future__ import annotations

import io
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..errors import CRuntimeError
from . import cast as A
from . import ctypes as T
from .cache import compiled_program, compiled_suite, strlit_buffers
from .stdlib import InputStream, host_builtins
from .values import NULL, Buffer, Cell, Ptr, ScalarRef, float_to_int, truthy

#: Shared ctype instance for the predefined FILE*/NULL globals — ctypes
#: are immutable, so one Pointer(VOID) serves every interpreter.
_VOID_PTR = T.Pointer(T.VOID)

#: Execution backends: "compiled" (closure compilation, the default hot
#: path) and "tree" (the original tree-walker, kept as the reference
#: semantics and for region-snapshot execution).
BACKENDS = ("compiled", "tree")

_default_backend = os.environ.get("REPRO_MINIC_BACKEND", "compiled")


def _check_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(f"unknown mini-C backend {name!r}; choose from {BACKENDS}")
    return name


def default_backend() -> str:
    """The backend used when Interpreter(backend=None)."""
    return _default_backend


def set_default_backend(name: str) -> str:
    """Set the process-wide default backend; returns the previous one."""
    global _default_backend
    previous = _default_backend
    _default_backend = _check_backend(name)
    return previous


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Temporarily switch the default backend (bench / differential tests)."""
    previous = set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)


@dataclass
class ExecCounters:
    """Dynamic execution statistics, fed to the CPU/GPU cost models."""

    ops: int = 0           # arithmetic/logic operations evaluated
    loads: int = 0         # buffer reads
    stores: int = 0        # buffer writes
    branches: int = 0      # if/while/for condition evaluations
    calls: int = 0         # function calls (user + builtin)
    fp_ops: int = 0        # floating-point arithmetic
    bytes_in: int = 0      # record/KV input volume
    bytes_out: int = 0     # emitted KV volume

    def merged(self, other: "ExecCounters") -> "ExecCounters":
        return ExecCounters(
            *(getattr(self, f.name) + getattr(other, f.name)
              for f in self.__dataclass_fields__.values())  # type: ignore[arg-type]
        )

    @property
    def total_work(self) -> int:
        """A single scalar work metric (used for coarse task costing)."""
        return self.ops + 2 * self.fp_ops + self.loads + self.stores


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


class RegionReached(Exception):
    """Raised when execution arrives at ``stop_at`` (see
    :meth:`Interpreter.run_until_region`); carries the live environment so
    the GPU host driver can capture pre-kernel variable values."""

    def __init__(self, snapshot: dict[str, Any]):
        self.snapshot = snapshot


class Interpreter:
    """Executes a mini-C :class:`~repro.minic.cast.Program`.

    Parameters
    ----------
    program:
        Parsed program.
    stdin:
        Text presented on standard input.
    builtins:
        Builtin function table; defaults to the host C library. The GPU
        executor passes a device-runtime table instead.
    max_steps:
        Statement-execution budget; guards against runaway loops in user
        source (a real cluster would rely on task timeouts).
    backend:
        "compiled" (closure-compiled hot path) or "tree" (the original
        tree-walker). None picks the process default (REPRO_MINIC_BACKEND
        env var, "compiled" out of the box). Both backends produce
        bit-identical outputs and counter totals; ``run_until_region``
        always uses the tree-walker, which is the only path that can
        stop mid-execution.
    """

    def __init__(
        self,
        program: A.Program,
        stdin: str = "",
        builtins: dict[str, Callable[["Interpreter", list[Any]], Any]] | None = None,
        max_steps: int = 200_000_000,
        backend: str | None = None,
    ):
        self.program = program
        self.stdin = InputStream(stdin)
        self.stdout = io.StringIO()
        self.builtins = host_builtins() if builtins is None else dict(builtins)
        self.heap: list[Buffer] = []
        self.counters = ExecCounters()
        self.max_steps = max_steps
        self.backend = _check_backend(
            backend if backend is not None else _default_backend
        )
        self._use_compiled = self.backend == "compiled"
        self._steps = 0
        self._scopes: list[dict[str, Cell]] = []
        # String-literal buffers are cached per *program* (shared across
        # interpreter instances — notably the GPU's one per thread).
        self._strlit_cache: dict[int, Buffer] = strlit_buffers(program)
        # Predefined C identifiers (FILE* streams are opaque sentinels; the
        # IO builtins operate on the interpreter's own streams).
        void_ptr = _VOID_PTR
        self._globals: dict[str, Cell] = {
            "stdin": Cell(value="<stdin>", ctype=void_ptr),
            "stdout": Cell(value="<stdout>", ctype=void_ptr),
            "stderr": Cell(value="<stderr>", ctype=void_ptr),
            "NULL": Cell(value=NULL, ctype=void_ptr),
            "EOF": Cell(value=-1, ctype=T.INT),
        }
        self._stop_at: A.Stmt | None = None

    # -- environment ---------------------------------------------------------

    def push_scope(self) -> None:
        self._scopes.append({})

    def pop_scope(self) -> None:
        self._scopes.pop()

    def declare(self, name: str, ctype: T.CType, value: Any = None) -> Cell:
        cell = Cell(ctype=ctype)
        if isinstance(ctype, T.Array):
            cell.value = self._alloc_array(ctype, name)
        elif value is not None:
            cell.value = value
        elif ctype.is_pointer:
            cell.value = NULL
        elif ctype.is_float:
            cell.value = 0.0
        else:
            cell.value = 0
        self._scopes[-1][name] = cell
        return cell

    def _alloc_array(self, ctype: T.Array, name: str) -> Buffer:
        base = ctype.base
        size = ctype.size or 0
        inner: int | None = None
        # Flatten multi-dimensional arrays row-major (2-D supported).
        if isinstance(base, T.Array):
            inner = base.size or 0
            size *= inner
            base = base.base
            if isinstance(base, T.Array):
                raise CRuntimeError(
                    f"arrays of more than two dimensions unsupported ({name})"
                )
        buf = Buffer(base, size, label=name)
        buf.inner_dim = inner
        return buf

    def lookup(self, name: str) -> Cell:
        for scope in reversed(self._scopes):
            if name in scope:
                return scope[name]
        if name in self._globals:
            return self._globals[name]
        raise CRuntimeError(f"undeclared identifier {name!r}")

    # -- top level -------------------------------------------------------------

    def run(self) -> int:
        """Execute ``main()``; returns its exit status."""
        if self._use_compiled and self._stop_at is None:
            return compiled_program(self.program).run_main(self)
        result = self.call_function(self.program.main, [])
        return int(result) if result is not None else 0

    def run_until_region(self, region: A.Stmt) -> dict[str, Any]:
        """Execute ``main()`` until control reaches ``region`` (the
        directive-annotated statement); returns a snapshot of all live
        variables at that point. This is how the GPU host driver captures
        firstprivate/sharedRO values before a kernel launch."""
        self._stop_at = region
        try:
            self.call_function(self.program.main, [])
        except RegionReached as reached:
            return reached.snapshot
        finally:
            self._stop_at = None
        raise CRuntimeError("execution never reached the directive region")

    def _snapshot_env(self) -> dict[str, Any]:
        snapshot: dict[str, Any] = {}
        for scope in self._scopes:
            for name, cell in scope.items():
                snapshot[name] = cell.value
        return snapshot

    def output(self) -> str:
        return self.stdout.getvalue()

    def call_function(self, func: A.FunctionDef, args: list[Any]) -> Any:
        if len(args) != len(func.params):
            raise CRuntimeError(
                f"{func.name}() expects {len(func.params)} args, got {len(args)}"
            )
        saved_scopes = self._scopes
        self._scopes = [{}]
        try:
            for param, arg in zip(func.params, args):
                cell = Cell(ctype=param.ctype)
                if param.ctype.is_float:
                    cell.value = float(arg) if not isinstance(arg, (Ptr, Buffer)) else arg
                elif param.ctype.is_integer:
                    cell.value = int(arg) if not isinstance(arg, (Ptr, Buffer)) else arg
                else:
                    cell.value = arg
                self._scopes[-1][param.name] = cell
            try:
                self.exec_stmt(func.body)
            except _ReturnSignal as ret:
                return ret.value
            return None
        finally:
            self._scopes = saved_scopes

    # -- statements --------------------------------------------------------------

    def _tick(self) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise CRuntimeError(
                f"execution exceeded {self.max_steps} steps (runaway loop?)"
            )

    def exec_stmt(self, stmt: A.Stmt) -> None:
        if self._use_compiled and self._stop_at is None:
            # Top-level entry (e.g. a GPU kernel body against this
            # interpreter's live environment); the compiled closures
            # never re-enter exec_stmt.
            compiled_suite(self.program, stmt).execute(self)
            return
        self._tick()
        if stmt is self._stop_at:
            raise RegionReached(self._snapshot_env())
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is None:
            raise CRuntimeError(f"cannot execute {type(stmt).__name__}")
        method(stmt)

    def _exec_Block(self, stmt: A.Block) -> None:
        self.push_scope()
        try:
            for inner in stmt.stmts:
                self.exec_stmt(inner)
        finally:
            self.pop_scope()

    def _exec_DeclStmt(self, stmt: A.DeclStmt) -> None:
        for decl in stmt.decls:
            init_value = None
            if decl.init is not None:
                init_value = self.eval(decl.init)
            cell = self.declare(decl.name, decl.ctype)
            if init_value is not None:
                if isinstance(decl.ctype, T.Array):
                    raise CRuntimeError(
                        f"array initializers unsupported ({decl.name})"
                    )
                self._store_cell(cell, init_value)

    def _exec_ExprStmt(self, stmt: A.ExprStmt) -> None:
        if stmt.expr is not None:
            self.eval(stmt.expr)

    def _exec_If(self, stmt: A.If) -> None:
        self.counters.branches += 1
        if truthy(self.eval(stmt.cond)):
            self.exec_stmt(stmt.then)
        elif stmt.otherwise is not None:
            self.exec_stmt(stmt.otherwise)

    def _exec_While(self, stmt: A.While) -> None:
        while True:
            self._tick()
            self.counters.branches += 1
            if not truthy(self.eval(stmt.cond)):
                break
            try:
                self.exec_stmt(stmt.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _exec_For(self, stmt: A.For) -> None:
        self.push_scope()
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init)
            while True:
                self._tick()
                if stmt.cond is not None:
                    self.counters.branches += 1
                    if not truthy(self.eval(stmt.cond)):
                        break
                try:
                    self.exec_stmt(stmt.body)
                except _BreakSignal:
                    break
                except _ContinueSignal:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step)
        finally:
            self.pop_scope()

    def _exec_Return(self, stmt: A.Return) -> None:
        value = self.eval(stmt.value) if stmt.value is not None else None
        raise _ReturnSignal(value)

    def _exec_Break(self, stmt: A.Break) -> None:
        raise _BreakSignal()

    def _exec_Continue(self, stmt: A.Continue) -> None:
        raise _ContinueSignal()

    # -- expressions -----------------------------------------------------------

    def eval(self, expr: A.Expr) -> Any:
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise CRuntimeError(f"cannot evaluate {type(expr).__name__}")
        return method(expr)

    def _eval_IntLit(self, expr: A.IntLit) -> int:
        return expr.value

    def _eval_FloatLit(self, expr: A.FloatLit) -> float:
        return expr.value

    def _eval_CharLit(self, expr: A.CharLit) -> int:
        return expr.value

    def _eval_StringLit(self, expr: A.StringLit) -> Ptr:
        buf = self._strlit_cache.get(id(expr))
        if buf is None:
            buf = Buffer.from_string(expr.value)
            self._strlit_cache[id(expr)] = buf
        return Ptr(buf, 0)

    def _eval_Ident(self, expr: A.Ident) -> Any:
        cell = self.lookup(expr.name)
        if isinstance(cell.value, Buffer):
            return cell.value.decay_ptr()  # array decay (cached Ptr)
        return cell.value

    def _eval_SizeofType(self, expr: A.SizeofType) -> int:
        return expr.of_type.sizeof()

    def _eval_Cast(self, expr: A.Cast) -> Any:
        value = self.eval(expr.operand)
        to = expr.to_type
        if to.is_pointer:
            return value  # pointer reinterpretation is a no-op in our model
        if to.is_float:
            return float(value)
        if to.is_integer:
            if isinstance(value, float):
                return float_to_int(value)
            if to == T.CHAR:
                return int(value) & 0xFF
            return int(value)
        return value

    def _eval_Index(self, expr: A.Index) -> Any:
        ptr = self._as_ptr(self.eval(expr.base))
        idx = int(self.eval(expr.index))
        if ptr.stride > 1:  # row of a flattened 2-D array
            return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
        self.counters.loads += 1
        return ptr.buffer.read(ptr.offset + idx)  # type: ignore[union-attr]

    def _eval_Call(self, expr: A.Call) -> Any:
        self.counters.calls += 1
        name = expr.func
        # Address-of arguments must not decay through eval for scanf-style
        # out-params; eval of UnaryOp('&') already yields refs, so plain
        # evaluation works for all our builtins.
        args = [self.eval(arg) for arg in expr.args]
        builtin = self.builtins.get(name)
        if builtin is not None:
            return builtin(self, args)
        try:
            func = self.program.function(name)
        except KeyError:
            raise CRuntimeError(f"call to undefined function {name!r}") from None
        return self.call_function(func, args)

    def _eval_UnaryOp(self, expr: A.UnaryOp) -> Any:
        op = expr.op
        if op == "&":
            return self._addr_of(expr.operand)
        if op == "*":
            target = self.eval(expr.operand)
            self.counters.loads += 1
            return self._as_ref(target).deref()
        if op in ("++", "--"):
            ref = self._lvalue(expr.operand)
            value = ref.deref()
            new = value + (1 if op == "++" else -1) if not isinstance(value, Ptr) \
                else value.add(1 if op == "++" else -1)
            ref.store(new)
            return new
        value = self.eval(expr.operand)
        self.counters.ops += 1
        if op == "-":
            return -value
        if op == "!":
            return int(not truthy(value))
        if op == "~":
            return ~int(value)
        raise CRuntimeError(f"unsupported unary {op!r}")

    def _eval_PostfixOp(self, expr: A.PostfixOp) -> Any:
        ref = self._lvalue(expr.operand)
        value = ref.deref()
        delta = 1 if expr.op == "++" else -1
        new = value.add(delta) if isinstance(value, Ptr) else value + delta
        ref.store(new)
        self.counters.ops += 1
        return value

    def _eval_Conditional(self, expr: A.Conditional) -> Any:
        self.counters.branches += 1
        if truthy(self.eval(expr.cond)):
            return self.eval(expr.then)
        return self.eval(expr.otherwise)

    def _eval_Assign(self, expr: A.Assign) -> Any:
        ref = self._lvalue(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            current = ref.deref()
            value = self._binop(expr.op[:-1], current, value)
        ref.store(value)
        self.counters.stores += 1
        return ref.deref()

    def _eval_BinOp(self, expr: A.BinOp) -> Any:
        op = expr.op
        if op == ",":
            self.eval(expr.left)
            return self.eval(expr.right)
        if op == "&&":
            self.counters.ops += 1
            return int(truthy(self.eval(expr.left)) and truthy(self.eval(expr.right)))
        if op == "||":
            self.counters.ops += 1
            return int(truthy(self.eval(expr.left)) or truthy(self.eval(expr.right)))
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        return self._binop(op, left, right)

    def _binop(self, op: str, left: Any, right: Any) -> Any:
        self.counters.ops += 1
        if isinstance(left, float) or isinstance(right, float):
            self.counters.fp_ops += 1
        # Pointer arithmetic & comparison.
        if isinstance(left, Ptr) or isinstance(right, Ptr):
            return self._ptr_binop(op, left, right)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise CRuntimeError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                q = abs(left) // abs(right)
                return q if (left < 0) == (right < 0) else -q
            return left / right
        if op == "%":
            if right == 0:
                raise CRuntimeError("modulo by zero")
            r = abs(left) % abs(right)
            return r if left >= 0 else -r
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "<":
            return int(left < right)
        if op == ">":
            return int(left > right)
        if op == "<=":
            return int(left <= right)
        if op == ">=":
            return int(left >= right)
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        raise CRuntimeError(f"unsupported operator {op!r}")

    def _ptr_binop(self, op: str, left: Any, right: Any) -> Any:
        if op == "+" and isinstance(left, Ptr):
            return left.add(int(right))
        if op == "+" and isinstance(right, Ptr):
            return right.add(int(left))
        if op == "-" and isinstance(left, Ptr) and isinstance(right, Ptr):
            if left.buffer is not right.buffer:
                raise CRuntimeError("pointer difference across buffers")
            return left.offset - right.offset
        if op == "-" and isinstance(left, Ptr):
            return left.add(-int(right))
        if op in ("==", "!="):
            same = (
                isinstance(left, Ptr)
                and isinstance(right, Ptr)
                and left.buffer is right.buffer
                and (left.buffer is None or left.offset == right.offset)
            )
            if isinstance(left, Ptr) and isinstance(right, int):
                same = left.is_null and right == 0
            if isinstance(right, Ptr) and isinstance(left, int):
                same = right.is_null and left == 0
            return int(same if op == "==" else not same)
        raise CRuntimeError(f"unsupported pointer operation {op!r}")

    # -- lvalues / addressing ---------------------------------------------------

    def _as_ptr(self, value: Any) -> Ptr:
        if isinstance(value, Ptr):
            if value.buffer is None:
                raise CRuntimeError("null pointer indexed")
            return value
        if isinstance(value, Buffer):
            return Ptr(value, 0)
        raise CRuntimeError(f"expected a pointer, got {value!r}")

    def _as_ref(self, value: Any) -> Ptr | ScalarRef:
        if isinstance(value, (Ptr, ScalarRef)):
            return value
        raise CRuntimeError(f"cannot dereference {value!r}")

    def _addr_of(self, expr: A.Expr) -> Ptr | ScalarRef:
        if isinstance(expr, A.Ident):
            cell = self.lookup(expr.name)
            if isinstance(cell.value, Buffer):
                return Ptr(cell.value, 0)
            return ScalarRef(cell)
        if isinstance(expr, A.Index):
            ptr = self._as_ptr(self.eval(expr.base))
            idx = int(self.eval(expr.index))
            if ptr.stride > 1:
                return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
            return ptr.add(idx)
        if isinstance(expr, A.UnaryOp) and expr.op == "*":
            return self._as_ref(self.eval(expr.operand))
        raise CRuntimeError(f"cannot take address of {type(expr).__name__}")

    def _lvalue(self, expr: A.Expr) -> Ptr | ScalarRef:
        ref = self._addr_of(expr)
        return ref

    def _store_cell(self, cell: Cell, value: Any) -> None:
        ScalarRef(cell).store(value)


def run_filter(program: A.Program, input_text: str,
               max_steps: int = 200_000_000,
               backend: str | None = None) -> tuple[str, ExecCounters]:
    """Run a mini-C program as a streaming filter; returns (stdout, counters).

    This is exactly how Hadoop Streaming invokes map/combine/reduce
    executables: text in on stdin, KV lines out on stdout.
    """
    interp = Interpreter(program, stdin=input_text, max_steps=max_steps,
                         backend=backend)
    interp.run()
    return interp.output(), interp.counters
