"""Mini-C frontend: the input language of the HeteroDoop compiler.

HeteroDoop's prototype accepts sequential C MapReduce programs (Hadoop
Streaming filters) annotated with ``#pragma mapreduce`` directives. This
package provides the C-dialect toolchain the reproduction needs:

* :mod:`repro.minic.lexer` — tokenizer (keeps ``#pragma`` lines as tokens),
* :mod:`repro.minic.cast` — the abstract syntax tree,
* :mod:`repro.minic.ctypes` — the C type model,
* :mod:`repro.minic.parser` — recursive-descent parser,
* :mod:`repro.minic.semantics` — symbol tables and variable analyses,
* :mod:`repro.minic.interpreter` — the "gcc path": executes the original
  source as a stdin→stdout filter (used for CPU tasks and as the oracle),
* :mod:`repro.minic.stdlib` — the modelled C standard library,
* :mod:`repro.minic.pretty` — AST → source printer.

The dialect covers the constructs used by the paper's listings and the
eight evaluation benchmarks: scalar and array declarations, pointers,
control flow, function definitions and calls, string handling, stdio
(``getline``/``scanf``/``printf``), string.h, stdlib.h and math.h.
"""

from .cast import Program, FunctionDef, Pragma
from .lexer import tokenize, Token
from .parser import parse
from .interpreter import Interpreter, run_filter
from .pretty import pprint_program

__all__ = [
    "Program",
    "FunctionDef",
    "Pragma",
    "tokenize",
    "Token",
    "parse",
    "Interpreter",
    "run_filter",
    "pprint_program",
]
