"""C type model for the mini-C dialect.

Types are immutable and interned where convenient. Sizes follow LP64
(int 4, long 8, pointers 8) — they matter for GPU memory accounting and
vector-width decisions, not for host correctness.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SemanticError


@dataclass(frozen=True)
class CType:
    """Base class; concrete types below."""

    def sizeof(self) -> int:
        raise NotImplementedError

    @property
    def is_integer(self) -> bool:
        return False

    @property
    def is_float(self) -> bool:
        return False

    @property
    def is_arithmetic(self) -> bool:
        return self.is_integer or self.is_float

    @property
    def is_pointer(self) -> bool:
        return False

    @property
    def is_array(self) -> bool:
        return False


@dataclass(frozen=True)
class Scalar(CType):
    """A named scalar type (int, char, float, double, long, ...)."""

    name: str

    _SIZES = {
        "void": 0,
        "char": 1,
        "short": 2,
        "int": 4,
        "unsigned": 4,
        "long": 8,
        "size_t": 8,
        "float": 4,
        "double": 8,
    }
    _INTEGERS = frozenset(
        ["char", "short", "int", "unsigned", "long", "size_t"]
    )
    _FLOATS = frozenset(["float", "double"])

    def sizeof(self) -> int:
        return self._SIZES[self.name]

    @property
    def is_integer(self) -> bool:
        return self.name in self._INTEGERS

    @property
    def is_float(self) -> bool:
        return self.name in self._FLOATS

    def __str__(self) -> str:
        return self.name


VOID = Scalar("void")
CHAR = Scalar("char")
SHORT = Scalar("short")
INT = Scalar("int")
UNSIGNED = Scalar("unsigned")
LONG = Scalar("long")
SIZE_T = Scalar("size_t")
FLOAT = Scalar("float")
DOUBLE = Scalar("double")

_BY_NAME = {
    t.name: t
    for t in [VOID, CHAR, SHORT, INT, UNSIGNED, LONG, SIZE_T, FLOAT, DOUBLE]
}


def scalar(name: str) -> Scalar:
    """Look up a scalar type by keyword name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise SemanticError(f"unknown type name {name!r}") from None


@dataclass(frozen=True)
class Pointer(CType):
    base: CType

    def sizeof(self) -> int:
        return 8

    @property
    def is_pointer(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"{self.base}*"


@dataclass(frozen=True)
class Array(CType):
    """A fixed-size array. ``size`` may be None for unsized parameters."""

    base: CType
    size: int | None

    def sizeof(self) -> int:
        if self.size is None:
            raise SemanticError("sizeof on unsized array")
        return self.base.sizeof() * self.size

    @property
    def is_array(self) -> bool:
        return True

    def __str__(self) -> str:
        n = "" if self.size is None else str(self.size)
        return f"{self.base}[{n}]"


def common_arithmetic(a: CType, b: CType) -> CType:
    """Usual arithmetic conversions, simplified."""
    if not (a.is_arithmetic and b.is_arithmetic):
        raise SemanticError(f"arithmetic on non-arithmetic types {a}, {b}")
    if a.is_float or b.is_float:
        if DOUBLE in (a, b):
            return DOUBLE
        return FLOAT if FLOAT in (a, b) else DOUBLE
    # Integer promotion: pick the wider.
    return a if a.sizeof() >= b.sizeof() else b


def decay(t: CType) -> CType:
    """Array-to-pointer decay for expression contexts."""
    if isinstance(t, Array):
        return Pointer(t.base)
    return t
