"""GPU lane execution engines: compiled closures vs. the tree-walker.

A kernel launch simulates thousands of lanes (threads). The *body* of a
kernel has been closure-compiled since the mini-C compiled backend
landed, but the per-lane harness around it — interpreter construction,
a ~100-entry builtin table rebuilt per lane, scope-dict environment
population, per-name free-variable lookup — was still paid per lane and
dominated GPU-path wall time.

This module provides two interchangeable lane engines:

* ``"compiled"`` (default) — :class:`CompiledLaneRunner`. Per *launch*:
  compile the kernel body once (cached per program + charge profile,
  :func:`repro.minic.cache.compiled_kernel_body`), build the GPU builtin
  table once, and precompute an *environment plan* — the (slot, factory)
  list that materializes each lane's kernel variables straight into the
  compiled body's frame. Per *lane*: reset a lean facade, run the plan's
  factories, call the compiled closure. No interpreter, no scope dicts,
  no table rebuilds.
* ``"tree"`` — the original harness (one ``GpuInterpreter`` per lane,
  ``build_thread_env`` scope population), kept as the differential
  reference; select it with ``REPRO_GPU_ENGINE=tree`` or
  :func:`use_gpu_engine`.

Both engines share the launch-level builtins defined here and charge
every cost through the same :class:`~repro.gpu.charging.ChargeHook`, so
outputs, ``ExecCounters``, and ``WarpCost``/``KernelCost`` are
bit-identical by construction — and machine-checked by the four-engine
fuzz oracle and ``tests/test_gpu_compile_backend.py``.
"""

from __future__ import annotations

import io
import os
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from ..compiler.kernel_ir import KernelIR, VarClass, VarInfo
from ..errors import CRuntimeError, GpuError
from ..kvstore.coerce import kv_text
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.cache import compiled_kernel_body
from ..minic.interpreter import ExecCounters
from ..minic.stdlib import host_builtins
from ..minic.values import Buffer, Cell, NULL, Ptr, ScalarRef
from .charging import ChargeHook, DEFAULT_CHARGE_HOOK, LaneCharges

__all__ = [
    "GPU_ENGINES", "default_gpu_engine", "set_default_gpu_engine",
    "use_gpu_engine", "LaneState", "CompiledLaneRunner",
    "make_map_builtins", "make_combine_builtins", "kernel_program",
]

#: Statement budget per lane, mirroring Interpreter's default.
_LANE_MAX_STEPS = 200_000_000

_VOID_PTR = T.Pointer(T.VOID)


# --------------------------------------------------------------------------
# Engine selection
# --------------------------------------------------------------------------

#: Lane engines: "compiled" (per-launch compiled closures, the default
#: hot path), "tree" (per-lane GpuInterpreter, the reference), and
#: "vector" (numpy-vectorized warp execution of divergence-free regions,
#: falling back to compiled closures per lane elsewhere).
GPU_ENGINES = ("compiled", "tree", "vector")

_default_engine = os.environ.get("REPRO_GPU_ENGINE", "compiled")


def _check_engine(name: str) -> str:
    if name not in GPU_ENGINES:
        raise ValueError(
            f"unknown GPU engine {name!r}; choose from {GPU_ENGINES}"
        )
    return name


def default_gpu_engine() -> str:
    """The engine kernel launches use when none is passed explicitly.

    Validated on every read: an unrecognized ``REPRO_GPU_ENGINE`` must
    fail loudly at the first launch, not silently run some other
    engine."""
    return _check_engine(_default_engine)


def set_default_gpu_engine(name: str) -> str:
    """Set the process-wide default GPU engine; returns the previous one."""
    global _default_engine
    previous = _default_engine
    _default_engine = _check_engine(name)
    return previous


@contextmanager
def use_gpu_engine(name: str) -> Iterator[None]:
    """Temporarily switch the GPU engine (bench / differential tests)."""
    previous = set_default_gpu_engine(name)
    try:
        yield
    finally:
        set_default_gpu_engine(previous)


# --------------------------------------------------------------------------
# Per-lane mutable state read by the launch-level builtins
# --------------------------------------------------------------------------


class LaneState:
    """The mutable slice of a lane the GPU builtins read and write.

    The builtin tables are built once per launch (compiled engine) or
    once per lane (tree engine, preserving the reference harness); both
    close over one of these instead of over per-lane values, so a single
    builtin implementation serves both engines."""

    __slots__ = ("records", "index", "charges", "global_tid",
                 "chunk", "output")

    def __init__(self) -> None:
        self.records: list[bytes] = []
        self.index = 0
        self.charges: LaneCharges | None = None
        self.global_tid = 0
        self.chunk: list[Any] = []
        self.output: list[tuple[Any, Any]] | None = None


# --------------------------------------------------------------------------
# Launch-level GPU builtins (shared by both engines)
# --------------------------------------------------------------------------


_MATH_FUNCS = frozenset(
    ["sqrt", "sqrtf", "exp", "expf", "log", "logf", "log2", "pow", "powf",
     "erf", "erff", "fabs", "fabsf", "floor", "ceil", "fmin", "fmax",
     "sin", "sinf", "cos", "cosf", "tan", "atan"]
)
_STRING_FUNCS = frozenset(
    ["strcmp", "strncmp", "strcpy", "strlen", "strcat", "strstr"]
)


def extract_value(arg: Any) -> Any:
    """Convert an evaluated kernel argument to a plain Python KV datum."""
    cls = arg.__class__
    if cls is Ptr or cls is Buffer:
        return arg.c_string()
    if cls is ScalarRef:
        return arg.deref()
    return arg


def _kv_number(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise CRuntimeError(
            f"getKV: cannot read {text!r} into a numeric variable"
        ) from None


def store_kv_arg(ref: Any, value: Any) -> None:
    # getKV marshals off the shuffle's textual wire with scanf
    # semantics: a char-array target reads the datum's text (%s) — an
    # int key 42 arrives as "42", not as the char with code 42 — and a
    # numeric target parses text back to a number (%d/%f).
    if ref.__class__ is Ptr:
        buf = ref.buffer
        if buf is not None and buf.elem_type is T.CHAR:
            buf.store_string(ref.offset, kv_text(value))
        else:
            ref.store(_kv_number(value) if value.__class__ is str else value)
    elif ref.__class__ is ScalarRef:
        ref.store(_kv_number(value) if value.__class__ is str else value)
    else:
        raise CRuntimeError(f"getKV target is not a pointer: {ref!r}")


def common_lane_builtins(hook: ChargeHook, state: LaneState,
                         vec: int) -> dict[str, Callable]:
    """Device versions of the C library: same semantics as the host table,
    plus cost charging through the launch's hook. The runtime 'provides
    equivalent implementations' of C standard functions the GPU lacks
    (paper §4.1)."""
    base = host_builtins()
    gpu: dict[str, Callable] = {}
    charge_math = hook.bind_math_call()
    charge_string = hook.bind_string_call(vec)

    def wrap_math(fn: Callable) -> Callable:
        def impl(interp: Any, args: list[Any]) -> Any:
            charge_math(state.charges, interp.counters)
            return fn(interp, args)

        return impl

    def wrap_string(fn: Callable) -> Callable:
        def impl(interp: Any, args: list[Any]) -> Any:
            length = 0
            for arg in args:
                if arg.__class__ is Ptr:
                    buf = arg.buffer
                    if buf is not None and buf.elem_type is T.CHAR:
                        n = len(buf.c_string(arg.offset))
                        if n > length:
                            length = n
            charge_string(state.charges, length)
            return fn(interp, args)

        return impl

    for name, fn in base.items():
        if name in _MATH_FUNCS:
            gpu[name] = wrap_math(fn)
        elif name in _STRING_FUNCS:
            gpu[name] = wrap_string(fn)
        elif name in ("printf", "scanf", "getline"):
            continue  # must have been rewritten by the translator
        else:
            gpu[name] = fn

    def bi_unsupported(name: str) -> Callable:
        def impl(interp: Any, args: list[Any]) -> Any:
            raise GpuError(
                f"{name} survived translation into the GPU kernel; the "
                "translator should have rewritten it"
            )

        return impl

    for name in ("printf", "scanf", "getline"):
        gpu[name] = bi_unsupported(name)
    return gpu


def make_map_builtins(kernel: KernelIR, device: Any, hook: ChargeHook,
                      state: LaneState, store: Any,
                      partitioner: Any) -> dict[str, Callable]:
    """The map-kernel builtin table: common device library plus
    ``getRecord``/``emitKV`` reading per-lane state."""
    txn_bytes = device.spec.transaction_bytes
    vec = max(kernel.vector_width, 1)
    stealing = kernel.opt.record_stealing
    kv_nbytes = kernel.key_length + kernel.value_length
    charge_record = hook.bind_record_read(txn_bytes, stealing)
    charge_emit = hook.bind_kv_emit(kv_nbytes, vec)

    def bi_get_record(interp: Any, args: list[Any]) -> int:
        records = state.records
        i = state.index
        if i >= len(records):
            return -1
        rec = records[i]
        state.index = i + 1
        charge_record(state.charges, interp.counters, len(rec))
        if rec.isascii():
            # ASCII bytes survive the decode/encode round trip unchanged,
            # so the record can back the buffer directly.
            buf = Buffer(T.CHAR, len(rec) + 1, label="strlit")
            buf.data[: len(rec)] = rec
        else:
            buf = Buffer.from_string(rec.decode("utf-8", errors="replace"))
        buf.space = "private"
        ref = args[0]
        if not isinstance(ref, (ScalarRef, Ptr)):
            raise CRuntimeError("getRecord needs &line")
        ref.store(Ptr(buf, 0))
        return len(rec)

    def bi_emit_kv(interp: Any, args: list[Any]) -> int:
        if len(args) != 2:
            raise CRuntimeError("emitKV(key, value)")
        key = extract_value(args[0])
        value = extract_value(args[1])
        part = partitioner.partition(key)
        store.emit(state.global_tid, key, value, part)
        charge_emit(state.charges, interp.counters)
        return kv_nbytes

    builtins = common_lane_builtins(hook, state, vec)
    builtins["getRecord"] = bi_get_record
    builtins["emitKV"] = bi_emit_kv
    return builtins


def make_combine_builtins(kernel: KernelIR, device: Any, hook: ChargeHook,
                          state: LaneState) -> dict[str, Callable]:
    """The combine-kernel builtin table: common device library plus
    ``getKV``/``storeKV`` reading per-lane state."""
    txn_bytes = device.spec.transaction_bytes
    vec = max(kernel.vector_width, 1)
    cooperative = vec > 1
    kv_bytes = kernel.key_length + kernel.value_length
    charge_move = hook.bind_kv_move(kv_bytes, txn_bytes, vec, cooperative)

    def bi_get_kv(interp: Any, args: list[Any]) -> int:
        chunk = state.chunk
        i = state.index
        if i >= len(chunk):
            return -1
        pair = chunk[i]
        state.index = i + 1
        charge_move(state.charges)
        interp.counters.bytes_in += kv_bytes
        store_kv_arg(args[0], pair.key)
        store_kv_arg(args[1], pair.value)
        return 2

    def bi_store_kv(interp: Any, args: list[Any]) -> int:
        key = extract_value(args[0])
        value = extract_value(args[1])
        state.output.append((key, value))
        charge_move(state.charges)
        interp.counters.bytes_out += kv_bytes
        return kv_bytes

    builtins = common_lane_builtins(hook, state, vec)
    builtins["getKV"] = bi_get_kv
    builtins["storeKV"] = bi_store_kv
    return builtins


# --------------------------------------------------------------------------
# Snapshot materialization helpers (shared with the tree engine)
# --------------------------------------------------------------------------


def clone_buffer(buf: Buffer, space: str) -> Buffer:
    copy = Buffer(buf.elem_type, buf.size, label=buf.label, space=space)
    copy.data[:] = buf.data
    return copy


def snapshot_value(snapshot: dict[str, Any], var: VarInfo) -> Any:
    if var.name not in snapshot:
        raise GpuError(
            f"host snapshot missing firstprivate/sharedRO variable {var.name!r}"
        )
    return snapshot[var.name]


def kernel_program(kernel: KernelIR) -> A.Program:
    """A Program wrapper exposing the user's helper functions (anything
    besides ``main``) so kernel bodies can call them — the paper's
    translator emits ``__device__`` versions of such helpers.

    One Program per kernel, cached on the KernelIR: a stable Program
    identity is what lets the compile/str-literal caches in
    :mod:`repro.minic.cache` hit across threads and splits instead of
    re-walking the AST."""
    program = kernel.__dict__.get("_cached_program")
    if program is None:
        program = A.Program(functions=kernel.helpers)
        setattr(kernel, "_cached_program", program)
    return program


# --------------------------------------------------------------------------
# Environment plans: build_thread_env semantics, compiled to factories
# --------------------------------------------------------------------------


def _array_factory(ctype: T.Array, kname: str,
                   space: str | None) -> Callable[[], Cell]:
    """Mirror of ``Interpreter._alloc_array`` + the executor's
    ``cell.value.space = space`` follow-up, with the size math and the
    >2-D rejection hoisted to plan-build time."""
    base = ctype.base
    size = ctype.size or 0
    inner: int | None = None
    if isinstance(base, T.Array):
        inner = base.size or 0
        size *= inner
        base = base.base
        if isinstance(base, T.Array):
            raise CRuntimeError(
                f"arrays of more than two dimensions unsupported ({kname})"
            )
    elem = base

    def make() -> Cell:
        buf = Buffer(elem, size, label=kname)
        buf.inner_dim = inner
        buf.space = space
        return Cell(value=buf, ctype=ctype)

    return make


def _declare_factory(ctype: T.CType, kname: str,
                     value: Any) -> Callable[[], Cell]:
    """Mirror of ``Interpreter.declare(kname, ctype, value=value)``."""
    if isinstance(ctype, T.Array):
        return _array_factory(ctype, kname, space=None)
    if value is None:
        if ctype.is_pointer:
            value = NULL
        elif ctype.is_float:
            value = 0.0
        else:
            value = 0
    return lambda: Cell(value=value, ctype=ctype)


def _var_cell_factory(var: VarInfo, snapshot: dict[str, Any],
                      shared_ro: dict[str, Buffer]) -> Callable[[], Cell]:
    """One kernel variable's per-lane Cell factory, reproducing the
    branch structure (and error behavior) of ``build_thread_env``."""
    kname = var.kernel_name
    klass = var.klass
    ctype = var.ctype
    if klass is VarClass.CONST_SCALAR:
        return _declare_factory(ctype, kname, snapshot_value(snapshot, var))
    if klass in (VarClass.GLOBAL_RO_ARRAY, VarClass.TEXTURE_ARRAY):
        ptr = Ptr(shared_ro[var.name], 0)
        return lambda: Cell(value=ptr, ctype=_VOID_PTR)
    if klass is VarClass.FIRSTPRIVATE_SCALAR:
        return _declare_factory(ctype, kname, snapshot_value(snapshot, var))
    if klass in (VarClass.FIRSTPRIVATE_ARRAY, VarClass.SHARED_ARRAY):
        host_val = snapshot.get(var.name)
        space = "shared" if klass is VarClass.SHARED_ARRAY else "private"
        if isinstance(host_val, Buffer):
            src = host_val
        elif isinstance(host_val, Ptr) and host_val.buffer is not None:
            src = host_val.buffer
        elif isinstance(ctype, T.Array):
            make_array = _array_factory(ctype, kname, space)
            if host_val is not None:
                raise GpuError(
                    f"cannot initialize firstprivate array {var.name!r} "
                    f"from {type(host_val).__name__}"
                )
            return make_array
        else:
            return _declare_factory(
                ctype, kname, host_val if host_val is not None else 0
            )
        return lambda: Cell(value=Ptr(clone_buffer(src, space), 0),
                            ctype=_VOID_PTR)
    # PRIVATE
    if isinstance(ctype, T.Array):
        return _array_factory(ctype, kname, "private")
    if ctype.is_pointer:
        return lambda: Cell(value=NULL, ctype=ctype)
    return _declare_factory(ctype, kname, None)


#: Predefined C identifiers, matching ``Interpreter.__init__``'s
#: ``_globals``. Factories, not shared cells: the tree engine gives every
#: lane a fresh interpreter (fresh cells), and kernels may write them.
_GLOBAL_CELL_FACTORIES: dict[str, Callable[[], Cell]] = {
    "stdin": lambda: Cell(value="<stdin>", ctype=_VOID_PTR),
    "stdout": lambda: Cell(value="<stdout>", ctype=_VOID_PTR),
    "stderr": lambda: Cell(value="<stderr>", ctype=_VOID_PTR),
    "NULL": lambda: Cell(value=NULL, ctype=_VOID_PTR),
    "EOF": lambda: Cell(value=-1, ctype=T.INT),
}


def _fresh_globals() -> dict[str, Cell]:
    return {name: make() for name, make in _GLOBAL_CELL_FACTORIES.items()}


def build_env_plan(
    suite: Any,
    kernel: KernelIR,
    snapshot: dict[str, Any],
    shared_ro: dict[str, Buffer],
) -> tuple[tuple[int, Callable[[], Cell]], ...]:
    """The per-launch environment plan: for each free variable of the
    compiled body, a (slot, factory) pair that materializes the lane's
    Cell for it.

    Every kernel variable is *validated* (snapshot presence, array
    initialization, dimensionality) in declaration order even when the
    body never references it, so plan construction raises exactly the
    errors ``build_thread_env`` would raise on the first lane. Frees
    that are neither kernel variables nor predefined globals keep their
    None slot and fail lazily with the tree-walker's 'undeclared
    identifier' message."""
    free_slots: dict[str, int] = dict(suite.frees)
    plan: list[tuple[int, Callable[[], Cell]]] = []
    kernel_names: set[str] = set()
    for var in kernel.variables.values():
        kname = var.kernel_name
        kernel_names.add(kname)
        factory = _var_cell_factory(var, snapshot, shared_ro)
        slot = free_slots.get(kname)
        if slot is not None:
            plan.append((slot, factory))
    for name, slot in suite.frees:
        if name in kernel_names:
            continue
        factory = _GLOBAL_CELL_FACTORIES.get(name)
        if factory is not None:
            plan.append((slot, factory))
    return tuple(plan)


# --------------------------------------------------------------------------
# The compiled lane engine
# --------------------------------------------------------------------------


class KernelLaneFacade:
    """Minimal Interpreter stand-in for compiled lane execution.

    Exactly the attribute surface the compiled backend and the device
    builtins touch: counters, builtins, heap, step budget, globals, the
    charge hook binding, and a lazily created ``stdout`` (only
    ``fprintf`` — which survives translation as a host-stream write —
    ever asks for it)."""

    __slots__ = ("counters", "builtins", "heap", "max_steps", "_steps",
                 "_globals", "_charge_access", "_stdout")

    def __init__(self, builtins: dict[str, Callable],
                 charge: Callable[[Any, bool], None],
                 globals_dict: dict[str, Cell]):
        self.builtins = builtins
        self._charge_access = charge
        self._globals = globals_dict
        self.max_steps = _LANE_MAX_STEPS
        self.counters = ExecCounters()
        self.heap: list[Buffer] = []
        self._steps = 0
        self._stdout: io.StringIO | None = None

    @property
    def stdout(self) -> io.StringIO:
        out = self._stdout
        if out is None:
            out = self._stdout = io.StringIO()
        return out


class CompiledLaneRunner:
    """Per-launch compiled execution context for one kernel.

    Construction resolves everything that is launch-invariant: the
    compiled body (from the job-level cache, keyed on program + charge
    profile), the builtin table, the charge binding, and — lazily, on
    the first active lane, matching the tree engine's error timing —
    the environment plan. Each lane invocation is then: reset the
    facade, run the plan's factories into a fresh frame, call the
    compiled closure."""

    def __init__(
        self,
        device: Any,
        kernel: KernelIR,
        snapshot: dict[str, Any],
        shared_ro: dict[str, Buffer],
        store: Any = None,
        partitioner: Any = None,
        hook: ChargeHook = DEFAULT_CHARGE_HOOK,
    ):
        self.kernel = kernel
        self.snapshot = snapshot
        self.shared_ro = shared_ro
        self.hook = hook
        # Scalar kernel variables whose per-lane cell is guaranteed to
        # carry the declared ctype (their factories mirror
        # Interpreter.declare); array/pointer-rewritten classes are left
        # generic because their cells hold Ptr under a void* ctype.
        free_cts = {
            var.kernel_name: var.ctype
            for var in kernel.variables.values()
            if var.klass in (VarClass.CONST_SCALAR,
                             VarClass.FIRSTPRIVATE_SCALAR, VarClass.PRIVATE)
            and not isinstance(var.ctype, T.Array)
        }
        self.suite = compiled_kernel_body(
            kernel_program(kernel), kernel.body, hook.profile_key, free_cts
        )
        self.state = state = LaneState()
        if kernel.is_mapper:
            builtins = make_map_builtins(kernel, device, hook, state,
                                         store, partitioner)
        else:
            builtins = make_combine_builtins(kernel, device, hook, state)
        # Helper functions bind their frees from the facade's globals, so
        # they need per-lane cells (a helper may write them); bodies bind
        # globals through the env plan instead, so helper-less kernels —
        # the common case — share one launch-level dict.
        self._fresh_globals_per_lane = bool(kernel.helpers)
        self.facade = KernelLaneFacade(
            builtins, hook.bind_state(state), _fresh_globals()
        )
        self._plan: tuple[tuple[int, Callable[[], Cell]], ...] | None = None

    def _env_plan(self) -> tuple[tuple[int, Callable[[], Cell]], ...]:
        plan = self._plan
        if plan is None:
            plan = self._plan = build_env_plan(
                self.suite, self.kernel, self.snapshot, self.shared_ro
            )
        return plan

    def _run_lane_body(self) -> ExecCounters:
        facade = self.facade
        facade.counters = counters = ExecCounters()
        facade.heap = []
        facade._steps = 0
        facade._stdout = None
        if self._fresh_globals_per_lane:
            facade._globals = _fresh_globals()
        suite = self.suite
        frame: list = [None] * suite.nslots
        for slot, make in self._env_plan():
            frame[slot] = make()
        suite.execute_with_frame(facade, frame)
        return counters

    def run_map_lane(self, thread_records: list[bytes], global_tid: int,
                     charges: LaneCharges) -> ExecCounters:
        state = self.state
        state.records = thread_records
        state.index = 0
        state.charges = charges
        state.global_tid = global_tid
        return self._run_lane_body()

    def run_combine_chunk(
        self, chunk: list[Any], charges: LaneCharges
    ) -> tuple[ExecCounters, list[tuple[Any, Any]]]:
        state = self.state
        state.chunk = chunk
        state.index = 0
        state.charges = charges
        state.output = out = []
        counters = self._run_lane_body()
        return counters, out
