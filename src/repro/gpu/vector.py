"""Vectorized warp lane engine: numpy closures over the lane axis.

The compiled engine (:mod:`repro.gpu.engine`) removed the per-lane
interpreter but still executes a warp as a Python loop — 32 closure
trees, one per lane. HeteroDoop's execution model says lanes of a warp
run in *lockstep*; this module exploits that: divergence-free kernel
regions compile to numpy operations over the whole warp (in practice the
whole threadblock's active lanes), so one Python-level operation
executes for every lane at once.

Architecture
------------
The kernel body compiles into a *warp spine* plus *regions*:

* **Spine** nodes (:class:`_WarpBlock`, :class:`_WarpWhile`,
  :class:`_WarpIf`) carry a set of active lanes through the control
  flow that genuinely diverges per lane (the ``getline``/``getWord``
  record loops). Condition evaluation and region-free statements run
  per lane via the same ``_FunctionCompiler`` closures the compiled
  engine uses — charging, counters, and error text are shared code,
  not replicas.
* **Regions** (:class:`_Region`) are uniform-trip ``for`` loops whose
  bodies pass :class:`_RegionCompiler` eligibility: straight-line
  scalar arithmetic, reads of arrays at uniform indices, nested
  uniform-trip loops, and ``if`` statements whose assign-only arms
  convert to predicated ``np.where`` selects. A region executes as a
  sequence of lane-axis numpy operations; loop trips stay sequential in
  Python (loop-carried dependences like KM's running argmin keep exact
  C semantics that way).

Exactness
---------
The oracle requires byte-identical output, ``ExecCounters``, and
``LaneCharges`` against the per-lane engines, so a region commits
nothing until it is certain:

* Computation is *pure until scatter*: inputs gather into fresh arrays,
  every store targets the value environment, and cell/counter/charge
  mutation happens only after the whole region succeeded. Any numpy
  failure, precision preflight (zero divisors, negative ``sqrt``
  operands, out-of-range int casts, |int| > 2^53 in float context), or
  unexpected exception abandons the attempt with **zero side effects**
  and re-executes the loop per lane through the compiled fallback
  closure — which reproduces exact error messages, partial effects, and
  charges. A fallback is never wrong, only slower.
* Counter/charge accounting is *static*: trip counts are compile-time
  constants, so ops/loads/stores/branches/fp_ops and the instruction
  charges fold to per-entry totals (plus per-lane masked extras for
  predicated arms). ``instructions``/``shared_accesses`` increments
  inside regions are integral, so folding is exact under the runner's
  power-of-two gate; the 0.02/0.08 texture/global charges *replay* —
  ``k`` repeated numpy adds of the same constant reproduce the
  sequential float rounding bit-for-bit.
* Transcendental math (``exp``/``log``/``erf``/trig) runs as
  per-element ``math.*`` loops — numpy's SIMD routines may differ in
  the last ulp, and bit-identity outranks a constant factor. ``sqrt``
  and ``fabs`` are IEEE-exact and use numpy directly.

Whole-kernel fallback (runner behaves exactly like the compiled
engine): numpy missing, kernel helpers (per-lane globals), a
non-space-profile charge hook, non-power-of-two vector width or
transaction size, or no eligible regions.
"""

from __future__ import annotations

import math
import operator
from typing import Any, Callable

try:
    import numpy as _np
except Exception:  # pragma: no cover - the image bakes numpy in
    _np = None

from ..compiler.kernel_ir import KernelIR, VarClass
from ..errors import CRuntimeError
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.cache import compiled_warp_body
from ..minic.compile import (
    _BREAK,
    _CONT,
    _Return,
    _FunctionCompiler,
    _make_flush,
    _c_div,
    _c_mod,
)
from ..minic.interpreter import ExecCounters
from ..minic.values import Buffer, Ptr, truthy
from ..obs import trace as obs
from .charging import (
    ChargeHook,
    CountingChargeHook,
    DEFAULT_CHARGE_HOOK,
    LaneCharges,
    SpaceChargeHook,
)
from .engine import CompiledLaneRunner, build_env_plan, kernel_program

__all__ = ["VectorLaneRunner", "WarpSuite", "region_eligible"]

#: Largest static trip count a region loop may have (beyond this the
#: fold multiplicities stop being obviously safe and the per-lane
#: engine is fine).
_MAX_TRIPS = 65536
#: Largest total multiplicity (product of nested trip counts).
_MAX_MULT = 1 << 20
#: Integers beyond 2^53 lose exactness as float64; any varying int that
#: could reach float context must stay below this or the region abandons.
_SAFE_INT = 1 << 53

_TEX_CHARGE = 0.02
_GLOBAL_CHARGE = 0.08
_MATH_INSTR = 8.0

#: Single-argument math builtins a region may call, with their execution
#: strategy: "sqrt"/"abs" are IEEE-exact in numpy; "map" runs a
#: per-element math.* loop to match the host builtin bit-for-bit.
_REGION_MATH: dict[str, tuple[str, Callable[[float], float]]] = {
    "sqrt": ("sqrt", math.sqrt), "sqrtf": ("sqrt", math.sqrt),
    "fabs": ("abs", math.fabs), "fabsf": ("abs", math.fabs),
    "exp": ("map", math.exp), "expf": ("map", math.exp),
    "log": ("map", math.log), "logf": ("map", math.log),
    "log2": ("map", math.log2),
    "sin": ("map", math.sin), "sinf": ("map", math.sin),
    "cos": ("map", math.cos), "cosf": ("map", math.cos),
    "tan": ("map", math.tan), "atan": ("map", math.atan),
    "erf": ("map", math.erf), "erff": ("map", math.erf),
}

_CMP_OPS = {
    "<": operator.lt, "<=": operator.le, ">": operator.gt,
    ">=": operator.ge, "==": operator.eq, "!=": operator.ne,
}


class _Ineligible(Exception):
    """Compile-time: this For cannot become a region."""


class _Abandon(Exception):
    """Runtime: this region entry must re-run through the fallback."""


class _Fault:
    """A deferred per-lane exception (raised after the batch drains, in
    lane order, so the first sequential failure wins)."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


def _is_pow2(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def _scalar_klass(ct: Any) -> str | None:
    if ct is T.INT or ct is T.LONG or ct is T.SIZE_T:
        return "i"
    if ct is T.FLOAT or ct is T.DOUBLE:
        return "f"
    return None


# --------------------------------------------------------------------------
# Static accounting
# --------------------------------------------------------------------------

_ACCT_FIELDS = ("ops", "loads", "stores", "branches", "calls", "fp",
                "instr", "shared", "access", "mathc", "tex", "glob",
                "steps")


class _Acct:
    """Static per-region-entry totals (all integral, so the fold into
    float charge fields is exact under the power-of-two gate)."""

    __slots__ = _ACCT_FIELDS

    def __init__(self) -> None:
        for f in _ACCT_FIELDS:
            setattr(self, f, 0)

    def add(self, other: "_Acct", times: int = 1) -> None:
        for f in _ACCT_FIELDS:
            setattr(self, f, getattr(self, f) + getattr(other, f) * times)

    def nonzero_fields(self) -> list[str]:
        return [f for f in _ACCT_FIELDS if getattr(self, f)]


# --------------------------------------------------------------------------
# Region value model
# --------------------------------------------------------------------------


class _RVar:
    """One scalar variable live inside a region."""

    __slots__ = ("name", "rid", "klass", "varying", "slot", "outer",
                 "assigned", "read")

    def __init__(self, name: str, rid: int, klass: str, varying: bool,
                 slot: int | None, outer: bool):
        self.name = name
        self.rid = rid
        self.klass = klass
        self.varying = varying
        self.slot = slot
        self.outer = outer
        self.assigned = False
        self.read = False


class _RArr:
    """One array referenced (read-only) inside a region."""

    __slots__ = ("name", "slot", "uniform", "elem", "space")

    def __init__(self, name: str, slot: int, uniform: bool, elem: str,
                 space: str | None):
        self.name = name
        self.slot = slot
        self.uniform = uniform
        self.elem = elem
        self.space = space


class _Env:
    """Runtime value environment for one region entry."""

    __slots__ = ("n", "vals", "extra", "aspec", "amemo")

    def __init__(self, n: int, nvals: int,
                 extra_fields: tuple[str, ...]) -> None:
        self.n = n
        self.vals: list[Any] = [None] * nvals
        self.extra = {f: _np.zeros(n, dtype=_np.int64) for f in extra_fields}
        self.aspec: dict[str, tuple] = {}
        self.amemo: dict[tuple[str, int], Any] = {}

    def read_array(self, name: str, off: int):
        key = (name, off)
        memo = self.amemo
        val = memo.get(key)
        if val is None:
            spec = self.aspec[name]
            if spec[0] == "u":
                buf, base = spec[1], spec[2]
                eff = base + off
                if buf.freed or not 0 <= eff < buf.size:
                    raise _Abandon
                val = buf.data[eff]
                _check_elem(val, spec[3])
            else:
                pairs = spec[1]
                elem = spec[2]
                out = []
                for buf, base in pairs:
                    eff = base + off
                    if buf.freed or not 0 <= eff < buf.size:
                        raise _Abandon
                    v = buf.data[eff]
                    _check_elem(v, elem)
                    out.append(v)
                val = _np.array(
                    out, dtype=_np.float64 if elem == "f" else _np.int64
                )
            memo[key] = val
        return val


def _check_elem(v: Any, elem: str) -> None:
    if elem == "f":
        if v.__class__ is not float:
            raise _Abandon
    else:
        if v.__class__ is not int or not -_SAFE_INT <= v <= _SAFE_INT:
            raise _Abandon


def _safe_int(v: Any) -> int:
    v = int(v)
    if not -_SAFE_INT <= v <= _SAFE_INT:
        raise _Abandon
    return v


# --------------------------------------------------------------------------
# Pre-scan: name-level variance fixed point
# --------------------------------------------------------------------------


class _PreScan:
    """Collects, at name granularity, which scalars a region treats as
    *varying* (per-lane arrays) vs *uniform* (one Python scalar).

    Outer (gathered) scalars are varying; loop counters are uniform by
    construction; a local is varying once it is ever assigned under a
    predicate or assigned a value that reads something varying. Name-
    level conservatism is sound: a wrongly-"uniform" classification can
    only make a scalar-consuming site raise inside the pure compute
    phase, which abandons to the exact per-lane fallback."""

    def __init__(self, arrays_varying: Callable[[str], bool]):
        self.locals: set[str] = set()
        self.counters: set[str] = set()
        self.assigns: list[tuple[str, set[str], bool, bool]] = []
        self.arrays_varying = arrays_varying

    def scan_for(self, stmt: A.For) -> None:
        init = stmt.init
        if isinstance(init, A.DeclStmt):
            for d in init.decls:
                self.locals.add(d.name)
                self.counters.add(d.name)
        elif isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign):
            if isinstance(init.expr.target, A.Ident):
                self.counters.add(init.expr.target.name)
        self.stmt(stmt.body)

    def stmt(self, s: A.Stmt, pred: bool = False) -> None:
        if isinstance(s, A.Block):
            for c in s.stmts:
                self.stmt(c, pred)
        elif isinstance(s, A.DeclStmt):
            for d in s.decls:
                self.locals.add(d.name)
                if d.init is not None:
                    self.record(d.name, d.init, pred)
        elif isinstance(s, A.ExprStmt):
            e = s.expr
            if isinstance(e, A.Assign) and isinstance(e.target, A.Ident):
                self.record(e.target.name, e.value, pred,
                            reads_self=e.op != "=")
            elif isinstance(e, (A.PostfixOp, A.UnaryOp)) and \
                    isinstance(getattr(e, "operand", None), A.Ident):
                name = e.operand.name
                self.assigns.append((name, {name}, False, pred))
        elif isinstance(s, A.If):
            self.stmt(s.then, True)
            if s.otherwise is not None:
                self.stmt(s.otherwise, True)
        elif isinstance(s, A.For):
            self.scan_for(s)
        # other statement kinds make the region ineligible later anyway

    def record(self, target: str, rhs: A.Expr, pred: bool,
               reads_self: bool = False) -> None:
        reads: set[str] = set()
        leaf = self.expr_leaves(rhs, reads)
        if reads_self:
            reads.add(target)
        self.assigns.append((target, reads, leaf, pred))

    def expr_leaves(self, e: A.Expr, reads: set[str]) -> bool:
        """Accumulate scalar names read; return True if the expression
        contains an intrinsically varying leaf (varying array read)."""
        if isinstance(e, A.Ident):
            reads.add(e.name)
            return False
        if isinstance(e, A.BinOp):
            a = self.expr_leaves(e.left, reads)
            b = self.expr_leaves(e.right, reads)
            return a or b
        if isinstance(e, (A.UnaryOp, A.Cast)):
            return self.expr_leaves(e.operand, reads)
        if isinstance(e, A.Index):
            leaf = False
            if isinstance(e.base, A.Ident):
                leaf = self.arrays_varying(e.base.name)
            return self.expr_leaves(e.index, reads) or leaf
        if isinstance(e, A.Call):
            leaf = False
            for a in e.args:
                leaf = self.expr_leaves(a, reads) or leaf
            return leaf
        return False

    def varying_names(self) -> set[str]:
        outer_read: set[str] = set()
        for _t, reads, _leaf, _p in self.assigns:
            outer_read |= reads - self.locals - self.counters
        varying: set[str] = set(outer_read)
        changed = True
        while changed:
            changed = False
            for target, reads, leaf, pred in self.assigns:
                if target in self.counters or target in varying:
                    continue
                if leaf or pred or (reads & varying):
                    varying.add(target)
                    changed = True
        return varying


# --------------------------------------------------------------------------
# Region compilation
# --------------------------------------------------------------------------


class _RegionPlan:
    """Everything needed to run one eligible For over a lane batch."""

    __slots__ = ("acct", "body", "nvals", "gathers", "scatters", "arrays",
                 "extra_fields", "counting_extra")

    def __init__(self) -> None:
        self.acct = _Acct()
        self.body: list[Callable[[_Env], None]] = []
        self.nvals = 0
        self.gathers: list[_RVar] = []
        self.scatters: list[_RVar] = []
        self.arrays: list[_RArr] = []
        self.extra_fields: tuple[str, ...] = ()


class _RegionCompiler:
    """Compiles one candidate For into a :class:`_RegionPlan`, raising
    :class:`_Ineligible` the moment anything falls outside the
    vectorizable subset."""

    def __init__(self, comp: _FunctionCompiler,
                 kernel_arrays: dict[str, tuple[bool, str, str | None]],
                 stmt: A.For):
        self.comp = comp
        self.kernel_arrays = kernel_arrays
        self.stmt = stmt
        self.plan = _RegionPlan()
        self.scopes: list[dict[str, _RVar]] = []
        self.outers: dict[str, _RVar] = {}
        self.arrays: dict[str, _RArr] = {}
        self.active_counters: list[_RVar] = []
        self.rvars: list[_RVar] = []
        pre = _PreScan(self._array_varying)
        pre.scan_for(stmt)
        self.pre = pre
        self.varying_names = pre.varying_names()
        # A name used both as a loop counter and as an ordinary
        # assignment target cannot be proven uniform at name level.
        for target, _r, _l, _p in pre.assigns:
            if target in pre.counters:
                raise _Ineligible

    # -- variable resolution ------------------------------------------

    def _array_varying(self, name: str) -> bool:
        info = self._array_info(name)
        return True if info is None else not info[0]

    def _array_info(self, name: str) -> tuple[bool, str, str | None] | None:
        """(uniform, elem klass, expected space) or None if unknown."""
        comp = self.comp
        for scope in reversed(comp.scopes):
            if name in scope:
                ct = comp.slot_ctype.get(scope[name])
                if isinstance(ct, T.Array):
                    if isinstance(ct.base, T.Array):
                        return None  # 2-D: row pointers, not element reads
                    elem = _scalar_klass(ct.base)
                    if elem is None:
                        return None
                    return (False, elem, None)
                return None
        return self.kernel_arrays.get(name)

    def _new_rvar(self, name: str, klass: str, varying: bool,
                  slot: int | None, outer: bool) -> _RVar:
        rv = _RVar(name, len(self.rvars), klass, varying, slot, outer)
        self.rvars.append(rv)
        return rv

    def ref_scalar(self, name: str) -> _RVar:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        rv = self.outers.get(name)
        if rv is not None:
            return rv
        # Outer scalar: resolve through the function compiler (allocates
        # the free slot exactly as the fallback closure would).
        comp = self.comp
        slot = comp.slot_for(name)
        ct = comp.slot_ctype.get(slot)
        klass = _scalar_klass(ct)
        if klass is None:
            raise _Ineligible
        rv = self._new_rvar(name, klass, True, slot, True)
        self.outers[name] = rv
        return rv

    def ref_array(self, name: str) -> _RArr:
        arr = self.arrays.get(name)
        if arr is not None:
            return arr
        info = self._array_info(name)
        if info is None:
            raise _Ineligible
        uniform, elem, space = info
        slot = self.comp.slot_for(name)
        arr = _RArr(name, slot, uniform, elem, space)
        self.arrays[name] = arr
        return arr

    def declare_local(self, name: str, klass: str) -> _RVar:
        varying = name in self.varying_names
        rv = self._new_rvar(name, klass, varying, None, False)
        self.scopes[-1][name] = rv
        return rv

    # -- entry point ---------------------------------------------------

    def compile(self) -> _RegionPlan:
        plan = self.plan
        self.scopes.append({})
        fn = self.compile_for(self.stmt, 1, plan.acct)
        self.scopes.pop()
        plan.body = [fn]
        plan.nvals = len(self.rvars)
        plan.gathers = [rv for rv in self.rvars
                        if rv.outer and (rv.read or rv.assigned)]
        plan.scatters = [rv for rv in self.rvars if rv.outer and rv.assigned]
        plan.arrays = list(self.arrays.values())
        plan.extra_fields = tuple(sorted(self._extra_fields))
        if plan.acct.steps <= 0:
            raise _Ineligible  # zero-trip region: nothing to win
        return plan

    _extra_fields: set[str] = None  # type: ignore[assignment]

    # -- statements ----------------------------------------------------

    def compile_stmt(self, s: A.Stmt, mult: int,
                     acct: _Acct) -> Callable[[_Env], None] | None:
        if isinstance(s, A.Block):
            self.scopes.append({})
            fns = [f for c in s.stmts
                   if (f := self.compile_stmt(c, mult, acct)) is not None]
            self.scopes.pop()
            if not fns:
                return None
            if len(fns) == 1:
                return fns[0]

            def block(env: _Env, _fns=tuple(fns)) -> None:
                for f in _fns:
                    f(env)

            return block
        if isinstance(s, A.DeclStmt):
            return self.compile_decl(s, acct)
        if isinstance(s, A.ExprStmt):
            return self.compile_expr_stmt(s, acct)
        if isinstance(s, A.If):
            return self.compile_if(s, mult, acct)
        if isinstance(s, A.For):
            sub = _Acct()
            fn = self.compile_for(s, mult, sub)
            acct.add(sub)
            return fn
        raise _Ineligible

    def compile_decl(self, s: A.DeclStmt, acct: _Acct) -> Callable:
        fns = []
        for d in s.decls:
            klass = _scalar_klass(d.ctype)
            if klass is None:
                raise _Ineligible
            if d.init is not None:
                init_fn, ik, _iv = self.compile_expr(d.init, acct)
            else:
                init_fn, ik = None, klass
            rv = self.declare_local(d.name, klass)
            rid = rv.rid
            default = 0.0 if klass == "f" else 0
            coerce = self._coercer(klass, ik)
            if rv.varying:
                broadcast = self._broadcaster(klass)

                def decl(env: _Env, _f=init_fn, _c=coerce, _b=broadcast,
                         _rid=rid, _d=default) -> None:
                    v = _d if _f is None else _c(_f(env))
                    env.vals[_rid] = _b(env, v)
            else:
                def decl(env: _Env, _f=init_fn, _c=coerce,
                         _rid=rid, _d=default) -> None:
                    env.vals[_rid] = _d if _f is None else _c(_f(env))
            fns.append(decl)
        if len(fns) == 1:
            return fns[0]

        def decls(env: _Env, _fns=tuple(fns)) -> None:
            for f in _fns:
                f(env)

        return decls

    def _coercer(self, klass: str, vklass: str) -> Callable[[Any], Any]:
        """Coerce a computed value to the declared class, mirroring the
        compiled engine's float()/int() stores (int() on NaN/inf raises
        there; the varying preflight abandons so the fallback raises)."""
        if klass == vklass:
            if klass == "i":
                def as_int_id(v: Any) -> Any:
                    if isinstance(v, _np.ndarray) and v.dtype != _np.int64:
                        return v.astype(_np.int64)  # bool comparison results
                    return v
                return as_int_id
            return lambda v: v
        if klass == "f":
            def to_float(v: Any) -> Any:
                if isinstance(v, _np.ndarray):
                    return v.astype(_np.float64)
                return float(v)
            return to_float

        def to_int(v: Any) -> Any:
            if isinstance(v, _np.ndarray):
                if not _np.all(_np.isfinite(v)) or \
                        _np.any(_np.abs(v) >= _SAFE_INT):
                    raise _Abandon
                return v.astype(_np.int64)
            return int(v)  # ValueError/OverflowError abandons via the net

        return to_int

    def _broadcaster(self, klass: str) -> Callable[[_Env, Any], Any]:
        if klass == "f":
            def bf(env: _Env, v: Any) -> Any:
                if isinstance(v, _np.ndarray):
                    return v
                return _np.full(env.n, v, dtype=_np.float64)
            return bf

        def bi(env: _Env, v: Any) -> Any:
            if isinstance(v, _np.ndarray):
                return v
            return _np.full(env.n, _safe_int(v), dtype=_np.int64)

        return bi

    def compile_expr_stmt(self, s: A.ExprStmt, acct: _Acct) -> Callable:
        e = s.expr
        if isinstance(e, A.Assign) and isinstance(e.target, A.Ident):
            return self.compile_assign(e, acct, predicated=False)
        if isinstance(e, A.PostfixOp) and isinstance(e.operand, A.Ident) \
                and e.op in ("++", "--"):
            return self.compile_incdec(e.operand.name, e.op, acct, counted=True)
        if isinstance(e, A.UnaryOp) and e.op in ("++", "--") \
                and isinstance(e.operand, A.Ident):
            return self.compile_incdec(e.operand.name, e.op, acct,
                                       counted=False)
        raise _Ineligible

    def compile_incdec(self, name: str, op: str, acct: _Acct,
                       counted: bool) -> Callable:
        rv = self.ref_scalar(name)
        if rv in self.active_counters or rv.klass != "i" or rv.varying:
            raise _Ineligible  # varying int arithmetic / counter mutation
        rv.read = True
        rv.assigned = True
        if counted:
            acct.ops += 1  # postfix; prefix adds no counts (compiled parity)
        delta = 1 if op == "++" else -1
        rid = rv.rid

        def incdec(env: _Env, _rid=rid, _d=delta) -> None:
            env.vals[_rid] = env.vals[_rid] + _d

        return incdec

    def compile_assign(self, e: A.Assign, acct: _Acct,
                       predicated: bool) -> Callable:
        if e.op not in ("=", "+=", "-=", "*=", "/="):
            raise _Ineligible
        rv = self.ref_scalar(e.target.name)
        if rv in self.active_counters:
            raise _Ineligible
        vf, vk, vv = self.compile_expr(e.value, acct)
        rv.assigned = True
        acct.stores += 1
        acct.access += 1   # charge(None, is_store=True)
        acct.instr += 1
        rid = rv.rid
        klass = rv.klass
        if e.op == "=":
            combine = None
        else:
            rv.read = True
            acct.ops += 1
            if klass == "f" or vk == "f":
                acct.fp += 1
            res_k = "f" if (klass == "f" or vk == "f") else "i"
            if res_k == "i" and (rv.varying or vv):
                raise _Ineligible  # varying int arithmetic
            combine = self._combiner(e.op[:-1], rv.varying or vv)
            vk = res_k
        coerce = self._coercer(klass, vk)
        if not predicated:
            if rv.varying:
                broadcast = self._broadcaster(klass)

                def assign(env: _Env, _vf=vf, _cb=combine, _c=coerce,
                           _b=broadcast, _rid=rid) -> None:
                    v = _vf(env)
                    if _cb is not None:
                        v = _cb(env.vals[_rid], v)
                    env.vals[_rid] = _b(env, _c(v))
            else:
                def assign(env: _Env, _vf=vf, _cb=combine, _c=coerce,
                           _rid=rid) -> None:
                    v = _vf(env)
                    if _cb is not None:
                        v = _cb(env.vals[_rid], v)
                    env.vals[_rid] = _c(v)
            return assign
        # Predicated: target is varying by the pre-scan fixed point.
        broadcast = self._broadcaster(klass)

        def passign(env: _Env, mask: Any, _vf=vf, _cb=combine, _c=coerce,
                    _b=broadcast, _rid=rid) -> None:
            v = _vf(env)
            old = env.vals[_rid]
            if _cb is not None:
                v = _cb(old, v)
            new = _b(env, _c(v))
            env.vals[_rid] = new if mask is None else _np.where(mask, new, old)

        return passign

    def _combiner(self, op: str, any_varying: bool) -> Callable:
        if op == "+":
            return operator.add
        if op == "-":
            return operator.sub
        if op == "*":
            return operator.mul
        # division: zero divisors abandon (the fallback raises the C
        # "division by zero" with exact partial state)
        if not any_varying:
            return _c_div

        def div(old: Any, v: Any) -> Any:
            if isinstance(v, _np.ndarray):
                if _np.any(v == 0):
                    raise _Abandon
            elif v == 0:
                raise _Abandon
            return old / v

        return div

    def compile_if(self, s: A.If, mult: int, acct: _Acct) -> Callable:
        cond_fn, ck, cv = self.compile_expr(s.cond, acct)
        acct.branches += 1
        then_extra, then_fns = self.compile_arm(s.then)
        if s.otherwise is not None:
            else_extra, else_fns = self.compile_arm(s.otherwise)
        else:
            else_extra, else_fns = None, ()
        apply_then = self._extra_applier(then_extra)
        apply_else = self._extra_applier(else_extra)

        if cv:
            def ifstmt(env: _Env, _cf=cond_fn, _te=apply_then,
                       _tf=then_fns, _ee=apply_else, _ef=else_fns) -> None:
                mask = _cf(env) != 0
                _te(env, mask)
                for f in _tf:
                    f(env, mask)
                if _ef or _ee is not _NOOP_EXTRA:
                    inv = ~mask
                    _ee(env, inv)
                    for f in _ef:
                        f(env, inv)

            return ifstmt

        def ifstmt_u(env: _Env, _cf=cond_fn, _te=apply_then, _tf=then_fns,
                     _ee=apply_else, _ef=else_fns) -> None:
            c = _cf(env)
            if c if c.__class__ is int else truthy(c):
                _te(env, None)
                for f in _tf:
                    f(env, None)
            else:
                _ee(env, None)
                for f in _ef:
                    f(env, None)

        return ifstmt_u

    def compile_arm(self, arm: A.Stmt) -> tuple[_Acct, tuple]:
        """An arm is assign-only; its counts/charges become per-lane
        masked extras applied when the If executes."""
        extra = _Acct()
        stmts = arm.stmts if isinstance(arm, A.Block) else [arm]
        fns = []
        for st in stmts:
            if not (isinstance(st, A.ExprStmt) and
                    isinstance(st.expr, A.Assign) and
                    isinstance(st.expr.target, A.Ident)):
                raise _Ineligible
            fns.append(self.compile_assign(st.expr, extra, predicated=True))
        if extra.steps:
            raise _Ineligible
        for f in extra.nonzero_fields():
            self._extra_fields.add(f)
        return extra, tuple(fns)

    def _extra_applier(self, extra: _Acct | None) -> Callable:
        if extra is None:
            return _NOOP_EXTRA
        deltas = [(f, getattr(extra, f)) for f in extra.nonzero_fields()]
        if not deltas:
            return _NOOP_EXTRA

        def apply(env: _Env, mask: Any, _d=tuple(deltas)) -> None:
            ex = env.extra
            if mask is None:
                for f, delta in _d:
                    ex[f] += delta
            else:
                for f, delta in _d:
                    ex[f][mask] += delta

        return apply

    # -- loops ---------------------------------------------------------

    def compile_for(self, s: A.For, mult: int, acct: _Acct) -> Callable:
        counter, start, trips, delta, init_acct, step_acct = \
            self.parse_header(s)
        if mult * trips > _MAX_MULT:
            raise _Ineligible
        acct.add(init_acct)
        cond = _Acct()
        cond.ops += 1
        cond.branches += 1
        acct.add(cond, trips + 1)
        acct.add(step_acct, trips)
        acct.steps += trips + 1
        body_acct = _Acct()
        self.active_counters.append(counter)
        body_fn = self.compile_stmt(s.body, mult * trips, body_acct)
        self.active_counters.pop()
        acct.add(body_acct, trips)
        crid = counter.rid
        final = start + trips * delta

        if body_fn is None:
            def empty_loop(env: _Env, _rid=crid, _final=final) -> None:
                env.vals[_rid] = _final
            return empty_loop

        def forloop(env: _Env, _rid=crid, _start=start, _trips=trips,
                    _delta=delta, _final=final, _bf=body_fn) -> None:
            vals = env.vals
            c = _start
            for _ in range(_trips):
                vals[_rid] = c
                _bf(env)
                c += _delta
            vals[_rid] = _final

        return forloop

    def parse_header(
        self, s: A.For
    ) -> tuple[_RVar, int, int, int, _Acct, _Acct]:
        init, cond, step = s.init, s.cond, s.step
        init_acct = _Acct()
        # init: `c = <int>` on an existing int scalar, or `int c = <int>`
        if isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign) \
                and init.expr.op == "=" \
                and isinstance(init.expr.target, A.Ident) \
                and isinstance(init.expr.value, A.IntLit):
            name = init.expr.target.name
            counter = self.ref_scalar(name)
            if counter.klass != "i" or counter in self.active_counters:
                raise _Ineligible
            if not counter.outer:
                raise _Ineligible  # local counters re-bound via DeclStmt
            counter.assigned = True
            counter.varying = False  # uniform by construction
            start = init.expr.value.value
            init_acct.stores += 1
            init_acct.access += 1
            init_acct.instr += 1
        elif isinstance(init, A.DeclStmt) and len(init.decls) == 1 \
                and isinstance(init.decls[0].init, A.IntLit) \
                and _scalar_klass(init.decls[0].ctype) == "i":
            d = init.decls[0]
            self.scopes.append({})
            counter = self.declare_local(d.name, "i")
            counter.varying = False
            start = d.init.value
        else:
            raise _Ineligible
        # cond: `c < <int>` or `c <= <int>`
        if not (isinstance(cond, A.BinOp) and cond.op in ("<", "<=")
                and isinstance(cond.left, A.Ident)
                and cond.left.name == counter.name
                and isinstance(cond.right, A.IntLit)):
            raise _Ineligible
        limit = cond.right.value
        # step: c++ / ++c / c += <int> / c = c + <int>
        step_acct = _Acct()
        if isinstance(step, A.PostfixOp) and step.op == "++" \
                and isinstance(step.operand, A.Ident) \
                and step.operand.name == counter.name:
            delta = 1
            step_acct.ops += 1
        elif isinstance(step, A.UnaryOp) and step.op == "++" \
                and isinstance(step.operand, A.Ident) \
                and step.operand.name == counter.name:
            delta = 1  # prefix ++ adds no counts in the compiled engine
        elif isinstance(step, A.Assign) and step.op == "+=" \
                and isinstance(step.target, A.Ident) \
                and step.target.name == counter.name \
                and isinstance(step.value, A.IntLit) and step.value.value > 0:
            delta = step.value.value
            step_acct.stores += 1
            step_acct.ops += 1
            step_acct.access += 1
            step_acct.instr += 1
        elif isinstance(step, A.Assign) and step.op == "=" \
                and isinstance(step.target, A.Ident) \
                and step.target.name == counter.name \
                and isinstance(step.value, A.BinOp) and step.value.op == "+" \
                and isinstance(step.value.left, A.Ident) \
                and step.value.left.name == counter.name \
                and isinstance(step.value.right, A.IntLit) \
                and step.value.right.value > 0:
            delta = step.value.right.value
            step_acct.stores += 1
            step_acct.ops += 1
            step_acct.access += 1
            step_acct.instr += 1
        else:
            raise _Ineligible
        span = limit - start + (1 if cond.op == "<=" else 0)
        trips = 0 if span <= 0 else -(-span // delta)
        if not 0 <= trips <= _MAX_TRIPS:
            raise _Ineligible
        counter.read = True
        return counter, start, trips, delta, init_acct, step_acct

    # -- expressions ---------------------------------------------------

    def compile_expr(self, e: A.Expr,
                     acct: _Acct) -> tuple[Callable, str, bool]:
        if isinstance(e, A.IntLit):
            v = e.value
            return (lambda env, _v=v: _v), "i", False
        if isinstance(e, A.CharLit):
            v = e.value
            return (lambda env, _v=v: _v), "i", False
        if isinstance(e, A.FloatLit):
            v = e.value
            return (lambda env, _v=v: _v), "f", False
        if isinstance(e, A.Ident):
            rv = self.ref_scalar(e.name)
            rv.read = True
            rid = rv.rid
            return (lambda env, _r=rid: env.vals[_r]), rv.klass, rv.varying
        if isinstance(e, A.BinOp):
            return self.compile_binop(e, acct)
        if isinstance(e, A.UnaryOp):
            return self.compile_unary(e, acct)
        if isinstance(e, A.Cast):
            return self.compile_cast(e, acct)
        if isinstance(e, A.Index):
            return self.compile_index(e, acct)
        if isinstance(e, A.Call):
            return self.compile_call(e, acct)
        raise _Ineligible

    def compile_binop(self, e: A.BinOp,
                      acct: _Acct) -> tuple[Callable, str, bool]:
        op = e.op
        lf, lk, lv = self.compile_expr(e.left, acct)
        rf, rk, rv_ = self.compile_expr(e.right, acct)
        acct.ops += 1
        varying = lv or rv_
        any_f = lk == "f" or rk == "f"
        if op in ("+", "-", "*"):
            if any_f:
                acct.fp += 1
            elif varying:
                raise _Ineligible  # varying int arithmetic: overflow risk
            pyop = {"+": operator.add, "-": operator.sub,
                    "*": operator.mul}[op]

            def arith(env: _Env, _l=lf, _r=rf, _o=pyop) -> Any:
                return _o(_l(env), _r(env))

            return arith, ("f" if any_f else "i"), varying
        if op == "/":
            if any_f:
                acct.fp += 1
            klass = "f" if any_f else "i"
            if not varying:
                def udiv(env: _Env, _l=lf, _r=rf) -> Any:
                    return _c_div(_l(env), _r(env))
                return udiv, klass, False
            if klass == "i":
                raise _Ineligible

            def vdiv(env: _Env, _l=lf, _r=rf, _rv=rv_) -> Any:
                l = _l(env)
                r = _r(env)
                if _rv:
                    if _np.any(r == 0):
                        raise _Abandon
                elif r == 0:
                    raise _Abandon
                return l / r

            return vdiv, klass, True
        if op == "%":
            if any_f or varying:
                raise _Ineligible

            def umod(env: _Env, _l=lf, _r=rf) -> Any:
                return _c_mod(_l(env), _r(env))

            return umod, "i", False
        if op in _CMP_OPS:
            if any_f:
                acct.fp += 1
            pyop = _CMP_OPS[op]
            if not varying:
                def ucmp(env: _Env, _l=lf, _r=rf, _o=pyop) -> int:
                    return int(_o(_l(env), _r(env)))
                return ucmp, "i", False
            # Mixed int/float comparison: numpy converts the int side to
            # float64, Python compares exactly — guard uniform int sides
            # (varying ints are |v| <= 2^53 by construction).
            guard_l = lk == "i" and not lv and rk == "f"
            guard_r = rk == "i" and not rv_ and lk == "f"

            def vcmp(env: _Env, _l=lf, _r=rf, _o=pyop, _gl=guard_l,
                     _gr=guard_r) -> Any:
                l = _l(env)
                r = _r(env)
                if _gl:
                    l = _safe_int(l)
                if _gr:
                    r = _safe_int(r)
                return _o(l, r)

            return vcmp, "i", True
        raise _Ineligible  # &&, ||, comma, bit ops: not region material

    def compile_unary(self, e: A.UnaryOp,
                      acct: _Acct) -> tuple[Callable, str, bool]:
        if e.op == "-":
            f, k, v = self.compile_expr(e.operand, acct)
            acct.ops += 1
            if k == "i" and v:
                raise _Ineligible
            return (lambda env, _f=f: -_f(env)), k, v
        if e.op == "!":
            f, k, v = self.compile_expr(e.operand, acct)
            acct.ops += 1
            if v:
                def vnot(env: _Env, _f=f) -> Any:
                    return _f(env) == 0
                return vnot, "i", True

            def unot(env: _Env, _f=f) -> int:
                return 0 if truthy(_f(env)) else 1

            return unot, "i", False
        raise _Ineligible

    def compile_cast(self, e: A.Cast,
                     acct: _Acct) -> tuple[Callable, str, bool]:
        f, k, v = self.compile_expr(e.operand, acct)
        to = e.to_type
        if to is T.FLOAT or to is T.DOUBLE:
            if k == "f":
                return f, "f", v
            if v:
                def vfloat(env: _Env, _f=f) -> Any:
                    return _f(env).astype(_np.float64)
                return vfloat, "f", True
            return (lambda env, _f=f: float(_f(env))), "f", False
        if _scalar_klass(to) == "i":
            if k == "i":
                return f, "i", v
            coerce = self._coercer("i", "f")
            return (lambda env, _f=f, _c=coerce: _c(_f(env))), "i", v
        raise _Ineligible  # char / pointer casts

    def compile_index(self, e: A.Index,
                      acct: _Acct) -> tuple[Callable, str, bool]:
        if not isinstance(e.base, A.Ident):
            raise _Ineligible
        arr = self.ref_array(e.base.name)
        if_fn, ik, iv = self.compile_expr(e.index, acct)
        if ik != "i" or iv:
            raise _Ineligible  # per-lane gather indices: not worth it
        acct.loads += 1
        acct.access += 1
        space = arr.space
        if space == "texture":
            acct.instr += 2
            acct.tex += 1
        elif space == "global":
            acct.instr += 2
            acct.glob += 1
        elif space == "shared":
            acct.shared += 1
        else:
            acct.instr += 1
        name = arr.name

        def index(env: _Env, _f=if_fn, _n=name) -> Any:
            return env.read_array(_n, int(_f(env)))

        return index, arr.elem, not arr.uniform

    def compile_call(self, e: A.Call,
                     acct: _Acct) -> tuple[Callable, str, bool]:
        entry = _REGION_MATH.get(e.func)
        if entry is None or len(e.args) != 1:
            raise _Ineligible
        kind, pyfn = entry
        af, ak, av = self.compile_expr(e.args[0], acct)
        acct.calls += 1
        acct.instr += int(_MATH_INSTR)
        acct.fp += 4
        acct.mathc += 1
        if not av:
            def umath(env: _Env, _f=af, _p=pyfn) -> float:
                try:
                    return _p(float(_f(env)))
                except (ValueError, OverflowError):
                    raise _Abandon from None
            return umath, "f", False
        if kind == "sqrt":
            def vsqrt(env: _Env, _f=af) -> Any:
                x = _f(env)
                if x.dtype != _np.float64:
                    x = x.astype(_np.float64)
                if _np.any(x < 0):
                    raise _Abandon  # math.sqrt raises; fallback reproduces
                return _np.sqrt(x)
            return vsqrt, "f", True
        if kind == "abs":
            def vabs(env: _Env, _f=af) -> Any:
                x = _f(env)
                if x.dtype != _np.float64:
                    x = x.astype(_np.float64)
                return _np.abs(x)
            return vabs, "f", True

        def vmath(env: _Env, _f=af, _p=pyfn) -> Any:
            x = _f(env)
            if x.dtype != _np.float64:
                x = x.astype(_np.float64)
            try:
                out = [_p(v) for v in x.tolist()]
            except (ValueError, OverflowError):
                raise _Abandon from None
            return _np.array(out, dtype=_np.float64)

        return vmath, "f", True


def _NOOP_EXTRA(env: _Env, mask: Any) -> None:
    return None


def _compile_region(comp: _FunctionCompiler,
                    kernel_arrays: dict[str, tuple[bool, str, str | None]],
                    stmt: A.For) -> _RegionPlan:
    rc = _RegionCompiler(comp, kernel_arrays, stmt)
    rc._extra_fields = set()
    return rc.compile()


def region_eligible(comp_or_none: _FunctionCompiler | None,
                    kernel_arrays: dict, stmt: A.For) -> bool:
    """Testing hook: would this For vectorize? (Fresh compiler scope.)"""
    if _np is None:
        return False
    comp = comp_or_none
    if comp is None:
        from ..minic.compile import CompiledProgram
        comp = _FunctionCompiler(CompiledProgram(A.Program(functions=[])))
        comp.scopes.append({})
    try:
        _compile_region(comp, kernel_arrays, stmt)
        return True
    except _Ineligible:
        return False


# --------------------------------------------------------------------------
# Warp spine nodes
# --------------------------------------------------------------------------


class _WarpExec:
    """Per-batch execution context: the lanes and the shared facade/state
    that per-lane closures read through."""

    __slots__ = ("lanes", "facade", "state", "runner")

    def __init__(self, lanes: list, facade: Any, state: Any, runner: Any):
        self.lanes = lanes
        self.facade = facade
        self.state = state
        self.runner = runner

    def bind(self, i: int) -> Any:
        lane = self.lanes[i]
        state = self.state
        state.records = lane.records
        state.index = lane.index
        state.charges = lane.charges
        state.global_tid = lane.global_tid
        facade = self.facade
        facade.counters = lane.counters
        facade.heap = lane.heap
        facade._stdout = lane.stdout
        return lane

    def unbind(self, lane: Any) -> None:
        lane.index = self.state.index
        lane.stdout = self.facade._stdout


class _Lane:
    """One lane's full execution context across the warp run."""

    __slots__ = ("records", "index", "charges", "global_tid", "counters",
                 "heap", "stdout", "frame", "rt")


class _LaneStmt:
    """A region-free subtree: the compiled per-lane closure, run for each
    active lane in turn."""

    __slots__ = ("fns",)

    def __init__(self, fns: tuple[Callable, ...]):
        self.fns = fns

    def run(self, idxs: list[int], ex: _WarpExec) -> dict[int, Any]:
        out: dict[int, Any] = {}
        fns = self.fns
        for i in idxs:
            lane = ex.bind(i)
            try:
                sig = None
                for fn in fns:
                    sig = fn(lane.rt, lane.frame)
                    if sig is not None:
                        break
            except Exception as exc:
                out[i] = _Fault(exc)
            else:
                if sig is not None:
                    out[i] = sig
            ex.unbind(lane)
        return out


class _WarpBlock:
    __slots__ = ("children",)

    def __init__(self, children: list):
        self.children = children

    def run(self, idxs: list[int], ex: _WarpExec) -> dict[int, Any]:
        out: dict[int, Any] = {}
        active = idxs
        for child in self.children:
            sigs = child.run(active, ex)
            if sigs:
                out.update(sigs)
                active = [i for i in active if i not in sigs]
                if not active:
                    break
        return out


class _WarpIf:
    __slots__ = ("cond_fn", "flush", "then_node", "else_node")

    def __init__(self, cond_fn, flush, then_node, else_node):
        self.cond_fn = cond_fn
        self.flush = flush
        self.then_node = then_node
        self.else_node = else_node

    def run(self, idxs: list[int], ex: _WarpExec) -> dict[int, Any]:
        out: dict[int, Any] = {}
        t_lanes: list[int] = []
        f_lanes: list[int] = []
        cond_fn = self.cond_fn
        flush = self.flush
        for i in idxs:
            lane = ex.bind(i)
            try:
                flush(lane.rt.counters)
                cond = cond_fn(lane.rt, lane.frame)
            except Exception as exc:
                out[i] = _Fault(exc)
                ex.unbind(lane)
                continue
            ex.unbind(lane)
            if cond if cond.__class__ is int else truthy(cond):
                t_lanes.append(i)
            else:
                f_lanes.append(i)
        if t_lanes and self.then_node is not None:
            out.update(self.then_node.run(t_lanes, ex))
        if f_lanes and self.else_node is not None:
            out.update(self.else_node.run(f_lanes, ex))
        return out


class _WarpWhile:
    __slots__ = ("cond_fn", "flush", "body")

    def __init__(self, cond_fn, flush, body):
        self.cond_fn = cond_fn
        self.flush = flush
        self.body = body

    def run(self, idxs: list[int], ex: _WarpExec) -> dict[int, Any]:
        out: dict[int, Any] = {}
        active = list(idxs)
        cond_fn = self.cond_fn
        flush = self.flush
        body = self.body
        while active:
            body_lanes: list[int] = []
            for i in active:
                lane = ex.bind(i)
                rt = lane.rt
                try:
                    rt.steps = steps = rt.steps + 1
                    if steps > rt.max_steps:
                        raise CRuntimeError(
                            f"execution exceeded {rt.max_steps} steps "
                            "(runaway loop?)"
                        )
                    flush(rt.counters)
                    cond = cond_fn(rt, lane.frame)
                except Exception as exc:
                    out[i] = _Fault(exc)
                    ex.unbind(lane)
                    continue
                ex.unbind(lane)
                if cond if cond.__class__ is int else truthy(cond):
                    body_lanes.append(i)
            if not body_lanes:
                break
            sigs = body.run(body_lanes, ex)
            nxt: list[int] = []
            for i in body_lanes:
                sig = sigs.get(i)
                if sig is None or sig is _CONT:
                    nxt.append(i)
                elif sig is not _BREAK:
                    out[i] = sig  # _Return or _Fault
            active = nxt
        return out


class _Region:
    """An eligible For: vectorize the batch, or fall back per lane with
    zero side effects from the abandoned attempt."""

    __slots__ = ("plan", "fallback")

    def __init__(self, plan: _RegionPlan, fallback: Callable):
        self.plan = plan
        self.fallback = fallback

    def run(self, idxs: list[int], ex: _WarpExec) -> dict[int, Any]:
        if not idxs:
            return {}
        prep = None
        try:
            with _np.errstate(all="ignore"):
                prep = _region_execute(self.plan, idxs, ex)
        except Exception:
            prep = None  # _Abandon or anything unexpected: pure, so safe
        if prep is not None:
            _region_commit(self.plan, prep, idxs, ex)
            ex.runner.vector_regions += 1
            return {}
        ex.runner.vector_fallbacks += 1
        out: dict[int, Any] = {}
        fallback = self.fallback
        for i in idxs:
            lane = ex.bind(i)
            try:
                sig = fallback(lane.rt, lane.frame)
            except Exception as exc:
                out[i] = _Fault(exc)
            else:
                if sig is not None:  # pragma: no cover - regions lack jumps
                    out[i] = sig
            ex.unbind(lane)
        return out


def _region_execute(plan: _RegionPlan, idxs: list[int],
                    ex: _WarpExec) -> tuple | None:
    lanes = [ex.lanes[i] for i in idxs]
    n = len(lanes)
    acct = plan.acct
    max_steps = lanes[0].rt.max_steps
    for lane in lanes:
        if lane.rt.steps + acct.steps > max_steps:
            return None  # budget would trip mid-loop: sequential semantics
    env = _Env(n, plan.nvals, plan.extra_fields)
    # Gather scalars (cells untouched; preflight classes and magnitudes).
    cells: dict[int, list] = {}
    for rv in plan.gathers:
        slot = rv.slot
        row = []
        vals = []
        for lane in lanes:
            cell = lane.frame[slot]
            if cell is None:
                return None  # fallback raises "undeclared identifier"
            row.append(cell)
            vals.append(cell.value)
        cells[rv.rid] = row
        if rv.klass == "f":
            for v in vals:
                if v.__class__ is not float:
                    return None
            env.vals[rv.rid] = _np.array(vals, dtype=_np.float64)
        else:
            for v in vals:
                if v.__class__ is not int or not -_SAFE_INT <= v <= _SAFE_INT:
                    return None
            env.vals[rv.rid] = _np.array(vals, dtype=_np.int64)
    for rv in plan.scatters:
        if rv.rid not in cells:
            row = []
            for lane in lanes:
                cell = lane.frame[rv.slot]
                if cell is None:
                    return None
                row.append(cell)
            cells[rv.rid] = row
    # Resolve arrays (reads are lazy + memoized in env).
    for arr in plan.arrays:
        spec = _resolve_array(arr, lanes)
        if spec is None:
            return None
        env.aspec[arr.name] = spec
    # Pure compute.
    for fn in plan.body:
        fn(env)
    # Prepare scatter values as plain Python data (nothing mutated yet).
    writes = []
    for rv in plan.scatters:
        v = env.vals[rv.rid]
        conv = float if rv.klass == "f" else int
        if isinstance(v, _np.ndarray):
            writes.append((cells[rv.rid], [conv(x) for x in v.tolist()]))
        else:
            writes.append((cells[rv.rid], [conv(v)] * n))
    # Charge folds and replays (reads only).
    ex_get = env.extra.get
    zeros = None

    def extra_or_zero(fname: str):
        nonlocal zeros
        arr = ex_get(fname)
        if arr is None:
            if zeros is None:
                zeros = _np.zeros(n, dtype=_np.int64)
            arr = zeros
        return arr

    tex_new = _replay(acct.tex, ex_get("tex"), lanes, "texture_accesses",
                      _TEX_CHARGE, n)
    glob_new = _replay(acct.glob, ex_get("glob"), lanes, "global_txn",
                       _GLOBAL_CHARGE, n)
    counts = {f: extra_or_zero(f) for f in
              ("ops", "loads", "stores", "branches", "calls", "fp",
               "instr", "shared", "access", "mathc")}
    return (writes, counts, tex_new, glob_new)


def _replay(base: int, extra: Any, lanes: list, field: str, charge: float,
            n: int):
    """Reproduce k sequential `+= charge` float additions per lane."""
    if base == 0 and extra is None:
        return None
    t = _np.array([getattr(lane.charges, field) for lane in lanes],
                  dtype=_np.float64)
    if extra is None:
        for _ in range(base):
            t += charge
    else:
        ks = base + extra
        kmax = int(ks.max())
        for j in range(kmax):
            t[ks > j] += charge
    return t


def _resolve_array(arr: _RArr, lanes: list) -> tuple | None:
    pairs = []
    for lane in lanes:
        cell = lane.frame[arr.slot]
        if cell is None:
            return None
        v = cell.value
        if v.__class__ is Buffer:
            buf, base = v, 0
        elif v.__class__ is Ptr:
            if v.stride != 1 or v.buffer is None:
                return None
            buf, base = v.buffer, v.offset
        else:
            return None
        if buf.freed or buf.inner_dim is not None or buf.space != arr.space:
            return None
        elem = _scalar_klass(buf.elem_type)
        if elem != arr.elem:
            return None
        pairs.append((buf, base))
    if arr.uniform:
        buf0, base0 = pairs[0]
        for buf, base in pairs[1:]:
            if buf is not buf0 or base != base0:
                return None
        return ("u", buf0, base0, arr.elem)
    return ("v", pairs, arr.elem)


def _region_commit(plan: _RegionPlan, prep: tuple, idxs: list[int],
                   ex: _WarpExec) -> None:
    writes, counts, tex_new, glob_new = prep
    lanes = [ex.lanes[i] for i in idxs]
    acct = plan.acct
    ops = counts["ops"]
    loads = counts["loads"]
    stores = counts["stores"]
    branches = counts["branches"]
    calls = counts["calls"]
    fp = counts["fp"]
    instr = counts["instr"]
    shared = counts["shared"]
    for j, lane in enumerate(lanes):
        c = lane.counters
        c.ops += acct.ops + int(ops[j])
        c.loads += acct.loads + int(loads[j])
        c.stores += acct.stores + int(stores[j])
        c.branches += acct.branches + int(branches[j])
        c.calls += acct.calls + int(calls[j])
        c.fp_ops += acct.fp + int(fp[j])
        ch = lane.charges
        ch.instructions += float(acct.instr + int(instr[j]))
        if acct.shared or shared[j]:
            ch.shared_accesses += float(acct.shared + int(shared[j]))
        if tex_new is not None:
            ch.texture_accesses = float(tex_new[j])
        if glob_new is not None:
            ch.global_txn = float(glob_new[j])
        lane.rt.steps += acct.steps
    for row, values in writes:
        for j, cell in enumerate(row):
            cell.value = values[j]
    hook = ex.runner.hook
    if isinstance(hook, CountingChargeHook):
        # Region execution bypasses the hook; replicate its per-event
        # launch metrics so traced runs stay engine-independent.
        n = len(lanes)
        access = counts["access"]
        mathc = counts["mathc"]
        total_access = n * acct.access + int(access.sum())
        total_math = n * acct.mathc + int(mathc.sum())
        if total_access:
            hook.metrics.inc("gpu.accesses", float(total_access))
        if total_math:
            hook.metrics.inc("gpu.math_calls", float(total_math))


# --------------------------------------------------------------------------
# Warp suite: the compiled spine + regions for one kernel body
# --------------------------------------------------------------------------


def _contains_for(s: A.Stmt) -> bool:
    if isinstance(s, A.For):
        return True
    if isinstance(s, A.Block):
        return any(_contains_for(c) for c in s.stmts)
    if isinstance(s, A.If):
        return _contains_for(s.then) or (
            s.otherwise is not None and _contains_for(s.otherwise))
    if isinstance(s, A.While):
        return _contains_for(s.body)
    return False


class _WarpCompiler:
    def __init__(self, comp: _FunctionCompiler, kernel: KernelIR):
        self.comp = comp
        self.regions = 0
        arrays: dict[str, tuple[bool, str, str | None]] = {}
        for var in kernel.variables.values():
            ct = var.ctype
            if not isinstance(ct, T.Array) or isinstance(ct.base, T.Array):
                continue
            elem = _scalar_klass(ct.base)
            if elem is None:
                continue
            if var.klass is VarClass.TEXTURE_ARRAY:
                arrays[var.kernel_name] = (True, elem, "texture")
            elif var.klass is VarClass.GLOBAL_RO_ARRAY:
                arrays[var.kernel_name] = (True, elem, "global")
            elif var.klass is VarClass.SHARED_ARRAY:
                arrays[var.kernel_name] = (False, elem, "shared")
            elif var.klass in (VarClass.FIRSTPRIVATE_ARRAY, VarClass.PRIVATE):
                arrays[var.kernel_name] = (False, elem, "private")
        self.kernel_arrays = arrays

    def compile_stmt(self, s: A.Stmt):
        comp = self.comp
        if isinstance(s, A.For):
            plan = None
            try:
                plan = _compile_region(comp, self.kernel_arrays, s)
            except _Ineligible:
                plan = None
            fallback = comp._flushed_stmt(s)
            if plan is None:
                return _LaneStmt((fallback,))
            self.regions += 1
            return _Region(plan, fallback)
        if isinstance(s, A.Block):
            comp.scopes.append({})
            children: list = []
            run: list[Callable] = []
            for c in s.stmts:
                if _contains_for(c):
                    if run:
                        children.append(_LaneStmt(tuple(run)))
                        run = []
                    children.append(self.compile_stmt(c))
                else:
                    run.append(comp._flushed_stmt(c))
            if run:
                children.append(_LaneStmt(tuple(run)))
            comp.scopes.pop()
            if len(children) == 1:
                return children[0]
            return _WarpBlock(children)
        if isinstance(s, A.If):
            cond_fn, cnt = comp.compile_expr(s.cond)
            cnt.branches += 1
            flush = _make_flush(cnt) or _noflush
            then_node = self.compile_stmt(s.then)
            else_node = (self.compile_stmt(s.otherwise)
                         if s.otherwise is not None else None)
            return _WarpIf(cond_fn, flush, then_node, else_node)
        if isinstance(s, A.While):
            cond_fn, cnt = comp.compile_expr(s.cond)
            cnt.branches += 1
            flush = _make_flush(cnt) or _noflush
            return _WarpWhile(cond_fn, flush, self.compile_stmt(s.body))
        return _LaneStmt((comp._flushed_stmt(s),))


def _noflush(counters: Any) -> None:  # pragma: no cover - branches flush
    return None


class WarpSuite:
    """The warp-compiled form of one kernel body: spine + regions over a
    shared frame layout (same ``nslots``/``frees`` contract as
    :class:`~repro.minic.compile.CompiledSuite`, so
    :func:`~repro.gpu.engine.build_env_plan` applies unchanged)."""

    def __init__(self, stmt: A.Stmt, cp: Any, free_ctypes: dict | None,
                 kernel: KernelIR):
        comp = _FunctionCompiler(cp)
        if free_ctypes:
            comp.free_ctypes = free_ctypes
        comp.scopes.append({})
        wc = _WarpCompiler(comp, kernel)
        self.root = wc.compile_stmt(stmt)
        self.regions = wc.regions
        self._nslots = comp.nslots
        self._frees = tuple(comp.free.items())
        self.cp = cp

    @property
    def nslots(self) -> int:
        return self._nslots

    @property
    def frees(self) -> tuple[tuple[str, int], ...]:
        return self._frees


# --------------------------------------------------------------------------
# The vector lane runner
# --------------------------------------------------------------------------


def _space_profile(hook: ChargeHook) -> bool:
    if isinstance(hook, CountingChargeHook):
        return isinstance(hook.inner, SpaceChargeHook)
    return isinstance(hook, SpaceChargeHook)


class VectorLaneRunner(CompiledLaneRunner):
    """Compiled lane runner that batches map lanes through the warp
    spine. Combine chunks and every fallback path inherit the compiled
    engine unchanged — same closures, same cache."""

    def __init__(self, device: Any, kernel: KernelIR, snapshot: dict,
                 shared_ro: dict, store: Any = None, partitioner: Any = None,
                 hook: ChargeHook = DEFAULT_CHARGE_HOOK):
        super().__init__(device, kernel, snapshot, shared_ro, store,
                         partitioner, hook=hook)
        self.vector_regions = 0
        self.vector_fallbacks = 0
        self._warp: WarpSuite | None = None
        self._warp_plan_cache = None
        if (_np is not None
                and kernel.is_mapper
                and not kernel.helpers
                and _space_profile(hook)
                and _is_pow2(max(kernel.vector_width, 1))
                and _is_pow2(device.spec.transaction_bytes)):
            free_cts = {
                var.kernel_name: var.ctype
                for var in kernel.variables.values()
                if var.klass in (VarClass.CONST_SCALAR,
                                 VarClass.FIRSTPRIVATE_SCALAR,
                                 VarClass.PRIVATE)
                and not isinstance(var.ctype, T.Array)
            }
            suite = compiled_warp_body(
                kernel_program(kernel), kernel.body, hook.profile_key,
                lambda cp: WarpSuite(kernel.body, cp, free_cts, kernel),
            )
            if suite.regions > 0:
                self._warp = suite

    def _warp_env_plan(self):
        plan = self._warp_plan_cache
        if plan is None:
            plan = self._warp_plan_cache = build_env_plan(
                self._warp, self.kernel, self.snapshot, self.shared_ro
            )
        return plan

    def run_map_warp(
        self, batch: list[tuple[list[bytes], int, LaneCharges]]
    ) -> list[ExecCounters]:
        """Run a block's active lanes as one warp-spine pass. Returns
        per-lane counters in batch order; the per-lane ``charges``
        objects are charged in place, exactly as ``run_map_lane``."""
        r0, f0 = self.vector_regions, self.vector_fallbacks
        if self._warp is None:
            self.vector_fallbacks += 1
            result = [self.run_map_lane(recs, tid, charges)
                      for recs, tid, charges in batch]
        else:
            result = self._run_warp_batch(batch)
        rec = obs.active()
        if rec.enabled:
            if self.vector_regions > r0:
                rec.inc("gpu.vector.regions",
                        float(self.vector_regions - r0))
            if self.vector_fallbacks > f0:
                rec.inc("gpu.vector.fallbacks",
                        float(self.vector_fallbacks - f0))
        return result

    def _run_warp_batch(self, batch) -> list[ExecCounters]:
        warp = self._warp
        plan = self._warp_env_plan()
        facade = self.facade
        cp = warp.cp
        nslots = warp.nslots
        lanes: list[_Lane] = []
        for recs, tid, charges in batch:
            lane = _Lane()
            lane.records = recs
            lane.index = 0
            lane.charges = charges
            lane.global_tid = tid
            lane.counters = ExecCounters()
            lane.heap = []
            lane.stdout = None
            frame: list = [None] * nslots
            for slot, make in plan:
                frame[slot] = make()
            lane.frame = frame
            facade.counters = lane.counters
            facade.heap = lane.heap
            facade._steps = 0
            facade._stdout = None
            lane.rt = cp.runtime(facade)
            lanes.append(lane)
        ex = _WarpExec(lanes, facade, self.state, self)
        sigs = warp.root.run(list(range(len(lanes))), ex)
        for i in range(len(lanes)):
            sig = sigs.get(i)
            if sig is not None and sig.__class__ is _Fault:
                # The first failing lane in sequential order wins; later
                # lanes' partial effects die with the launch.
                raise sig.exc
        return [lane.counters for lane in lanes]
