"""GPU architecture simulator.

A functional + timing simulation of a CUDA device at warp granularity:
kernels from :mod:`repro.compiler` execute for real (every record is
mapped, every KV pair combined), while a cost model charges simulated
cycles for instruction issue, (un)coalesced memory transactions, shared/
global atomics, texture accesses, and divergence — the exact mechanisms
HeteroDoop's optimizations manipulate (paper §4, Fig. 7).

See DESIGN.md §5 for the substitution argument: the paper's GPU results
follow from these mechanisms, not from NVIDIA silicon.
"""

from .device import DeviceMemory, GpuDevice
from .timing import KernelCost, TimingModel

__all__ = ["GpuDevice", "DeviceMemory", "TimingModel", "KernelCost"]
