"""GPU architecture simulator.

A functional + timing simulation of a CUDA device at warp granularity:
kernels from :mod:`repro.compiler` execute for real (every record is
mapped, every KV pair combined), while a cost model charges simulated
cycles for instruction issue, (un)coalesced memory transactions, shared/
global atomics, texture accesses, and divergence — the exact mechanisms
HeteroDoop's optimizations manipulate (paper §4, Fig. 7).

See DESIGN.md §5 for the substitution argument: the paper's GPU results
follow from these mechanisms, not from NVIDIA silicon.
"""

from .charging import ChargeHook, DEFAULT_CHARGE_HOOK, LaneCharges, SpaceChargeHook
from .device import DeviceMemory, GpuDevice
from .engine import (
    GPU_ENGINES,
    default_gpu_engine,
    set_default_gpu_engine,
    use_gpu_engine,
)
from .timing import KernelCost, TimingModel

__all__ = [
    "GpuDevice", "DeviceMemory", "TimingModel", "KernelCost",
    "ChargeHook", "SpaceChargeHook", "DEFAULT_CHARGE_HOOK", "LaneCharges",
    "GPU_ENGINES", "default_gpu_engine", "set_default_gpu_engine",
    "use_gpu_engine",
]
