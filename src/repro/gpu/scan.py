"""Parallel prefix-sum (scan) cost model (paper §5.3, citing Sengupta et
al.'s GPU scan primitives).

The functional result is numpy's cumsum (in :mod:`repro.kvstore.
aggregation`); here we charge the work-efficient scan's device cost:
``2n`` shared-memory element operations spread over the SM array plus a
log-depth tree of block-level combines.
"""

from __future__ import annotations

import math

from ..config import GpuSpec
from .timing import MAX_MLP


def scan_cycles(n: int, spec: GpuSpec, elems_per_block: int = 1024) -> float:
    """Cycles for an exclusive scan of ``n`` elements."""
    if n <= 0:
        return 0.0
    blocks = max(1, (n + elems_per_block - 1) // elems_per_block)
    # Up-sweep + down-sweep: ~2 shared accesses and 2 ops per element.
    per_block = 2.0 * elems_per_block * (spec.shared_mem_cycles + spec.issue_cycles) \
        / min(float(elems_per_block // spec.warp_size) or 1.0, MAX_MLP)
    # Block sums combined in a log-depth second pass through global memory.
    tree = math.ceil(math.log2(blocks + 1)) * spec.global_mem_cycles
    rounds = math.ceil(blocks / spec.num_sms)
    return rounds * per_block + tree


def reindex_cycles(pairs: int, spec: GpuSpec) -> float:
    """Cycles for rewriting the indirection array (one coalesced read +
    write of a 4-byte entry per pair, spread over the device)."""
    if pairs <= 0:
        return 0.0
    txns = 2.0 * pairs * 4.0 / spec.transaction_bytes
    parallel = spec.num_sms * MAX_MLP
    return txns * spec.global_mem_cycles / parallel
