"""GPU merge sort with indirection (paper §5.3 "Intermediate Sort").

HeteroDoop modifies Satish et al.'s GPU merge sort to sort *indices* into
the global KV store rather than the KV bytes themselves — variable-length
keys never move in device memory. The functional result is a stable sort
of each partition's pairs by key; the cost model charges:

* ``N log2 N`` comparisons, each touching both keys through the
  indirection array (random global reads, softened by caching),
* ``N log2 N`` 4-byte index moves (coalesced),

where **N is the span the sort traverses**: the dense pair count when the
aggregation pass ran, or the full allocated per-thread span (whitespace
included) when it did not — which is exactly why Fig. 7e's aggregation
ablation moves the sort kernel by up to 7.6×.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from ..config import GpuSpec
from ..kvstore import KVPair
from .timing import MAX_MLP

#: Comparison key reads go through the index array, so locality degrades
#: with key length: short (int) keys ride the cache, long string keys
#: mostly miss. Miss rate = _MISS_BASE + key_length/_MISS_PER_BYTE,
#: capped at _MISS_CAP.
_MISS_BASE = 0.08
_MISS_PER_BYTE = 64.0
_MISS_CAP = 0.6


def _key_miss_rate(key_length: int) -> float:
    return min(_MISS_CAP, _MISS_BASE + key_length / _MISS_PER_BYTE)


def _key_rank(key: Any) -> tuple[int, Any]:
    """Total order across the key types kernels can emit."""
    if isinstance(key, bool):
        return (0, int(key))
    if isinstance(key, (int, float)):
        return (0, float(key))
    return (1, str(key))


@dataclass
class SortResult:
    pairs: list[KVPair]
    span: int                 # elements the device sort traversed
    comparisons: float
    cycles: float
    seconds: float


def sort_partition(
    pairs: list[KVPair],
    span: int,
    key_length: int,
    spec: GpuSpec,
) -> SortResult:
    """Sort one partition by key (stable), charging device cycles for a
    traversal of ``span`` elements (≥ len(pairs) when unaggregated)."""
    ordered = sorted(pairs, key=lambda p: _key_rank(p.key))
    n = max(span, 1)
    comparisons = n * max(1.0, math.log2(n))
    key_txn = max(1.0, key_length / spec.transaction_bytes)
    cmp_cycles = comparisons * (
        2.0 * _key_miss_rate(key_length) * key_txn * spec.global_mem_cycles
        + 4.0 * spec.issue_cycles
    )
    move_cycles = comparisons * (4.0 / spec.transaction_bytes) * spec.global_mem_cycles
    # Merge sort parallelizes poorly in its final (wide, dependent) merge
    # passes; effective parallelism is well below the full SM array × MLP.
    parallel = float(spec.num_sms)
    cycles = (cmp_cycles + move_cycles) / parallel
    return SortResult(
        pairs=ordered,
        span=span,
        comparisons=comparisons,
        cycles=cycles,
        seconds=cycles * spec.cycle_time_s,
    )
