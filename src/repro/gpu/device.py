"""Device model: memory allocation and host↔device transfers.

GPUs have no virtual memory (paper §1, §2.1): allocations beyond physical
capacity fail with :class:`~repro.errors.GpuOutOfMemory` — which is what
forces HeteroDoop's record-parallel (rather than fileSplit-parallel)
processing scheme, and what excludes KM from Cluster2 in Fig. 4b.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import GpuSpec, TESLA_K40
from ..errors import GpuError, GpuOutOfMemory


@dataclass
class Allocation:
    label: str
    nbytes: int
    freed: bool = False


class DeviceMemory:
    """A simple bump-count allocator over the device's global memory."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise GpuError("device memory capacity must be positive")
        self.capacity = capacity
        self.allocations: list[Allocation] = []

    @property
    def used(self) -> int:
        return sum(a.nbytes for a in self.allocations if not a.freed)

    @property
    def free(self) -> int:
        return self.capacity - self.used

    def malloc(self, nbytes: int, label: str = "") -> Allocation:
        if nbytes < 0:
            raise GpuError(f"cudaMalloc of negative size: {nbytes}")
        if nbytes > self.free:
            raise GpuOutOfMemory(nbytes, self.free)
        alloc = Allocation(label=label, nbytes=nbytes)
        self.allocations.append(alloc)
        return alloc

    def free_(self, alloc: Allocation) -> None:
        if alloc.freed:
            raise GpuError(f"double cudaFree of {alloc.label!r}")
        alloc.freed = True

    def free_all(self) -> None:
        for alloc in self.allocations:
            alloc.freed = True
        self.allocations.clear()


class GpuDevice:
    """One simulated GPU (an SM array plus global memory)."""

    def __init__(self, spec: GpuSpec = TESLA_K40, device_id: int = 0):
        self.spec = spec
        self.device_id = device_id
        self.memory = DeviceMemory(spec.global_mem)
        self.busy_until = 0.0  # simulated time the device frees up (driver use)

    def transfer_time(self, nbytes: int) -> float:
        """Host↔device copy time over PCIe (seconds)."""
        if nbytes < 0:
            raise GpuError("negative transfer size")
        return self.spec.pcie_latency_s + nbytes / self.spec.pcie_bw

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles * self.spec.cycle_time_s

    def reset(self) -> None:
        """Revive the device after a fault (paper §5.1 fault tolerance)."""
        self.memory.free_all()
        self.busy_until = 0.0

    def __repr__(self) -> str:
        return f"GpuDevice({self.spec.name!r}, id={self.device_id})"
