"""Functional + timed execution of translated kernels (paper §4.1–4.2).

Map kernels: records are split statically across threadblocks; within a
block, threads either take a static round-robin share or *steal* records
from the block's pool through a shared-memory atomic counter (paper's
record stealing). Every active thread interprets the translated region
with GPU-runtime builtins (``getRecord``/``emitKV``), emitting into its
portion of the global KV store, while per-lane charges accumulate into
warp costs for the timing model.

Combine kernels: each warp redundantly executes the combiner over a
contiguous chunk of a sorted partition (``getKV``/``storeKV``), trading
exact CPU-combiner equivalence for parallelism exactly as §4.2 sanctions —
chunk-boundary keys yield partial aggregates that the reducer repairs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..compiler.kernel_ir import KernelIR, VarClass, VarInfo
from ..errors import CRuntimeError, GpuError, KVStoreOverflow
from ..kvstore import GlobalKVStore, KVPair, Partitioner
from ..kvstore.coerce import kv_text
from ..minic import cast as A
from ..minic import ctypes as T
from ..minic.interpreter import ExecCounters, Interpreter
from ..minic.stdlib import host_builtins
from ..minic.values import Buffer, Cell, NULL, Ptr, ScalarRef
from .device import GpuDevice
from .timing import KernelCost, TimingModel, WarpCost

#: Extra issue slots charged per runtime-call dispatch (mapSetup etc.).
_SETUP_INSTR = 24.0
_MATH_CALL_INSTR = 8.0

#: Smallest per-warp chunk in the combine kernel (see run_combine_kernel).
_MIN_COMBINE_CHUNK = 32


@dataclass
class LaneCharges:
    """Per-thread (lane) cost events; folded into WarpCost per warp."""

    instructions: float = 0.0
    global_txn: float = 0.0
    shared_accesses: float = 0.0
    shared_atomics: float = 0.0
    global_atomics: float = 0.0
    texture_accesses: float = 0.0


class GpuInterpreter(Interpreter):
    """Interpreter specialization that charges memory accesses by the
    target buffer's memory space."""

    def __init__(self, program: A.Program, builtins: dict, charges: LaneCharges):
        super().__init__(program, stdin="", builtins=builtins)
        self.charges = charges

    def _charge_access(self, buffer: Buffer | None, is_store: bool) -> None:
        """Per-element array accesses are throughput costs, not bare
        latencies: loops over cached arrays pipeline, so most of the cost
        lands in the issue domain (which divergence and load balance
        modulate) with only the cache-miss fraction paying a transaction."""
        space = getattr(buffer, "space", None)
        if space == "texture":
            # Dedicated on-chip texture cache: small tables stay resident.
            self.charges.instructions += 2.0
            self.charges.texture_accesses += 0.02
        elif space == "global":
            # Random global element reads miss far more often.
            self.charges.instructions += 2.0
            self.charges.global_txn += 0.08
        elif space == "shared":
            self.charges.shared_accesses += 1.0
        else:  # private/local: register-speed
            self.charges.instructions += 1.0

    def _eval_Index(self, expr: A.Index) -> Any:
        ptr = self._as_ptr(self.eval(expr.base))
        idx = int(self.eval(expr.index))
        if ptr.stride > 1:  # row of a flattened 2-D array
            return Ptr(ptr.buffer, ptr.offset + idx * ptr.stride, 1)
        self.counters.loads += 1
        self._charge_access(ptr.buffer, is_store=False)
        return ptr.buffer.read(ptr.offset + idx)  # type: ignore[union-attr]

    def _eval_Assign(self, expr: A.Assign) -> Any:
        ref = self._lvalue(expr.target)
        value = self.eval(expr.value)
        if expr.op != "=":
            current = ref.deref()
            value = self._binop(expr.op[:-1], current, value)
        ref.store(value)
        self.counters.stores += 1
        buffer = ref.buffer if isinstance(ref, Ptr) else None
        self._charge_access(buffer, is_store=True)
        return ref.deref()


# --------------------------------------------------------------------------
# Environment construction
# --------------------------------------------------------------------------


def _clone_buffer(buf: Buffer, space: str) -> Buffer:
    copy = Buffer(buf.elem_type, buf.size, label=buf.label, space=space)
    copy.data[:] = buf.data
    return copy


def _snapshot_value(snapshot: dict[str, Any], var: VarInfo) -> Any:
    if var.name not in snapshot:
        raise GpuError(
            f"host snapshot missing firstprivate/sharedRO variable {var.name!r}"
        )
    return snapshot[var.name]


def build_thread_env(
    interp: Interpreter,
    kernel: KernelIR,
    snapshot: dict[str, Any],
    shared_ro_buffers: dict[str, Buffer],
) -> None:
    """Populate a thread's scope per Algorithm 1 placement decisions."""
    interp.push_scope()
    for var in kernel.variables.values():
        kname = var.kernel_name
        if var.klass is VarClass.CONST_SCALAR:
            value = _snapshot_value(snapshot, var)
            interp.declare(kname, var.ctype, value=value)
        elif var.klass in (VarClass.GLOBAL_RO_ARRAY, VarClass.TEXTURE_ARRAY):
            interp.declare(kname, T.Pointer(T.VOID),
                           value=Ptr(shared_ro_buffers[var.name], 0))
        elif var.klass is VarClass.FIRSTPRIVATE_SCALAR:
            interp.declare(kname, var.ctype, value=_snapshot_value(snapshot, var))
        elif var.klass in (VarClass.FIRSTPRIVATE_ARRAY, VarClass.SHARED_ARRAY):
            host_val = snapshot.get(var.name)
            space = "shared" if var.klass is VarClass.SHARED_ARRAY else "private"
            if isinstance(host_val, Buffer):
                interp.declare(kname, T.Pointer(T.VOID),
                               value=Ptr(_clone_buffer(host_val, space), 0))
            elif isinstance(host_val, Ptr) and host_val.buffer is not None:
                interp.declare(kname, T.Pointer(T.VOID),
                               value=Ptr(_clone_buffer(host_val.buffer, space), 0))
            elif isinstance(var.ctype, T.Array):
                cell = interp.declare(kname, var.ctype)
                cell.value.space = space
                if host_val is not None:
                    raise GpuError(
                        f"cannot initialize firstprivate array {var.name!r} "
                        f"from {type(host_val).__name__}"
                    )
            else:
                interp.declare(kname, var.ctype,
                               value=host_val if host_val is not None else 0)
        else:  # PRIVATE
            if isinstance(var.ctype, T.Array):
                cell = interp.declare(kname, var.ctype)
                cell.value.space = "private"
            elif var.ctype.is_pointer:
                interp.declare(kname, var.ctype, value=NULL)
            else:
                interp.declare(kname, var.ctype)


def prepare_shared_ro(kernel: KernelIR, snapshot: dict[str, Any]) -> dict[str, Buffer]:
    """Device-resident copies of sharedRO/texture arrays (one per launch,
    shared by all threads)."""
    shared: dict[str, Buffer] = {}
    for var in kernel.vars_of(VarClass.GLOBAL_RO_ARRAY, VarClass.TEXTURE_ARRAY):
        host_val = _snapshot_value(snapshot, var)
        buf = host_val.buffer if isinstance(host_val, Ptr) else host_val
        if not isinstance(buf, Buffer):
            raise GpuError(f"sharedRO array {var.name!r} has no backing buffer")
        space = "texture" if var.klass is VarClass.TEXTURE_ARRAY else "global"
        shared[var.name] = _clone_buffer(buf, space)
    return shared


# --------------------------------------------------------------------------
# Map kernel execution
# --------------------------------------------------------------------------


@dataclass
class MapLaunchResult:
    cost: KernelCost = field(default_factory=KernelCost)
    counters: ExecCounters = field(default_factory=ExecCounters)
    records_processed: int = 0
    steals: int = 0


class _ThreadRecordFeed:
    """getRecord data source for one thread: its assigned record list."""

    def __init__(self, records: list[bytes], stealing: bool):
        self.records = records
        self.index = 0
        self.stealing = stealing

    def next(self) -> bytes | None:
        if self.index >= len(self.records):
            return None
        rec = self.records[self.index]
        self.index += 1
        return rec


def _assign_records_static(
    records: list[bytes], nthreads: int
) -> list[list[bytes]]:
    """Static round-robin record distribution within a block."""
    lanes: list[list[bytes]] = [[] for _ in range(nthreads)]
    for i, rec in enumerate(records):
        lanes[i % nthreads].append(rec)
    return lanes


def _assign_records_stealing(
    records: list[bytes], nthreads: int, capacity_per_thread: int,
    kv_bound: int | None,
) -> tuple[list[list[bytes]], int]:
    """Deterministic emulation of intra-block record stealing: each grab
    goes to the thread that will become free soonest (least accumulated
    record bytes — the runtime's proxy for work). Returns (assignment,
    number of atomic grabs)."""
    if nthreads <= 0:
        raise GpuError("no threads in block")
    lanes: list[list[bytes]] = [[] for _ in range(nthreads)]
    # (accumulated_bytes, thread_id, records_taken)
    heap: list[tuple[int, int]] = [(0, t) for t in range(nthreads)]
    heapq.heapify(heap)
    taken = [0] * nthreads
    steals = 0
    bound = capacity_per_thread if kv_bound is None else max(
        1, capacity_per_thread // max(kv_bound, 1)
    )
    for rec in records:
        while heap:
            load, tid = heapq.heappop(heap)
            if taken[tid] < bound:
                lanes[tid].append(rec)
                taken[tid] += 1
                steals += 1
                heapq.heappush(heap, (load + len(rec), tid))
                break
        else:
            raise KVStoreOverflow(
                "all threads in a block exhausted their KV store portions "
                "while records remain; increase kvpairs or store capacity"
            )
    return lanes, steals


def _chunk_blocks(records: list[bytes], blocks: int) -> list[list[bytes]]:
    """Static, equal split of the fileSplit's records across threadblocks."""
    per = (len(records) + blocks - 1) // max(blocks, 1)
    return [records[i * per : (i + 1) * per] for i in range(blocks)]


def run_map_kernel_global_stealing(
    device: GpuDevice,
    kernel: KernelIR,
    records: list[bytes],
    snapshot: dict[str, Any],
    store: GlobalKVStore,
    partitioner: Partitioner,
) -> MapLaunchResult:
    """The design the paper REJECTS (§4.1): one *global* record counter
    shared by every threadblock. Distribution is perfectly balanced
    device-wide, but every steal is a global atomic — 'a global
    work-stealing approach would incur high overheads, due to excessive
    atomic accesses by the GPU threads'. Provided for the DESIGN.md §6
    ablation that shows the paper's block-local scheme wins.
    """
    if not kernel.is_mapper:
        raise GpuError("run_map_kernel_global_stealing requires a mapper")
    # Balance records across ALL threads of the grid (the global queue's
    # steady-state effect), then execute exactly like the normal kernel —
    # but charge a *global* atomic per steal instead of a shared one.
    timing = TimingModel(device.spec)
    launch = kernel.launch
    lanes_all, steals = _assign_records_stealing(
        records, launch.total_threads, store.stores_per_thread,
        kernel.kvpairs_per_record,
    )
    shared_ro = prepare_shared_ro(kernel, snapshot)
    warp = device.spec.warp_size
    result = MapLaunchResult()
    result.steals = steals
    block_cycles: list[float] = []
    for block_id in range(launch.blocks):
        base = block_id * launch.threads
        warp_costs: list[WarpCost] = []
        lane_critical = 0.0
        for warp_start in range(0, launch.threads, warp):
            lane_instr: list[float] = []
            wc = WarpCost()
            for lane in range(warp_start, min(warp_start + warp, launch.threads)):
                thread_records = lanes_all[base + lane]
                charges = LaneCharges(instructions=_SETUP_INSTR)
                if thread_records:
                    counters = _run_map_thread(
                        device, kernel, thread_records, snapshot, shared_ro,
                        store, partitioner, base + lane, charges,
                    )
                    # Swap the shared-atomic steal charges for global ones.
                    charges.global_atomics += charges.shared_atomics
                    charges.shared_atomics = 0.0
                    result.counters = result.counters.merged(counters)
                    result.records_processed += len(thread_records)
                    issue = (charges.instructions + counters.ops
                             + counters.branches + 2.0 * counters.fp_ops)
                    lane_instr.append(issue)
                    lane_critical = max(
                        lane_critical,
                        issue * device.spec.issue_cycles
                        + charges.global_txn * device.spec.global_mem_cycles / 4.0,
                    )
                else:
                    lane_instr.append(_SETUP_INSTR)
                wc.global_txn += charges.global_txn
                wc.shared_accesses += charges.shared_accesses
                wc.shared_atomics += charges.shared_atomics
                wc.global_atomics += charges.global_atomics
                wc.texture_accesses += charges.texture_accesses
            wc.instructions = timing.divergent_issue(lane_instr)
            warp_costs.append(wc)
            result.cost.totals.add(wc)
            result.cost.warps += 1
        block_cycles.append(max(timing.block_cycles(warp_costs), lane_critical))
        result.cost.blocks += 1
    # All steals hit ONE global counter: atomics on the same address
    # serialize device-wide, an unhideable critical section — the precise
    # overhead the paper's block-local scheme avoids.
    contention = steals * device.spec.global_atomic_cycles
    result.cost.cycles = timing.grid_cycles(block_cycles) + contention
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    return result


def run_map_kernel(
    device: GpuDevice,
    kernel: KernelIR,
    records: list[bytes],
    snapshot: dict[str, Any],
    store: GlobalKVStore,
    partitioner: Partitioner,
) -> MapLaunchResult:
    """Execute the map kernel over one fileSplit's records."""
    if not kernel.is_mapper:
        raise GpuError("run_map_kernel requires a mapper kernel")
    timing = TimingModel(device.spec)
    launch = kernel.launch
    warp = device.spec.warp_size
    shared_ro = prepare_shared_ro(kernel, snapshot)

    result = MapLaunchResult()
    block_cycles: list[float] = []
    block_records = _chunk_blocks(records, launch.blocks)

    for block_id in range(launch.blocks):
        recs = block_records[block_id] if block_id < len(block_records) else []
        if kernel.opt.record_stealing:
            lanes, steals = _assign_records_stealing(
                recs, launch.threads, store.stores_per_thread,
                kernel.kvpairs_per_record,
            )
            result.steals += steals
        else:
            lanes = _assign_records_static(recs, launch.threads)
            steals = 0

        warp_costs: list[WarpCost] = []
        lane_critical_path = 0.0
        for warp_start in range(0, launch.threads, warp):
            lane_instr: list[float] = []
            wc = WarpCost()
            any_active = False
            for lane in range(warp_start, min(warp_start + warp, launch.threads)):
                thread_records = lanes[lane]
                global_tid = block_id * launch.threads + lane
                charges = LaneCharges(instructions=_SETUP_INSTR)
                if thread_records:
                    any_active = True
                    counters = _run_map_thread(
                        device, kernel, thread_records, snapshot, shared_ro,
                        store, partitioner, global_tid, charges,
                    )
                    result.counters = result.counters.merged(counters)
                    result.records_processed += len(thread_records)
                    issue = (
                        charges.instructions
                        + counters.ops
                        + counters.branches
                        + 2.0 * counters.fp_ops
                    )
                    lane_instr.append(issue)
                    # A thread's own record stream is a serial dependency
                    # chain: its memory accesses pipeline (factor ~4) but
                    # cannot overlap with each other the way accesses from
                    # *different* threads can. This per-lane critical path
                    # is exactly what record stealing shortens (Fig. 7d).
                    lane_critical_path = max(
                        lane_critical_path,
                        issue * device.spec.issue_cycles
                        + charges.global_txn * device.spec.global_mem_cycles / 4.0,
                    )
                else:
                    lane_instr.append(_SETUP_INSTR)
                wc.global_txn += charges.global_txn
                wc.shared_accesses += charges.shared_accesses
                wc.shared_atomics += charges.shared_atomics
                wc.global_atomics += charges.global_atomics
                wc.texture_accesses += charges.texture_accesses
            if not any_active and not lane_instr:
                continue
            wc.instructions = timing.divergent_issue(lane_instr)
            warp_costs.append(wc)
            result.cost.totals.add(wc)
            result.cost.warps += 1
        block_cycles.append(
            max(timing.block_cycles(warp_costs), lane_critical_path)
        )
        result.cost.blocks += 1

    result.cost.cycles = timing.grid_cycles(block_cycles)
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    return result


def _run_map_thread(
    device: GpuDevice,
    kernel: KernelIR,
    thread_records: list[bytes],
    snapshot: dict[str, Any],
    shared_ro: dict[str, Buffer],
    store: GlobalKVStore,
    partitioner: Partitioner,
    global_tid: int,
    charges: LaneCharges,
) -> ExecCounters:
    feed = _ThreadRecordFeed(thread_records, kernel.opt.record_stealing)
    txn_bytes = device.spec.transaction_bytes
    vec = max(kernel.vector_width, 1)

    def bi_get_record(interp: Interpreter, args: list[Any]) -> int:
        rec = feed.next()
        if rec is None:
            return -1
        if kernel.opt.record_stealing:
            charges.shared_atomics += 1.0
        # The record is read from the device input buffer. Each lane's
        # record is a *sequential* byte stream: hardware prefetching hides
        # much of the latency, so part of the cost is issue-side work
        # (byte handling) proportional to the record length — which is
        # what record stealing balances.
        # Latency component (amortized over many in-flight requests) plus
        # DRAM-throughput cycles charged as issue-side work.
        charges.global_txn += max(0.25, len(rec) / (8.0 * txn_bytes))
        charges.instructions += len(rec) / 8.0 + len(rec) / 64.0
        interp.counters.bytes_in += len(rec)
        buf = Buffer.from_string(rec.decode("utf-8", errors="replace"))
        buf.space = "private"
        ref = args[0]
        if not isinstance(ref, (ScalarRef, Ptr)):
            raise CRuntimeError("getRecord needs &line")
        ref.store(Ptr(buf, 0))
        return len(rec)

    def bi_emit_kv(interp: Interpreter, args: list[Any]) -> int:
        if len(args) != 2:
            raise CRuntimeError("emitKV(key, value)")
        key = _extract_value(args[0])
        value = _extract_value(args[1])
        part = partitioner.partition(key)
        store.emit(global_tid, key, value, part)
        nbytes = kernel.key_length + kernel.value_length
        interp.counters.bytes_out += nbytes
        # Vectorized stores cut the issue count by the vector width; the
        # per-thread store stream write-combines, so the latency component
        # is amortized and shrinks up to 2x with wider accesses.
        charges.instructions += nbytes / vec
        charges.global_txn += max(0.25, nbytes / (16.0 * min(vec, 2)))
        return nbytes

    builtins = _gpu_common_builtins(charges, vec)
    builtins["getRecord"] = bi_get_record
    builtins["emitKV"] = bi_emit_kv

    interp = GpuInterpreter(_kernel_program(kernel), builtins, charges)
    build_thread_env(interp, kernel, snapshot, shared_ro)
    try:
        interp.exec_stmt(kernel.body)
    finally:
        interp.pop_scope()
    return interp.counters


# --------------------------------------------------------------------------
# Combine kernel execution
# --------------------------------------------------------------------------


@dataclass
class CombineLaunchResult:
    output: list[tuple[Any, Any]] = field(default_factory=list)
    cost: KernelCost = field(default_factory=KernelCost)
    counters: ExecCounters = field(default_factory=ExecCounters)
    chunks: int = 0


def run_combine_kernel(
    device: GpuDevice,
    kernel: KernelIR,
    partition_pairs: list[KVPair],
    snapshot: dict[str, Any],
) -> CombineLaunchResult:
    """Execute the combine kernel over one sorted partition.

    Each warp takes a contiguous chunk; all lanes execute redundantly
    (functionally we run the chunk once and charge redundant issue), with
    warp-cooperative vectorized KV movement when enabled.
    """
    if not kernel.is_combiner:
        raise GpuError("run_combine_kernel requires a combiner kernel")
    timing = TimingModel(device.spec)
    launch = kernel.launch
    warp = device.spec.warp_size
    total_warps = launch.blocks * (launch.threads // warp)
    shared_ro = prepare_shared_ro(kernel, snapshot)

    result = CombineLaunchResult()
    n = len(partition_pairs)
    if n == 0:
        return result
    # kvsPerThread = partition size / warp count, floored so tiny
    # partitions use few warps instead of one-pair chunks (launching a
    # full grid for a handful of pairs would only manufacture partials).
    chunk_size = max(_MIN_COMBINE_CHUNK, (n + total_warps - 1) // total_warps)
    chunks = [
        partition_pairs[i : i + chunk_size] for i in range(0, n, chunk_size)
    ]
    result.chunks = len(chunks)

    warps_per_block = launch.threads // warp
    block_warp_costs: dict[int, list[WarpCost]] = {}
    for chunk_id, chunk in enumerate(chunks):
        block_id = chunk_id // warps_per_block
        charges = LaneCharges(instructions=_SETUP_INSTR)
        counters, out = _run_combine_warp(device, kernel, chunk, snapshot,
                                          shared_ro, charges)
        result.counters = result.counters.merged(counters)
        result.output.extend(out)
        wc = WarpCost(
            instructions=charges.instructions + counters.ops + counters.branches
            + 2.0 * counters.fp_ops,
            global_txn=charges.global_txn,
            shared_accesses=charges.shared_accesses,
            shared_atomics=charges.shared_atomics,
            global_atomics=charges.global_atomics,
            texture_accesses=charges.texture_accesses,
        )
        block_warp_costs.setdefault(block_id, []).append(wc)
        result.cost.totals.add(wc)
        result.cost.warps += 1

    block_cycles = [timing.block_cycles(wcs) for wcs in block_warp_costs.values()]
    result.cost.blocks = len(block_cycles)
    result.cost.cycles = timing.grid_cycles(block_cycles)
    result.cost.seconds = device.cycles_to_seconds(result.cost.cycles)
    return result


def _run_combine_warp(
    device: GpuDevice,
    kernel: KernelIR,
    chunk: list[KVPair],
    snapshot: dict[str, Any],
    shared_ro: dict[str, Buffer],
    charges: LaneCharges,
) -> tuple[ExecCounters, list[tuple[Any, Any]]]:
    index = 0
    output: list[tuple[Any, Any]] = []
    txn_bytes = device.spec.transaction_bytes
    vec = max(kernel.vector_width, 1)
    cooperative = vec > 1
    kv_bytes = kernel.key_length + kernel.value_length

    def _charge_kv_move() -> None:
        if cooperative:
            # Lane-per-element cooperative move: coalesced transactions.
            charges.global_txn += max(1.0, kv_bytes / txn_bytes)
            charges.instructions += max(1.0, kv_bytes / (4.0 * vec))
        else:
            # Single active lane, word-at-a-time (uncoalesced).
            charges.global_txn += max(1.0, kv_bytes / 8.0)
            charges.instructions += kv_bytes / 2.0

    def bi_get_kv(interp: Interpreter, args: list[Any]) -> int:
        nonlocal index
        if index >= len(chunk):
            return -1
        pair = chunk[index]
        index += 1
        _charge_kv_move()
        interp.counters.bytes_in += kv_bytes
        key_ref, val_ref = args[0], args[1]
        _store_kv_arg(key_ref, pair.key)
        _store_kv_arg(val_ref, pair.value)
        return 2

    def bi_store_kv(interp: Interpreter, args: list[Any]) -> int:
        key = _extract_value(args[0])
        value = _extract_value(args[1])
        output.append((key, value))
        _charge_kv_move()
        interp.counters.bytes_out += kv_bytes
        return kv_bytes

    builtins = _gpu_common_builtins(charges, vec)
    builtins["getKV"] = bi_get_kv
    builtins["storeKV"] = bi_store_kv

    interp = GpuInterpreter(_kernel_program(kernel), builtins, charges)
    build_thread_env(interp, kernel, snapshot, shared_ro)
    try:
        interp.exec_stmt(kernel.body)
    finally:
        interp.pop_scope()
    return interp.counters, output


# --------------------------------------------------------------------------
# Shared helpers
# --------------------------------------------------------------------------


def _extract_value(arg: Any) -> Any:
    """Convert an evaluated kernel argument to a plain Python KV datum."""
    if isinstance(arg, Ptr):
        return arg.c_string()
    if isinstance(arg, Buffer):
        return arg.c_string()
    if isinstance(arg, ScalarRef):
        return arg.deref()
    return arg


def _kv_number(text: str) -> int | float:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise CRuntimeError(
            f"getKV: cannot read {text!r} into a numeric variable"
        ) from None


def _store_kv_arg(ref: Any, value: Any) -> None:
    # getKV marshals off the shuffle's textual wire with scanf
    # semantics: a char-array target reads the datum's text (%s) — an
    # int key 42 arrives as "42", not as the char with code 42 — and a
    # numeric target parses text back to a number (%d/%f).
    if isinstance(ref, Ptr) and ref.buffer is not None and \
            ref.buffer.elem_type == T.CHAR:
        ref.buffer.store_string(ref.offset, kv_text(value))
    elif isinstance(ref, (Ptr, ScalarRef)):
        ref.store(_kv_number(value) if isinstance(value, str) else value)
    else:
        raise CRuntimeError(f"getKV target is not a pointer: {ref!r}")


_MATH_FUNCS = frozenset(
    ["sqrt", "sqrtf", "exp", "expf", "log", "logf", "log2", "pow", "powf",
     "erf", "erff", "fabs", "fabsf", "floor", "ceil", "fmin", "fmax",
     "sin", "sinf", "cos", "cosf", "tan", "atan"]
)
_STRING_FUNCS = frozenset(
    ["strcmp", "strncmp", "strcpy", "strlen", "strcat", "strstr"]
)


def _gpu_common_builtins(charges: LaneCharges, vec: int) -> dict[str, Callable]:
    """Device versions of the C library: same semantics as the host table,
    plus cost charging. The runtime 'provides equivalent implementations'
    of C standard functions the GPU lacks (paper §4.1)."""
    base = host_builtins()
    gpu: dict[str, Callable] = {}

    def wrap_math(fn: Callable) -> Callable:
        def impl(interp: Interpreter, args: list[Any]) -> Any:
            charges.instructions += _MATH_CALL_INSTR
            interp.counters.fp_ops += 4
            return fn(interp, args)

        return impl

    def wrap_string(name: str, fn: Callable) -> Callable:
        def impl(interp: Interpreter, args: list[Any]) -> Any:
            # Vectorized string ops move char4 at a time (paper §4.1).
            length = 0
            for arg in args:
                if isinstance(arg, Ptr) and arg.buffer is not None and \
                        arg.buffer.elem_type == T.CHAR:
                    length = max(length, len(arg.c_string()))
            charges.instructions += max(1.0, length / max(vec, 1))
            return fn(interp, args)

        return impl

    for name, fn in base.items():
        if name in _MATH_FUNCS:
            gpu[name] = wrap_math(fn)
        elif name in _STRING_FUNCS:
            gpu[name] = wrap_string(name, fn)
        elif name in ("printf", "scanf", "getline"):
            continue  # must have been rewritten by the translator
        else:
            gpu[name] = fn

    def bi_unsupported(name: str) -> Callable:
        def impl(interp: Interpreter, args: list[Any]) -> Any:
            raise GpuError(
                f"{name} survived translation into the GPU kernel; the "
                "translator should have rewritten it"
            )

        return impl

    for name in ("printf", "scanf", "getline"):
        gpu[name] = bi_unsupported(name)
    return gpu


def _kernel_program(kernel: KernelIR) -> A.Program:
    """A Program wrapper exposing the user's helper functions (anything
    besides ``main``) so kernel bodies can call them — the paper's
    translator emits ``__device__`` versions of such helpers.

    One Program per kernel, cached on the KernelIR: a launch builds one
    interpreter per simulated thread, and a stable Program identity is
    what lets the compile/str-literal caches in :mod:`repro.minic.cache`
    hit across threads and splits instead of re-walking the AST."""
    program = kernel.__dict__.get("_cached_program")
    if program is None:
        program = A.Program(functions=kernel.helpers)
        setattr(kernel, "_cached_program", program)
    return program
